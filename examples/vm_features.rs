//! The Mach VM features that make TLB consistency matter (Section 2):
//! fork with per-range inheritance, copy-on-write resolution, and the
//! pageout daemon — each ending in the pmap operations the shootdown
//! algorithm protects.
//!
//! ```sh
//! cargo run --release --example vm_features
//! ```

use machtlb::core::{
    drive, Driven, ExitIdleProcess, HasKernel, KernelConfig, MemOp, SwitchUserPmapProcess,
};
use machtlb::pmap::{PageRange, Vaddr, Vpn, PAGE_SIZE};
use machtlb::sim::{CostModel, CpuId, Ctx, Dur, Process, Step, Time};
use machtlb::vm::{
    build_system_machine, HasVm, Inheritance, SystemState, TaskId, UserAccess, UserAccessResult,
    UserAccessStep, VmOp, VmOpProcess, USER_SPAN_START,
};

const DATA_VPN: u64 = USER_SPAN_START + 0x10;
const SHARED_VPN: u64 = USER_SPAN_START + 0x20;

fn va(vpn: u64) -> Vaddr {
    Vaddr::new(vpn * PAGE_SIZE)
}

/// A linear script driving the demo on one processor.
#[derive(Debug)]
struct Demo {
    parent: TaskId,
    child: Option<TaskId>,
    stage: u32,
    exit_idle: Option<ExitIdleProcess>,
    switch: Option<SwitchUserPmapProcess>,
    op: Option<VmOpProcess>,
    access: Option<UserAccess>,
}

impl Demo {
    fn op(&mut self, ctx: &mut Ctx<'_, SystemState, ()>, op: VmOp) -> Step {
        let p = self.op.get_or_insert_with(|| VmOpProcess::new(op));
        match drive(p, ctx) {
            Driven::Yield(s) => s,
            Driven::Finished(d) => {
                if let Some(c) = p.outcome().child {
                    self.child = Some(c);
                }
                self.op = None;
                self.stage += 1;
                Step::Run(d)
            }
        }
    }

    fn rw(
        &mut self,
        ctx: &mut Ctx<'_, SystemState, ()>,
        task: TaskId,
        a: Vaddr,
        op: MemOp,
        report: &'static str,
    ) -> Step {
        let acc = self
            .access
            .get_or_insert_with(|| UserAccess::new(task, a, op));
        match acc.step(ctx) {
            UserAccessStep::Yield(s) => s,
            UserAccessStep::Finished(r, d) => {
                if let UserAccessResult::Ok(v) = r {
                    if !report.is_empty() {
                        println!("  {report}: {v}");
                    }
                }
                self.access = None;
                self.stage += 1;
                Step::Run(d)
            }
        }
    }

    fn attach(&mut self, ctx: &mut Ctx<'_, SystemState, ()>, task: TaskId) -> Step {
        let pmap = ctx.shared.vm.pmap_of(task);
        let sw = self
            .switch
            .get_or_insert_with(|| SwitchUserPmapProcess::new(Some(pmap)));
        match drive(sw, ctx) {
            Driven::Yield(s) => s,
            Driven::Finished(d) => {
                self.switch = None;
                self.stage += 1;
                Step::Run(d)
            }
        }
    }
}

impl Process<SystemState, ()> for Demo {
    fn step(&mut self, ctx: &mut Ctx<'_, SystemState, ()>) -> Step {
        if let Some(e) = self.exit_idle.as_mut() {
            return match drive(e, ctx) {
                Driven::Yield(s) => s,
                Driven::Finished(d) => {
                    self.exit_idle = None;
                    Step::Run(d)
                }
            };
        }
        let parent = self.parent;
        let child = self.child;
        match self.stage {
            0 => self.attach(ctx, parent),
            1 => self.op(
                ctx,
                VmOp::Allocate {
                    task: parent,
                    pages: 1,
                    at: Some(Vpn::new(DATA_VPN)),
                },
            ),
            2 => self.op(
                ctx,
                VmOp::Allocate {
                    task: parent,
                    pages: 1,
                    at: Some(Vpn::new(SHARED_VPN)),
                },
            ),
            3 => self.op(
                ctx,
                VmOp::SetInheritance {
                    task: parent,
                    range: PageRange::single(Vpn::new(SHARED_VPN)),
                    inheritance: Inheritance::Share,
                },
            ),
            4 => self.rw(ctx, parent, va(DATA_VPN), MemOp::Write(1989), ""),
            5 => self.rw(ctx, parent, va(SHARED_VPN), MemOp::Write(42), ""),
            6 => {
                if self.op.is_none() {
                    println!("forking (copy-inherited data page, share-inherited page)...");
                }
                self.op(ctx, VmOp::Fork { parent })
            }
            7 => self.attach(ctx, child.expect("forked")),
            8 => self.rw(
                ctx,
                child.expect("forked"),
                va(DATA_VPN),
                MemOp::Read,
                "child reads the virtual copy",
            ),
            9 => self.rw(
                ctx,
                child.expect("forked"),
                va(DATA_VPN),
                MemOp::Write(2026),
                "",
            ),
            10 => self.rw(
                ctx,
                child.expect("forked"),
                va(DATA_VPN),
                MemOp::Read,
                "child after its own write   ",
            ),
            11 => self.rw(
                ctx,
                child.expect("forked"),
                va(SHARED_VPN),
                MemOp::Write(7),
                "",
            ),
            12 => self.attach(ctx, parent),
            13 => self.rw(
                ctx,
                parent,
                va(DATA_VPN),
                MemOp::Read,
                "parent still sees its data  ",
            ),
            14 => self.rw(
                ctx,
                parent,
                va(SHARED_VPN),
                MemOp::Read,
                "parent sees the shared write",
            ),
            _ => Step::Done(Dur::micros(1)),
        }
    }

    fn label(&self) -> &'static str {
        "vm-demo"
    }
}

fn main() {
    let mut m = build_system_machine(2, 9, CostModel::multimax(), KernelConfig::default());
    let parent = {
        let s = m.shared_mut();
        let SystemState { kernel, vm } = s;
        vm.create_task(kernel)
    };
    println!("fork + inheritance + copy-on-write, through real faults and pmap operations:\n");
    m.spawn_at(
        CpuId::new(0),
        Time::ZERO,
        Box::new(Demo {
            parent,
            child: None,
            stage: 0,
            exit_idle: Some(ExitIdleProcess::new()),
            switch: None,
            op: None,
            access: None,
        }),
    );
    m.run_bounded(Time::from_micros(30_000_000), 50_000_000);
    let s = m.shared();
    println!();
    println!(
        "copy-on-write page copies: {}   zero fills: {}   faults: {}",
        s.vm().stats.cow_copies,
        s.vm().stats.zero_fills,
        s.kernel().stats.faults
    );
    println!(
        "oracle: {} ({} checks)",
        if s.kernel().checker.is_consistent() {
            "consistent"
        } else {
            "VIOLATED"
        },
        s.kernel().checker.checks()
    );
    assert!(s.kernel().checker.is_consistent());
}
