//! The Section 8 question: does software TLB consistency block machines
//! with hundreds of processors?
//!
//! Measures the basic shootdown cost as the machine grows, then shows the
//! paper's proposed remedy — pool-confined kernel shootdowns — on a large
//! machine.
//!
//! ```sh
//! cargo run --release --example scaling_study
//! ```

use machtlb::sim::{CostModel, Time};
use machtlb::workloads::{run_tester, RunConfig, TesterConfig};

fn cost_at(n_cpus: usize, responders: u32, seed: u64) -> f64 {
    let mut costs = CostModel::multimax();
    if n_cpus > 16 {
        // Large machines are not uniform-bus designs (Section 8): scale
        // the interconnect with the machine.
        costs.bus_occupancy = costs.bus_occupancy.mul_f64(16.0 / n_cpus as f64);
    }
    let config = RunConfig {
        n_cpus,
        seed,
        costs,
        kconfig: Default::default(),
        timer_flush_period: machtlb_sim::Dur::millis(5),
        device_period: None,
        limit: Time::from_micros(120_000_000),
    };
    let out = run_tester(
        &config,
        &TesterConfig {
            children: responders,
            warmup_increments: 20,
        },
    );
    assert!(!out.mismatch && out.report.consistent);
    out.shootdown.expect("shootdown").elapsed.as_micros_f64()
}

fn main() {
    println!("machine-wide shootdown cost as the machine grows:");
    println!(
        "  {:<12} {:<14} {:<12}",
        "processors", "measured (us)", "paper line"
    );
    for &n in &[16usize, 32, 64, 128] {
        let k = (n - 1) as u32;
        let us = cost_at(n, k, 30 + n as u64);
        println!(
            "  {:<12} {:<14.0} {:<12.0}",
            n,
            us,
            430.0 + 55.0 * f64::from(k)
        );
    }
    println!();
    println!("\"the algorithm as presented here will scale badly to larger machines");
    println!(" (e.g. 6ms basic shootdown time for 100 processors)\" — Section 11");
    println!(
        "  measured at 100 responders: {:.0} us",
        cost_at(101, 100, 77)
    );
    println!();
    println!("the remedy — restructure kernel memory into per-pool regions so most");
    println!("kernel shootdowns stay inside a pool (Section 8):");
    let wide = cost_at(128, 127, 81);
    let pooled = cost_at(128, 15, 82);
    println!("  128-processor machine, machine-wide: {wide:.0} us");
    println!(
        "  128-processor machine, 16-cpu pool:  {pooled:.0} us  ({:.1}x cheaper)",
        wide / pooled
    );
}
