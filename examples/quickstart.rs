//! Quickstart: one TLB shootdown, start to finish — and why the naive
//! alternative breaks.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use machtlb::core::Strategy;
use machtlb::sim::Time;
use machtlb::workloads::{
    build_workload_machine, install_tester, AppShared, RunConfig, TesterConfig,
};

fn run(strategy: Strategy) -> (bool, bool, u64, usize) {
    let mut config = RunConfig {
        n_cpus: 8,
        ..RunConfig::multimax16(42)
    };
    config.kconfig.strategy = strategy;
    let mut m = build_workload_machine(&config, AppShared::None);
    install_tester(
        &mut m,
        &TesterConfig {
            children: 5,
            warmup_increments: 40,
        },
    );
    m.run_bounded(Time::from_micros(10_000_000), 500_000_000);
    let s = m.shared();
    let kernel = machtlb::core::HasKernel::kernel(s);
    (
        s.tester().mismatch.expect("tester concluded"),
        kernel.checker.is_consistent(),
        kernel.stats.ipis_sent,
        kernel.checker.total_violations() as usize,
    )
}

fn main() {
    println!("The Section 5.1 consistency test: 5 children increment counters in a");
    println!("shared page; the main thread reprotects it read-only; any counter that");
    println!("advances afterwards reveals a stale TLB entry.\n");

    let (mismatch, consistent, ipis, violations) = run(Strategy::Shootdown);
    println!("With the Mach shootdown algorithm:");
    println!("  shootdown interrupts sent ........ {ipis}");
    println!("  counters advanced after protect .. {mismatch}");
    println!("  oracle violations ................ {violations}");
    assert!(!mismatch && consistent);
    println!("  => consistency maintained\n");

    let (mismatch, consistent, ipis, violations) = run(Strategy::NaiveFlush);
    println!("With the naive flush-and-proceed approach (Section 3's strawman):");
    println!("  shootdown interrupts sent ........ {ipis}");
    println!("  counters advanced after protect .. {mismatch}");
    println!("  oracle violations ................ {violations}");
    assert!(mismatch && !consistent);
    println!("  => stale translations kept permitting writes: the hardware reload and");
    println!("     referenced/modified-writeback features make remote notification");
    println!("     mandatory, exactly as the paper argues.");
}
