//! The Section 5.1 consistency tester as a command-line tool, doubling as
//! the Figure 2 measurement instrument.
//!
//! ```sh
//! cargo run --release --example consistency_tester -- [children] [cpus] [runs]
//! ```
//!
//! Defaults: 7 children, 16 processors, 5 runs.

use machtlb::sim::Time;
use machtlb::workloads::{run_tester, RunConfig, TesterConfig};
use machtlb::xpr::Summary;

fn arg(n: usize, default: u64) -> u64 {
    std::env::args()
        .nth(n)
        .map(|s| s.parse().unwrap_or_else(|_| panic!("bad argument: {s}")))
        .unwrap_or(default)
}

fn main() {
    let children = arg(1, 7) as u32;
    let n_cpus = arg(2, 16) as usize;
    let runs = arg(3, 5);
    assert!((children as usize) < n_cpus, "need children + 1 processors");

    println!("consistency tester: {children} children on {n_cpus} processors, {runs} runs");
    let mut samples = Vec::new();
    for seed in 0..runs {
        let config = RunConfig {
            n_cpus,
            limit: Time::from_micros(30_000_000),
            ..RunConfig::multimax16(seed)
        };
        let out = run_tester(
            &config,
            &TesterConfig {
                children,
                warmup_increments: 40,
            },
        );
        let shot = out.shootdown.expect("the reprotect causes one shootdown");
        println!(
            "  seed {seed}: shootdown of {} processors took {:.1} us; counters \
             frozen: {}; children killed: {}",
            shot.processors,
            shot.elapsed.as_micros_f64(),
            !out.mismatch,
            out.children_dead
        );
        assert!(!out.mismatch, "TLB inconsistency detected!");
        assert!(out.report.consistent, "oracle violations recorded!");
        samples.push(shot.elapsed.as_micros_f64());
    }
    let s = Summary::of(&samples).expect("runs");
    println!();
    println!(
        "basic shootdown cost at {} processors: {:.1} \u{b1} {:.1} us",
        children, s.mean, s.std
    );
    println!(
        "paper's Figure 2 line predicts:        {:.1} us",
        430.0 + 55.0 * f64::from(children)
    );
}
