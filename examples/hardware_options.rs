//! The Section 9 design space: how much does each proposed hardware
//! feature buy?
//!
//! ```sh
//! cargo run --release --example hardware_options
//! ```

use machtlb::core::{KernelConfig, Strategy};
use machtlb::sim::{Dur, Time};
use machtlb::tlb::{ReloadPolicy, TlbConfig, WritebackPolicy};
use machtlb::workloads::{run_tester, RunConfig, TesterConfig};

fn measure(name: &str, kconfig: KernelConfig) {
    let config = RunConfig {
        kconfig,
        device_period: Some(Dur::millis(2)),
        limit: Time::from_micros(30_000_000),
        ..RunConfig::multimax16(5)
    };
    let out = run_tester(
        &config,
        &TesterConfig {
            children: 10,
            warmup_increments: 30,
        },
    );
    assert!(
        !out.mismatch && out.report.consistent,
        "{name}: inconsistency!"
    );
    let shot = out.shootdown.expect("consistency action");
    println!(
        "  {:<38} {:>7.0} us   {:>3} IPIs   {:>3} responder events",
        name,
        shot.elapsed.as_micros_f64(),
        out.report.stats.ipis_sent,
        out.report.responders.len()
    );
}

fn main() {
    println!("one 10-responder consistency action under each Section 9 option:");
    println!();
    let stock = KernelConfig::default();
    measure("software shootdown (baseline)", stock.clone());
    measure(
        "high-priority software interrupt",
        KernelConfig {
            high_prio_ipi: true,
            ..stock.clone()
        },
    );
    measure(
        "broadcast interrupt",
        KernelConfig {
            strategy: Strategy::BroadcastIpi,
            ..stock.clone()
        },
    );
    measure(
        "software reload (no responder stall)",
        KernelConfig {
            strategy: Strategy::NoStallSoftwareReload,
            tlb: TlbConfig {
                reload: ReloadPolicy::Software,
                writeback: WritebackPolicy::None,
                ..TlbConfig::multimax()
            },
            ..stock.clone()
        },
    );
    measure(
        "remote TLB invalidation (MC88200)",
        KernelConfig {
            strategy: Strategy::HardwareRemoteInvalidate,
            tlb: TlbConfig {
                writeback: WritebackPolicy::Interlocked,
                ..TlbConfig::multimax()
            },
            ..stock
        },
    );
    println!();
    println!("every option maintains consistency; they differ in who pays, and how much.");
    println!("See crates/bench/benches/sec9_hardware_options.rs for the full ablation.");
}
