//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment this repository targets has no crates.io access, so
//! the workspace patches `proptest` to this vendored implementation (see
//! `[patch.crates-io]` in the root `Cargo.toml`). It provides the surface
//! the repository's property tests use — the [`proptest!`] macro,
//! [`prop_assert!`]/[`prop_assert_eq!`], [`prop_oneof!`],
//! [`Strategy`](strategy::Strategy) with `prop_map`, range and tuple
//! strategies, [`Just`](strategy::Just), [`any`](arbitrary::any), and
//! [`collection::vec`] — with random generation and failure reporting but
//! no shrinking: a failing case panics with the generated inputs so it can
//! be minimised by hand or replayed.
//!
//! Generation is deterministic per test function and case index, so
//! failures reproduce across runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy {
    //! Value-generation strategies.

    use std::fmt::Debug;
    use std::ops::{Range, RangeInclusive};

    /// The deterministic generator threaded through strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from a seed.
        pub fn new(seed: u64) -> TestRng {
            TestRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        /// The next 64 random bits (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// A uniform index below `bound` (which must be nonzero).
        pub fn below(&mut self, bound: u64) -> u64 {
            // Widening multiply; the slight bias is irrelevant for test
            // generation.
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }

        /// A uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// A generator of values for property tests.
    ///
    /// Unlike real proptest there is no shrinking tree: a strategy simply
    /// produces a value from the test RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value: Debug;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Filters generated values (regenerates until `f` accepts, up to a
        /// bounded number of attempts).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                whence,
                f,
            }
        }

        /// Erases the strategy's concrete type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: Box::new(self),
            }
        }
    }

    /// Object-safe strategy used by [`BoxedStrategy`] and
    /// [`Union`](crate::strategy::Union).
    pub trait DynStrategy {
        /// The type of generated values.
        type Value: Debug;
        /// Generates one value.
        fn dyn_generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;
        fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A boxed, type-erased strategy.
    pub struct BoxedStrategy<T> {
        inner: Box<dyn DynStrategy<Value = T>>,
    }

    impl<T: Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.inner.dyn_generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter {:?} rejected 1000 candidates", self.whence);
        }
    }

    /// A strategy that always produces a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// A uniform choice between boxed strategies (built by
    /// [`prop_oneof!`](crate::prop_oneof)).
    pub struct Union<T> {
        arms: Vec<Box<dyn DynStrategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Creates a union of the given arms.
        ///
        /// # Panics
        ///
        /// Panics if `arms` is empty.
        pub fn new(arms: Vec<Box<dyn DynStrategy<Value = T>>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].dyn_generate(rng)
        }
    }

    macro_rules! int_strategy {
        ($ty:ty) => {
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $ty
                }
            }

            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let span = (*self.end() as i128 - *self.start() as i128 + 1) as u64;
                    (*self.start() as i128 + rng.below(span) as i128) as $ty
                }
            }
        };
    }

    int_strategy!(u8);
    int_strategy!(u16);
    int_strategy!(u32);
    int_strategy!(u64);
    int_strategy!(usize);
    int_strategy!(i8);
    int_strategy!(i16);
    int_strategy!(i32);
    int_strategy!(i64);
    int_strategy!(isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let v = self.start + rng.unit_f64() * (self.end - self.start);
            if v < self.end {
                v
            } else {
                self.start
            }
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            let v = self.start + (rng.unit_f64() as f32) * (self.end - self.start);
            if v < self.end {
                v
            } else {
                self.start
            }
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    //! The [`any`] entry point for types with a canonical strategy.

    use super::strategy::{Strategy, TestRng};
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized + Debug {
        /// Generates an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($ty:ty) => {
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        };
    }

    arb_int!(u8);
    arb_int!(u16);
    arb_int!(u32);
    arb_int!(u64);
    arb_int!(usize);
    arb_int!(i8);
    arb_int!(i16);
    arb_int!(i32);
    arb_int!(i64);
    arb_int!(isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`'s whole domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// A size specification for collection strategies.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n + 1 }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for vectors whose elements come from `element` and whose
    /// length lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod test_runner {
    //! The driver behind the [`proptest!`](crate::proptest) macro.

    use super::strategy::TestRng;

    /// Why a test case failed.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub enum TestCaseError {
        /// An explicit `prop_assert!` failure.
        Fail(String),
        /// The case asked to be discarded (`prop_assume!`; unused here).
        Reject(String),
    }

    impl TestCaseError {
        /// An assertion failure with the given message.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }
    }

    /// Runner configuration (field-compatible subset of proptest's).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of cases to run per test.
        pub cases: u32,
        /// Unused; kept for struct-update compatibility.
        pub max_shrink_iters: u32,
    }

    impl Default for Config {
        fn default() -> Config {
            Config {
                cases: 64,
                max_shrink_iters: 0,
            }
        }
    }

    /// Runs `body` for `config.cases` deterministic cases. `body` receives
    /// the case RNG and returns the formatted inputs on failure via
    /// `Err((inputs, error))`.
    ///
    /// # Panics
    ///
    /// Panics (failing the enclosing `#[test]`) on the first failing case.
    pub fn run(
        config: &Config,
        source: &str,
        body: impl Fn(&mut TestRng) -> Result<(), (String, String)>,
    ) {
        for case in 0..config.cases {
            // Deterministic per test site and case so failures replay.
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in source.bytes() {
                seed = (seed ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3);
            }
            seed ^= u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let mut rng = TestRng::new(seed);
            if let Err((inputs, error)) = body(&mut rng) {
                panic!(
                    "proptest case {case}/{total} failed at {source}\n\
                     inputs:\n{inputs}\nerror: {error}",
                    total = config.cases,
                );
            }
        }
    }
}

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (not
/// panicking) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)*));
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let l = $left;
        let r = $right;
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// A uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(::std::boxed::Box::new($strategy) as ::std::boxed::Box<
                dyn $crate::strategy::DynStrategy<Value = _>,
            >),+
        ])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::Config::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => { $(
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            let __source = concat!(file!(), "::", stringify!($name));
            $crate::test_runner::run(&__config, __source, |__rng| {
                let mut __inputs = ::std::string::String::new();
                $(
                    let __value = $crate::strategy::Strategy::generate(&$strategy, __rng);
                    __inputs.push_str(&format!(
                        "  {} = {:?}\n",
                        stringify!($pat),
                        __value
                    ));
                    let $pat = __value;
                )+
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(
                        || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                            $body
                            ::std::result::Result::Ok(())
                        },
                    ),
                );
                match __outcome {
                    ::std::result::Result::Ok(::std::result::Result::Ok(())) => {
                        ::std::result::Result::Ok(())
                    }
                    ::std::result::Result::Ok(::std::result::Result::Err(e)) => {
                        ::std::result::Result::Err((__inputs, format!("{e:?}")))
                    }
                    ::std::result::Result::Err(panic) => {
                        let msg = panic
                            .downcast_ref::<&str>()
                            .map(|s| (*s).to_string())
                            .or_else(|| panic.downcast_ref::<::std::string::String>().cloned())
                            .unwrap_or_else(|| "non-string panic".to_string());
                        ::std::result::Result::Err((__inputs, format!("panic: {msg}")))
                    }
                }
            });
        }
    )* };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_unions_generate_in_bounds() {
        use crate::strategy::{Strategy, TestRng};
        let mut rng = TestRng::new(3);
        let s = prop_oneof![
            (0u64..10).prop_map(|v| v),
            Just(99u64),
            (20u64..=29).prop_map(|v| v),
        ];
        for _ in 0..200 {
            let v: u64 = s.generate(&mut rng);
            assert!(v < 10 || v == 99 || (20..=29).contains(&v), "{v}");
        }
        let vecs = crate::collection::vec(0u8..5, 2..6);
        for _ in 0..100 {
            let v = vecs.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn macro_binds_and_asserts(x in 1u64..100, flip in any::<bool>()) {
            prop_assert!((1..100).contains(&x));
            let y = if flip { x } else { x + 1 };
            prop_assert_ne!(y, 0);
            prop_assert_eq!(x.min(y), x.min(y));
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_case_reports_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]
            fn inner(x in 0u64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner();
    }
}
