//! Offline, API-compatible subset of the `criterion` crate.
//!
//! The build environment this repository targets has no crates.io access,
//! so the workspace patches `criterion` to this vendored implementation
//! (see `[patch.crates-io]` in the root `Cargo.toml`). It keeps the macro
//! and builder surface the benches use — [`criterion_group!`],
//! [`criterion_main!`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`]/[`iter_batched`](Bencher::iter_batched) — and measures
//! with plain wall-clock sampling: no statistics, plots, or baselines.
//! Each benchmark prints its median per-iteration time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// How `iter_batched` amortises setup cost; only the variants the benches
/// name exist, and all behave identically here (one setup per measured
/// call).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// Input of unknown size.
    PerIteration,
}

/// Passed to benchmark closures; runs and times the routine.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    fn measure_samples(&mut self, mut one_sample: impl FnMut(u64) -> Duration) {
        // Warm up, then calibrate the per-sample iteration count so one
        // sample takes roughly a few hundred microseconds.
        let mut iters = 1u64;
        loop {
            let t = one_sample(iters);
            if t > Duration::from_micros(200) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        self.iters_per_sample = iters;
        const SAMPLES: usize = 31;
        self.samples.clear();
        for _ in 0..SAMPLES {
            self.samples.push(one_sample(iters));
        }
    }

    /// Times `routine`, called in a tight loop.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        self.measure_samples(|iters| {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            start.elapsed()
        });
    }

    /// Times `routine` on fresh inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        self.measure_samples(|iters| {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                std::hint::black_box(routine(input));
            }
            start.elapsed()
        });
    }

    fn median_per_iter(&self) -> Duration {
        if self.samples.is_empty() || self.iters_per_sample == 0 {
            return Duration::ZERO;
        }
        let mut s = self.samples.clone();
        s.sort();
        s[s.len() / 2] / (self.iters_per_sample.min(u64::from(u32::MAX)) as u32)
    }
}

fn run_one(id: &str, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        iters_per_sample: 0,
    };
    f(&mut b);
    let per_iter = b.median_per_iter();
    println!("{id:<40} time: [{}]", format_duration(per_iter));
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// The benchmark manager handed to `criterion_group!` functions.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // `cargo bench -- <filter>` passes the filter as a free argument;
        // ignore criterion CLI flags we don't implement.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "--bench");
        Criterion { filter }
    }
}

impl Criterion {
    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    /// Runs a standalone benchmark.
    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Criterion {
        if self.matches(id) {
            run_one(id, &mut f);
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl<'c> BenchmarkGroup<'c> {
    /// Runs one benchmark within the group.
    pub fn bench_function(
        &mut self,
        id: &str,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut BenchmarkGroup<'c> {
        let full = format!("{}/{}", self.name, id);
        if self.criterion.matches(&full) {
            run_one(&full, &mut f);
        }
        self
    }

    /// Consumes the group (kept for API compatibility; reporting is
    /// immediate).
    pub fn finish(self) {}
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_and_iter_batched_measure() {
        let mut c = Criterion { filter: None };
        let mut g = c.benchmark_group("shim");
        g.bench_function("iter", |b| {
            let mut x = 0u64;
            b.iter(|| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                x
            });
        });
        g.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 8],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            );
        });
        g.finish();
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            filter: Some("nomatch".to_string()),
        };
        let mut ran = false;
        c.bench_function("other", |_b| ran = true);
        assert!(!ran);
    }
}
