//! Offline, API-compatible subset of the `rand` 0.8 crate.
//!
//! The build environment this repository targets has no crates.io access, so
//! the workspace patches `rand` to this vendored implementation (see
//! `[patch.crates-io]` in the root `Cargo.toml`). Only the surface the
//! simulator uses is provided: [`SmallRng`](rngs::SmallRng) seeded via
//! [`SeedableRng::seed_from_u64`], and [`Rng::gen_range`] / [`Rng::gen_bool`]
//! over integer and float ranges.
//!
//! The algorithms mirror rand 0.8.5 bit for bit — xoshiro256++ for
//! `SmallRng` (with the SplitMix64 `seed_from_u64` expansion), widening
//! multiply-and-reject for uniform integers, and the `[1, 2)` mantissa trick
//! for uniform floats — so simulations produce the same deterministic
//! sequences the seed corpus was generated with.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A low-level source of random 32/64-bit words.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// RNGs constructible from seed material.
pub trait SeedableRng: Sized {
    /// The fixed-size seed accepted by [`from_seed`](SeedableRng::from_seed).
    type Seed: AsMut<[u8]> + Default;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64 as
    /// rand 0.8's xoshiro generators do.
    fn seed_from_u64(mut state: u64) -> Self {
        const PHI: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(PHI);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types that have a uniform sampler over `low..high` domains.
///
/// Mirroring rand's structure — a single blanket [`SampleRange`] impl per
/// range type, dispatching through this trait — matters for type
/// inference: `rng.gen_range(0..100) < some_u32` must unify the literal
/// with `u32`, which per-range-type impls would not allow.
pub trait SampleUniform: Sized + PartialOrd {
    /// A uniform sample from `low..high` (half-open; callers guarantee
    /// `low < high`).
    fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// A uniform sample from `low..=high` (callers guarantee
    /// `low <= high`).
    fn sample_single_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

/// Ranges that can be sampled uniformly (the subset of rand's
/// `SampleRange` the simulator uses).
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_single(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "gen_range: empty range");
        T::sample_single_inclusive(low, high, rng)
    }
}

/// User-facing convenience methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Rr>(&mut self, range: Rr) -> T
    where
        Rr: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        if p >= 1.0 {
            return true;
        }
        // rand 0.8's Bernoulli: compare 64 random bits against p * 2^64.
        let p_int = (p * (u64::MAX as f64 + 1.0)) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The rejection zone for a widening-multiply uniform sample, as rand
/// 0.8.5 computes it: small (8/16-bit) domains pay an exact modulo, larger
/// ones use the cheaper shift approximation.
macro_rules! uniform_zone {
    (small, $range:ident, $u_large:ty) => {{
        let unsigned_max: $u_large = <$u_large>::MAX;
        let ints_to_reject = (unsigned_max - $range + 1) % $range;
        unsigned_max - ints_to_reject
    }};
    (large, $range:ident, $u_large:ty) => {
        ($range << $range.leading_zeros()).wrapping_sub(1)
    };
}

macro_rules! uniform_int {
    ($ty:ty, $unsigned:ty, $u_large:ty, $gen:ident, $zone_kind:ident) => {
        impl SampleUniform for $ty {
            fn sample_single<R: RngCore + ?Sized>(low: $ty, high: $ty, rng: &mut R) -> $ty {
                // rand 0.8.5 UniformInt::sample_single: widening multiply
                // with a rejection zone over range = high - low.
                let range = high.wrapping_sub(low) as $unsigned as $u_large;
                let zone = uniform_zone!($zone_kind, range, $u_large);
                loop {
                    let v: $u_large = $gen(rng);
                    let (hi, lo) = wmul_sp(v, range);
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }

            fn sample_single_inclusive<R: RngCore + ?Sized>(
                low: $ty,
                high: $ty,
                rng: &mut R,
            ) -> $ty {
                let range = high.wrapping_sub(low).wrapping_add(1) as $unsigned as $u_large;
                if range == 0 {
                    // The range spans the whole domain.
                    return $gen(rng) as $ty;
                }
                let zone = uniform_zone!($zone_kind, range, $u_large);
                loop {
                    let v: $u_large = $gen(rng);
                    let (hi, lo) = wmul_sp(v, range);
                    if lo <= zone {
                        return low.wrapping_add(hi as $ty);
                    }
                }
            }
        }
    };
}

fn gen_u32<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
    rng.next_u32()
}

fn gen_u64<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
    rng.next_u64()
}

/// Widening multiply returning `(high, low)` words, generic over the two
/// word sizes used by the integer samplers.
trait WideMul: Copy {
    fn wmul(self, other: Self) -> (Self, Self);
}

impl WideMul for u32 {
    fn wmul(self, other: u32) -> (u32, u32) {
        let wide = u64::from(self) * u64::from(other);
        ((wide >> 32) as u32, wide as u32)
    }
}

impl WideMul for u64 {
    fn wmul(self, other: u64) -> (u64, u64) {
        let wide = u128::from(self) * u128::from(other);
        ((wide >> 64) as u64, wide as u64)
    }
}

fn wmul_sp<T: WideMul>(a: T, b: T) -> (T, T) {
    a.wmul(b)
}

uniform_int!(u8, u8, u32, gen_u32, small);
uniform_int!(u16, u16, u32, gen_u32, small);
uniform_int!(u32, u32, u32, gen_u32, large);
uniform_int!(u64, u64, u64, gen_u64, large);
uniform_int!(usize, usize, u64, gen_u64, large);
uniform_int!(i8, u8, u32, gen_u32, small);
uniform_int!(i16, u16, u32, gen_u32, small);
uniform_int!(i32, u32, u32, gen_u32, large);
uniform_int!(i64, u64, u64, gen_u64, large);
uniform_int!(isize, usize, u64, gen_u64, large);

macro_rules! uniform_float {
    ($ty:ty, $bits_to_discard:expr, $exp_bias_bits:expr, $gen:ident) => {
        impl SampleUniform for $ty {
            fn sample_single<R: RngCore + ?Sized>(low: $ty, high: $ty, rng: &mut R) -> $ty {
                let scale = high - low;
                loop {
                    // A value in [1, 2): random mantissa, exponent 0.
                    let bits = $gen(rng) >> $bits_to_discard;
                    let value1_2 = <$ty>::from_bits(bits | $exp_bias_bits);
                    let value0_1 = value1_2 - 1.0;
                    let res = value0_1 * scale + low;
                    if res < high {
                        return res;
                    }
                }
            }

            fn sample_single_inclusive<R: RngCore + ?Sized>(
                low: $ty,
                high: $ty,
                rng: &mut R,
            ) -> $ty {
                let scale = high - low;
                let bits = $gen(rng) >> $bits_to_discard;
                let value1_2 = <$ty>::from_bits(bits | $exp_bias_bits);
                let value0_1 = value1_2 - 1.0;
                let res = value0_1 * scale + low;
                if res > high {
                    high
                } else {
                    res
                }
            }
        }
    };
}

uniform_float!(f32, 32 - 23, 127u32 << 23, gen_u32);
uniform_float!(f64, 64 - 52, 1023u64 << 52, gen_u64);

pub mod rngs {
    //! The generator types the simulator uses.

    use super::{RngCore, SeedableRng};

    /// rand 0.8's small fast generator: xoshiro256++.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            // The lowest bits have linear dependencies; use the upper ones,
            // as rand 0.8's vendored xoshiro256++ does.
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> SmallRng {
            if seed.iter().all(|&b| b == 0) {
                return SmallRng::seed_from_u64(0);
            }
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn xoshiro256pp_reference_vector() {
        // Reference sequence for the raw xoshiro256++ core with state
        // [1, 2, 3, 4] (from the algorithm's public reference
        // implementation).
        let mut rng = SmallRng::from_seed({
            let mut seed = [0u8; 32];
            seed[0] = 1;
            seed[8] = 2;
            seed[16] = 3;
            seed[24] = 4;
            seed
        });
        let expected: [u64; 6] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
            9973669472204895162,
        ];
        for e in expected {
            assert_eq!(super::RngCore::next_u64(&mut rng), e);
        }
    }

    #[test]
    fn seed_from_u64_is_deterministic_and_seed_sensitive() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xa: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1000)).collect();
        let xb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..1000)).collect();
        let xc: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..1000)).collect();
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..2000 {
            let v = rng.gen_range(5u64..25);
            assert!((5..25).contains(&v));
            let w = rng.gen_range(1u32..=6);
            assert!((1..=6).contains(&w));
            let f = rng.gen_range(0.05f64..1.95);
            assert!((0.05..1.95).contains(&f));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.03)).count();
        assert!(hits > 150 && hits < 500, "p=0.03 over 10k draws: {hits}");
    }
}
