//! # machtlb — Translation Lookaside Buffer Consistency: A Software Approach
//!
//! A full reproduction of Black, Rashid, Golub, Hill, and Baron's ASPLOS
//! 1989 paper: the **Mach TLB shootdown algorithm**, the kernel and VM
//! substrates it lives in, the evaluation workloads it was measured with,
//! and harnesses regenerating every table and figure — all over a
//! deterministic discrete-event multiprocessor simulator.
//!
//! This crate is the facade: it re-exports the workspace's layers under
//! one roof. The layers, bottom to top:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`sim`] | `machtlb-sim` | deterministic multiprocessor: clocks, bus, interrupts, cost model |
//! | [`pmap`] | `machtlb-pmap` | addresses, protections, two-level page tables, processor sets |
//! | [`tlb`] | `machtlb-tlb` | the TLB model with the Section 3 hazard features and Section 9 variants |
//! | [`xpr`] | `machtlb-xpr` | the xpr trace buffer and the evaluation's statistics |
//! | [`core`] | `machtlb-core` | **the shootdown algorithm**: initiator, responder, idle protocol, strategies, consistency oracle |
//! | [`vm`] | `machtlb-vm` | tasks, address maps, copy-on-write objects, the fault path |
//! | [`workloads`] | `machtlb-workloads` | the consistency tester and the four evaluation applications |
//! | [`bench`] | `machtlb-bench` | table/figure harness machinery and the `BENCH_*.json` perf-trajectory format |
//!
//! # Examples
//!
//! The paper in one breath — a reprotect on one processor invalidates the
//! stale rights of every other processor, provably:
//!
//! ```
//! use machtlb::workloads::{run_tester, RunConfig, TesterConfig};
//!
//! let config = RunConfig { n_cpus: 8, ..RunConfig::multimax16(7) };
//! let out = run_tester(&config, &TesterConfig { children: 5, warmup_increments: 30 });
//! assert!(!out.mismatch, "no counter advanced after the reprotect");
//! assert!(out.report.consistent, "the oracle saw no stale use");
//! assert_eq!(out.shootdown.expect("one shootdown").processors, 5);
//! ```
//!
//! Runnable binaries live in `examples/` (`quickstart`,
//! `consistency_tester`, `scaling_study`, `hardware_options`), and the
//! table/figure harnesses in `crates/bench/benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use machtlb_bench as bench;
pub use machtlb_core as core;
pub use machtlb_pmap as pmap;
pub use machtlb_sim as sim;
pub use machtlb_tlb as tlb;
pub use machtlb_vm as vm;
pub use machtlb_workloads as workloads;
pub use machtlb_xpr as xpr;
