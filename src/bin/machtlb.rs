//! The `machtlb` command-line runner: drive the reproduction's
//! experiments without writing a harness.
//!
//! ```sh
//! machtlb tester --children 7 --cpus 16 --seed 3 --strategy shootdown
//! machtlb app camelot --seed 9 --lazy off
//! machtlb fig2 --max-k 12 --runs 5
//! machtlb scaling
//! ```

use std::process::ExitCode;

use machtlb::bench::{compare_reports, diff_reports, parse_report};
use machtlb::core::{
    check_envelope, fuzz_json, parse_schedule, plan_catalog, run_chaos, run_fuzz, run_schedule,
    run_soak, schedule_json, shrink, soak_json, survival_json, ChaosConfig, FuzzConfig,
    KernelConfig, SoakConfig, Strategy, Survival,
};
use machtlb::sim::{BusOp, CostModel, Dur, Time, Topology};
use machtlb::tlb::{ReloadPolicy, TlbConfig, WritebackPolicy};
use machtlb::workloads::{
    run_agora, run_camelot, run_machbuild, run_migration_storm, run_parthenon, run_tester,
    AgoraConfig, AppReport, CamelotConfig, MachBuildConfig, MigrationStormConfig, ParthenonConfig,
    RunConfig, TesterConfig,
};
use machtlb::xpr::{
    assemble_spans, check_monotone_per_cpu, chrome_trace_json, counters_table, linear_fit,
    phase_latencies, phase_latencies_by_node, recovery_latencies, validate_json_shape,
    validate_spans, Histogram, Summary, TextTable,
};

const USAGE: &str = "\
machtlb — the Mach TLB shootdown reproduction (Black et al., ASPLOS 1989)

USAGE:
    machtlb tester  [--children N] [--cpus N] [--seed N] [--strategy S]
                    [--fanout N] [--shards N] [--batch on|off]
                    [--residency on|off] [TOPOLOGY]
    machtlb app     <mach|parthenon|agora|camelot> [--cpus N] [--seed N]
                    [--lazy on|off] [--residency on|off]
    machtlb fig2    [--cpus N] [--max-k N] [--runs N]
    machtlb scaling [--upto N] [--fanout N] [--shards N] [--batch on|off]
                    [--residency on|off] [TOPOLOGY]
    machtlb trace   [--workload machbuild|parthenon|agora|camelot|tester]
                    [--strategy S] [--cpus N] [--seed N] [--out FILE]
                    [--fanout N] [--shards N] [--batch on|off]
                    [--residency on|off] [TOPOLOGY]
    machtlb storm   [--cpus N] [--seed N] [--workers N] [--pages N]
                    [--migrations N] [--cross on|off]
                    [--residency on|off] [TOPOLOGY]
    machtlb bench-check --baseline DIR [--current DIR] [--tolerance PCT]
    machtlb chaos   [--cpus N] [--seeds N] [--rounds N] [--out FILE]
                    [--json FILE] [TOPOLOGY]
    machtlb soak    [--cpus N] [--cycles N] [--duration DUR] [--seed N]
                    [--rounds N] [--smoke on|off]
                    [--inject-exhaustion on|off] [--out FILE] [--json FILE]
    machtlb fuzz    [--seed N] [--budget N] [--cpus N] [--rounds N]
                    [--shrink on|off] [--max-replays N] [--smoke on|off]
                    [--json FILE] [--repro FILE]
    machtlb replay  --schedule FILE

STRATEGIES:
    shootdown (default), broadcast, no-stall, hw-remote, timer-delayed, naive

DELIVERY FLAGS (shootdown strategy):
    --fanout N      multicast IPI tree degree (default 1 = the paper's
                    unicast send loop; degree 1 is bit-identical to it)
    --shards N      pmap lock shard count (default 1 = one lock per pmap)
    --batch on|off  merge concurrent same-pmap initiators into one round

PRECISE TARGETING (shootdown strategy):
    --residency on|off  consult the per-processor possibly-cached sets to
                        skip IPI targets that cannot hold the stale
                        translation, and recycle ASID generations on
                        tagged-TLB pmap retirement (default off = the
                        paper's exact protocol, bit-identical traces)

TOPOLOGY FLAGS (omit them all for the paper's flat single-bus machine):
    --nodes N            NUMA nodes (default 1 = flat, bit-identical to
                         the pre-topology simulator)
    --node-cpus N        processors per node (default cpus / nodes; the
                         last node absorbs any surplus)
    --remote-latency US  microseconds added to every interconnect
                         crossing (default 4)

`storm` runs the page-migration workload: workers on every node
repeatedly unmap a page and re-enter it on a fresh frame, hammering the
shootdown path; `--cross on` targets the next node's pmap so every lock
word and page table is remote.

`bench-check` holds every BENCH_<name>.json under --current (default .)
against the committed file of the same name under --baseline, failing if
a headline number drifts more than --tolerance percent (default 30).

`soak` cycles halt, offline/revive, wrongful-eviction, compound-halt,
and FailOp dead-holder shapes through the membership fence with the
consistency checker on throughout; `--smoke on` clamps the run to a CI
time budget, and `--inject-exhaustion on` appends a beyond-envelope
cycle with a zero FailOp restart budget, which must turn the exit red.
`--duration DUR` (500ms, 30s, 5m, 1h) keeps rotating cycles until the
wall-clock budget is spent instead of counting to `--cycles`.

`fuzz` runs a seeded campaign of generated fault schedules (timed
halts, offline/revive, responder stalls, IPI delay/drop/duplicate/
reorder, ISR stretch) against the hardened kernel with recovery on;
the whole campaign is a pure function of `--seed`. `--cpus 0` (the
default) rotates machines through 32/48/64 processors. On a red run
the first caught schedule is minimized by delta debugging
(`--shrink on`, the default, bounded by `--max-replays`) and written
to `--repro` (default repro.json) ready for `machtlb replay
--schedule FILE`, which re-runs one serialized schedule bit-identically
and exits 1 if it is caught. `--json FILE` archives the campaign's
coverage artifact either way; `--smoke on` is the CI preset (a small
budget on a small machine).

EXIT CODES:
    0  the command succeeded; for `chaos`, the two-sided envelope check
       was green (every tolerable plan survived, every beyond-envelope
       plan was caught); for `soak`, every cycle completed with zero
       violations, unrecovered give-ups, and exhausted retries
    1  bad arguments, an inconsistency, or — for `chaos`/`soak`/`fuzz`/
       `replay` — a failed verdict; `--json FILE` (and `fuzz`'s
       `--repro FILE`) are still written in this case, so CI can
       archive the red run it is about to fail on

Every run prints its consistency verdict: the oracle checks the paper's
guarantee on every translated access.";

/// A minimal flag parser: `--name value` pairs after the positionals.
struct Args {
    positional: Vec<String>,
    flags: Vec<(String, String)>,
}

impl Args {
    fn parse(raw: impl Iterator<Item = String>) -> Result<Args, String> {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = raw.peekable();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = it.next().ok_or_else(|| format!("--{name} needs a value"))?;
                flags.push((name.to_string(), value));
            } else {
                positional.push(a);
            }
        }
        Ok(Args { positional, flags })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn num(&self, name: &str, default: u64) -> Result<u64, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{name}: bad number {v}")),
        }
    }
}

fn strategy_config(name: &str) -> Result<KernelConfig, String> {
    let stock = KernelConfig::default();
    Ok(match name {
        "shootdown" => stock,
        "broadcast" => KernelConfig {
            strategy: Strategy::BroadcastIpi,
            ..stock
        },
        "naive" => KernelConfig {
            strategy: Strategy::NaiveFlush,
            ..stock
        },
        "no-stall" => KernelConfig {
            strategy: Strategy::NoStallSoftwareReload,
            tlb: TlbConfig {
                reload: ReloadPolicy::Software,
                writeback: WritebackPolicy::None,
                ..TlbConfig::multimax()
            },
            ..stock
        },
        "hw-remote" => KernelConfig {
            strategy: Strategy::HardwareRemoteInvalidate,
            tlb: TlbConfig {
                writeback: WritebackPolicy::Interlocked,
                ..TlbConfig::multimax()
            },
            ..stock
        },
        "timer-delayed" => KernelConfig {
            strategy: Strategy::TimerDelayed,
            tlb: TlbConfig {
                writeback: WritebackPolicy::Interlocked,
                ..TlbConfig::multimax()
            },
            ..stock
        },
        other => return Err(format!("unknown strategy: {other}")),
    })
}

/// Applies the `--fanout`, `--shards`, and `--batch` delivery flags to a
/// kernel configuration.
fn apply_delivery_flags(args: &Args, mut kconfig: KernelConfig) -> Result<KernelConfig, String> {
    let fanout = args.num("fanout", kconfig.fanout as u64)? as usize;
    if fanout == 0 {
        return Err("--fanout: degree must be at least 1".into());
    }
    kconfig.fanout = fanout;
    let shards = args.num("shards", kconfig.pmap_shards as u64)? as usize;
    if shards == 0 {
        return Err("--shards: need at least 1 shard".into());
    }
    kconfig.pmap_shards = shards;
    kconfig.batch_initiators = match args.get("batch") {
        None => kconfig.batch_initiators,
        Some("on") => true,
        Some("off") => false,
        Some(other) => return Err(format!("--batch: on or off, not {other}")),
    };
    Ok(kconfig)
}

/// Applies the `--residency on|off` flag (default off = the paper's
/// exact protocol). On, the initiator consults the per-processor
/// possibly-cached sets to skip shootdown targets that cannot hold the
/// stale translation, and tagged-TLB pmap retirement recycles the ASID
/// generation instead of walking entries.
fn apply_residency_flag(args: &Args, mut kconfig: KernelConfig) -> Result<KernelConfig, String> {
    kconfig.residency = match args.get("residency") {
        None => kconfig.residency,
        Some("on") => true,
        Some("off") => false,
        Some(other) => return Err(format!("--residency: on or off, not {other}")),
    };
    Ok(kconfig)
}

/// Applies the `--nodes`, `--node-cpus`, and `--remote-latency` topology
/// flags. With none of them present the configuration stays flat
/// (`topology: None`), which is bit-identical to the pre-topology
/// single-bus simulator.
fn apply_topology_flags(
    args: &Args,
    cpus: usize,
    mut kconfig: KernelConfig,
) -> Result<KernelConfig, String> {
    if args.get("nodes").is_none()
        && args.get("node-cpus").is_none()
        && args.get("remote-latency").is_none()
    {
        return Ok(kconfig);
    }
    let nodes = args.num("nodes", 1)? as usize;
    if nodes == 0 {
        return Err("--nodes: need at least 1 node".into());
    }
    let node_cpus = args.num("node-cpus", cpus.div_ceil(nodes).max(1) as u64)? as usize;
    if node_cpus == 0 {
        return Err("--node-cpus: need at least 1 processor per node".into());
    }
    if nodes > 1 && node_cpus * (nodes - 1) >= cpus {
        return Err(format!(
            "--nodes {nodes} x --node-cpus {node_cpus} leaves no processor \
             for the last node on a {cpus}-cpu machine"
        ));
    }
    let remote = Dur::micros(args.num("remote-latency", 4)?);
    kconfig.topology = Some(Topology::numa(nodes, node_cpus, remote));
    Ok(kconfig)
}

/// One line describing the machine topology, printed when a run is NUMA
/// so output is self-describing (flat runs stay silent: nothing changed).
fn topology_line(kconfig: &KernelConfig) -> Option<String> {
    let t = kconfig.topology?;
    if t.is_flat() {
        return None;
    }
    Some(format!(
        "topology: {} nodes x {} processors, {:.1} us interconnect crossing",
        t.nodes(),
        t.node_cpus(),
        t.remote_latency().as_micros_f64(),
    ))
}

/// One line describing the delivery configuration, printed whenever the
/// flags are live so runs are self-describing.
fn delivery_line(kconfig: &KernelConfig) -> String {
    format!(
        "delivery: fanout {}, {} pmap lock shard{}, initiator batching {}",
        kconfig.fanout,
        kconfig.pmap_shards,
        if kconfig.pmap_shards == 1 { "" } else { "s" },
        if kconfig.batch_initiators {
            "on"
        } else {
            "off"
        },
    )
}

fn base_config(cpus: usize, seed: u64, kconfig: KernelConfig) -> RunConfig {
    RunConfig {
        n_cpus: cpus,
        seed,
        costs: CostModel::multimax(),
        kconfig,
        device_period: Some(Dur::millis(20)),
        timer_flush_period: Dur::millis(5),
        limit: Time::from_micros(120_000_000),
    }
}

fn cmd_tester(args: &Args) -> Result<(), String> {
    let children = args.num("children", 7)? as u32;
    let cpus = args.num("cpus", 16)? as usize;
    let seed = args.num("seed", 1)?;
    let strategy = args.get("strategy").unwrap_or("shootdown");
    if children as usize >= cpus {
        return Err("tester needs children + 1 processors".into());
    }
    if strategy == "naive" {
        return Err(
            "the naive strategy never kills the children; see `cargo run \
                    --example quickstart` for its bounded demonstration"
                .into(),
        );
    }
    let kconfig = apply_topology_flags(
        args,
        cpus,
        apply_residency_flag(
            args,
            apply_delivery_flags(args, strategy_config(strategy)?)?,
        )?,
    )?;
    let config = base_config(cpus, seed, kconfig);
    let out = run_tester(
        &config,
        &TesterConfig {
            children,
            warmup_increments: 40,
        },
    );
    println!("consistency tester: {children} children, {cpus} processors, strategy {strategy}");
    println!("  {}", delivery_line(&config.kconfig));
    if let Some(line) = topology_line(&config.kconfig) {
        println!("  {line}");
        println!(
            "  remote traffic: {} of {} IPIs crossed nodes, {} remote lock references",
            out.report.stats.ipis_remote,
            out.report.stats.ipis_sent,
            out.report.stats.remote_lock_refs
        );
    }
    if out.report.stats.multicast_rounds > 0 || out.report.stats.initiators_batched > 0 {
        println!(
            "  multicast rounds: {}, initiators batched: {}",
            out.report.stats.multicast_rounds, out.report.stats.initiators_batched
        );
    }
    if let Some(line) = residency_line(&config.kconfig, &out.report.stats) {
        println!("  {line}");
    }
    match out.shootdown {
        Some(shot) => println!(
            "  consistency action: {} processors, {:.1} us ({} pages)",
            shot.processors,
            shot.elapsed.as_micros_f64(),
            shot.pages
        ),
        None => println!("  consistency maintained without a recorded shootdown event"),
    }
    println!("  counters frozen after reprotect: {}", !out.mismatch);
    println!("  children killed by their faults: {}", out.children_dead);
    println!("  {}", hot_paths(&out.report));
    println!("  oracle: {}", verdict(&out.report));
    Ok(())
}

/// One line on the residency filter's work, printed only when it is live.
fn residency_line(kconfig: &KernelConfig, stats: &machtlb::core::KernelStats) -> Option<String> {
    kconfig.residency.then(|| {
        format!(
            "residency filter: {} IPIs filtered, {} ASID generations recycled",
            stats.ipis_filtered, stats.asid_recycles
        )
    })
}

fn verdict(report: &AppReport) -> String {
    if report.consistent {
        "consistent".to_string()
    } else {
        format!("VIOLATED ({} stale uses)", report.violations)
    }
}

/// One line on the simulator's fast paths: how much work the coalescing
/// action queues and epoch-based flushes absorbed during the run.
fn hot_paths(report: &AppReport) -> String {
    format!(
        "hot paths: {} actions coalesced ({} queue overflows avoided), \
         {}/{} TLB flushes were epoch bumps",
        report.stats.actions_coalesced,
        report.stats.queue_overflows_avoided,
        report.tlb_epoch_flushes,
        report.tlb_flushes,
    )
}

fn cmd_app(args: &Args) -> Result<(), String> {
    let name = args
        .positional
        .get(1)
        .ok_or("app: which one? mach|parthenon|agora|camelot")?
        .as_str();
    let cpus = args.num("cpus", 16)? as usize;
    let seed = args.num("seed", 1)?;
    let lazy = match args.get("lazy").unwrap_or("on") {
        "on" => true,
        "off" => false,
        other => return Err(format!("--lazy: on or off, not {other}")),
    };
    let mut config = base_config(
        cpus,
        seed,
        apply_residency_flag(
            args,
            KernelConfig {
                lazy_eval: lazy,
                ..Default::default()
            },
        )?,
    );
    config.device_period = Some(Dur::millis(5));
    let report = match name {
        "mach" => run_machbuild(&config, &MachBuildConfig::default()),
        "parthenon" => run_parthenon(&config, &ParthenonConfig::default()),
        "agora" => run_agora(&config, &AgoraConfig::default()),
        "camelot" => run_camelot(&config, &CamelotConfig::default()),
        other => return Err(format!("unknown app: {other}")),
    };
    println!(
        "{}: {:.0} ms simulated, lazy evaluation {}",
        report.name,
        report.runtime.as_micros_f64() / 1000.0,
        if lazy { "on" } else { "off" }
    );
    let mut t = TextTable::new(vec![
        "pmap",
        "events",
        "time mean\u{b1}sd (us)",
        "median",
        "overhead %",
    ]);
    for (kind, records) in [
        ("kernel", &report.kernel_initiators),
        ("user", &report.user_initiators),
    ] {
        let s = AppReport::elapsed_summary(records);
        t.add_row(vec![
            kind.into(),
            records.len().to_string(),
            s.as_ref().map_or("-".into(), |s| s.mean_pm_std()),
            s.map_or("-".into(), |s| format!("{:.0}", s.median)),
            format!("{:.2}", report.overhead_percent(records)),
        ]);
    }
    println!("{t}");
    if let Some(s) = report.responder_summary() {
        println!(
            "responders: {} events, mean {:.0} us",
            report.responders.len(),
            s.mean
        );
    }
    println!(
        "{}",
        counters_table(&[
            ("actions coalesced", report.stats.actions_coalesced),
            (
                "queue overflows avoided",
                report.stats.queue_overflows_avoided
            ),
            ("TLB flushes (total)", report.tlb_flushes),
            ("TLB flushes as epoch bumps", report.tlb_epoch_flushes),
            ("TLB misses", report.tlb_misses),
            ("IPIs sent", report.stats.ipis_sent),
            ("IPI watchdog retries", report.stats.ipi_retries),
        ])
    );
    if let Some(line) = residency_line(&config.kconfig, &report.stats) {
        println!("{line}");
    }
    println!("{}", bus_table(&report.bus));
    println!("oracle: {}", verdict(&report));
    Ok(())
}

/// The interconnect split: one row per bus transaction kind (IPIs travel
/// the interrupt fabric, not the memory bus, so they appear in the kernel
/// counters above rather than here).
fn bus_table(bus: &machtlb::sim::BusStats) -> TextTable {
    let mut t = TextTable::new(vec!["bus op", "transactions", "held (us)", "queued (us)"]);
    for op in BusOp::ALL {
        let row = bus.of(op);
        t.add_row(vec![
            op.name().into(),
            row.transactions.to_string(),
            format!("{:.0}", row.held.as_micros_f64()),
            format!("{:.0}", row.queued.as_micros_f64()),
        ]);
    }
    t
}

fn cmd_fig2(args: &Args) -> Result<(), String> {
    let cpus = args.num("cpus", 16)? as usize;
    let max_k = args.num("max-k", (cpus - 1).min(15) as u64)? as u32;
    let runs = args.num("runs", 5)?;
    println!("basic shootdown cost, k = 1..={max_k} on {cpus} processors, {runs} runs each");
    let mut pts = Vec::new();
    for k in 1..=max_k {
        let mut samples = Vec::new();
        for seed in 0..runs {
            let config = base_config(cpus, 3000 + seed, KernelConfig::default());
            let out = run_tester(
                &config,
                &TesterConfig {
                    children: k,
                    warmup_increments: 40,
                },
            );
            if out.mismatch || !out.report.consistent {
                return Err(format!("k={k} seed={seed}: inconsistency!"));
            }
            samples.push(out.shootdown.expect("shootdown").elapsed.as_micros_f64());
        }
        let s = Summary::of(&samples).expect("non-empty");
        println!("  k={k:<3} {:>7.1} \u{b1} {:>5.1} us", s.mean, s.std);
        if k <= 12 {
            pts.push((f64::from(k), s.mean));
        }
    }
    if let Some(fit) = linear_fit(&pts) {
        println!(
            "fit (k<=12): {:.0} us + {:.0} us/processor (paper: 430 + 55)",
            fit.intercept, fit.slope
        );
    }
    Ok(())
}

fn cmd_scaling(args: &Args) -> Result<(), String> {
    let upto = args.num("upto", 128)? as usize;
    let base_kconfig =
        apply_residency_flag(args, apply_delivery_flags(args, KernelConfig::default())?)?;
    let mut n = 16usize;
    println!("machine-wide shootdown cost vs machine size (scalable interconnect):");
    println!("  {}", delivery_line(&base_kconfig));
    while n <= upto {
        // Topology defaults derive from the machine size, so resolve the
        // flags at each point on the curve (--node-cpus tracks n/nodes).
        let kconfig = apply_topology_flags(args, n, base_kconfig.clone())?;
        if n == 16 {
            if let Some(line) = topology_line(&kconfig) {
                println!("  {line} (resolved per machine size)");
            }
        }
        let mut costs = CostModel::multimax();
        if n > 16 {
            costs.bus_occupancy = costs.bus_occupancy.mul_f64(16.0 / n as f64);
        }
        let config = RunConfig {
            n_cpus: n,
            seed: 7,
            costs,
            kconfig: kconfig.clone(),
            device_period: None,
            timer_flush_period: Dur::millis(5),
            limit: Time::from_micros(120_000_000),
        };
        let k = (n - 1) as u32;
        let out = run_tester(
            &config,
            &TesterConfig {
                children: k,
                warmup_increments: 20,
            },
        );
        if out.mismatch || !out.report.consistent {
            return Err(format!("n={n}: inconsistency!"));
        }
        println!(
            "  {n:>4} processors: {:>8.0} us  (paper line: {:>6.0})",
            out.shootdown.expect("shootdown").elapsed.as_micros_f64(),
            430.0 + 55.0 * f64::from(k)
        );
        println!("       {}", hot_paths(&out.report));
        n *= 2;
    }
    Ok(())
}

/// Runs a workload with the flight recorder on, writes the Chrome
/// trace-event JSON, and prints the per-phase latency table.
fn cmd_trace(args: &Args) -> Result<(), String> {
    let workload = args.get("workload").unwrap_or("machbuild");
    let strategy = args.get("strategy").unwrap_or("shootdown");
    let cpus = args.num("cpus", 16)? as usize;
    let seed = args.num("seed", 1)?;
    let out_path = args.get("out").unwrap_or("machtlb-trace.json").to_string();
    let kconfig = apply_topology_flags(
        args,
        cpus,
        apply_residency_flag(
            args,
            apply_delivery_flags(
                args,
                KernelConfig {
                    trace_shootdowns: true,
                    ..strategy_config(strategy)?
                },
            )?,
        )?,
    )?;
    let mut config = base_config(cpus, seed, kconfig);
    config.device_period = Some(Dur::millis(5));
    let report = match workload {
        "mach" | "machbuild" => run_machbuild(&config, &MachBuildConfig::default()),
        "parthenon" => run_parthenon(&config, &ParthenonConfig::default()),
        "agora" => run_agora(&config, &AgoraConfig::default()),
        "camelot" => run_camelot(&config, &CamelotConfig::default()),
        "tester" => {
            let children = (cpus - 1).min(7) as u32;
            run_tester(
                &config,
                &TesterConfig {
                    children,
                    warmup_increments: 40,
                },
            )
            .report
        }
        other => return Err(format!("unknown workload: {other}")),
    };
    let events = &report.trace;
    check_monotone_per_cpu(events).map_err(|e| format!("trace not monotone: {e}"))?;
    let validated = validate_spans(events).map_err(|e| format!("span validation failed: {e}"))?;
    let json = chrome_trace_json(events, report.n_cpus);
    validate_json_shape(&json).map_err(|e| format!("exporter produced bad JSON: {e}"))?;
    std::fs::write(&out_path, &json).map_err(|e| format!("write {out_path}: {e}"))?;
    let spans = assemble_spans(events);
    println!(
        "{workload} under {strategy}: {} trace events across {} shootdown spans ({validated} validated)",
        events.len(),
        spans.len()
    );
    println!("{}", delivery_line(&config.kconfig));
    if let Some(line) = topology_line(&config.kconfig) {
        println!("{line}");
    }
    println!("wrote {out_path} — open it at https://ui.perfetto.dev or chrome://tracing");
    // On a NUMA machine the table carries a node column, attributing
    // each slice to the node it ran on; flat runs keep the plain table.
    match config.kconfig.topology.filter(|t| !t.is_flat()) {
        Some(topo) => {
            let mut t = TextTable::new(vec![
                "phase", "node", "slices", "p10 (us)", "median", "p90", "mean",
            ]);
            for (phase, node, samples) in phase_latencies_by_node(events, topo) {
                let s = Summary::of(&samples).expect("empty rows are omitted");
                t.add_row(vec![
                    phase.name().into(),
                    node.to_string(),
                    samples.len().to_string(),
                    format!("{:.1}", s.p10),
                    format!("{:.1}", s.median),
                    format!("{:.1}", s.p90),
                    format!("{:.1}", s.mean),
                ]);
            }
            println!("{t}");
        }
        None => {
            let mut t =
                TextTable::new(vec!["phase", "slices", "p10 (us)", "median", "p90", "mean"]);
            for (phase, samples) in phase_latencies(events) {
                let s = Summary::of(&samples).expect("phase_latencies omits empty phases");
                t.add_row(vec![
                    phase.name().into(),
                    samples.len().to_string(),
                    format!("{:.1}", s.p10),
                    format!("{:.1}", s.median),
                    format!("{:.1}", s.p90),
                    format!("{:.1}", s.mean),
                ]);
            }
            println!("{t}");
        }
    }
    // The fail-stop recovery path, when the run exercised it: how long
    // eviction detection, the rejoin fence, and the rejoin itself took.
    let recovery = recovery_latencies(events);
    if !recovery.is_empty() {
        let mut rt = TextTable::new(vec!["recovery", "events", "p10 (us)", "median", "p90"]);
        for (name, samples) in recovery {
            let s = Summary::of(&samples).expect("recovery_latencies omits empty rows");
            rt.add_row(vec![
                name.into(),
                samples.len().to_string(),
                format!("{:.1}", s.p10),
                format!("{:.1}", s.median),
                format!("{:.1}", s.p90),
            ]);
        }
        println!("{rt}");
    }
    let totals: Vec<machtlb::sim::Dur> = spans
        .iter()
        .filter_map(|sp| {
            let begin = sp.slices.iter().map(|s| s.begin).min()?;
            let end = sp.slices.iter().map(|s| s.end).max()?;
            Some(end.duration_since(begin))
        })
        .collect();
    let h = Histogram::of(&totals);
    if h.count() > 0 {
        println!("whole-span latency distribution ({} spans):", h.count());
        print!("{}", h.render(40));
    }
    println!("oracle: {}", verdict(&report));
    Ok(())
}

/// Runs the page-migration storm, printing the per-node traffic split —
/// the workload that makes topology placement visible.
fn cmd_storm(args: &Args) -> Result<(), String> {
    let cpus = args.num("cpus", 16)? as usize;
    let seed = args.num("seed", 1)?;
    let cross = match args.get("cross").unwrap_or("off") {
        "on" => true,
        "off" => false,
        other => return Err(format!("--cross: on or off, not {other}")),
    };
    let storm = MigrationStormConfig {
        workers_per_node: args.num("workers", 2)? as usize,
        pages_per_worker: args.num("pages", 4)?,
        migrations_per_worker: args.num("migrations", 8)?,
        cross_node: cross,
    };
    let kconfig = apply_topology_flags(
        args,
        cpus,
        apply_residency_flag(args, KernelConfig::default())?,
    )?;
    // `--cross on` targets `(node + 1) % nodes`, which on a single-node
    // (or flat) machine silently wraps back to the same node and measures
    // node-local traffic while claiming cross-node. Refuse instead.
    let nodes = kconfig.topology.map_or(1, |t| t.nodes());
    if cross && nodes <= 1 {
        return Err(format!(
            "--cross on needs at least 2 nodes (got {nodes}): cross-node \
             migration would wrap back to the same node; pass --nodes 2 \
             or more"
        ));
    }
    let mut config = base_config(cpus, seed, kconfig);
    config.device_period = None;
    let out = run_migration_storm(&config, &storm);
    let r = &out.report;
    println!(
        "migration storm: {} workers/node x {} migrations, {} traffic, {cpus} processors",
        storm.workers_per_node,
        storm.migrations_per_worker,
        if cross { "cross-node" } else { "node-local" },
    );
    if let Some(line) = topology_line(&config.kconfig) {
        println!("{line}");
    }
    println!(
        "{:.1} ms simulated, {} pages migrated by {} workers",
        r.runtime.as_micros_f64() / 1000.0,
        out.migrations,
        out.workers_done
    );
    println!(
        "{}",
        counters_table(&[
            ("IPIs sent", r.stats.ipis_sent),
            ("IPIs crossing nodes", r.stats.ipis_remote),
            ("pmap lock refs crossing nodes", r.stats.remote_lock_refs),
            ("user-pmap shootdowns", r.stats.shootdowns_user),
            ("TLB flushes", r.tlb_flushes),
        ])
    );
    if let Some(line) = residency_line(&config.kconfig, &r.stats) {
        println!("{line}");
    }
    let mut t = TextTable::new(vec![
        "node",
        "IPIs out",
        "remote IPIs",
        "lock refs",
        "remote refs",
        "pages in",
    ]);
    for (node, c) in r.node_stats.iter().enumerate() {
        t.add_row(vec![
            node.to_string(),
            c.ipis_sent.to_string(),
            c.ipis_remote.to_string(),
            c.lock_refs.to_string(),
            c.remote_lock_refs.to_string(),
            c.page_migrations_in.to_string(),
        ]);
    }
    println!("{t}");
    println!("oracle: {}", verdict(r));
    Ok(())
}

/// Holds every `BENCH_<name>.json` under `--current` against the file of
/// the same name under `--baseline`, inside a relative noise envelope on
/// each headline number. Baseline files with no current counterpart are
/// reported (the bench stopped emitting); current files with no baseline
/// pass (the trajectory growing).
fn cmd_bench_check(args: &Args) -> Result<(), String> {
    let baseline_dir = args
        .get("baseline")
        .ok_or("bench-check needs --baseline DIR")?;
    let current_dir = args.get("current").unwrap_or(".");
    let tolerance = args.num("tolerance", 30)? as f64 / 100.0;
    let mut names: Vec<String> = std::fs::read_dir(baseline_dir)
        .map_err(|e| format!("read {baseline_dir}: {e}"))?
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        .collect();
    names.sort();
    if names.is_empty() {
        return Err(format!("no BENCH_*.json baselines under {baseline_dir}"));
    }
    let mut bad = Vec::new();
    let mut checked = 0usize;
    for name in &names {
        let base_text = std::fs::read_to_string(format!("{baseline_dir}/{name}"))
            .map_err(|e| format!("read {baseline_dir}/{name}: {e}"))?;
        let baseline = parse_report(&base_text).map_err(|e| format!("{name} (baseline): {e}"))?;
        let cur_path = format!("{current_dir}/{name}");
        let Ok(cur_text) = std::fs::read_to_string(&cur_path) else {
            bad.push(format!("{name}: no current result at {cur_path}"));
            continue;
        };
        let current = parse_report(&cur_text).map_err(|e| format!("{name} (current): {e}"))?;
        let failures = compare_reports(&baseline, &current, tolerance);
        println!(
            "  {name}: {} metrics vs baseline, {} outside the envelope",
            baseline.metrics.len(),
            failures.len()
        );
        if !failures.is_empty() {
            // The per-metric diff, so a red run says exactly which
            // numbers moved and by how much without rerunning anything.
            let mut t = TextTable::new(vec![
                "metric",
                "baseline (us)",
                "current (us)",
                "ratio",
                "verdict",
            ]);
            for d in diff_reports(&baseline, &current, tolerance) {
                t.add_row(vec![
                    d.name.clone(),
                    format!("{:.1}", d.baseline_us),
                    d.current_us.map_or("gone".into(), |c| format!("{c:.1}")),
                    d.ratio().map_or("n/a".into(), |r| format!("{r:.3}")),
                    if d.within { "ok" } else { "OUTSIDE" }.into(),
                ]);
            }
            println!("{t}");
        }
        checked += baseline.metrics.len();
        bad.extend(failures);
    }
    if !bad.is_empty() {
        return Err(format!(
            "bench envelope (±{:.0}%) violated:\n  {}",
            tolerance * 100.0,
            bad.join("\n  ")
        ));
    }
    println!(
        "bench envelope green: {checked} metrics across {} benches within ±{:.0}%",
        names.len(),
        tolerance * 100.0
    );
    Ok(())
}

/// Sweeps the chaos catalog across seeds, prints (and optionally writes)
/// the survival table, and fails — with a nonzero exit — if any outcome
/// lands on the wrong side of the tolerable envelope: a tolerable plan
/// caught fatal, or a beyond-envelope plan passing silently.
fn cmd_chaos(args: &Args) -> Result<(), String> {
    let cpus = args.num("cpus", 8)? as usize;
    let n_seeds = args.num("seeds", 3)?;
    let rounds = args.num("rounds", 3)?;
    if cpus < 3 {
        return Err("chaos needs at least 3 processors".into());
    }
    let seeds: Vec<u64> = (1..=n_seeds).collect();
    let plans = plan_catalog(cpus);
    println!(
        "chaos: {} plans x {} seeds on {cpus} processors, {rounds} shootdown rounds each",
        plans.len(),
        seeds.len()
    );
    if let Some(line) = topology_line(&apply_topology_flags(args, cpus, KernelConfig::default())?) {
        println!("{line}");
    }
    let mut outcomes = Vec::new();
    for plan in plans {
        for &seed in &seeds {
            let mut cfg = ChaosConfig::new(cpus, seed, Some(plan.clone()));
            cfg.rounds = rounds;
            // Bus serialization stretches campaign time roughly linearly
            // in the processor count; scale both bounds so the 32–128
            // processor matrices actually finish (mirrors `run_soak`).
            cfg.max_steps = 5_000_000 + (cpus as u64) * 500_000;
            cfg.limit = Time::from_micros(200_000 + (cpus as u64) * 4_000);
            cfg.kconfig = apply_topology_flags(args, cpus, cfg.kconfig.clone())?;
            outcomes.push(run_chaos(&cfg));
        }
    }
    let mut t = TextTable::new(vec![
        "plan",
        "envelope",
        "cpus",
        "seed",
        "survival",
        "violations",
        "retries",
        "degraded",
        "recovered",
        "faults",
        "end (ms)",
    ]);
    for o in &outcomes {
        let recovered = o.stats.evictions + o.stats.fenced_rejoins + o.stats.locks_stolen;
        t.add_row(vec![
            o.plan.into(),
            if o.tolerable { "tolerable" } else { "beyond" }.into(),
            o.n_cpus.to_string(),
            o.seed.to_string(),
            o.survival.name().into(),
            o.violations.to_string(),
            o.stats.ipi_retries.to_string(),
            o.stats.degraded_flushes.to_string(),
            recovered.to_string(),
            o.faults.map_or(0, |f| f.total()).to_string(),
            format!("{:.1}", o.end.as_millis_f64()),
        ]);
    }
    let table = t.to_string();
    println!("{table}");
    if let Some(path) = args.get("out") {
        std::fs::write(path, &table).map_err(|e| format!("write {path}: {e}"))?;
        println!("wrote {path}");
    }
    if let Some(o) = outcomes.iter().find(|o| !o.completed) {
        if let Some(r) = &o.report {
            println!(
                "diagnosis of the first incomplete run ({} seed {}):",
                o.plan, o.seed
            );
            println!("{r}");
        }
    }
    let bad = check_envelope(&outcomes);
    // The machine-readable artifact is written in both verdicts, so CI
    // can archive the red run it is about to fail on.
    if let Some(path) = args.get("json") {
        let json = survival_json(&outcomes, &bad);
        std::fs::write(path, &json).map_err(|e| format!("write {path}: {e}"))?;
        println!("wrote {path}");
    }
    if !bad.is_empty() {
        return Err(format!("chaos envelope violated:\n  {}", bad.join("\n  ")));
    }
    let fatal = outcomes
        .iter()
        .filter(|o| o.survival == Survival::DetectedFatal)
        .count();
    println!(
        "envelope: two-sided check green — {} runs, {fatal} beyond-envelope runs caught",
        outcomes.len()
    );
    Ok(())
}

/// Runs the multi-fault soak harness: rotating fault shapes cycled
/// through the membership fence with the consistency checker on, failing
/// — with a nonzero exit — unless every cycle completed with zero
/// violations, zero unrecovered give-ups, and zero exhausted retries.
/// Parses a wall-clock duration flag: a bare number is seconds, and the
/// suffixes `ms`, `s`, `m`, `h` select the unit (`500ms`, `30s`, `5m`,
/// `1h`).
fn parse_duration(v: &str) -> Result<std::time::Duration, String> {
    let bad = || format!("bad duration {v} (want e.g. 500ms, 30s, 5m, 1h)");
    let (digits, unit) = match v.find(|c: char| !c.is_ascii_digit()) {
        Some(i) => v.split_at(i),
        None => (v, "s"),
    };
    let n: u64 = digits.parse().map_err(|_| bad())?;
    let millis = match unit {
        "ms" => n,
        "s" => n * 1_000,
        "m" => n * 60_000,
        "h" => n * 3_600_000,
        _ => return Err(bad()),
    };
    Ok(std::time::Duration::from_millis(millis))
}

fn cmd_soak(args: &Args) -> Result<(), String> {
    let smoke = matches!(args.get("smoke"), Some("on"));
    let mut cpus = args.num("cpus", 32)? as usize;
    let mut cycles = args.num("cycles", 5)?;
    let seed = args.num("seed", 7)?;
    let mut rounds = args.num("rounds", 3)?;
    let duration = args.get("duration").map(parse_duration).transpose()?;
    if smoke {
        // The CI-budget preset: one full shape rotation on the smallest
        // machine in the 32–128 acceptance band, two rounds a cycle.
        cpus = cpus.min(32);
        cycles = cycles.min(5);
        rounds = rounds.min(2);
    }
    if cpus < 4 {
        return Err("soak needs at least 4 processors".into());
    }
    let mut cfg = SoakConfig::new(cpus, cycles, seed);
    cfg.rounds = rounds;
    cfg.inject_exhaustion = matches!(args.get("inject-exhaustion"), Some("on"));
    cfg.duration = duration;
    let span = match duration {
        Some(d) => format!("{d:?} of fault cycles"),
        None => format!("{cycles} fault cycles"),
    };
    println!(
        "soak: {span} on {cpus} processors, {rounds} rounds each{}",
        if cfg.inject_exhaustion {
            " + one injected-exhaustion cycle"
        } else {
            ""
        }
    );
    let o = run_soak(&cfg);
    let mut t = TextTable::new(vec![
        "cycle",
        "plan",
        "seed",
        "survival",
        "completed",
        "violations",
        "unrecovered",
    ]);
    for c in &o.log {
        t.add_row(vec![
            c.cycle.to_string(),
            c.plan.into(),
            c.seed.to_string(),
            c.survival.name().into(),
            c.completed.to_string(),
            c.violations.to_string(),
            c.unrecovered.to_string(),
        ]);
    }
    let table = t.to_string();
    println!("{table}");
    println!(
        "recovery: evictions={} fenced_rejoins={} self_fences={} late_acks_rejected={} \
         ops_retried={} retries_exhausted={} locks_stolen={}",
        o.evictions,
        o.fenced_rejoins,
        o.self_fences,
        o.late_acks_rejected,
        o.ops_retried,
        o.retries_exhausted,
        o.locks_stolen
    );
    if let Some(path) = args.get("out") {
        std::fs::write(path, &table).map_err(|e| format!("write {path}: {e}"))?;
        println!("wrote {path}");
    }
    // The machine-readable artifact is written in both verdicts, so CI
    // can archive the red run it is about to fail on.
    if let Some(path) = args.get("json") {
        let json = soak_json(&o);
        std::fs::write(path, &json).map_err(|e| format!("write {path}: {e}"))?;
        println!("wrote {path}");
    }
    if !o.survived {
        return Err(format!(
            "soak failed: {}/{} cycles completed, {} violations, {} unrecovered \
             give-ups, {} exhausted retries",
            o.completed_cycles, o.cycles, o.violations, o.unrecovered, o.retries_exhausted
        ));
    }
    println!(
        "soak survived: {} cycles, {} pmap operations, zero violations, \
         zero unrecovered give-ups",
        o.completed_cycles, o.ops
    );
    Ok(())
}

fn cmd_fuzz(args: &Args) -> Result<(), String> {
    let smoke = matches!(args.get("smoke"), Some("on"));
    let seed = args.num("seed", 1)?;
    let mut budget = args.num("budget", 200)?;
    let mut cpus = args.num("cpus", 0)? as usize;
    let mut rounds = args.num("rounds", 3)?;
    let do_shrink = !matches!(args.get("shrink"), Some("off"));
    let max_replays = args.num("max-replays", 500)?;
    if smoke {
        // The CI-budget preset: a handful of schedules on a small
        // machine, still seed-deterministic.
        budget = budget.min(8);
        if cpus == 0 {
            cpus = 8;
        }
        rounds = rounds.min(2);
    }
    if budget == 0 {
        return Err("--budget: need at least one schedule".into());
    }
    if cpus != 0 && cpus < 6 {
        return Err("fuzz needs at least 6 processors (or --cpus 0 to rotate)".into());
    }
    let mut cfg = FuzzConfig::new(seed, budget);
    cfg.n_cpus = cpus;
    cfg.rounds = rounds;
    println!(
        "fuzz: {budget} schedules from seed {seed} on {} processors, {rounds} rounds each",
        if cpus == 0 {
            "32/48/64".to_string()
        } else {
            cpus.to_string()
        }
    );
    let r = run_fuzz(&cfg);
    let mut t = TextTable::new(vec![
        "run", "cpus", "seed", "events", "victims", "survival", "red",
    ]);
    for run in &r.runs {
        // The full table would drown a 200-schedule campaign: keep every
        // red and a sample of the greens.
        if !run.red && r.runs.len() > 24 && run.index % 25 != 0 {
            continue;
        }
        t.add_row(vec![
            run.index.to_string(),
            run.n_cpus.to_string(),
            run.machine_seed.to_string(),
            run.events.to_string(),
            run.victims.to_string(),
            run.survival.name().into(),
            run.red.to_string(),
        ]);
    }
    println!("{t}");
    let c = &r.coverage;
    println!(
        "coverage: {} schedules, {} events ({} wrongful stalls); victims \
         relay={} holder={} initiator={} rejoiner={}; survivals \
         tolerated={} degraded={} detected-fatal={}",
        c.schedules,
        c.events,
        c.wrongful_stalls,
        c.relay_victims,
        c.holder_victims,
        c.initiator_victims,
        c.rejoiner_victims,
        c.survivals[0],
        c.survivals[1],
        c.survivals[2],
    );
    if let Some(path) = args.get("json") {
        std::fs::write(path, fuzz_json(&r)).map_err(|e| format!("write {path}: {e}"))?;
        println!("wrote {path}");
    }
    if r.reds == 0 {
        println!("fuzz green: {budget} schedules survived with recovery enabled");
        return Ok(());
    }
    // A finding: minimize the first caught schedule and leave a repro
    // behind before failing the exit code.
    let first = r.first_red.as_ref().expect("reds > 0 implies a first red");
    let repro_path = args.get("repro").unwrap_or("repro.json");
    let repro = if do_shrink {
        let sr = shrink(first, max_replays)?;
        println!(
            "shrink: {} events -> {} in {} replays",
            sr.original_events, sr.minimal_events, sr.replays
        );
        for step in &sr.steps {
            println!("  - {step}");
        }
        sr.schedule
    } else {
        first.clone()
    };
    std::fs::write(repro_path, schedule_json(&repro))
        .map_err(|e| format!("write {repro_path}: {e}"))?;
    println!("wrote {repro_path}");
    println!("replay with: machtlb replay --schedule {repro_path}");
    Err(format!(
        "fuzz found {} caught schedule(s) out of {budget}; first minimized to {} event(s)",
        r.reds,
        repro.events.len()
    ))
}

fn cmd_replay(args: &Args) -> Result<(), String> {
    let path = args.get("schedule").ok_or("replay needs --schedule FILE")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let s = parse_schedule(&text)?;
    println!(
        "replay: {} on {} processors ({} node(s), fanout {}), {} event(s), machine seed {}",
        path,
        s.n_cpus,
        s.nodes,
        s.fanout,
        s.events.len(),
        s.seed
    );
    let o = run_schedule(&s);
    println!(
        "survival={} completed={} violations={} evictions={} fenced_rejoins={} \
         activation_stalls={} steps={} end={:?}",
        o.survival.name(),
        o.completed,
        o.violations,
        o.stats.evictions,
        o.stats.fenced_rejoins,
        o.stats.activation_stalls,
        o.steps,
        o.end
    );
    if let Some(rep) = &o.report {
        println!("{rep}");
    }
    if machtlb::core::is_red(&o) {
        return Err(format!(
            "replay caught: {} ({} violations, completed={})",
            o.survival.name(),
            o.violations,
            o.completed
        ));
    }
    println!("replay survived (schedule is green under recovery)");
    Ok(())
}

fn main() -> ExitCode {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match args.positional.first().map(String::as_str) {
        Some("tester") => cmd_tester(&args),
        Some("app") => cmd_app(&args),
        Some("fig2") => cmd_fig2(&args),
        Some("scaling") => cmd_scaling(&args),
        Some("trace") => cmd_trace(&args),
        Some("storm") => cmd_storm(&args),
        Some("bench-check") => cmd_bench_check(&args),
        Some("chaos") => cmd_chaos(&args),
        Some("soak") => cmd_soak(&args),
        Some("fuzz") => cmd_fuzz(&args),
        Some("replay") => cmd_replay(&args),
        Some("help") | None => {
            println!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command: {other}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
