//! Per-processor state: identity, clock, interrupt latch, and frame stack.

use std::collections::BTreeSet;
use std::fmt;

use crate::event::{BlockOn, WaitChannel};
use crate::intr::{IntrMask, Vector};
use crate::process::Process;
use crate::time::{Dur, Time};

/// A processor identifier, `0..n_cpus`.
///
/// # Examples
///
/// ```
/// use machtlb_sim::CpuId;
///
/// let boot = CpuId::new(0);
/// assert_eq!(boot.index(), 0);
/// assert_eq!(boot.to_string(), "cpu0");
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CpuId(u32);

impl CpuId {
    /// Creates a processor id.
    pub const fn new(index: u32) -> CpuId {
        CpuId(index)
    }

    /// The id as a `usize` index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu{}", self.0)
    }
}

impl From<u32> for CpuId {
    fn from(index: u32) -> CpuId {
        CpuId(index)
    }
}

/// Whether and how a processor is parked.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub(crate) enum ParkState {
    /// Eligible for scheduling.
    Running,
    /// Sleeping until an event arrives, or until the deadline if present.
    Parked { until: Option<Time> },
    /// Event-blocked in place of a stepped spin loop: the top frame's last
    /// live check failed at `anchor` and would re-check every `on.interval`.
    Blocked {
        /// Instant of the last live failed check (the step that blocked).
        anchor: Time,
        /// What the process waits on, and the per-iteration cost.
        on: BlockOn,
        /// The earliest check-lattice instant a notify or delivery so far
        /// can be observed at; `None` while nothing has arrived.
        wake_at: Option<Time>,
        /// Stack index of the blocked frame (spawn deliveries may push
        /// frames above it while it sleeps).
        frame: usize,
    },
}

/// A read-only view of a processor's park state, for diagnostics (the
/// deadlock/livelock reports need to say *what* a stuck processor waits
/// on without exposing the scheduler's internal bookkeeping).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ParkView {
    /// Eligible for scheduling.
    Running,
    /// Sleeping until an event arrives, or until the deadline if present.
    Parked {
        /// The park deadline, if any.
        until: Option<Time>,
    },
    /// Event-blocked in place of a stepped spin loop.
    Blocked {
        /// Instant of the last live failed check.
        anchor: Time,
        /// The channels the process waits on.
        chans: [Option<WaitChannel>; 2],
        /// The earliest wake instant scheduled so far, if any.
        wake_at: Option<Time>,
    },
}

/// Cumulative per-processor statistics.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct CpuStats {
    /// Process steps executed.
    pub steps: u64,
    /// Interrupts dispatched.
    pub interrupts: u64,
    /// Total time charged to steps (busy time).
    pub busy: Dur,
}

/// A stack frame: a process plus the interrupt mask to restore when it
/// completes (present for interrupt handler frames).
pub(crate) struct Frame<S, P> {
    pub(crate) proc: Box<dyn Process<S, P>>,
    pub(crate) restore_mask: Option<IntrMask>,
    /// Spin iterations skipped while this frame was event-blocked, handed
    /// to the process (as [`Ctx::woken_spins`](crate::Ctx::woken_spins))
    /// on its first step after the wakeup.
    pub(crate) wake_skipped: u64,
}

impl<S, P> fmt::Debug for Frame<S, P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Frame")
            .field("proc", &self.proc.label())
            .field("restore_mask", &self.restore_mask)
            .finish()
    }
}

/// One simulated processor.
///
/// `S` is the machine's shared memory image; `P` is this processor's
/// hardware payload (e.g. its TLB), accessible to processes through
/// [`Ctx::payload`](crate::Ctx::payload) and to the embedding program via
/// [`CpuCore::payload`].
pub struct CpuCore<S, P> {
    id: CpuId,
    pub(crate) clock: Time,
    pub(crate) mask: IntrMask,
    pub(crate) pending: BTreeSet<Vector>,
    pub(crate) stack: Vec<Frame<S, P>>,
    pub(crate) park: ParkState,
    pub(crate) stats: CpuStats,
    pub(crate) payload: P,
}

impl<S, P> CpuCore<S, P> {
    pub(crate) fn new(id: CpuId, payload: P) -> CpuCore<S, P> {
        CpuCore {
            id,
            clock: Time::ZERO,
            mask: IntrMask::OPEN,
            pending: BTreeSet::new(),
            stack: Vec::new(),
            park: ParkState::Parked { until: None },
            stats: CpuStats::default(),
            payload,
        }
    }

    /// This processor's id.
    pub fn id(&self) -> CpuId {
        self.id
    }

    /// This processor's local clock.
    pub fn clock(&self) -> Time {
        self.clock
    }

    /// The current interrupt mask.
    pub fn mask(&self) -> IntrMask {
        self.mask
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> CpuStats {
        self.stats
    }

    /// The hardware payload (e.g. the TLB).
    pub fn payload(&self) -> &P {
        &self.payload
    }

    /// Mutable access to the hardware payload.
    pub fn payload_mut(&mut self) -> &mut P {
        &mut self.payload
    }

    /// Number of frames on the execution stack.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Labels of the stacked processes, innermost last (for diagnostics).
    pub fn stack_labels(&self) -> Vec<&'static str> {
        self.stack.iter().map(|f| f.proc.label()).collect()
    }

    /// True if the processor has no frames and nothing pending: it is idle.
    pub fn is_idle(&self) -> bool {
        self.stack.is_empty() && self.pending.is_empty()
    }

    /// True if an interrupt is latched but not yet dispatched.
    pub fn has_pending(&self, vector: Vector) -> bool {
        self.pending.contains(&vector)
    }

    /// Every interrupt latched but not yet dispatched, lowest vector first.
    pub fn pending_vectors(&self) -> Vec<Vector> {
        self.pending.iter().copied().collect()
    }

    /// A diagnostic view of the park state (see [`ParkView`]).
    pub fn park_view(&self) -> ParkView {
        match self.park {
            ParkState::Running => ParkView::Running,
            ParkState::Parked { until } => ParkView::Parked { until },
            ParkState::Blocked {
                anchor,
                on,
                wake_at,
                ..
            } => ParkView::Blocked {
                anchor,
                chans: on.chans,
                wake_at,
            },
        }
    }

    /// The lowest-numbered pending vector deliverable under the current
    /// mask, given the vector's class as reported by `class_of`.
    pub(crate) fn deliverable(
        &self,
        class_of: impl Fn(Vector) -> Option<crate::intr::IntrClass>,
    ) -> Option<Vector> {
        self.pending
            .iter()
            .copied()
            .find(|&v| class_of(v).is_some_and(|c| !self.mask.blocks(c)))
    }
}

impl<S, P: fmt::Debug> fmt::Debug for CpuCore<S, P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CpuCore")
            .field("id", &self.id)
            .field("clock", &self.clock)
            .field("mask", &self.mask)
            .field("pending", &self.pending)
            .field("stack", &self.stack_labels())
            .field("park", &self.park)
            .field("payload", &self.payload)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_id_round_trips() {
        let id = CpuId::from(7u32);
        assert_eq!(id.index(), 7);
        assert_eq!(id, CpuId::new(7));
    }

    #[test]
    fn new_core_starts_idle_and_parked() {
        let core: CpuCore<(), ()> = CpuCore::new(CpuId::new(0), ());
        assert!(core.is_idle());
        assert_eq!(core.park, ParkState::Parked { until: None });
        assert_eq!(core.clock(), Time::ZERO);
        assert_eq!(core.depth(), 0);
    }
}
