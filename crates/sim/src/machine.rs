//! The machine: processors, shared memory image, bus, interrupt controller,
//! and the deterministic scheduler.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::fmt;
use std::rc::Rc;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::bus::{BusOp, BusStats};
use crate::cost::CostModel;
use crate::cpu::{CpuCore, CpuId, Frame, ParkState};
use crate::event::{skipped_iterations, wake_for_delivery, wake_for_notify, WaitChannel};
use crate::fault::{FaultInjector, FaultKind, FaultPlan, FaultRecord, FaultStats};
use crate::intr::{FanoutTree, IntrClass, IntrMask, Vector};
use crate::process::{Command, Ctx, Process};
use crate::time::{Dur, Time};
use crate::topology::{BusFabric, FabricStats, Topology};

/// Static configuration of a simulated machine.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Number of processors. The paper's evaluation machine has 16; the
    /// Section 8 extrapolation runs hundreds.
    pub n_cpus: usize,
    /// Seed for the machine's deterministic random number generator. Equal
    /// seeds and equal programs produce identical executions.
    pub seed: u64,
    /// The cost model charged for primitive actions.
    pub costs: CostModel,
    /// The node layout. [`Topology::flat`] reproduces the paper's single
    /// shared bus bit-identically; a multi-node topology gives every node
    /// its own bus and routes cross-node traffic over the interconnect.
    pub topology: Topology,
}

impl MachineConfig {
    /// A 16-processor Multimax-like machine, the paper's platform.
    pub fn multimax16(seed: u64) -> MachineConfig {
        MachineConfig {
            n_cpus: 16,
            seed,
            costs: CostModel::multimax(),
            topology: Topology::flat(16),
        }
    }
}

impl Default for MachineConfig {
    fn default() -> MachineConfig {
        MachineConfig::multimax16(0)
    }
}

/// Why [`Machine::run`] returned.
///
/// A `StepLimit` return usually means a runaway spin; call
/// [`Machine::frames_diagnostic`] for the still-running frames behind it.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RunStatus {
    /// No processor is runnable and no event is scheduled: the machine has
    /// nothing left to do (every processor is idle or parked indefinitely).
    Quiescent,
    /// The next event lies beyond the time limit. Also reported when the
    /// only processors left are event-blocked with no wake in sight: the
    /// equivalent stepped spinners would burn simulated time to the limit.
    TimeLimit,
    /// The step budget was exhausted (a guard against runaway spins).
    StepLimit,
}

/// Summary of a [`Machine::run`] call.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RunReport {
    /// Why the run stopped.
    pub status: RunStatus,
    /// Process steps plus interrupt dispatches executed during this call.
    pub steps: u64,
    /// The latest event time processed.
    pub frontier: Time,
}

enum QueuedKind<S, P> {
    Interrupt(Vector),
    /// One hop of a tree-fanout multicast: latches like an interrupt at the
    /// target, and (unless the target is halted) forwards the descriptor to
    /// the target's children in the [`FanoutTree`] laid over the group.
    Multicast {
        vector: Vector,
        group: Rc<MulticastGroup>,
        slot: usize,
    },
    Spawn(Box<dyn Process<S, P>>),
    /// A fail-stop halt of the target processor (from the fault plan).
    Halt,
    /// Revival of a previously halted processor (from the fault plan).
    Revive,
}

/// The immutable payload of a posted multicast descriptor, shared by every
/// in-flight hop of the same round.
struct MulticastGroup {
    targets: Vec<CpuId>,
    degree: usize,
}

/// Counters for the tree-fanout multicast fabric.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct MulticastStats {
    /// Multicast descriptors posted by processors.
    pub posts: u64,
    /// Controller-to-controller hop sends scheduled (the poster's root
    /// sends plus every relay forward).
    pub forwards: u64,
    /// Hops that landed on a halted relay, pruning its whole subtree.
    pub pruned: u64,
}

struct QueuedDelivery<S, P> {
    at: Time,
    seq: u64,
    target: CpuId,
    kind: QueuedKind<S, P>,
}

impl<S, P> PartialEq for QueuedDelivery<S, P> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<S, P> Eq for QueuedDelivery<S, P> {}
impl<S, P> PartialOrd for QueuedDelivery<S, P> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<S, P> Ord for QueuedDelivery<S, P> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

type HandlerFactory<S, P> = Box<dyn Fn(&mut S, CpuId, Time) -> Box<dyn Process<S, P>>>;

struct HandlerEntry<S, P> {
    class: IntrClass,
    handler_mask: IntrMask,
    factory: HandlerFactory<S, P>,
}

/// A simulated shared-memory multiprocessor.
///
/// `S` is the shared memory image (the kernel's data structures); `P` is the
/// per-processor hardware payload (e.g. the TLB). The scheduler always steps
/// the processor with the smallest local clock, so every shared-state access
/// happens at a single, globally ordered instant and runs are deterministic
/// for a given seed.
///
/// # Examples
///
/// ```
/// use machtlb_sim::{Ctx, Dur, Machine, MachineConfig, Process, Step, Time};
///
/// #[derive(Debug)]
/// struct Incr(u32);
/// impl Process<u32, ()> for Incr {
///     fn step(&mut self, ctx: &mut Ctx<'_, u32, ()>) -> Step {
///         *ctx.shared += self.0;
///         Step::Done(Dur::micros(1))
///     }
/// }
///
/// let mut m = Machine::new(MachineConfig::multimax16(42), 0u32, |_| ());
/// m.spawn_at(machtlb_sim::CpuId::new(3), Time::ZERO, Box::new(Incr(5)));
/// let report = m.run(Time::from_micros(1_000));
/// assert_eq!(*m.shared(), 5);
/// assert_eq!(report.status, machtlb_sim::RunStatus::Quiescent);
/// ```
pub struct Machine<S, P> {
    cpus: Vec<CpuCore<S, P>>,
    shared: S,
    fabric: BusFabric,
    costs: CostModel,
    rng: SmallRng,
    handlers: BTreeMap<Vector, HandlerEntry<S, P>>,
    deliveries: BinaryHeap<Reverse<QueuedDelivery<S, P>>>,
    faults: Option<FaultInjector>,
    /// Per-processor fail-stop flags: a halted processor is never stepped,
    /// woken, or notified until (and unless) a revive delivery clears it.
    halted: Vec<bool>,
    multicast_stats: MulticastStats,
    seq: u64,
    total_steps: u64,
    frontier: Time,
}

impl<S, P> Machine<S, P> {
    /// Builds a machine with `config.n_cpus` processors, the given shared
    /// memory image, and a per-processor payload produced by `payload`.
    ///
    /// # Panics
    ///
    /// Panics if `config.n_cpus` is zero.
    pub fn new(
        config: MachineConfig,
        shared: S,
        mut payload: impl FnMut(CpuId) -> P,
    ) -> Machine<S, P> {
        assert!(config.n_cpus > 0, "a machine needs at least one processor");
        let cpus = (0..config.n_cpus)
            .map(|i| {
                let id = CpuId::new(i as u32);
                CpuCore::new(id, payload(id))
            })
            .collect();
        Machine {
            cpus,
            shared,
            fabric: BusFabric::new(
                config.topology,
                config.costs.bus_occupancy,
                config.costs.interconnect_occupancy,
            ),
            costs: config.costs,
            rng: SmallRng::seed_from_u64(config.seed),
            handlers: BTreeMap::new(),
            deliveries: BinaryHeap::new(),
            faults: None,
            halted: vec![false; config.n_cpus],
            multicast_stats: MulticastStats::default(),
            seq: 0,
            total_steps: 0,
            frontier: Time::ZERO,
        }
    }

    /// Registers the handler process spawned when `vector` is dispatched.
    /// Dispatch blocks all interrupts for the handler's duration and
    /// restores the previous mask when it completes, as most hardware does
    /// by default (Section 4). Use [`Machine::register_handler_with_mask`]
    /// to model hardware that leaves some classes deliverable during the
    /// handler (the Section 9 high-priority software interrupt).
    ///
    /// The factory receives the dispatching processor's clock at the
    /// vectoring instant, so handlers can timestamp the delivery itself
    /// (instrumentation needs the moment the interrupt landed, not the
    /// moment the handler body first runs after the entry cost).
    pub fn register_handler(
        &mut self,
        vector: Vector,
        class: IntrClass,
        factory: impl Fn(&mut S, CpuId, Time) -> Box<dyn Process<S, P>> + 'static,
    ) {
        self.register_handler_with_mask(vector, class, IntrMask::ALL_BLOCKED, factory);
    }

    /// Like [`Machine::register_handler`], but dispatch applies
    /// `handler_mask` instead of blocking everything, so e.g. a device
    /// handler can stay preemptible by shootdown IPIs.
    pub fn register_handler_with_mask(
        &mut self,
        vector: Vector,
        class: IntrClass,
        handler_mask: IntrMask,
        factory: impl Fn(&mut S, CpuId, Time) -> Box<dyn Process<S, P>> + 'static,
    ) {
        self.handlers.insert(
            vector,
            HandlerEntry {
                class,
                handler_mask,
                factory: Box::new(factory),
            },
        );
    }

    /// The interrupt class `vector` was registered with, if any.
    pub fn class_of(&self, vector: Vector) -> Option<IntrClass> {
        self.handlers.get(&vector).map(|h| h.class)
    }

    /// Schedules `proc` to start on `target` at `at`. Spawned processes are
    /// pushed on top of the target's frame stack when delivered; use this to
    /// install base processes (dispatchers, idle loops) on otherwise idle
    /// processors.
    ///
    /// # Panics
    ///
    /// Panics if `target` is out of range.
    pub fn spawn_at(&mut self, target: CpuId, at: Time, proc: Box<dyn Process<S, P>>) {
        assert!(
            target.index() < self.cpus.len(),
            "spawn_at: bad target {target}"
        );
        self.push_delivery(at, target, QueuedKind::Spawn(proc));
    }

    /// Latches `vector` pending on `target` at `at` (an externally generated
    /// interrupt, e.g. a device or timer).
    ///
    /// # Panics
    ///
    /// Panics if `target` is out of range.
    pub fn schedule_interrupt(&mut self, target: CpuId, vector: Vector, at: Time) {
        assert!(
            target.index() < self.cpus.len(),
            "schedule_interrupt: bad target {target}"
        );
        self.push_delivery(at, target, QueuedKind::Interrupt(vector));
    }

    /// Enqueues an IPI delivery, routed through the fault injector when one
    /// is installed (which may drop, delay, or duplicate it).
    fn inject_ipi(&mut self, target: CpuId, vector: Vector, at: Time) {
        match self.faults.as_mut() {
            None => self.push_delivery(at, target, QueuedKind::Interrupt(vector)),
            Some(inj) => {
                let sends = inj.filter_ipi(target, vector, at);
                for (tgt, when) in sends {
                    self.push_delivery(when, tgt, QueuedKind::Interrupt(vector));
                }
            }
        }
    }

    fn push_delivery(&mut self, at: Time, target: CpuId, kind: QueuedKind<S, P>) {
        let seq = self.seq;
        self.seq += 1;
        self.deliveries.push(Reverse(QueuedDelivery {
            at,
            seq,
            target,
            kind,
        }));
    }

    /// Runs until quiescence or until the next event would lie past `limit`.
    pub fn run(&mut self, limit: Time) -> RunReport {
        self.run_bounded(limit, u64::MAX)
    }

    /// Runs like [`Machine::run`] but also stops after `max_steps` scheduler
    /// steps, guarding tests against runaway spin loops.
    pub fn run_bounded(&mut self, limit: Time, max_steps: u64) -> RunReport {
        let mut steps = 0u64;
        let status =
            loop {
                if steps >= max_steps {
                    break RunStatus::StepLimit;
                }
                let Some(t) = self.next_event_time() else {
                    // An event-blocked processor with nothing left to wake it
                    // is the stepped mode's eternal spinner: time, not work,
                    // is what ran out. A halted processor contributes nothing:
                    // the machine is quiescent once everything alive is done.
                    if self.cpus.iter().enumerate().any(|(i, c)| {
                        !self.halted[i] && matches!(c.park, ParkState::Blocked { .. })
                    }) {
                        break RunStatus::TimeLimit;
                    }
                    break RunStatus::Quiescent;
                };
                if t > limit {
                    break RunStatus::TimeLimit;
                }
                self.frontier = self.frontier.max(t);
                self.apply_due_deliveries(t);
                steps += self.wake_expired_parks(t);
                let Some(i) = self.min_clock_runnable() else {
                    // Deliveries were all in the future relative to a parked
                    // processor that did not wake; recompute.
                    continue;
                };
                // A delivery latched at `t` can set a blocked processor's wake
                // instant between `t` and the earliest runnable clock. Stepping
                // the runnable processor first would run the machine out of
                // global time order — its bus traffic would land ahead of the
                // woken processor's — so recompute and handle the wake first.
                if self
                    .next_event_time()
                    .is_some_and(|t2| t2 < self.cpus[i].clock)
                {
                    continue;
                }
                self.step_cpu(i);
                steps += 1;
                self.total_steps += 1;
            };
        RunReport {
            status,
            steps,
            frontier: self.frontier,
        }
    }

    /// The earliest instant at which anything can happen: a runnable
    /// processor's clock, a park deadline, or a queued delivery.
    fn next_event_time(&self) -> Option<Time> {
        let mut next: Option<Time> = None;
        let mut consider = |t: Time| next = Some(next.map_or(t, |n: Time| n.min(t)));
        for (i, cpu) in self.cpus.iter().enumerate() {
            // A halted processor has no next event of its own; its revival
            // (if any) sits in the delivery heap.
            if self.halted[i] {
                continue;
            }
            match cpu.park {
                ParkState::Running => consider(cpu.clock),
                ParkState::Parked { until: Some(d) } => consider(d.max(cpu.clock)),
                ParkState::Parked { until: None } => {}
                // A computed wake instant is always >= the blocked clock.
                ParkState::Blocked {
                    wake_at: Some(w), ..
                } => consider(w),
                ParkState::Blocked { wake_at: None, .. } => {}
            }
        }
        if let Some(Reverse(d)) = self.deliveries.peek() {
            consider(d.at);
        }
        next
    }

    fn apply_due_deliveries(&mut self, t: Time) {
        while let Some(Reverse(head)) = self.deliveries.peek() {
            if head.at > t {
                break;
            }
            let Reverse(d) = self.deliveries.pop().expect("peeked delivery vanished");
            let QueuedDelivery {
                at, target, kind, ..
            } = d;
            // A multicast hop forwards to its children before latching; a
            // halted relay forwards nothing, pruning its subtree.
            let kind = match kind {
                QueuedKind::Multicast {
                    vector,
                    group,
                    slot,
                } => {
                    self.forward_multicast(&group, slot, vector, at, target);
                    QueuedKind::Interrupt(vector)
                }
                k => k,
            };
            let cpu = &mut self.cpus[target.index()];
            match kind {
                QueuedKind::Interrupt(v) => {
                    cpu.pending.insert(v);
                }
                QueuedKind::Multicast { .. } => unreachable!("multicast hop latches as interrupt"),
                QueuedKind::Spawn(proc) => {
                    cpu.stack.push(Frame {
                        proc,
                        restore_mask: None,
                        wake_skipped: 0,
                    });
                }
                QueuedKind::Halt => {
                    // Fail-stop: freeze the processor exactly as it stands
                    // (park state, stacked frames, latched interrupts).
                    self.halted[target.index()] = true;
                    if let Some(inj) = self.faults.as_mut() {
                        inj.record(at, target, FaultKind::Halted);
                    }
                    continue;
                }
                QueuedKind::Revive => {
                    // Resume dispatching at the revival instant. The wake is
                    // deliberately spurious — whatever the processor was
                    // blocked on gets a live re-check, so no notification
                    // missed during the dead window is ever load-bearing.
                    self.halted[target.index()] = false;
                    cpu.park = ParkState::Running;
                    cpu.clock = cpu.clock.max(at);
                    if let Some(inj) = self.faults.as_mut() {
                        inj.record(at, target, FaultKind::Revived);
                    }
                    continue;
                }
            }
            // A delivery to a halted processor latches (the wire does not
            // know the target is dead) but wakes nothing.
            if self.halted[target.index()] {
                continue;
            }
            // Any arrival wakes a parked processor (wakeups may be spurious).
            match &mut cpu.park {
                ParkState::Parked { .. } => {
                    cpu.park = ParkState::Running;
                    cpu.clock = cpu.clock.max(at);
                }
                // A blocked spinner is preempted at its first check at or
                // after the latch — exactly where the stepped loop's next
                // scheduler step would dispatch the interrupt or run the
                // spawned frame instead of the failed check.
                ParkState::Blocked {
                    anchor,
                    on,
                    wake_at,
                    ..
                } => {
                    let cand = wake_for_delivery(*anchor, on.interval, at);
                    *wake_at = Some(wake_at.map_or(cand, |w| w.min(cand)));
                }
                ParkState::Running => {}
            }
        }
    }

    /// Schedules the child hops of the multicast hop that just landed on
    /// `relay` at `at`. The j-th forward leaves the relay's controller after
    /// `(j+1) · ipi_send` and lands `ipi_latency` later; each hop is routed
    /// through the fault injector like any other IPI. A halted relay still
    /// latches its own interrupt (the wire does not know) but forwards
    /// nothing — the subtree below it is lost until software repairs it.
    fn forward_multicast(
        &mut self,
        group: &Rc<MulticastGroup>,
        slot: usize,
        vector: Vector,
        at: Time,
        relay: CpuId,
    ) {
        if self.halted[relay.index()] {
            self.multicast_stats.pruned += 1;
            return;
        }
        let tree = FanoutTree::new(group.degree, group.targets.len());
        let topology = self.fabric.topology();
        for (j, child) in tree.children(slot).enumerate() {
            // A cross-node forward pays the interconnect's delivery latency
            // on top of the controller hop (zero on a flat topology).
            let when = at
                + self.costs.ipi_send * (j as u64 + 1)
                + self.costs.ipi_latency
                + topology.ipi_extra(relay, group.targets[child]);
            self.multicast_stats.forwards += 1;
            self.send_multicast_hop(group.clone(), child, vector, when);
        }
    }

    /// Enqueues one multicast hop delivery, routed through the fault
    /// injector when one is installed.
    fn send_multicast_hop(
        &mut self,
        group: Rc<MulticastGroup>,
        slot: usize,
        vector: Vector,
        at: Time,
    ) {
        let target = group.targets[slot];
        match self.faults.as_mut() {
            None => self.push_delivery(
                at,
                target,
                QueuedKind::Multicast {
                    vector,
                    group,
                    slot,
                },
            ),
            Some(inj) => {
                let sends = inj.filter_ipi(target, vector, at);
                for (tgt, when) in sends {
                    self.push_delivery(
                        when,
                        tgt,
                        QueuedKind::Multicast {
                            vector,
                            group: group.clone(),
                            slot,
                        },
                    );
                }
            }
        }
    }

    /// Returns the number of analytically backfilled spin iterations, which
    /// count as scheduler steps for both the lifetime total and the running
    /// [`RunReport::steps`] / step-budget accounting.
    fn wake_expired_parks(&mut self, t: Time) -> u64 {
        let mut backfilled = 0u64;
        for (i, cpu) in self.cpus.iter_mut().enumerate() {
            if self.halted[i] {
                continue;
            }
            match cpu.park {
                ParkState::Parked { until: Some(d) } if d.max(cpu.clock) <= t => {
                    cpu.park = ParkState::Running;
                    cpu.clock = cpu.clock.max(d);
                }
                ParkState::Blocked {
                    anchor,
                    on,
                    wake_at: Some(w),
                    frame,
                } if w <= t => {
                    // Charge the spin iterations the stepped loop would
                    // have executed between the parking check and the wake
                    // instant, then resume for the live re-check (or the
                    // interrupt dispatch that preempts it).
                    let skipped = skipped_iterations(anchor, on.interval, w);
                    cpu.stats.steps += skipped;
                    cpu.stats.busy += on.interval * skipped;
                    cpu.stack[frame].wake_skipped = skipped;
                    backfilled += skipped;
                    cpu.clock = w;
                    cpu.park = ParkState::Running;
                }
                _ => {}
            }
        }
        self.total_steps += backfilled;
        backfilled
    }

    /// Schedules wakeups for processors blocked on `chan` after a write at
    /// instant `now` by processor `writer`.
    fn apply_notify(&mut self, chan: WaitChannel, now: Time, writer: usize) {
        for (idx, cpu) in self.cpus.iter_mut().enumerate() {
            // A halted listener misses the notification; if it revives, the
            // revival itself is a spurious wake and live re-check.
            if self.halted[idx] {
                continue;
            }
            let ParkState::Blocked {
                anchor,
                on,
                wake_at,
                ..
            } = &mut cpu.park
            else {
                continue;
            };
            if !on.listens_to(chan) {
                continue;
            }
            let cand = wake_for_notify(*anchor, on.interval, now, writer < idx);
            *wake_at = Some(wake_at.map_or(cand, |w| w.min(cand)));
        }
    }

    fn min_clock_runnable(&self) -> Option<usize> {
        self.cpus
            .iter()
            .enumerate()
            .filter(|(i, c)| !self.halted[*i] && c.park == ParkState::Running)
            .min_by_key(|(i, c)| (c.clock, *i))
            .map(|(i, _)| i)
    }

    /// Executes one scheduler step on processor `i`: either dispatches a
    /// deliverable pending interrupt or steps the top process frame.
    fn step_cpu(&mut self, i: usize) {
        let Machine {
            cpus,
            shared,
            fabric,
            costs,
            rng,
            handlers,
            faults,
            halted,
            ..
        } = self;
        let n_cpus = cpus.len();
        let cpu = &mut cpus[i];
        let cpu_id = cpu.id();
        let node = fabric.topology().node_of(cpu_id);

        // Interrupt dispatch takes priority over the current frame.
        if let Some(v) = cpu.deliverable(|v| handlers.get(&v).map(|h| h.class)) {
            cpu.pending.remove(&v);
            let prev_mask = cpu.mask;
            cpu.mask = handlers
                .get(&v)
                .map(|h| h.handler_mask)
                .unwrap_or(IntrMask::ALL_BLOCKED);
            // Vectoring plus saving register state through the write-through
            // cache: each saved word is a bus write. With many processors
            // interrupted at once these writes queue — the Figure 2 knee.
            let mut cost = costs.intr_entry;
            for _ in 0..costs.state_save_words {
                // State saves go to the dispatching processor's own node.
                cost += fabric.access_local(cpu.clock, node, BusOp::Write, costs.bus_write_latency);
            }
            let handler = handlers
                .get(&v)
                .expect("deliverable vector lost its handler");
            if let Some(inj) = faults.as_mut() {
                cost += inj.dispatch_extra(cpu_id, v, handler.class, cpu.clock);
            }
            let proc = (handler.factory)(shared, cpu_id, cpu.clock);
            cpu.stack.push(Frame {
                proc,
                restore_mask: Some(prev_mask),
                wake_skipped: 0,
            });
            cpu.clock += cost;
            cpu.stats.interrupts += 1;
            cpu.stats.busy += cost;
            return;
        }

        let Some(mut frame) = cpu.stack.pop() else {
            // Nothing to run: idle until something arrives.
            cpu.park = ParkState::Parked { until: None };
            return;
        };

        let mut commands: Vec<Command<S, P>> = Vec::new();
        let now = cpu.clock;
        let step = {
            let mut ctx = Ctx {
                now,
                cpu_id,
                shared,
                payload: &mut cpu.payload,
                mask: &mut cpu.mask,
                pending: &cpu.pending,
                fabric,
                node,
                costs,
                rng,
                commands: &mut commands,
                n_cpus,
                halted: &*halted,
                woken_spins: std::mem::take(&mut frame.wake_skipped),
            };
            frame.proc.step(&mut ctx)
        };

        cpu.stats.steps += 1;
        match step {
            crate::Step::Run(d) => {
                cpu.clock += d;
                cpu.stats.busy += d;
                cpu.stack.push(frame);
            }
            crate::Step::Done(d) => {
                let mut cost = d;
                if let Some(m) = frame.restore_mask {
                    cpu.mask = m;
                    cost += costs.intr_exit;
                }
                cpu.clock += cost;
                cpu.stats.busy += cost;
            }
            crate::Step::Park(until) => {
                cpu.stack.push(frame);
                cpu.park = ParkState::Parked { until };
            }
            crate::Step::Block(on) => {
                // The blocking step is the spin loop's live failed check:
                // charged exactly like `Run(on.interval)`, then parked on
                // the channels with the check instant as lattice anchor.
                assert!(
                    on.interval > Dur::ZERO,
                    "a blocking process must name its per-iteration cost"
                );
                cpu.clock += on.interval;
                cpu.stats.busy += on.interval;
                cpu.stack.push(frame);
                cpu.park = ParkState::Blocked {
                    anchor: now,
                    on,
                    // A deadline seeds the wake instant up front: the
                    // stepped loop's first check at or after the expiry.
                    wake_at: on.deadline.map(|d| wake_for_delivery(now, on.interval, d)),
                    frame: cpu.stack.len() - 1,
                };
            }
        }

        // Apply staged commands. Traps push onto this processor's stack so
        // they run before the trapping process resumes.
        let topology = self.fabric.topology();
        let sender = CpuId::new(i as u32);
        for cmd in commands {
            match cmd {
                Command::SendIpi { target, vector, at } => {
                    let when = at + topology.ipi_extra(sender, target);
                    self.inject_ipi(target, vector, when);
                }
                Command::BroadcastIpi { vector, at } => {
                    for t in 0..n_cpus {
                        if t == i {
                            continue;
                        }
                        let target = CpuId::new(t as u32);
                        let when = at + topology.ipi_extra(sender, target);
                        self.inject_ipi(target, vector, when);
                    }
                }
                Command::MulticastIpi {
                    targets,
                    vector,
                    degree,
                    at,
                } => {
                    self.multicast_stats.posts += 1;
                    let tree = FanoutTree::new(degree, targets.len());
                    let group = Rc::new(MulticastGroup { targets, degree });
                    for (j, slot) in tree.root_children().enumerate() {
                        let when = at
                            + self.costs.ipi_send * (j as u64 + 1)
                            + self.costs.ipi_latency
                            + topology.ipi_extra(sender, group.targets[slot]);
                        self.multicast_stats.forwards += 1;
                        self.send_multicast_hop(group.clone(), slot, vector, when);
                    }
                }
                Command::Spawn { target, at, proc } => {
                    let seq = self.seq;
                    self.seq += 1;
                    self.deliveries.push(Reverse(QueuedDelivery {
                        at,
                        seq,
                        target,
                        kind: QueuedKind::Spawn(proc),
                    }));
                }
                Command::Trap { proc } => {
                    self.cpus[i].stack.push(Frame {
                        proc,
                        restore_mask: None,
                        wake_skipped: 0,
                    });
                }
                Command::Notify { chan } => {
                    self.apply_notify(chan, now, i);
                }
            }
        }
    }

    /// The shared memory image.
    pub fn shared(&self) -> &S {
        &self.shared
    }

    /// Mutable access to the shared memory image (between runs).
    pub fn shared_mut(&mut self) -> &mut S {
        &mut self.shared
    }

    /// Consumes the machine, returning the shared memory image.
    pub fn into_shared(self) -> S {
        self.shared
    }

    /// The processor with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn cpu(&self, id: CpuId) -> &CpuCore<S, P> {
        &self.cpus[id.index()]
    }

    /// Mutable access to a processor (between runs).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn cpu_mut(&mut self, id: CpuId) -> &mut CpuCore<S, P> {
        &mut self.cpus[id.index()]
    }

    /// Iterates over all processors.
    pub fn cpus(&self) -> impl Iterator<Item = &CpuCore<S, P>> {
        self.cpus.iter()
    }

    /// Number of processors.
    pub fn n_cpus(&self) -> usize {
        self.cpus.len()
    }

    /// Cumulative bus statistics, aggregated over every node bus and the
    /// interconnect (on a flat topology this is exactly the single bus's
    /// statistics). Use [`Machine::fabric_stats`] for the per-node split.
    pub fn bus_stats(&self) -> BusStats {
        self.fabric.stats().total
    }

    /// Cumulative fabric statistics: the aggregate plus the per-node and
    /// interconnect splits.
    pub fn fabric_stats(&self) -> FabricStats {
        self.fabric.stats()
    }

    /// The machine's node layout.
    pub fn topology(&self) -> Topology {
        self.fabric.topology()
    }

    /// Counters of the tree-fanout multicast fabric (all zero when nothing
    /// ever posted a multicast).
    pub fn multicast_stats(&self) -> MulticastStats {
        self.multicast_stats
    }

    /// Installs a deterministic fault plan. Subsequent IPI sends of the
    /// plan's vector and interrupt dispatches are routed through the
    /// injector; everything else is untouched. A halt or offline rule
    /// schedules its fail-stop instants as ordinary deliveries, so they
    /// replay bit-identically. Installing [`FaultPlan::none`] leaves the
    /// simulated timeline bit-identical to not installing a plan at all.
    ///
    /// # Panics
    ///
    /// Panics if a halt/offline rule names an out-of-range processor or an
    /// offline rule revives at or before its halt instant.
    pub fn install_fault_plan(&mut self, plan: FaultPlan) {
        for h in &plan.halts {
            assert!(h.cpu.index() < self.cpus.len(), "halt: bad cpu {}", h.cpu);
            self.push_delivery(h.at, h.cpu, QueuedKind::Halt);
        }
        for o in &plan.offlines {
            assert!(
                o.cpu.index() < self.cpus.len(),
                "offline: bad cpu {}",
                o.cpu
            );
            assert!(
                o.revive_at > o.at,
                "offline: revive_at must be after the halt instant"
            );
            self.push_delivery(o.at, o.cpu, QueuedKind::Halt);
            self.push_delivery(o.revive_at, o.cpu, QueuedKind::Revive);
        }
        self.faults = Some(FaultInjector::new(plan));
    }

    /// Whether `cpu` is currently halted by a fail-stop fault.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range.
    pub fn is_halted(&self, cpu: CpuId) -> bool {
        self.halted[cpu.index()]
    }

    /// Statistics of injected faults, if a plan is installed.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.faults.as_ref().map(FaultInjector::stats)
    }

    /// Every injected fault so far, in injection order (empty when no plan
    /// is installed).
    pub fn fault_events(&self) -> &[FaultRecord] {
        self.faults.as_ref().map_or(&[], FaultInjector::log)
    }

    /// The interrupts queued for delivery but not yet latched, as
    /// `(delivery instant, target, vector)` triples sorted by instant —
    /// the "which IPIs are in flight" line of a stall report.
    pub fn pending_interrupts(&self) -> Vec<(Time, CpuId, Vector)> {
        let mut out: Vec<(Time, CpuId, Vector)> = self
            .deliveries
            .iter()
            .filter_map(|Reverse(d)| match d.kind {
                QueuedKind::Interrupt(v) => Some((d.at, d.target, v)),
                QueuedKind::Multicast { vector, .. } => Some((d.at, d.target, vector)),
                QueuedKind::Spawn(_) | QueuedKind::Halt | QueuedKind::Revive => None,
            })
            .collect();
        out.sort_unstable_by_key(|&(at, cpu, v)| (at, cpu, v));
        out
    }

    /// The machine's deterministic random number generator (for seeding
    /// randomized schedules outside process steps).
    pub fn rng_mut(&mut self) -> &mut SmallRng {
        &mut self.rng
    }

    /// The latest event time processed so far.
    pub fn frontier(&self) -> Time {
        self.frontier
    }

    /// Total scheduler steps executed over the machine's lifetime.
    pub fn total_steps(&self) -> u64 {
        self.total_steps
    }

    /// Sum of busy time across processors (for overhead accounting).
    pub fn total_busy(&self) -> Dur {
        self.cpus.iter().map(|c| c.stats().busy).sum()
    }

    /// The processors that still have process frames, with the frame
    /// labels innermost-last — the raw material of
    /// [`Machine::frames_diagnostic`].
    pub fn running_frames(&self) -> Vec<(CpuId, Vec<&'static str>)> {
        self.cpus
            .iter()
            .filter(|c| c.depth() > 0)
            .map(|c| (c.id(), c.stack_labels()))
            .collect()
    }

    /// A one-line-per-processor description of every still-running frame
    /// stack, with each processor's clock and park state. Use it when a
    /// run returns [`RunStatus::StepLimit`] to see at a glance which
    /// processes were spinning the budget away.
    pub fn frames_diagnostic(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (i, cpu) in self.cpus.iter().enumerate() {
            if cpu.depth() == 0 {
                continue;
            }
            let state = if self.halted[i] {
                "HALTED"
            } else {
                match cpu.park {
                    ParkState::Running => "running",
                    ParkState::Parked { .. } => "parked",
                    ParkState::Blocked { .. } => "blocked",
                }
            };
            let _ = write!(out, "  {} at {} ({state}):", cpu.id(), cpu.clock());
            for label in cpu.stack_labels() {
                let _ = write!(out, " {label}");
            }
            out.push('\n');
        }
        if out.is_empty() {
            out.push_str("  (no process frames)\n");
        }
        out
    }
}

impl<S: fmt::Debug, P: fmt::Debug> fmt::Debug for Machine<S, P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Machine")
            .field("n_cpus", &self.cpus.len())
            .field("frontier", &self.frontier)
            .field("total_steps", &self.total_steps)
            .field("pending_deliveries", &self.deliveries.len())
            .finish_non_exhaustive()
    }
}
