//! Machine topology: processor nodes, per-node buses, and the
//! inter-node interconnect.
//!
//! The paper's Multimax is a single shared bus, and Section 8 warns that
//! shootdown cost scales with machine size partly *because* every
//! transaction crosses that one bus. Large machines of the class the
//! conclusion extrapolates to are multi-node: each node has its own
//! memory bus, and references to another node's memory cross an
//! interconnect with its own (higher) latency and its own contention.
//!
//! [`Topology`] describes the shape — N nodes of M processors — and
//! [`BusFabric`] routes transactions through it: node-local references
//! use the node's bus exactly as the flat model used the single bus,
//! while remote references first cross the interconnect and then queue
//! on the home node's bus. [`Topology::flat`] (one node, zero remote
//! latency) makes the fabric bit-identical to the single shared
//! [`Bus`]: every access takes the same local path with the same
//! occupancy, so clocks, statistics, and measurements replay exactly.

use crate::bus::{Bus, BusOp, BusStats};
use crate::cpu::CpuId;
use crate::time::{Dur, Time};

/// The machine's node layout: `nodes` nodes of `node_cpus` processors
/// each, with `remote_latency` added to every transaction that crosses
/// the interconnect.
///
/// Processors are assigned to nodes in index order: cpu `c` lives on
/// node `c / node_cpus`, with any surplus processors folding onto the
/// last node.
///
/// # Examples
///
/// ```
/// use machtlb_sim::{CpuId, Dur, Topology};
///
/// let t = Topology::numa(4, 16, Dur::micros(2));
/// assert_eq!(t.node_of(CpuId::new(0)), 0);
/// assert_eq!(t.node_of(CpuId::new(17)), 1);
/// assert_eq!(t.node_of(CpuId::new(63)), 3);
/// assert!(!t.is_flat());
/// assert!(Topology::flat(16).is_flat());
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Topology {
    nodes: usize,
    node_cpus: usize,
    remote_latency: Dur,
}

impl Topology {
    /// The pre-topology machine: one node holding all `n_cpus`
    /// processors, zero remote latency. Bit-identical to the single
    /// shared bus.
    pub fn flat(n_cpus: usize) -> Topology {
        Topology {
            nodes: 1,
            node_cpus: n_cpus.max(1),
            remote_latency: Dur::ZERO,
        }
    }

    /// A multi-node machine: `nodes` nodes of `node_cpus` processors,
    /// with `remote_latency` charged per interconnect crossing.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` or `node_cpus` is zero.
    pub fn numa(nodes: usize, node_cpus: usize, remote_latency: Dur) -> Topology {
        assert!(nodes >= 1, "a machine has at least one node");
        assert!(node_cpus >= 1, "a node has at least one processor");
        Topology {
            nodes,
            node_cpus,
            remote_latency,
        }
    }

    /// Number of nodes.
    pub fn nodes(self) -> usize {
        self.nodes
    }

    /// Processors per node (the last node absorbs any surplus).
    pub fn node_cpus(self) -> usize {
        self.node_cpus
    }

    /// Latency added to every interconnect crossing.
    pub fn remote_latency(self) -> Dur {
        self.remote_latency
    }

    /// Whether this is the single-node (pre-topology) machine.
    pub fn is_flat(self) -> bool {
        self.nodes == 1
    }

    /// The node `cpu` lives on.
    pub fn node_of(self, cpu: CpuId) -> usize {
        (cpu.index() / self.node_cpus).min(self.nodes - 1)
    }

    /// Whether two processors share a node.
    pub fn same_node(self, a: CpuId, b: CpuId) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// The extra delivery latency an IPI pays for crossing nodes: zero
    /// between same-node processors, `remote_latency` otherwise. Always
    /// zero on a flat machine.
    pub fn ipi_extra(self, from: CpuId, to: CpuId) -> Dur {
        if self.same_node(from, to) {
            Dur::ZERO
        } else {
            self.remote_latency
        }
    }

    /// Reorders `targets` so `origin`'s own node comes first, then the
    /// remaining nodes in rotation order, each node's targets ascending
    /// by processor index.
    ///
    /// A multicast tree laid over the reordered list puts same-node
    /// processors in the early slots, so the poster's first forwards —
    /// and the relays near the root — stay on the cheap local fabric.
    /// On a flat machine every target is on node 0, so the order is
    /// plain ascending: bit-identical to the pre-topology send order.
    pub fn order_node_first(self, origin: CpuId, targets: &mut [CpuId]) {
        let origin_node = self.node_of(origin);
        targets.sort_by_key(|&t| {
            let rotated = (self.node_of(t) + self.nodes - origin_node) % self.nodes;
            (rotated, t.index())
        });
    }
}

/// Per-fabric statistics: the aggregate over every bus, plus the
/// per-node and interconnect splits.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// The sum over every node bus and the interconnect — equal to the
    /// single bus's statistics on a flat machine.
    pub total: BusStats,
    /// One entry per node.
    pub per_node: Vec<BusStats>,
    /// The inter-node interconnect (all-zero on a flat machine).
    pub interconnect: BusStats,
}

fn merge(into: &mut BusStats, from: &BusStats) {
    into.transactions += from.transactions;
    into.queued += from.queued;
    into.held += from.held;
    for (row, other) in into.per_op.iter_mut().zip(&from.per_op) {
        row.transactions += other.transactions;
        row.queued += other.queued;
        row.held += other.held;
    }
}

/// The routed memory fabric: one [`Bus`] per node plus the inter-node
/// interconnect.
///
/// # Examples
///
/// A flat fabric is the single shared bus, transaction for transaction:
///
/// ```
/// use machtlb_sim::{Bus, BusFabric, BusOp, Dur, Time, Topology};
///
/// let mut bus = Bus::new(Dur::nanos(500));
/// let mut fabric = BusFabric::new(Topology::flat(4), Dur::nanos(500), Dur::nanos(500));
/// for _ in 0..3 {
///     let old = bus.access(Time::ZERO, BusOp::Write, Dur::ZERO);
///     let new = fabric.access(Time::ZERO, 0, 0, BusOp::Write, Dur::ZERO);
///     assert_eq!(old, new);
/// }
/// assert_eq!(fabric.stats().total, bus.stats());
/// ```
#[derive(Clone, Debug)]
pub struct BusFabric {
    topology: Topology,
    node_buses: Vec<Bus>,
    interconnect: Bus,
}

impl BusFabric {
    /// Builds the fabric: each node bus holds transactions for
    /// `node_occupancy`, the interconnect for `interconnect_occupancy`.
    pub fn new(topology: Topology, node_occupancy: Dur, interconnect_occupancy: Dur) -> BusFabric {
        BusFabric {
            topology,
            node_buses: (0..topology.nodes())
                .map(|_| Bus::new(node_occupancy))
                .collect(),
            interconnect: Bus::new(interconnect_occupancy),
        }
    }

    /// The fabric's topology.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// Issues a transaction from a processor on `from_node` against
    /// memory homed on `home_node`, returning the delay until it
    /// completes.
    ///
    /// A node-local reference (`from_node == home_node`, which is every
    /// reference on a flat machine) takes exactly the single-bus path on
    /// the node's own bus. A remote reference first crosses the
    /// interconnect — queueing against all other cross-node traffic and
    /// paying the topology's remote latency — and then queues on the
    /// home node's bus for the access itself.
    pub fn access(
        &mut self,
        now: Time,
        from_node: usize,
        home_node: usize,
        op: BusOp,
        latency: Dur,
    ) -> Dur {
        if from_node == home_node {
            return self.node_buses[home_node].access(now, op, latency);
        }
        let hop = self
            .interconnect
            .access(now, op, self.topology.remote_latency());
        hop + self.node_buses[home_node].access(now + hop, op, latency)
    }

    /// A node-local transaction on `node`'s bus (the common case:
    /// a processor referencing its own node's memory).
    pub fn access_local(&mut self, now: Time, node: usize, op: BusOp, latency: Dur) -> Dur {
        self.node_buses[node].access(now, op, latency)
    }

    /// Cumulative statistics: the aggregate plus per-node and
    /// interconnect splits.
    pub fn stats(&self) -> FabricStats {
        let per_node: Vec<BusStats> = self.node_buses.iter().map(Bus::stats).collect();
        let interconnect = self.interconnect.stats();
        let mut total = BusStats::default();
        for s in &per_node {
            merge(&mut total, s);
        }
        merge(&mut total, &interconnect);
        FabricStats {
            total,
            per_node,
            interconnect,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn flat_covers_every_cpu_with_one_node() {
        let t = Topology::flat(128);
        assert!(t.is_flat());
        for c in [0u32, 1, 63, 127] {
            assert_eq!(t.node_of(CpuId::new(c)), 0);
        }
        assert_eq!(t.ipi_extra(CpuId::new(0), CpuId::new(127)), Dur::ZERO);
    }

    #[test]
    fn surplus_cpus_fold_onto_the_last_node() {
        let t = Topology::numa(2, 4, Dur::micros(1));
        assert_eq!(t.node_of(CpuId::new(7)), 1);
        // Index 9 is past 2*4, but still lands on the last node.
        assert_eq!(t.node_of(CpuId::new(9)), 1);
    }

    #[test]
    fn ipi_extra_is_remote_latency_across_nodes() {
        let t = Topology::numa(2, 2, Dur::micros(3));
        assert_eq!(t.ipi_extra(CpuId::new(0), CpuId::new(1)), Dur::ZERO);
        assert_eq!(t.ipi_extra(CpuId::new(0), CpuId::new(2)), Dur::micros(3));
    }

    #[test]
    fn node_first_order_rotates_from_the_origin_node() {
        let t = Topology::numa(3, 2, Dur::micros(1));
        let mut targets: Vec<CpuId> = [0u32, 1, 2, 3, 4, 5].map(CpuId::new).to_vec();
        t.order_node_first(CpuId::new(2), &mut targets);
        let got: Vec<u32> = targets.iter().map(|c| c.index() as u32).collect();
        assert_eq!(got, vec![2, 3, 4, 5, 0, 1]);
    }

    #[test]
    fn node_first_order_on_flat_is_ascending() {
        let t = Topology::flat(8);
        let mut targets: Vec<CpuId> = [5u32, 1, 7, 3].map(CpuId::new).to_vec();
        t.order_node_first(CpuId::new(4), &mut targets);
        let got: Vec<u32> = targets.iter().map(|c| c.index() as u32).collect();
        assert_eq!(got, vec![1, 3, 5, 7]);
    }

    #[test]
    fn remote_access_pays_interconnect_and_home_bus() {
        let t = Topology::numa(2, 2, Dur::micros(2));
        let mut f = BusFabric::new(t, Dur::nanos(500), Dur::nanos(300));
        // Local on node 0: just the node bus.
        let local = f.access(Time::ZERO, 0, 0, BusOp::Read, Dur::nanos(900));
        assert_eq!(local, Dur::nanos(1400));
        // Remote to node 1: interconnect hold + remote latency, then the
        // (idle) home bus hold + memory latency.
        let remote = f.access(Time::ZERO, 0, 1, BusOp::Read, Dur::nanos(900));
        assert_eq!(remote, Dur::nanos(300 + 2_000 + 500 + 900));
        let s = f.stats();
        assert_eq!(s.interconnect.transactions, 1);
        assert_eq!(s.per_node[0].transactions, 1);
        assert_eq!(s.per_node[1].transactions, 1);
        assert_eq!(s.total.transactions, 3);
    }

    #[test]
    fn local_traffic_on_distinct_nodes_does_not_contend() {
        let t = Topology::numa(2, 2, Dur::micros(2));
        let mut f = BusFabric::new(t, Dur::nanos(500), Dur::nanos(300));
        // Two same-instant writes on different nodes: neither queues.
        let a = f.access_local(Time::ZERO, 0, BusOp::Write, Dur::ZERO);
        let b = f.access_local(Time::ZERO, 1, BusOp::Write, Dur::ZERO);
        assert_eq!(a, Dur::nanos(500));
        assert_eq!(b, Dur::nanos(500));
        assert_eq!(f.stats().total.queued, Dur::ZERO);
    }

    proptest! {
        /// The tentpole's equivalence obligation at the fabric level: a
        /// flat fabric replays any transaction sequence bit-identically
        /// to the raw shared bus — same delays, same statistics.
        #[test]
        fn flat_fabric_is_bit_identical_to_the_single_bus(
            occupancy_ns in 1u64..2_000,
            seq in proptest::collection::vec(
                (0u64..5_000, 0usize..3, 0u64..3_000), 1..200),
        ) {
            let mut bus = Bus::new(Dur::nanos(occupancy_ns));
            let mut fabric = BusFabric::new(
                Topology::flat(16),
                Dur::nanos(occupancy_ns),
                Dur::nanos(occupancy_ns),
            );
            let mut now = Time::ZERO;
            for (advance_ns, op_idx, latency_ns) in seq {
                now += Dur::nanos(advance_ns);
                let op = BusOp::ALL[op_idx];
                let latency = Dur::nanos(latency_ns);
                let old = bus.access(now, op, latency);
                let new = fabric.access(now, 0, 0, op, latency);
                prop_assert_eq!(old, new);
            }
            let s = fabric.stats();
            prop_assert_eq!(s.total, bus.stats());
            prop_assert_eq!(s.interconnect, BusStats::default());
        }
    }
}
