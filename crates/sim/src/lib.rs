//! # machtlb-sim — deterministic multiprocessor simulator
//!
//! The machine substrate for the `machtlb` reproduction of *Translation
//! Lookaside Buffer Consistency: A Software Approach* (Black, Rashid, Golub,
//! Hill, Baron — ASPLOS 1989). The paper evaluates the Mach TLB shootdown
//! algorithm on a 16-processor NS32332 Encore Multimax; this crate provides
//! the equivalent substrate in simulation:
//!
//! - **per-processor logical clocks** with min-clock scheduling, giving a
//!   sequentially consistent, fully deterministic interleaving of
//!   shared-memory actions ([`Machine`]);
//! - a **shared bus** with FIFO queueing, whose saturation reproduces the
//!   Figure 2 contention knee above 12 processors ([`Bus`]);
//! - an **interrupt structure** with device and inter-processor classes and
//!   per-processor masks, including the Section 9 high-priority
//!   software-interrupt option ([`IntrMask`]);
//! - a calibrated **cost model** of Multimax-era primitive actions
//!   ([`CostModel`]);
//! - [`Process`], the state-machine abstraction every simulated activity
//!   (kernel operation, user thread, interrupt handler) is written against.
//!
//! # Examples
//!
//! Two processors racing on a shared counter, interleaved deterministically:
//!
//! ```
//! use machtlb_sim::{CpuId, Ctx, Dur, Machine, MachineConfig, Process, Step, Time};
//!
//! #[derive(Debug)]
//! struct Bump { left: u32 }
//! impl Process<u64, ()> for Bump {
//!     fn step(&mut self, ctx: &mut Ctx<'_, u64, ()>) -> Step {
//!         *ctx.shared += 1;
//!         self.left -= 1;
//!         let cost = Dur::micros(2) + ctx.bus_write();
//!         if self.left == 0 { Step::Done(cost) } else { Step::Run(cost) }
//!     }
//! }
//!
//! let mut m = Machine::new(MachineConfig::multimax16(7), 0u64, |_| ());
//! m.spawn_at(CpuId::new(0), Time::ZERO, Box::new(Bump { left: 10 }));
//! m.spawn_at(CpuId::new(1), Time::ZERO, Box::new(Bump { left: 10 }));
//! m.run(Time::from_micros(10_000));
//! assert_eq!(*m.shared(), 20);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bus;
mod cost;
mod cpu;
mod event;
mod fault;
mod intr;
mod lock;
mod machine;
mod process;
mod time;
mod topology;

pub use bus::{Bus, BusOp, BusOpStats, BusStats};
pub use cost::CostModel;
pub use cpu::{CpuCore, CpuId, CpuStats, ParkView};
pub use event::{BlockOn, WaitChannel};
pub use fault::{
    FaultInjector, FaultKind, FaultPlan, FaultRecord, FaultStats, Halt, IpiDelay, IpiDrop,
    IpiDuplicate, IpiReorder, IsrStretch, Offline, ResponderStall,
};
pub use intr::{FanoutTree, IntrClass, IntrMask, Vector};
pub use lock::SpinLock;
pub use machine::{Machine, MachineConfig, MulticastStats, RunReport, RunStatus};
pub use process::{Ctx, Process, Step};
pub use time::{Dur, Time};
pub use topology::{BusFabric, FabricStats, Topology};

#[cfg(test)]
mod tests {
    use super::*;

    /// A process that runs `n` fixed-cost steps and records each step's
    /// (cpu, time) in the shared trace.
    #[derive(Debug)]
    struct Tracer {
        n: u32,
        cost: Dur,
    }

    type Trace = Vec<(CpuId, Time)>;

    impl Process<Trace, ()> for Tracer {
        fn step(&mut self, ctx: &mut Ctx<'_, Trace, ()>) -> Step {
            ctx.shared.push((ctx.cpu_id, ctx.now));
            self.n -= 1;
            if self.n == 0 {
                Step::Done(self.cost)
            } else {
                Step::Run(self.cost)
            }
        }
        fn label(&self) -> &'static str {
            "tracer"
        }
    }

    fn test_config(n_cpus: usize) -> MachineConfig {
        MachineConfig {
            n_cpus,
            seed: 1,
            costs: CostModel::uniform_test(),
            topology: Topology::flat(n_cpus),
        }
    }

    #[test]
    fn min_clock_scheduling_interleaves_in_time_order() {
        let mut m = Machine::new(test_config(2), Trace::new(), |_| ());
        m.spawn_at(
            CpuId::new(0),
            Time::ZERO,
            Box::new(Tracer {
                n: 3,
                cost: Dur::micros(10),
            }),
        );
        m.spawn_at(
            CpuId::new(1),
            Time::ZERO,
            Box::new(Tracer {
                n: 3,
                cost: Dur::micros(10),
            }),
        );
        let r = m.run(Time::from_micros(1_000));
        assert_eq!(r.status, RunStatus::Quiescent);
        let times: Vec<u64> = m.shared().iter().map(|(_, t)| t.as_nanos()).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted, "steps must execute in global time order");
        assert_eq!(m.shared().len(), 6);
    }

    #[test]
    fn same_seed_same_trace() {
        let run = || {
            let mut m = Machine::new(test_config(4), Trace::new(), |_| ());
            for i in 0..4 {
                m.spawn_at(
                    CpuId::new(i),
                    Time::from_micros(u64::from(i)),
                    Box::new(Tracer {
                        n: 5,
                        cost: Dur::micros(3 + u64::from(i)),
                    }),
                );
            }
            m.run(Time::from_micros(10_000));
            m.into_shared()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn time_limit_stops_before_future_events() {
        let mut m = Machine::new(test_config(1), Trace::new(), |_| ());
        m.spawn_at(
            CpuId::new(0),
            Time::from_micros(500),
            Box::new(Tracer {
                n: 1,
                cost: Dur::micros(1),
            }),
        );
        let r = m.run(Time::from_micros(100));
        assert_eq!(r.status, RunStatus::TimeLimit);
        assert!(m.shared().is_empty());
        let r = m.run(Time::from_micros(1_000));
        assert_eq!(r.status, RunStatus::Quiescent);
        assert_eq!(m.shared().len(), 1);
    }

    #[test]
    fn step_limit_catches_runaway_spins() {
        #[derive(Debug)]
        struct Spin;
        impl Process<Trace, ()> for Spin {
            fn step(&mut self, _ctx: &mut Ctx<'_, Trace, ()>) -> Step {
                Step::Run(Dur::micros(1))
            }
        }
        let mut m = Machine::new(test_config(1), Trace::new(), |_| ());
        m.spawn_at(CpuId::new(0), Time::ZERO, Box::new(Spin));
        let r = m.run_bounded(Time::MAX, 100);
        assert_eq!(r.status, RunStatus::StepLimit);
        assert_eq!(r.steps, 100);
    }

    /// Interrupt delivery: a handler runs with all interrupts blocked and the
    /// mask is restored afterwards.
    #[derive(Debug, Default)]
    struct IntrLog {
        dispatched: Vec<(CpuId, Time)>,
        masks_seen: Vec<IntrMask>,
    }

    #[derive(Debug)]
    struct NoteMask;
    impl Process<IntrLog, ()> for NoteMask {
        fn step(&mut self, ctx: &mut Ctx<'_, IntrLog, ()>) -> Step {
            let mask = ctx.mask();
            ctx.shared.masks_seen.push(mask);
            ctx.shared.dispatched.push((ctx.cpu_id, ctx.now));
            Step::Done(Dur::micros(5))
        }
        fn label(&self) -> &'static str {
            "note-mask"
        }
    }

    #[derive(Debug)]
    struct SendThenIdle {
        target: CpuId,
        vector: Vector,
        sent: bool,
    }
    impl Process<IntrLog, ()> for SendThenIdle {
        fn step(&mut self, ctx: &mut Ctx<'_, IntrLog, ()>) -> Step {
            if !self.sent {
                self.sent = true;
                let v = self.vector;
                ctx.send_ipi(self.target, v);
                Step::Run(ctx.costs().ipi_send)
            } else {
                Step::Done(Dur::micros(1))
            }
        }
        fn label(&self) -> &'static str {
            "sender"
        }
    }

    #[test]
    fn ipi_dispatches_handler_with_interrupts_blocked() {
        let v = Vector::new(1);
        let mut m = Machine::new(test_config(2), IntrLog::default(), |_| ());
        m.register_handler(v, IntrClass::Ipi, |_, _, _| Box::new(NoteMask));
        m.spawn_at(
            CpuId::new(0),
            Time::ZERO,
            Box::new(SendThenIdle {
                target: CpuId::new(1),
                vector: v,
                sent: false,
            }),
        );
        let r = m.run(Time::from_micros(1_000));
        assert_eq!(r.status, RunStatus::Quiescent);
        let log = m.shared();
        assert_eq!(log.dispatched.len(), 1);
        assert_eq!(log.dispatched[0].0, CpuId::new(1));
        assert_eq!(log.masks_seen, vec![IntrMask::ALL_BLOCKED]);
        // Mask restored after the handler completed.
        assert_eq!(m.cpu(CpuId::new(1)).mask(), IntrMask::OPEN);
        assert_eq!(m.cpu(CpuId::new(1)).stats().interrupts, 1);
    }

    #[test]
    fn masked_ipi_stays_pending_until_unmasked() {
        let v = Vector::new(1);

        /// Masks IPIs for a while, then opens the mask and parks.
        #[derive(Debug)]
        struct MaskedSection {
            phase: u8,
        }
        impl Process<IntrLog, ()> for MaskedSection {
            fn step(&mut self, ctx: &mut Ctx<'_, IntrLog, ()>) -> Step {
                match self.phase {
                    0 => {
                        ctx.set_mask(IntrMask::ALL_BLOCKED);
                        self.phase = 1;
                        Step::Run(Dur::micros(200))
                    }
                    1 => {
                        ctx.set_mask(IntrMask::OPEN);
                        self.phase = 2;
                        Step::Run(Dur::micros(1))
                    }
                    _ => Step::Done(Dur::micros(1)),
                }
            }
        }

        let mut m = Machine::new(test_config(2), IntrLog::default(), |_| ());
        m.register_handler(v, IntrClass::Ipi, |_, _, _| Box::new(NoteMask));
        m.spawn_at(
            CpuId::new(1),
            Time::ZERO,
            Box::new(MaskedSection { phase: 0 }),
        );
        m.spawn_at(
            CpuId::new(0),
            Time::from_micros(10),
            Box::new(SendThenIdle {
                target: CpuId::new(1),
                vector: v,
                sent: false,
            }),
        );
        m.run(Time::from_micros(10_000));
        let log = m.shared();
        assert_eq!(log.dispatched.len(), 1, "handler must eventually run");
        // Dispatched only after the masked section ended (~201us), not at
        // delivery (~11us + latency).
        assert!(
            log.dispatched[0].1 >= Time::from_micros(200),
            "dispatched at {} while masked",
            log.dispatched[0].1
        );
    }

    #[test]
    fn device_blocked_mask_still_delivers_ipi() {
        // Section 9 high-priority software interrupt: device-blocked kernel
        // sections do not delay shootdown IPIs.
        let v = Vector::new(1);

        /// A 500us device-masked section, computed in 25us chunks so
        /// unmasked interrupts can preempt at chunk boundaries.
        #[derive(Debug)]
        struct DeviceCritical {
            chunks_left: u32,
            masked: bool,
        }
        impl Process<IntrLog, ()> for DeviceCritical {
            fn step(&mut self, ctx: &mut Ctx<'_, IntrLog, ()>) -> Step {
                if !self.masked {
                    self.masked = true;
                    ctx.set_mask(IntrMask::DEVICE_BLOCKED);
                    return Step::Run(Dur::micros(1));
                }
                if self.chunks_left > 0 {
                    self.chunks_left -= 1;
                    return Step::Run(Dur::micros(25));
                }
                ctx.set_mask(IntrMask::OPEN);
                Step::Done(Dur::micros(1))
            }
        }

        let mut m = Machine::new(test_config(2), IntrLog::default(), |_| ());
        m.register_handler(v, IntrClass::Ipi, |_, _, _| Box::new(NoteMask));
        m.spawn_at(
            CpuId::new(1),
            Time::ZERO,
            Box::new(DeviceCritical {
                chunks_left: 20,
                masked: false,
            }),
        );
        m.spawn_at(
            CpuId::new(0),
            Time::from_micros(10),
            Box::new(SendThenIdle {
                target: CpuId::new(1),
                vector: v,
                sent: false,
            }),
        );
        m.run(Time::from_micros(10_000));
        let log = m.shared();
        assert_eq!(log.dispatched.len(), 1);
        assert!(
            log.dispatched[0].1 < Time::from_micros(200),
            "IPI should preempt a device-blocked section, dispatched at {}",
            log.dispatched[0].1
        );
    }

    #[test]
    fn park_with_deadline_wakes_at_deadline() {
        #[derive(Debug)]
        struct Napper {
            slept: bool,
        }
        impl Process<Trace, ()> for Napper {
            fn step(&mut self, ctx: &mut Ctx<'_, Trace, ()>) -> Step {
                if !self.slept {
                    self.slept = true;
                    Step::Park(Some(Time::from_micros(777)))
                } else {
                    ctx.shared.push((ctx.cpu_id, ctx.now));
                    Step::Done(Dur::micros(1))
                }
            }
        }
        let mut m = Machine::new(test_config(1), Trace::new(), |_| ());
        m.spawn_at(CpuId::new(0), Time::ZERO, Box::new(Napper { slept: false }));
        let r = m.run(Time::from_micros(10_000));
        assert_eq!(r.status, RunStatus::Quiescent);
        assert_eq!(m.shared().len(), 1);
        assert_eq!(m.shared()[0].1, Time::from_micros(777));
    }

    #[test]
    fn park_without_deadline_wakes_on_delivery() {
        #[derive(Debug)]
        struct WaitForWork;
        impl Process<Trace, ()> for WaitForWork {
            fn step(&mut self, ctx: &mut Ctx<'_, Trace, ()>) -> Step {
                if ctx.shared.is_empty() {
                    Step::Park(None)
                } else {
                    Step::Done(Dur::micros(1))
                }
            }
        }
        #[derive(Debug)]
        struct Producer;
        impl Process<Trace, ()> for Producer {
            fn step(&mut self, ctx: &mut Ctx<'_, Trace, ()>) -> Step {
                ctx.shared.push((ctx.cpu_id, ctx.now));
                // Poke the sleeper with a spawn so it re-checks.
                ctx.spawn(CpuId::new(0), Box::new(Nop));
                Step::Done(Dur::micros(1))
            }
        }
        #[derive(Debug)]
        struct Nop;
        impl Process<Trace, ()> for Nop {
            fn step(&mut self, _: &mut Ctx<'_, Trace, ()>) -> Step {
                Step::Done(Dur::ZERO)
            }
        }
        let mut m = Machine::new(test_config(2), Trace::new(), |_| ());
        m.spawn_at(CpuId::new(0), Time::ZERO, Box::new(WaitForWork));
        m.spawn_at(CpuId::new(1), Time::from_micros(300), Box::new(Producer));
        let r = m.run(Time::from_micros(10_000));
        assert_eq!(r.status, RunStatus::Quiescent);
        assert_eq!(m.shared().len(), 1);
    }

    #[test]
    fn trap_runs_before_trapping_process_resumes() {
        #[derive(Debug)]
        struct Faulting {
            phase: u8,
        }
        impl Process<Trace, ()> for Faulting {
            fn step(&mut self, ctx: &mut Ctx<'_, Trace, ()>) -> Step {
                match self.phase {
                    0 => {
                        self.phase = 1;
                        ctx.trap(Box::new(FaultHandler));
                        Step::Run(Dur::micros(1))
                    }
                    _ => {
                        // The handler must have recorded itself first.
                        assert_eq!(ctx.shared.len(), 1);
                        ctx.shared.push((ctx.cpu_id, ctx.now));
                        Step::Done(Dur::micros(1))
                    }
                }
            }
        }
        #[derive(Debug)]
        struct FaultHandler;
        impl Process<Trace, ()> for FaultHandler {
            fn step(&mut self, ctx: &mut Ctx<'_, Trace, ()>) -> Step {
                ctx.shared.push((ctx.cpu_id, ctx.now));
                Step::Done(Dur::micros(50))
            }
        }
        let mut m = Machine::new(test_config(1), Trace::new(), |_| ());
        m.spawn_at(CpuId::new(0), Time::ZERO, Box::new(Faulting { phase: 0 }));
        let r = m.run(Time::from_micros(10_000));
        assert_eq!(r.status, RunStatus::Quiescent);
        assert_eq!(m.shared().len(), 2);
    }

    #[test]
    fn broadcast_reaches_all_but_sender() {
        let v = Vector::new(2);
        #[derive(Debug)]
        struct Caster {
            sent: bool,
        }
        impl Process<IntrLog, ()> for Caster {
            fn step(&mut self, ctx: &mut Ctx<'_, IntrLog, ()>) -> Step {
                if !self.sent {
                    self.sent = true;
                    ctx.broadcast_ipi(Vector::new(2));
                    Step::Run(ctx.costs().ipi_broadcast)
                } else {
                    Step::Done(Dur::micros(1))
                }
            }
        }
        let mut m = Machine::new(test_config(4), IntrLog::default(), |_| ());
        m.register_handler(v, IntrClass::Ipi, |_, _, _| Box::new(NoteMask));
        m.spawn_at(CpuId::new(2), Time::ZERO, Box::new(Caster { sent: false }));
        m.run(Time::from_micros(10_000));
        let mut who: Vec<CpuId> = m.shared().dispatched.iter().map(|(c, _)| *c).collect();
        who.sort_unstable();
        assert_eq!(who, vec![CpuId::new(0), CpuId::new(1), CpuId::new(3)]);
    }

    #[test]
    fn quiescent_when_nothing_scheduled() {
        let mut m: Machine<Trace, ()> = Machine::new(test_config(3), Trace::new(), |_| ());
        let r = m.run(Time::from_micros(100));
        assert_eq!(r.status, RunStatus::Quiescent);
        assert_eq!(r.steps, 0);
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_cpus_rejected() {
        let _ = Machine::new(
            MachineConfig {
                n_cpus: 0,
                seed: 0,
                costs: CostModel::uniform_test(),
                topology: Topology::flat(1),
            },
            Trace::new(),
            |_| (),
        );
    }

    #[test]
    fn busy_time_accumulates() {
        let mut m = Machine::new(test_config(1), Trace::new(), |_| ());
        m.spawn_at(
            CpuId::new(0),
            Time::ZERO,
            Box::new(Tracer {
                n: 4,
                cost: Dur::micros(25),
            }),
        );
        m.run(Time::from_micros(1_000));
        assert_eq!(m.cpu(CpuId::new(0)).stats().busy, Dur::micros(100));
        assert_eq!(m.total_busy(), Dur::micros(100));
    }

    // ---- Event-driven waiting: equivalence with stepped spinning ----

    /// Shared state for the spin-vs-block tests: a flag guarded by a wait
    /// channel, plus a trace of (cpu, time) observation records.
    #[derive(Debug, Default)]
    struct FlagWorld {
        flag: bool,
        trace: Trace,
    }

    const FLAG_CHAN: WaitChannel = WaitChannel::new(0xF1A6);
    const SPIN_COST: Dur = Dur::nanos(2_350);

    /// Waits for the flag either by stepped spinning or by event-blocking,
    /// then records the instant it observed the flag set.
    #[derive(Debug)]
    struct FlagWaiter {
        event: bool,
    }
    impl Process<FlagWorld, ()> for FlagWaiter {
        fn step(&mut self, ctx: &mut Ctx<'_, FlagWorld, ()>) -> Step {
            if ctx.shared.flag {
                ctx.shared.trace.push((ctx.cpu_id, ctx.now));
                Step::Done(Dur::micros(1))
            } else if self.event {
                Step::Block(BlockOn::one(FLAG_CHAN, SPIN_COST))
            } else {
                Step::Run(SPIN_COST)
            }
        }
        fn label(&self) -> &'static str {
            "flag-waiter"
        }
    }

    /// Idles until `at`, then sets the flag and notifies in the same step.
    #[derive(Debug)]
    struct FlagSetter {
        at: Time,
        done: bool,
    }
    impl Process<FlagWorld, ()> for FlagSetter {
        fn step(&mut self, ctx: &mut Ctx<'_, FlagWorld, ()>) -> Step {
            if !self.done {
                self.done = true;
                Step::Park(Some(self.at))
            } else {
                ctx.shared.flag = true;
                ctx.notify(FLAG_CHAN);
                Step::Done(Dur::micros(1))
            }
        }
        fn label(&self) -> &'static str {
            "flag-setter"
        }
    }

    /// Runs a waiter on cpu `waiter` and a setter on cpu `setter` firing at
    /// `set_at`, returning (observation trace, waiter stats, total steps).
    fn flag_run(event: bool, waiter: u32, setter: u32, set_at: Time) -> (Trace, CpuStats, u64) {
        let mut m = Machine::new(test_config(4), FlagWorld::default(), |_| ());
        m.spawn_at(
            CpuId::new(waiter),
            Time::ZERO,
            Box::new(FlagWaiter { event }),
        );
        m.spawn_at(
            CpuId::new(setter),
            Time::ZERO,
            Box::new(FlagSetter {
                at: set_at,
                done: false,
            }),
        );
        let r = m.run_bounded(Time::from_micros(100_000), 100_000_000);
        assert_eq!(r.status, RunStatus::Quiescent);
        let stats = m.cpu(CpuId::new(waiter)).stats();
        (m.into_shared().trace, stats, r.steps)
    }

    #[test]
    fn blocking_wakes_at_the_same_instant_as_spinning() {
        // Sweep writer instants across lattice phases and both tie-break
        // directions (writer cpu below and above the waiter's).
        for &(waiter, setter) in &[(0u32, 3u32), (3, 0)] {
            for off in [0u64, 1, 2_349, 2_350, 2_351, 7_777, 23_500] {
                let at = Time::from_micros(50) + Dur::nanos(off);
                let spun = flag_run(false, waiter, setter, at);
                let blocked = flag_run(true, waiter, setter, at);
                assert_eq!(
                    spun, blocked,
                    "waiter {waiter}, setter {setter}, set at {at}: stepped and \
                     event runs must agree on trace, stats, and step counts"
                );
            }
        }
    }

    #[test]
    fn notify_in_the_parking_instant_is_not_lost() {
        // The hazard case: the writer's step executes at the very instant
        // the waiter blocks, but on a higher-indexed cpu — its write is
        // invisible to the waiter's parking check, and the notify arrives
        // while the park is being applied. The waiter must still wake.
        let spun = flag_run(false, 0, 3, Time::ZERO);
        let blocked = flag_run(true, 0, 3, Time::ZERO);
        assert_eq!(spun, blocked);
        assert_eq!(blocked.0.len(), 1, "the waiter must observe the flag");
    }

    #[test]
    fn spurious_notify_reblocks_without_double_charging() {
        /// Notifies the channel *without* satisfying the condition, then
        /// sets the flag later.
        #[derive(Debug)]
        struct Teaser {
            phase: u8,
        }
        impl Process<FlagWorld, ()> for Teaser {
            fn step(&mut self, ctx: &mut Ctx<'_, FlagWorld, ()>) -> Step {
                match self.phase {
                    0 => {
                        self.phase = 1;
                        Step::Park(Some(Time::from_micros(30)))
                    }
                    1 => {
                        self.phase = 2;
                        ctx.notify(FLAG_CHAN); // spurious: flag still false
                        Step::Park(Some(Time::from_micros(90)))
                    }
                    _ => {
                        ctx.shared.flag = true;
                        ctx.notify(FLAG_CHAN);
                        Step::Done(Dur::micros(1))
                    }
                }
            }
            fn label(&self) -> &'static str {
                "teaser"
            }
        }

        let run = |event: bool| {
            let mut m = Machine::new(test_config(2), FlagWorld::default(), |_| ());
            m.spawn_at(CpuId::new(0), Time::ZERO, Box::new(FlagWaiter { event }));
            m.spawn_at(CpuId::new(1), Time::ZERO, Box::new(Teaser { phase: 0 }));
            let r = m.run_bounded(Time::from_micros(100_000), 100_000_000);
            assert_eq!(r.status, RunStatus::Quiescent);
            let stats = m.cpu(CpuId::new(0)).stats();
            (m.into_shared().trace, stats, r.steps)
        };
        let spun = run(false);
        let blocked = run(true);
        assert_eq!(
            spun, blocked,
            "a spurious wake must re-block on a fresh anchor with the \
             skipped iterations charged exactly once"
        );
    }

    #[test]
    fn delivery_wakes_a_blocked_processor_at_a_lattice_point() {
        let v = Vector::new(1);

        #[derive(Debug)]
        struct HandlerSetsFlag;
        impl Process<FlagWorld, ()> for HandlerSetsFlag {
            fn step(&mut self, ctx: &mut Ctx<'_, FlagWorld, ()>) -> Step {
                ctx.shared.flag = true;
                ctx.notify(FLAG_CHAN);
                Step::Done(Dur::micros(5))
            }
            fn label(&self) -> &'static str {
                "handler-sets-flag"
            }
        }

        #[derive(Debug)]
        struct IpiAt {
            at: Time,
            target: CpuId,
            phase: u8,
        }
        impl Process<FlagWorld, ()> for IpiAt {
            fn step(&mut self, ctx: &mut Ctx<'_, FlagWorld, ()>) -> Step {
                match self.phase {
                    0 => {
                        self.phase = 1;
                        Step::Park(Some(self.at))
                    }
                    _ => {
                        ctx.send_ipi(self.target, Vector::new(1));
                        Step::Done(ctx.costs().ipi_send)
                    }
                }
            }
            fn label(&self) -> &'static str {
                "ipi-at"
            }
        }

        let run = |event: bool| {
            let mut m = Machine::new(test_config(2), FlagWorld::default(), |_| ());
            m.register_handler(v, IntrClass::Ipi, |_, _, _| Box::new(HandlerSetsFlag));
            m.spawn_at(CpuId::new(0), Time::ZERO, Box::new(FlagWaiter { event }));
            m.spawn_at(
                CpuId::new(1),
                Time::ZERO,
                Box::new(IpiAt {
                    at: Time::from_micros(40) + Dur::nanos(123),
                    target: CpuId::new(0),
                    phase: 0,
                }),
            );
            let r = m.run_bounded(Time::from_micros(100_000), 100_000_000);
            assert_eq!(r.status, RunStatus::Quiescent);
            let stats = m.cpu(CpuId::new(0)).stats();
            (m.into_shared().trace, stats, r.steps)
        };
        let spun = run(false);
        let blocked = run(true);
        assert_eq!(
            spun, blocked,
            "an interrupt must preempt a blocked spinner exactly when it \
             would preempt the stepped loop"
        );
        assert_eq!(blocked.1.interrupts, 1);
    }

    #[test]
    fn forever_blocked_machine_reports_time_limit() {
        // A spinner whose condition is never satisfied spins to the time
        // limit in stepped mode; a blocked one must report the same status
        // rather than claiming quiescence.
        let mut m = Machine::new(test_config(1), FlagWorld::default(), |_| ());
        m.spawn_at(
            CpuId::new(0),
            Time::ZERO,
            Box::new(FlagWaiter { event: true }),
        );
        let r = m.run(Time::from_micros(1_000));
        assert_eq!(r.status, RunStatus::TimeLimit);
        assert!(m.shared().trace.is_empty());
        let diag = m.frames_diagnostic();
        assert!(
            diag.contains("cpu0") && diag.contains("flag-waiter") && diag.contains("blocked"),
            "diagnostic must name the blocked cpu and frame: {diag}"
        );
    }

    #[test]
    fn deadline_wakes_at_the_same_instant_as_a_stepped_timeout() {
        // A waiter whose loop body also tests a timeout: the event run must
        // observe the expiry at exactly the stepped loop's first check at
        // or after it (the deadline is deliberately off-lattice).
        const DEADLINE: Time = Time::from_micros(50);

        #[derive(Debug)]
        struct TimeoutWaiter {
            event: bool,
        }
        impl Process<FlagWorld, ()> for TimeoutWaiter {
            fn step(&mut self, ctx: &mut Ctx<'_, FlagWorld, ()>) -> Step {
                if ctx.shared.flag || ctx.now >= DEADLINE {
                    ctx.shared.trace.push((ctx.cpu_id, ctx.now));
                    Step::Done(Dur::micros(1))
                } else if self.event {
                    Step::Block(BlockOn::one(FLAG_CHAN, SPIN_COST).with_deadline(DEADLINE))
                } else {
                    Step::Run(SPIN_COST)
                }
            }
            fn label(&self) -> &'static str {
                "timeout-waiter"
            }
        }

        let run = |event: bool| {
            let mut m = Machine::new(test_config(1), FlagWorld::default(), |_| ());
            m.spawn_at(CpuId::new(0), Time::ZERO, Box::new(TimeoutWaiter { event }));
            let r = m.run_bounded(Time::from_micros(100_000), 100_000_000);
            assert_eq!(r.status, RunStatus::Quiescent);
            let stats = m.cpu(CpuId::new(0)).stats();
            (m.into_shared().trace, stats, r.steps)
        };
        let spun = run(false);
        let blocked = run(true);
        assert_eq!(
            spun, blocked,
            "a deadline wake must match the stepped timeout check exactly"
        );
        assert_eq!(blocked.0.len(), 1, "the timeout must fire");
        assert!(blocked.0[0].1 >= DEADLINE);
    }

    #[test]
    fn installing_an_empty_fault_plan_is_invisible() {
        let run = |plan: Option<FaultPlan>| {
            let mut m = Machine::new(test_config(2), IntrLog::default(), |_| ());
            if let Some(p) = plan {
                m.install_fault_plan(p);
            }
            let v = Vector::new(1);
            m.register_handler(v, IntrClass::Ipi, |_, _, _| Box::new(NoteMask));
            m.spawn_at(
                CpuId::new(0),
                Time::ZERO,
                Box::new(SendThenIdle {
                    target: CpuId::new(1),
                    vector: v,
                    sent: false,
                }),
            );
            let r = m.run(Time::from_micros(10_000));
            assert_eq!(r.status, RunStatus::Quiescent);
            let stats = m.cpu(CpuId::new(1)).stats();
            (m.into_shared().dispatched, stats, r.steps)
        };
        assert_eq!(
            run(None),
            run(Some(FaultPlan::none(Vector::new(1)))),
            "an all-off plan must be bit-identical to no plan at all"
        );
    }

    #[test]
    fn dropped_ipi_never_dispatches() {
        let v = Vector::new(1);
        let mut m = Machine::new(test_config(2), IntrLog::default(), |_| ());
        m.install_fault_plan(FaultPlan {
            drop: Some(IpiDrop {
                every_nth: 1,
                max_drops: u64::MAX,
            }),
            ..FaultPlan::none(v)
        });
        m.register_handler(v, IntrClass::Ipi, |_, _, _| Box::new(NoteMask));
        m.spawn_at(
            CpuId::new(0),
            Time::ZERO,
            Box::new(SendThenIdle {
                target: CpuId::new(1),
                vector: v,
                sent: false,
            }),
        );
        let r = m.run(Time::from_micros(10_000));
        assert_eq!(r.status, RunStatus::Quiescent);
        assert!(m.shared().dispatched.is_empty(), "the IPI was dropped");
        assert_eq!(m.fault_stats().expect("plan installed").dropped, 1);
        assert_eq!(m.fault_events().len(), 1);
    }

    #[test]
    fn woken_spins_reaches_only_the_blocked_frame() {
        /// Blocks until woken, then records how many spins were skipped.
        #[derive(Debug)]
        struct CountingWaiter;
        impl Process<SpinCount, ()> for CountingWaiter {
            fn step(&mut self, ctx: &mut Ctx<'_, SpinCount, ()>) -> Step {
                if ctx.shared.flag {
                    ctx.shared.woken.push(ctx.woken_spins());
                    Step::Done(Dur::micros(1))
                } else {
                    Step::Block(BlockOn::one(FLAG_CHAN, SPIN_COST))
                }
            }
            fn label(&self) -> &'static str {
                "counting-waiter"
            }
        }
        #[derive(Debug)]
        struct HandlerCounts;
        impl Process<SpinCount, ()> for HandlerCounts {
            fn step(&mut self, ctx: &mut Ctx<'_, SpinCount, ()>) -> Step {
                // An interrupt handler dispatched over the blocked frame
                // must not inherit its backfill.
                ctx.shared.handler_saw.push(ctx.woken_spins());
                ctx.shared.flag = true;
                ctx.notify(FLAG_CHAN);
                Step::Done(Dur::micros(5))
            }
            fn label(&self) -> &'static str {
                "handler-counts"
            }
        }
        #[derive(Debug, Default)]
        struct SpinCount {
            flag: bool,
            woken: Vec<u64>,
            handler_saw: Vec<u64>,
        }
        #[derive(Debug)]
        struct LateIpi {
            phase: u8,
        }
        impl Process<SpinCount, ()> for LateIpi {
            fn step(&mut self, ctx: &mut Ctx<'_, SpinCount, ()>) -> Step {
                match self.phase {
                    0 => {
                        self.phase = 1;
                        Step::Park(Some(Time::from_micros(100)))
                    }
                    _ => {
                        ctx.send_ipi(CpuId::new(0), Vector::new(1));
                        Step::Done(ctx.costs().ipi_send)
                    }
                }
            }
        }
        let mut m = Machine::new(test_config(2), SpinCount::default(), |_| ());
        m.register_handler(Vector::new(1), IntrClass::Ipi, |_, _, _| {
            Box::new(HandlerCounts)
        });
        m.spawn_at(CpuId::new(0), Time::ZERO, Box::new(CountingWaiter));
        m.spawn_at(CpuId::new(1), Time::ZERO, Box::new(LateIpi { phase: 0 }));
        let r = m.run(Time::from_micros(100_000));
        assert_eq!(r.status, RunStatus::Quiescent);
        let s = m.shared();
        assert_eq!(s.handler_saw, vec![0], "handler frames carry no backfill");
        assert_eq!(s.woken.len(), 1);
        assert!(
            s.woken[0] > 0,
            "the woken frame must see the skipped iterations exactly once"
        );
    }

    #[test]
    fn halted_cpu_never_dispatches_a_latched_ipi() {
        let v = Vector::new(1);
        let mut m = Machine::new(test_config(2), IntrLog::default(), |_| ());
        m.install_fault_plan(FaultPlan {
            halts: vec![Halt {
                cpu: CpuId::new(1),
                at: Time::ZERO,
            }],
            ..FaultPlan::none(v)
        });
        m.register_handler(v, IntrClass::Ipi, |_, _, _| Box::new(NoteMask));
        m.spawn_at(
            CpuId::new(0),
            Time::ZERO,
            Box::new(SendThenIdle {
                target: CpuId::new(1),
                vector: v,
                sent: false,
            }),
        );
        let r = m.run(Time::from_micros(10_000));
        assert_eq!(r.status, RunStatus::Quiescent, "{r:?}");
        assert!(
            m.shared().dispatched.is_empty(),
            "a fail-stop processor must not run the handler"
        );
        assert!(m.is_halted(CpuId::new(1)));
        assert!(!m.is_halted(CpuId::new(0)));
        let stats = m.fault_stats().expect("plan installed");
        assert_eq!(stats.halted, 1);
        assert_eq!(stats.revived, 0);
        assert_eq!(m.fault_events().len(), 1);
        assert_eq!(m.fault_events()[0].kind, FaultKind::Halted);
    }

    #[test]
    fn offline_cpu_freezes_then_finishes_its_work_after_revival() {
        let mut m = Machine::new(test_config(2), Trace::new(), |_| ());
        m.install_fault_plan(FaultPlan {
            offlines: vec![Offline {
                cpu: CpuId::new(1),
                at: Time::from_micros(15),
                revive_at: Time::from_micros(500),
            }],
            ..FaultPlan::none(Vector::new(1))
        });
        for cpu in 0..2 {
            m.spawn_at(
                CpuId::new(cpu),
                Time::ZERO,
                Box::new(Tracer {
                    n: 5,
                    cost: Dur::micros(10),
                }),
            );
        }
        let r = m.run(Time::from_micros(100_000));
        assert_eq!(r.status, RunStatus::Quiescent, "{r:?}");
        assert!(!m.is_halted(CpuId::new(1)), "revived by the end");
        let stats = m.fault_stats().expect("plan installed");
        assert_eq!((stats.halted, stats.revived), (1, 1));
        let one: Vec<Time> = m
            .shared()
            .iter()
            .filter(|(c, _)| *c == CpuId::new(1))
            .map(|(_, t)| *t)
            .collect();
        assert_eq!(one.len(), 5, "the frozen process completes after revival");
        assert_eq!(one[0], Time::ZERO);
        assert_eq!(one[1], Time::from_micros(10));
        assert!(
            one[2] >= Time::from_micros(500),
            "no step may run inside the dead window: {one:?}"
        );
    }

    #[test]
    fn halt_and_revive_runs_replay_bit_identically() {
        let run = || {
            let mut m = Machine::new(test_config(3), Trace::new(), |_| ());
            m.install_fault_plan(FaultPlan {
                offlines: vec![Offline {
                    cpu: CpuId::new(2),
                    at: Time::from_micros(7),
                    revive_at: Time::from_micros(220),
                }],
                ..FaultPlan::none(Vector::new(1))
            });
            for cpu in 0..3 {
                m.spawn_at(
                    CpuId::new(cpu),
                    Time::ZERO,
                    Box::new(Tracer {
                        n: 8,
                        cost: Dur::micros(3),
                    }),
                );
            }
            let r = m.run(Time::from_micros(100_000));
            assert_eq!(r.status, RunStatus::Quiescent);
            let events = m.fault_events().to_vec();
            (m.into_shared(), events, r.steps)
        };
        assert_eq!(run(), run(), "fail-stop faults must replay bit-identically");
    }

    /// Posts one multicast descriptor for `targets` with the given fanout
    /// degree, then finishes.
    #[derive(Debug)]
    struct MulticastThenIdle {
        targets: Vec<CpuId>,
        vector: Vector,
        degree: usize,
        sent: bool,
    }
    impl Process<Trace, ()> for MulticastThenIdle {
        fn step(&mut self, ctx: &mut Ctx<'_, Trace, ()>) -> Step {
            if !self.sent {
                self.sent = true;
                let v = self.vector;
                let d = self.degree;
                ctx.multicast_ipi(self.targets.clone(), v, d);
                Step::Run(ctx.costs().ipi_send)
            } else {
                Step::Done(Dur::micros(1))
            }
        }
        fn label(&self) -> &'static str {
            "multicaster"
        }
    }

    /// Unicasts to each target in order, one send per step (the seed
    /// initiator's send loop), then finishes.
    #[derive(Debug)]
    struct UnicastLoop {
        targets: Vec<CpuId>,
        vector: Vector,
        next: usize,
    }
    impl Process<Trace, ()> for UnicastLoop {
        fn step(&mut self, ctx: &mut Ctx<'_, Trace, ()>) -> Step {
            if self.next < self.targets.len() {
                let t = self.targets[self.next];
                self.next += 1;
                let v = self.vector;
                ctx.send_ipi(t, v);
                Step::Run(ctx.costs().ipi_send)
            } else {
                Step::Done(Dur::micros(1))
            }
        }
        fn label(&self) -> &'static str {
            "unicaster"
        }
    }

    /// Runs a machine where the handler factory logs the vectoring instant
    /// (≈ delivery instant on an idle target) into the shared trace.
    fn run_delivery_log(
        n_cpus: usize,
        plan: Option<FaultPlan>,
        sender: Box<dyn Process<Trace, ()>>,
    ) -> (Trace, MulticastStats) {
        let v = Vector::new(1);
        let mut m = Machine::new(test_config(n_cpus), Trace::new(), |_| ());
        if let Some(p) = plan {
            m.install_fault_plan(p);
        }
        #[derive(Debug)]
        struct Quiet;
        impl Process<Trace, ()> for Quiet {
            fn step(&mut self, _ctx: &mut Ctx<'_, Trace, ()>) -> Step {
                Step::Done(Dur::micros(1))
            }
            fn label(&self) -> &'static str {
                "quiet"
            }
        }
        m.register_handler(v, IntrClass::Ipi, |log, cpu, at| {
            log.push((cpu, at));
            Box::new(Quiet)
        });
        m.spawn_at(CpuId::new(0), Time::ZERO, sender);
        let r = m.run(Time::from_micros(1_000_000));
        assert_eq!(r.status, RunStatus::Quiescent);
        let stats = m.multicast_stats();
        (m.into_shared(), stats)
    }

    #[test]
    fn multicast_dispatches_every_target_exactly_once() {
        for degree in [1usize, 2, 3, 7, 16] {
            let targets: Vec<CpuId> = (1..16).map(CpuId::new).collect();
            let (log, stats) = run_delivery_log(
                16,
                None,
                Box::new(MulticastThenIdle {
                    targets: targets.clone(),
                    vector: Vector::new(1),
                    degree,
                    sent: false,
                }),
            );
            let mut seen: Vec<CpuId> = log.iter().map(|(c, _)| *c).collect();
            seen.sort_unstable();
            assert_eq!(seen, targets, "degree {degree}: each target once");
            assert_eq!(stats.posts, 1);
            assert_eq!(stats.forwards, targets.len() as u64);
            assert_eq!(stats.pruned, 0);
        }
    }

    #[test]
    fn multicast_delivery_times_follow_the_fanout_tree() {
        let costs = CostModel::uniform_test();
        let targets: Vec<CpuId> = (1..8).map(CpuId::new).collect();
        let degree = 2;
        let (log, _) = run_delivery_log(
            8,
            None,
            Box::new(MulticastThenIdle {
                targets: targets.clone(),
                vector: Vector::new(1),
                degree,
                sent: false,
            }),
        );
        // Reconstruct the expected per-slot delivery instants: the j-th
        // forward of any hop leaves (j+1)·ipi_send after its parent's
        // delivery (or the post at t=0) and flies ipi_latency.
        let tree = FanoutTree::new(degree, targets.len());
        let mut expect = vec![Time::ZERO; targets.len()];
        for (j, s) in tree.root_children().enumerate() {
            expect[s] = Time::ZERO + costs.ipi_send * (j as u64 + 1) + costs.ipi_latency;
        }
        for relay in 0..targets.len() {
            for (j, s) in tree.children(relay).enumerate() {
                expect[s] = expect[relay] + costs.ipi_send * (j as u64 + 1) + costs.ipi_latency;
            }
        }
        let mut got: Vec<(CpuId, Time)> = log.clone();
        got.sort_unstable_by_key(|&(c, _)| c);
        let want: Vec<(CpuId, Time)> = targets
            .iter()
            .enumerate()
            .map(|(s, &c)| (c, expect[s]))
            .collect();
        assert_eq!(got, want);
        // Depth-bounded: the last delivery beats a serialized unicast loop.
        let deepest = expect.iter().max().copied().unwrap();
        let unicast_last = Time::ZERO + costs.ipi_send * (targets.len() as u64) + costs.ipi_latency;
        assert!(
            deepest < unicast_last || targets.len() < 4,
            "tree delivery ({deepest}) should beat serialized sends ({unicast_last})"
        );
    }

    #[test]
    fn multicast_and_unicast_reach_the_same_set() {
        let targets: Vec<CpuId> = [1u32, 3, 4, 6, 9, 10, 11].map(CpuId::new).to_vec();
        let (uni_log, uni_stats) = run_delivery_log(
            12,
            None,
            Box::new(UnicastLoop {
                targets: targets.clone(),
                vector: Vector::new(1),
                next: 0,
            }),
        );
        assert_eq!(uni_stats, MulticastStats::default());
        let mut uni: Vec<CpuId> = uni_log.iter().map(|(c, _)| *c).collect();
        uni.sort_unstable();
        for degree in 1..=8 {
            let (mc_log, _) = run_delivery_log(
                12,
                None,
                Box::new(MulticastThenIdle {
                    targets: targets.clone(),
                    vector: Vector::new(1),
                    degree,
                    sent: false,
                }),
            );
            let mut mc: Vec<CpuId> = mc_log.iter().map(|(c, _)| *c).collect();
            mc.sort_unstable();
            assert_eq!(mc, uni, "degree {degree}");
        }
    }

    #[test]
    fn halted_relay_latches_but_prunes_its_subtree() {
        // Degree 2 over targets 1..8: slot 0 (cpu 1) relays to slots 2,3
        // (cpus 3,4), which relay to slots 6 (cpu 7) and beyond. Halting
        // cpu 1 before the post must lose exactly its subtree.
        let targets: Vec<CpuId> = (1..8).map(CpuId::new).collect();
        let tree = FanoutTree::new(2, targets.len());
        let mut lost = vec![false; targets.len()];
        lost[0] = true;
        for s in 0..targets.len() {
            if let Some(p) = tree.parent(s) {
                lost[s] = lost[p];
            }
        }
        let (log, stats) = run_delivery_log(
            8,
            Some(FaultPlan {
                halts: vec![Halt {
                    cpu: CpuId::new(1),
                    at: Time::ZERO,
                }],
                ..FaultPlan::none(Vector::new(1))
            }),
            Box::new(MulticastThenIdle {
                targets: targets.clone(),
                vector: Vector::new(1),
                degree: 2,
                sent: false,
            }),
        );
        let mut got: Vec<CpuId> = log.iter().map(|(c, _)| *c).collect();
        got.sort_unstable();
        let want: Vec<CpuId> = targets
            .iter()
            .enumerate()
            .filter(|&(s, _)| !lost[s])
            .map(|(_, &c)| c)
            .collect();
        assert_eq!(got, want, "exactly the halted relay's subtree is lost");
        assert_eq!(stats.pruned, 1, "one hop landed on the halted relay");
    }
}

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use super::*;

    /// A process with a scripted sequence of actions.
    #[derive(Debug, Clone)]
    enum Act {
        Run(u64),
        ParkFor(u64),
        BusWrite,
        SendIpi(u32),
    }

    #[derive(Debug)]
    struct Scripted {
        acts: Vec<Act>,
        idx: usize,
    }

    type Trace = Vec<(u32, u64)>;

    impl Process<Trace, ()> for Scripted {
        fn step(&mut self, ctx: &mut Ctx<'_, Trace, ()>) -> Step {
            ctx.shared
                .push((ctx.cpu_id.index() as u32, ctx.now.as_nanos()));
            let Some(act) = self.acts.get(self.idx).cloned() else {
                return Step::Done(Dur::micros(1));
            };
            self.idx += 1;
            match act {
                Act::Run(us) => Step::Run(Dur::micros(us)),
                Act::ParkFor(us) => Step::Park(Some(ctx.now + Dur::micros(us))),
                Act::BusWrite => {
                    let d = ctx.bus_write();
                    Step::Run(d)
                }
                Act::SendIpi(t) => {
                    let target = CpuId::new(t % ctx.n_cpus() as u32);
                    if target != ctx.cpu_id {
                        ctx.send_ipi(target, Vector::new(1));
                    }
                    Step::Run(ctx.costs().ipi_send)
                }
            }
        }
        fn label(&self) -> &'static str {
            "scripted"
        }
    }

    #[derive(Debug)]
    struct Handler;
    impl Process<Trace, ()> for Handler {
        fn step(&mut self, ctx: &mut Ctx<'_, Trace, ()>) -> Step {
            ctx.shared
                .push((ctx.cpu_id.index() as u32, ctx.now.as_nanos()));
            Step::Done(Dur::micros(3))
        }
    }

    fn act_strategy() -> impl Strategy<Value = Act> {
        prop_oneof![
            (1u64..200).prop_map(Act::Run),
            (1u64..500).prop_map(Act::ParkFor),
            Just(Act::BusWrite),
            (0u32..8).prop_map(Act::SendIpi),
        ]
    }

    proptest! {
        /// Under any random mix of computation, parking, bus traffic, and
        /// IPIs: shared-state accesses happen in non-decreasing global
        /// time order, and the run is deterministic.
        #[test]
        fn scheduler_orders_and_reproduces(
            scripts in proptest::collection::vec(
                proptest::collection::vec(act_strategy(), 1..30),
                1..5,
            ),
            seed in 0u64..1000,
        ) {
            let run = |scripts: &[Vec<Act>]| {
                let mut m = Machine::new(
                    MachineConfig {
                        n_cpus: 4,
                        seed,
                        costs: CostModel::uniform_test(),
                        topology: Topology::flat(4),
                    },
                    Trace::new(),
                    |_| (),
                );
                m.register_handler(Vector::new(1), IntrClass::Ipi, |_, _, _| Box::new(Handler));
                for (i, acts) in scripts.iter().enumerate() {
                    m.spawn_at(
                        CpuId::new(i as u32),
                        Time::ZERO,
                        Box::new(Scripted { acts: acts.clone(), idx: 0 }),
                    );
                }
                let r = m.run_bounded(Time::from_micros(10_000_000), 10_000_000);
                prop_assert_eq!(r.status, RunStatus::Quiescent);
                Ok(m.into_shared())
            };
            let a = run(&scripts)?;
            let b = run(&scripts)?;
            prop_assert_eq!(&a, &b, "same seed must reproduce the trace");
            let times: Vec<u64> = a.iter().map(|&(_, t)| t).collect();
            let mut sorted = times.clone();
            sorted.sort_unstable();
            prop_assert_eq!(times, sorted, "steps must be globally time-ordered");
        }
    }
}
