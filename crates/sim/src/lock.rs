//! A simple lock as a shared-memory datum.
//!
//! The Mach kernel's simple locks are interlocked test-and-set words that
//! processors spin on. In the simulator a [`SpinLock`] is plain data inside
//! the shared memory image; the *time* costs of acquiring it (the interlocked
//! bus transaction, the spin iterations while contended) are charged by the
//! process manipulating it via
//! [`Ctx::bus_interlocked`](crate::Ctx::bus_interlocked) and
//! [`CostModel::spin_iter`](crate::CostModel::spin_iter).

use std::fmt;

use crate::cpu::CpuId;
use crate::event::WaitChannel;

/// A test-and-set spin lock held by at most one processor.
///
/// # Examples
///
/// ```
/// use machtlb_sim::{CpuId, SpinLock};
///
/// let mut lock = SpinLock::new();
/// assert!(lock.try_acquire(CpuId::new(0)));
/// assert!(!lock.try_acquire(CpuId::new(1))); // contended
/// lock.release(CpuId::new(0));
/// assert!(lock.try_acquire(CpuId::new(1)));
/// ```
#[derive(Clone, Debug, Default)]
pub struct SpinLock {
    holder: Option<CpuId>,
    acquisitions: u64,
    contentions: u64,
    steals: u64,
    steal_gen: u64,
    channel: Option<WaitChannel>,
}

impl SpinLock {
    /// Creates an unlocked lock.
    pub fn new() -> SpinLock {
        SpinLock::default()
    }

    /// Attaches the wait channel releases of this lock notify, enabling
    /// waiters to event-block on it instead of stepping a spin loop. The
    /// lock itself is plain shared data with no access to the machine, so
    /// the *releasing process* performs the notification:
    ///
    /// ```
    /// use machtlb_sim::{CpuId, SpinLock, WaitChannel};
    ///
    /// let mut lock = SpinLock::new().on_channel(WaitChannel::new(42));
    /// assert!(lock.try_acquire(CpuId::new(0)));
    /// let chan = lock.channel();
    /// lock.release(CpuId::new(0));
    /// assert_eq!(chan, Some(WaitChannel::new(42)));
    /// // ...inside a step: if let Some(c) = chan { ctx.notify(c) }
    /// ```
    pub fn on_channel(mut self, chan: WaitChannel) -> SpinLock {
        self.channel = Some(chan);
        self
    }

    /// The wait channel releases notify, if one is attached. Waiters block
    /// on it; a lock without a channel is waited for by stepped spinning.
    pub fn channel(&self) -> Option<WaitChannel> {
        self.channel
    }

    /// Accrues `n` failed acquisition attempts at once: the spin-cost
    /// backfill an event-blocked waiter performs at wakeup
    /// ([`Ctx::woken_spins`](crate::Ctx::woken_spins)), keeping the
    /// contention counter bit-identical to the stepped loop that would
    /// have called [`SpinLock::try_acquire`] once per iteration.
    pub fn charge_spins(&mut self, n: u64) {
        self.contentions += n;
    }

    /// Attempts to acquire the lock for `cpu`. Returns whether it succeeded.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` already holds the lock (simple locks do not nest).
    pub fn try_acquire(&mut self, cpu: CpuId) -> bool {
        match self.holder {
            None => {
                self.holder = Some(cpu);
                self.acquisitions += 1;
                true
            }
            Some(h) => {
                assert_ne!(
                    h, cpu,
                    "{cpu} attempted to re-acquire a simple lock it holds"
                );
                self.contentions += 1;
                false
            }
        }
    }

    /// Releases the lock.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` does not hold the lock.
    pub fn release(&mut self, cpu: CpuId) {
        assert_eq!(
            self.holder,
            Some(cpu),
            "{cpu} released a lock it does not hold (holder: {:?})",
            self.holder
        );
        self.holder = None;
    }

    /// Forcibly transfers the lock from a dead holder to `to` (fence-and-
    /// steal recovery: the caller has established that `from` is fail-stop
    /// halted and its critical section can be safely completed or redone by
    /// the thief). Counted as an acquisition by `to` and a steal.
    ///
    /// # Panics
    ///
    /// Panics if `from` does not hold the lock, or if `from == to` (a
    /// processor cannot steal from itself — it would already hold it).
    pub fn steal(&mut self, from: CpuId, to: CpuId) {
        assert_eq!(
            self.holder,
            Some(from),
            "steal from {from}: it is not the holder (holder: {:?})",
            self.holder
        );
        assert_ne!(from, to, "{to} stealing a lock from itself");
        self.holder = Some(to);
        self.acquisitions += 1;
        self.steals += 1;
        self.steal_gen += 1;
    }

    /// Forcible transfers from dead holders so far.
    pub fn steals(&self) -> u64 {
        self.steals
    }

    /// This lock's steal generation: bumped on every [`SpinLock::steal`].
    /// A process that sampled the generation before a critical section can
    /// detect that *this particular lock* was fenced away in the interim
    /// and restart, independently of every other lock in the system — the
    /// per-shard granularity sharded pmap locks need for fence-and-steal
    /// recovery.
    pub fn steal_gen(&self) -> u64 {
        self.steal_gen
    }

    /// Whether the lock is held.
    pub fn is_locked(&self) -> bool {
        self.holder.is_some()
    }

    /// The holder, if any.
    pub fn holder(&self) -> Option<CpuId> {
        self.holder
    }

    /// Whether `cpu` holds the lock.
    pub fn is_held_by(&self, cpu: CpuId) -> bool {
        self.holder == Some(cpu)
    }

    /// Successful acquisitions so far.
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions
    }

    /// Failed acquisition attempts so far.
    pub fn contentions(&self) -> u64 {
        self.contentions
    }
}

impl fmt::Display for SpinLock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.holder {
            Some(h) => write!(f, "locked by {h}"),
            None => write!(f, "unlocked"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_release_cycle() {
        let mut l = SpinLock::new();
        assert!(!l.is_locked());
        assert!(l.try_acquire(CpuId::new(2)));
        assert!(l.is_held_by(CpuId::new(2)));
        assert_eq!(l.holder(), Some(CpuId::new(2)));
        l.release(CpuId::new(2));
        assert!(!l.is_locked());
        assert_eq!(l.acquisitions(), 1);
    }

    #[test]
    fn contention_is_counted() {
        let mut l = SpinLock::new();
        assert!(l.try_acquire(CpuId::new(0)));
        assert!(!l.try_acquire(CpuId::new(1)));
        assert!(!l.try_acquire(CpuId::new(3)));
        assert_eq!(l.contentions(), 2);
    }

    #[test]
    fn steal_transfers_a_dead_holders_lock() {
        let mut l = SpinLock::new();
        assert!(l.try_acquire(CpuId::new(1)));
        l.steal(CpuId::new(1), CpuId::new(0));
        assert!(l.is_held_by(CpuId::new(0)));
        assert_eq!(l.steals(), 1);
        assert_eq!(l.acquisitions(), 2);
        l.release(CpuId::new(0));
        assert!(!l.is_locked());
    }

    #[test]
    fn steal_generation_bumps_only_on_steal() {
        let mut l = SpinLock::new();
        assert_eq!(l.steal_gen(), 0);
        assert!(l.try_acquire(CpuId::new(1)));
        l.release(CpuId::new(1));
        assert!(l.try_acquire(CpuId::new(1)));
        assert_eq!(l.steal_gen(), 0); // ordinary traffic leaves it alone
        l.steal(CpuId::new(1), CpuId::new(0));
        assert_eq!(l.steal_gen(), 1);
        l.release(CpuId::new(0));
        assert_eq!(l.steal_gen(), 1);
    }

    #[test]
    #[should_panic(expected = "it is not the holder")]
    fn steal_from_non_holder_panics() {
        let mut l = SpinLock::new();
        assert!(l.try_acquire(CpuId::new(1)));
        l.steal(CpuId::new(2), CpuId::new(0));
    }

    #[test]
    #[should_panic(expected = "released a lock it does not hold")]
    fn release_by_non_holder_panics() {
        let mut l = SpinLock::new();
        assert!(l.try_acquire(CpuId::new(0)));
        l.release(CpuId::new(1));
    }

    #[test]
    #[should_panic(expected = "re-acquire")]
    fn reacquire_panics() {
        let mut l = SpinLock::new();
        assert!(l.try_acquire(CpuId::new(0)));
        let _ = l.try_acquire(CpuId::new(0));
    }
}
