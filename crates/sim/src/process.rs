//! Processes: the unit of simulated execution.
//!
//! Everything that runs on a simulated processor — a user thread, a kernel
//! operation, an interrupt handler, the idle loop — is a [`Process`]: an
//! explicit state machine whose [`step`](Process::step) performs **one
//! atomic action** against shared state and returns its simulated-time cost.
//! The scheduler always steps the processor with the smallest local clock,
//! so the interleaving of shared-state accesses is sequentially consistent
//! and fully deterministic for a given seed.
//!
//! This granularity is exactly the granularity at which the paper's
//! algorithm synchronizes: flag writes, spin-loop reads, queue operations,
//! and interrupt deliveries each happen at a single, ordered instant.

use std::collections::BTreeSet;
use std::fmt;

use rand::rngs::SmallRng;

use crate::bus::BusOp;
use crate::cost::CostModel;
use crate::cpu::CpuId;
use crate::event::{BlockOn, WaitChannel};
use crate::intr::{IntrMask, Vector};
use crate::time::{Dur, Time};
use crate::topology::{BusFabric, Topology};

/// The outcome of one [`Process::step`].
#[derive(Debug)]
pub enum Step {
    /// The process performed an action costing the given duration and wants
    /// to be stepped again.
    ///
    /// Interrupts are checked at step boundaries only, so a step's cost is
    /// also the worst-case interrupt latency it adds. Break long
    /// computations into bounded chunks (tens of microseconds) rather than
    /// returning one large cost; spin loops and kernel actions are naturally
    /// fine-grained.
    Run(Dur),
    /// The process performed a final action costing the given duration and
    /// is finished; its frame is popped.
    Done(Dur),
    /// The process has nothing to do. The processor sleeps until an
    /// interrupt, spawn, or trap arrives, or until the deadline if one is
    /// given. Wakeups may be spurious: the process must re-check its
    /// condition and may park again.
    Park(Option<Time>),
    /// The process's condition check failed and it waits for the named
    /// channels to be notified, as the event-driven equivalent of a
    /// stepped spin loop. The step that returns `Block` *is* the failed
    /// check: it is charged [`BlockOn::interval`] like any `Run` step.
    /// The machine wakes the process at the exact instant the stepped
    /// loop would have observed the change (or a delivery), charging the
    /// skipped iterations analytically; see
    /// [`event`](crate::event). Wakeups may be spurious: the process
    /// must re-check its condition and may block again.
    Block(BlockOn),
}

/// A unit of simulated execution: see the module docs.
///
/// `S` is the machine's shared memory image (kernel data structures); `P` is
/// the per-processor hardware state (e.g. the TLB).
pub trait Process<S, P>: fmt::Debug {
    /// Performs one atomic action and reports its cost.
    fn step(&mut self, ctx: &mut Ctx<'_, S, P>) -> Step;

    /// A short label for traces and debugging.
    fn label(&self) -> &'static str {
        "process"
    }
}

/// A command staged by a process during a step, applied by the machine after
/// the step completes.
pub(crate) enum Command<S, P> {
    SendIpi {
        target: CpuId,
        vector: Vector,
        at: Time,
    },
    BroadcastIpi {
        vector: Vector,
        at: Time,
    },
    MulticastIpi {
        targets: Vec<CpuId>,
        vector: Vector,
        degree: usize,
        at: Time,
    },
    Spawn {
        target: CpuId,
        at: Time,
        proc: Box<dyn Process<S, P>>,
    },
    Trap {
        proc: Box<dyn Process<S, P>>,
    },
    Notify {
        chan: WaitChannel,
    },
}

impl<S, P> fmt::Debug for Command<S, P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Command::SendIpi { target, vector, at } => f
                .debug_struct("SendIpi")
                .field("target", target)
                .field("vector", vector)
                .field("at", at)
                .finish(),
            Command::BroadcastIpi { vector, at } => f
                .debug_struct("BroadcastIpi")
                .field("vector", vector)
                .field("at", at)
                .finish(),
            Command::MulticastIpi {
                targets,
                vector,
                degree,
                at,
            } => f
                .debug_struct("MulticastIpi")
                .field("targets", &targets.len())
                .field("vector", vector)
                .field("degree", degree)
                .field("at", at)
                .finish(),
            Command::Spawn { target, at, proc } => f
                .debug_struct("Spawn")
                .field("target", target)
                .field("at", at)
                .field("proc", &proc.label())
                .finish(),
            Command::Trap { proc } => f.debug_struct("Trap").field("proc", &proc.label()).finish(),
            Command::Notify { chan } => f.debug_struct("Notify").field("chan", chan).finish(),
        }
    }
}

/// The execution context handed to [`Process::step`]: the shared memory
/// image, this processor's hardware state, and the machine services
/// (bus, interrupt controller, RNG, cost model).
pub struct Ctx<'a, S, P> {
    /// The current instant on this processor's clock.
    pub now: Time,
    /// The processor executing the step.
    pub cpu_id: CpuId,
    /// The machine's shared memory image.
    pub shared: &'a mut S,
    /// This processor's hardware state (e.g. its TLB).
    pub payload: &'a mut P,
    pub(crate) mask: &'a mut IntrMask,
    pub(crate) pending: &'a BTreeSet<Vector>,
    pub(crate) fabric: &'a mut BusFabric,
    /// The node this processor lives on (precomputed by the scheduler).
    pub(crate) node: usize,
    pub(crate) costs: &'a CostModel,
    pub(crate) rng: &'a mut SmallRng,
    pub(crate) commands: &'a mut Vec<Command<S, P>>,
    pub(crate) n_cpus: usize,
    pub(crate) halted: &'a [bool],
    pub(crate) woken_spins: u64,
}

impl<'a, S, P> Ctx<'a, S, P> {
    /// The machine's cost model.
    pub fn costs(&self) -> &CostModel {
        self.costs
    }

    /// The deterministic per-machine random number generator.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.rng
    }

    /// Number of processors in the machine.
    pub fn n_cpus(&self) -> usize {
        self.n_cpus
    }

    /// Whether `cpu` is halted by a fail-stop fault. This is the holder
    /// liveness probe behind dead-lock-holder detection: reading another
    /// processor's run state costs a bus read, which the caller charges.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` is out of range for this machine.
    pub fn is_cpu_halted(&self, cpu: CpuId) -> bool {
        self.halted[cpu.index()]
    }

    /// The machine's node layout.
    pub fn topology(&self) -> Topology {
        self.fabric.topology()
    }

    /// The node this processor lives on.
    pub fn node(&self) -> usize {
        self.node
    }

    /// The node `cpu` lives on.
    pub fn node_of(&self, cpu: CpuId) -> usize {
        self.fabric.topology().node_of(cpu)
    }

    /// Issues a bus read (cache miss) against this processor's own node at
    /// the current instant and returns its total delay including queueing.
    /// Add the result to the step's cost.
    pub fn bus_read(&mut self) -> Dur {
        self.fabric.access_local(
            self.now,
            self.node,
            BusOp::Read,
            self.costs.bus_read_latency,
        )
    }

    /// Issues a bus write (write-through) against this processor's own node
    /// and returns its total delay.
    pub fn bus_write(&mut self) -> Dur {
        self.fabric.access_local(
            self.now,
            self.node,
            BusOp::Write,
            self.costs.bus_write_latency,
        )
    }

    /// Issues an interlocked read-modify-write bus transaction against this
    /// processor's own node and returns its total delay.
    pub fn bus_interlocked(&mut self) -> Dur {
        self.fabric.access_local(
            self.now,
            self.node,
            BusOp::Interlocked,
            self.costs.bus_read_latency + self.costs.bus_write_latency,
        )
    }

    /// Issues a bus read against memory homed on `home` node, crossing the
    /// interconnect when that is not this processor's node. Identical to
    /// [`Ctx::bus_read`] on a flat topology.
    pub fn bus_read_at(&mut self, home: usize) -> Dur {
        self.fabric.access(
            self.now,
            self.node,
            home,
            BusOp::Read,
            self.costs.bus_read_latency,
        )
    }

    /// Issues a bus write against memory homed on `home` node. Identical to
    /// [`Ctx::bus_write`] on a flat topology.
    pub fn bus_write_at(&mut self, home: usize) -> Dur {
        self.fabric.access(
            self.now,
            self.node,
            home,
            BusOp::Write,
            self.costs.bus_write_latency,
        )
    }

    /// Issues an interlocked read-modify-write against memory homed on
    /// `home` node. Identical to [`Ctx::bus_interlocked`] on a flat
    /// topology.
    pub fn bus_interlocked_at(&mut self, home: usize) -> Dur {
        self.fabric.access(
            self.now,
            self.node,
            home,
            BusOp::Interlocked,
            self.costs.bus_read_latency + self.costs.bus_write_latency,
        )
    }

    /// This processor's current interrupt mask.
    pub fn mask(&self) -> IntrMask {
        *self.mask
    }

    /// Replaces the interrupt mask, returning the previous one (the paper's
    /// `disable_interrupts()` idiom).
    pub fn set_mask(&mut self, mask: IntrMask) -> IntrMask {
        std::mem::replace(self.mask, mask)
    }

    /// Whether `vector` is pending (latched but not yet dispatched) on this
    /// processor.
    pub fn is_pending(&self, vector: Vector) -> bool {
        self.pending.contains(&vector)
    }

    /// Sends an inter-processor interrupt to `target`. The interrupt is
    /// latched at the target after the controller's delivery latency; the
    /// *sender* should additionally charge [`CostModel::ipi_send`] in its
    /// step cost.
    ///
    /// # Panics
    ///
    /// Panics if `target` is out of range for this machine.
    pub fn send_ipi(&mut self, target: CpuId, vector: Vector) {
        assert!(
            target.index() < self.n_cpus,
            "send_ipi: target {target} out of range ({} cpus)",
            self.n_cpus
        );
        self.commands.push(Command::SendIpi {
            target,
            vector,
            at: self.now + self.costs.ipi_latency,
        });
    }

    /// Sends `vector` to every processor except this one (the Section 9
    /// broadcast-interrupt hardware option). The sender should charge
    /// [`CostModel::ipi_broadcast`] once.
    pub fn broadcast_ipi(&mut self, vector: Vector) {
        self.commands.push(Command::BroadcastIpi {
            vector,
            at: self.now + self.costs.ipi_latency,
        });
    }

    /// Posts one tree-fanout multicast descriptor for `vector` to `targets`
    /// (the Section 9 multicast hardware option). The poster's controller
    /// sends to the first `degree` targets; each recipient's controller
    /// forwards to its `degree` children in the [`FanoutTree`]
    /// (crate::FanoutTree) laid over the list — the j-th forward of any hop
    /// leaves its controller after `(j+1) ·` [`CostModel::ipi_send`] and
    /// lands [`CostModel::ipi_latency`] later. A halted relay latches its
    /// interrupt but forwards nothing, losing its whole subtree; recovering
    /// that is software's job (the shootdown watchdog). The *poster* should
    /// charge [`CostModel::ipi_send`] once — the descriptor write — not once
    /// per target.
    ///
    /// # Panics
    ///
    /// Panics if `degree` is zero or any target is out of range.
    pub fn multicast_ipi(&mut self, targets: Vec<CpuId>, vector: Vector, degree: usize) {
        assert!(degree >= 1, "multicast_ipi: fanout degree must be >= 1");
        for t in &targets {
            assert!(
                t.index() < self.n_cpus,
                "multicast_ipi: target {t} out of range ({} cpus)",
                self.n_cpus
            );
        }
        self.commands.push(Command::MulticastIpi {
            targets,
            vector,
            degree,
            at: self.now,
        });
    }

    /// Schedules `proc` to start on `target` at the current instant (plus
    /// delivery as a cross-processor event). Used for thread placement by
    /// the workloads.
    ///
    /// # Panics
    ///
    /// Panics if `target` is out of range for this machine.
    pub fn spawn(&mut self, target: CpuId, proc: Box<dyn Process<S, P>>) {
        assert!(
            target.index() < self.n_cpus,
            "spawn: target {target} out of range ({} cpus)",
            self.n_cpus
        );
        self.commands.push(Command::Spawn {
            target,
            at: self.now,
            proc,
        });
    }

    /// Pushes `proc` as a trap frame on this processor: it runs to
    /// completion before the current process resumes (the page-fault path).
    /// The interrupt mask is left unchanged.
    pub fn trap(&mut self, proc: Box<dyn Process<S, P>>) {
        self.commands.push(Command::Trap { proc });
    }

    /// Notifies `chan`: every processor blocked on it is scheduled to wake
    /// at the first check-lattice instant at which this step's writes are
    /// visible to it (see [`event`](crate::event)). A no-op when nothing
    /// is blocked on the channel, so writers notify unconditionally.
    ///
    /// Call this *in the same step* as the shared-state write that can
    /// satisfy a waiter's condition; the wake computation uses this step's
    /// order instant.
    pub fn notify(&mut self, chan: WaitChannel) {
        self.commands.push(Command::Notify { chan });
    }

    /// Spin iterations the stepped loop would have executed while this
    /// process was event-blocked — non-zero only during the first step
    /// after an event wakeup. The processor's clock and step statistics
    /// were already charged by the machine; spin sites whose iterations
    /// have *side effects* (a failed [`SpinLock::try_acquire`]
    /// (crate::SpinLock::try_acquire) counts a contention per iteration)
    /// use this to replicate them exactly, via
    /// [`SpinLock::charge_spins`](crate::SpinLock::charge_spins).
    pub fn woken_spins(&self) -> u64 {
        self.woken_spins
    }
}

impl<S, P> fmt::Debug for Ctx<'_, S, P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ctx")
            .field("now", &self.now)
            .field("cpu_id", &self.cpu_id)
            .field("mask", &self.mask)
            .finish_non_exhaustive()
    }
}
