//! Wait channels: event-driven parking that stays bit-identical to
//! spinning.
//!
//! A stepped spin loop re-checks its condition every
//! `spin_iter + cache_read`; host work is proportional to simulated spin
//! time. The event layer removes that cost without changing a single
//! simulated observable: a waiting process returns
//! [`Step::Block`](crate::Step::Block) naming the [`WaitChannel`]s whose
//! state its condition reads, and every writer of that state calls
//! [`Ctx::notify`](crate::Ctx::notify) after the write. The machine then
//! computes — analytically — the exact instant at which the stepped loop
//! would have observed the change, charges the skipped iterations to the
//! processor's clock and statistics in one addition, and resumes the
//! process for a live re-check.
//!
//! # The check lattice
//!
//! A spinner whose last live failed check happened at anchor `A` with
//! per-iteration cost `c` re-checks at `A + k*c` for `k >= 1`. The
//! scheduler executes steps in globally non-decreasing `(time, cpu)`
//! order, so a write performed by a step at `(T_w, cpu_w)` is visible to
//! the waiter's check at `(T_j, cpu_s)` exactly when
//! `(T_w, cpu_w) < (T_j, cpu_s)` lexicographically. The wake instant is
//! therefore the smallest lattice point at which the write is visible —
//! computed by [`wake_for_notify`]. Interrupt and spawn deliveries latched
//! at an absolute instant preempt the spinner at its first check at or
//! after that instant ([`wake_for_delivery`]).
//!
//! Because notifies are processed in the same global order as every other
//! shared-state access, a waiter can never park *after* missing its
//! wakeup: any notify ordered before the park was visible to the live
//! check the process performed in the very step that parked it. There is
//! no lost-wakeup window by construction.
//!
//! # Channel key registry
//!
//! Channels are pure 64-bit keys; no registration exists. Layers carve the
//! key space by high bits to stay collision-free:
//!
//! | bits 32.. | owner      | meaning                         |
//! |-----------|------------|---------------------------------|
//! | `0x1`     | pmap       | per-pmap lock release           |
//! | `0x2`     | core       | per-processor action-queue lock |
//! | `0x3`     | core       | the global sync channel         |
//! | `0x4`     | vm         | per-task map lock               |
//! | `0x5`     | workloads  | workload-private flags          |

use crate::time::{Dur, Time};

/// A wait-channel key: an opaque identity processes block on and writers
/// notify. See the module docs for the key registry.
///
/// # Examples
///
/// ```
/// use machtlb_sim::WaitChannel;
///
/// let chan = WaitChannel::new(0x1_0000_0000 | 7);
/// assert_eq!(chan.key(), 0x1_0000_0007);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WaitChannel(u64);

impl WaitChannel {
    /// Creates a channel from its key.
    pub const fn new(key: u64) -> WaitChannel {
        WaitChannel(key)
    }

    /// The channel's key.
    pub const fn key(self) -> u64 {
        self.0
    }
}

/// What a blocking process waits on: up to two channels (a responder waits
/// on the kernel pmap's lock *and* its current user pmap's lock) and the
/// exact per-iteration cost the stepped loop would have charged.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct BlockOn {
    /// The channels whose notification can change the awaited condition.
    pub chans: [Option<WaitChannel>; 2],
    /// Cost of one spin iteration of the equivalent stepped loop
    /// (`spin_iter + cache_read` at every kernel spin site). Must be
    /// non-zero.
    pub interval: Dur,
    /// If set, the process also wakes (spuriously, to re-check) at the
    /// first check-lattice instant at or after this deadline — the
    /// event-driven equivalent of a stepped spinner whose loop body tests
    /// a timeout against its clock. The stepped loop observes the expiry
    /// at exactly that lattice point, so equivalence is preserved.
    pub deadline: Option<Time>,
}

impl BlockOn {
    /// Blocks on a single channel.
    pub fn one(chan: WaitChannel, interval: Dur) -> BlockOn {
        BlockOn {
            chans: [Some(chan), None],
            interval,
            deadline: None,
        }
    }

    /// Blocks on either of two channels.
    pub fn two(a: WaitChannel, b: WaitChannel, interval: Dur) -> BlockOn {
        BlockOn {
            chans: [Some(a), Some(b)],
            interval,
            deadline: None,
        }
    }

    /// Adds a wake deadline (see [`BlockOn::deadline`]).
    pub fn with_deadline(mut self, deadline: Time) -> BlockOn {
        self.deadline = Some(deadline);
        self
    }

    /// Whether `chan` is one of the awaited channels.
    pub(crate) fn listens_to(&self, chan: WaitChannel) -> bool {
        self.chans.contains(&Some(chan))
    }
}

/// The first check-lattice instant `anchor + k*interval` (`k >= 1`) at
/// which a write performed at `t_w` is visible to the waiter. At an exact
/// lattice point visibility follows the `(time, cpu)` tie-break:
/// `writer_orders_first` is whether the writer's cpu index is below the
/// waiter's.
pub(crate) fn wake_for_notify(
    anchor: Time,
    interval: Dur,
    t_w: Time,
    writer_orders_first: bool,
) -> Time {
    debug_assert!(interval > Dur::ZERO, "a spin iteration costs time");
    // The notify was executed after the step that parked the waiter, so
    // t_w >= anchor; saturate anyway for robustness.
    let delta = t_w.saturating_duration_since(anchor).as_nanos();
    let c = interval.as_nanos();
    let (q, r) = (delta / c, delta % c);
    let k = if r > 0 {
        q + 1
    } else if writer_orders_first {
        q.max(1)
    } else {
        q + 1
    };
    anchor + Dur::nanos(c * k)
}

/// The first check-lattice instant `anchor + k*interval` (`k >= 1`) at or
/// after a delivery latched at `t_d`: the stepped spinner's first
/// scheduler step at which a pending interrupt dispatches or a spawned
/// frame runs instead of the failed check.
pub(crate) fn wake_for_delivery(anchor: Time, interval: Dur, t_d: Time) -> Time {
    debug_assert!(interval > Dur::ZERO, "a spin iteration costs time");
    let delta = t_d.saturating_duration_since(anchor).as_nanos();
    let c = interval.as_nanos();
    let (q, r) = (delta / c, delta % c);
    let k = if r > 0 { q + 1 } else { q.max(1) };
    anchor + Dur::nanos(c * k)
}

/// Spin iterations the stepped loop would have executed strictly between
/// the parking check at `anchor` and the wake check at `wake_at` — the
/// count charged analytically at wakeup. The wake instant is always a
/// lattice point, so the division is exact.
pub(crate) fn skipped_iterations(anchor: Time, interval: Dur, wake_at: Time) -> u64 {
    let delta = wake_at.duration_since(anchor).as_nanos();
    let c = interval.as_nanos();
    debug_assert_eq!(delta % c, 0, "wake instants lie on the check lattice");
    debug_assert!(
        delta >= c,
        "the first re-check is one interval after the anchor"
    );
    delta / c - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    const C: Dur = Dur::nanos(2_350);

    #[test]
    fn channel_round_trips_its_key() {
        let chan = WaitChannel::new(0x2_0000_0000 | 13);
        assert_eq!(chan.key(), 0x2_0000_000d);
        assert_eq!(chan, WaitChannel::new(chan.key()));
    }

    #[test]
    fn block_on_listens_to_its_channels() {
        let a = WaitChannel::new(1);
        let b = WaitChannel::new(2);
        assert!(BlockOn::one(a, C).listens_to(a));
        assert!(!BlockOn::one(a, C).listens_to(b));
        assert!(BlockOn::two(a, b, C).listens_to(b));
    }

    #[test]
    fn notify_between_lattice_points_wakes_at_the_next() {
        let a = Time::from_nanos(1_000);
        // Write lands strictly between checks k=2 and k=3.
        let t_w = a + Dur::nanos(2 * 2_350 + 1);
        let woke = wake_for_notify(a, C, t_w, true);
        assert_eq!(woke, a + Dur::nanos(3 * 2_350));
        assert_eq!(skipped_iterations(a, C, woke), 2);
    }

    #[test]
    fn notify_on_a_lattice_point_respects_the_cpu_tie_break() {
        let a = Time::from_nanos(0);
        let t_w = a + Dur::nanos(4 * 2_350);
        // A lower-indexed writer's step at the same instant orders before
        // the waiter's check: visible at that very check.
        assert_eq!(wake_for_notify(a, C, t_w, true), t_w);
        // A higher-indexed writer orders after: the next check sees it.
        assert_eq!(wake_for_notify(a, C, t_w, false), a + Dur::nanos(5 * 2_350));
    }

    #[test]
    fn notify_at_the_anchor_instant_wakes_at_the_first_check() {
        // A same-instant notify can only come from a cpu ordered after the
        // waiter (the waiter's own step parked it), so the first check at
        // anchor + c is the earliest that can see it.
        let a = Time::from_nanos(500);
        assert_eq!(wake_for_notify(a, C, a, false), a + C);
        // Even the impossible-by-ordering earlier-writer case never wakes
        // before the first lattice point.
        assert_eq!(wake_for_notify(a, C, a, true), a + C);
        assert_eq!(skipped_iterations(a, C, a + C), 0);
    }

    #[test]
    fn delivery_wakes_at_the_first_point_at_or_after_the_latch() {
        let a = Time::from_nanos(0);
        assert_eq!(wake_for_delivery(a, C, a + Dur::nanos(1)), a + C);
        assert_eq!(
            wake_for_delivery(a, C, a + Dur::nanos(2_350)),
            a + Dur::nanos(2_350)
        );
        assert_eq!(
            wake_for_delivery(a, C, a + Dur::nanos(2_351)),
            a + Dur::nanos(4_700)
        );
        // A delivery from before the park (applied late) still wakes no
        // earlier than the first re-check.
        assert_eq!(wake_for_delivery(a, C, a), a + C);
    }
}
