//! Simulated time.
//!
//! The simulator keeps time in integer nanoseconds since machine boot. The
//! paper reports all measurements in microseconds (the Encore Multimax system
//! control card exposes a free-running 32-bit microsecond counter); the
//! nanosecond base gives headroom for sub-microsecond cost-model constants
//! without rounding drift.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant of simulated time, in nanoseconds since boot.
///
/// `Time` is an absolute instant; [`Dur`] is a span. The two interact the way
/// `std::time::Instant` and `std::time::Duration` do.
///
/// # Examples
///
/// ```
/// use machtlb_sim::{Dur, Time};
///
/// let t = Time::ZERO + Dur::micros(430);
/// assert_eq!(t.as_micros_f64(), 430.0);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

impl Time {
    /// Machine boot: the origin of simulated time.
    pub const ZERO: Time = Time(0);
    /// The largest representable instant (used as an "infinite" deadline).
    pub const MAX: Time = Time(u64::MAX);

    /// Creates an instant `ns` nanoseconds after boot.
    pub const fn from_nanos(ns: u64) -> Time {
        Time(ns)
    }

    /// Creates an instant `us` microseconds after boot.
    pub const fn from_micros(us: u64) -> Time {
        Time(us * 1_000)
    }

    /// Nanoseconds since boot.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since boot, as a float (the paper's reporting unit).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Milliseconds since boot, as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: Time) -> Dur {
        Dur(self
            .0
            .checked_sub(earlier.0)
            .expect("duration_since: `earlier` is later than `self`"))
    }

    /// Saturating version of [`Time::duration_since`]: returns [`Dur::ZERO`]
    /// instead of panicking when `earlier` is later than `self`.
    pub fn saturating_duration_since(self, earlier: Time) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

impl Add<Dur> for Time {
    type Output = Time;
    fn add(self, rhs: Dur) -> Time {
        Time(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<Dur> for Time {
    fn add_assign(&mut self, rhs: Dur) {
        *self = *self + rhs;
    }
}

impl Sub<Dur> for Time {
    type Output = Time;
    fn sub(self, rhs: Dur) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }
}

/// A span of simulated time, in nanoseconds.
///
/// Costs in the [`CostModel`](crate::CostModel) and all elapsed-time
/// measurements are expressed as `Dur` values.
///
/// # Examples
///
/// ```
/// use machtlb_sim::Dur;
///
/// let per_cpu = Dur::micros(55);
/// assert_eq!((per_cpu * 4).as_micros_f64(), 220.0);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dur(u64);

impl Dur {
    /// The empty span.
    pub const ZERO: Dur = Dur(0);

    /// Creates a span of `ns` nanoseconds.
    pub const fn nanos(ns: u64) -> Dur {
        Dur(ns)
    }

    /// Creates a span of `us` microseconds.
    pub const fn micros(us: u64) -> Dur {
        Dur(us * 1_000)
    }

    /// Creates a span of `ms` milliseconds.
    pub const fn millis(ms: u64) -> Dur {
        Dur(ms * 1_000_000)
    }

    /// The span in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span in microseconds, as a float (the paper's reporting unit).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// True if the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Dur) -> Dur {
        Dur(self.0.saturating_sub(rhs.0))
    }

    /// Scales the span by a float factor, rounding to the nearest nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> Dur {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "Dur::mul_f64: factor must be finite and non-negative, got {factor}"
        );
        Dur((self.0 as f64 * factor).round() as u64)
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

impl Add for Dur {
    type Output = Dur;
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Dur {
    fn add_assign(&mut self, rhs: Dur) {
        *self = *self + rhs;
    }
}

impl Sub for Dur {
    type Output = Dur;
    fn sub(self, rhs: Dur) -> Dur {
        Dur(self
            .0
            .checked_sub(rhs.0)
            .expect("Dur subtraction underflow"))
    }
}

impl SubAssign for Dur {
    fn sub_assign(&mut self, rhs: Dur) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Dur {
    type Output = Dur;
    fn mul(self, rhs: u64) -> Dur {
        Dur(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for Dur {
    type Output = Dur;
    fn div(self, rhs: u64) -> Dur {
        Dur(self.0 / rhs)
    }
}

impl Sum for Dur {
    fn sum<I: Iterator<Item = Dur>>(iter: I) -> Dur {
        iter.fold(Dur::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = Time::from_micros(10) + Dur::nanos(500);
        assert_eq!(t.as_nanos(), 10_500);
        assert_eq!(t.duration_since(Time::from_micros(10)), Dur::nanos(500));
    }

    #[test]
    fn saturating_duration_since_clamps() {
        let early = Time::from_micros(1);
        let late = Time::from_micros(2);
        assert_eq!(early.saturating_duration_since(late), Dur::ZERO);
        assert_eq!(late.saturating_duration_since(early), Dur::micros(1));
    }

    #[test]
    #[should_panic(expected = "duration_since")]
    fn duration_since_panics_on_reversed_order() {
        let _ = Time::ZERO.duration_since(Time::from_micros(1));
    }

    #[test]
    fn dur_scaling() {
        assert_eq!(Dur::micros(55) * 3, Dur::micros(165));
        assert_eq!(Dur::micros(100) / 4, Dur::micros(25));
        assert_eq!(Dur::micros(10).mul_f64(1.5), Dur::micros(15));
    }

    #[test]
    fn dur_sum() {
        let total: Dur = [Dur::micros(1), Dur::micros(2), Dur::micros(3)]
            .into_iter()
            .sum();
        assert_eq!(total, Dur::micros(6));
    }

    #[test]
    fn display_in_microseconds() {
        assert_eq!(Dur::nanos(1_500).to_string(), "1.500us");
        assert_eq!(Time::from_micros(430).to_string(), "430.000us");
    }

    #[test]
    #[should_panic(expected = "factor must be finite")]
    fn mul_f64_rejects_negative() {
        let _ = Dur::micros(1).mul_f64(-1.0);
    }

    #[test]
    fn time_add_saturates_at_max() {
        assert_eq!(Time::MAX + Dur::micros(1), Time::MAX);
    }
}
