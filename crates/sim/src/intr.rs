//! Interrupt structure: vectors, classes, and per-processor masks.
//!
//! The paper distinguishes two classes of interrupt that matter to the
//! shootdown algorithm:
//!
//! - **device interrupts**, which the kernel masks in many places to protect
//!   locks shared with interrupt routines, and
//! - the **shootdown inter-processor interrupt** (IPI), which on stock
//!   hardware shares the device-interrupt mask — so every kernel
//!   interrupt-disabled section delays shootdown responses, producing the
//!   skew in kernel-pmap shootdown times (Section 8).
//!
//! Section 9's first proposed hardware feature is a *high-priority software
//! interrupt* maskable independently of device interrupts. Modelling masks as
//! a pair of class bits lets the reproduction flip that single design switch.

use std::fmt;

/// An interrupt vector number.
///
/// Lower numbers are dispatched first when several vectors are pending.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Vector(u8);

impl Vector {
    /// Creates a vector with the given number.
    pub const fn new(n: u8) -> Vector {
        Vector(n)
    }

    /// The vector number.
    pub const fn number(self) -> u8 {
        self.0
    }
}

impl fmt::Display for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// The class an interrupt vector belongs to, which determines which mask
/// bit blocks it.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum IntrClass {
    /// A device interrupt (disk, network, clock).
    Device,
    /// An inter-processor interrupt (the shootdown interrupt).
    Ipi,
}

/// A per-processor interrupt mask: which classes are currently blocked.
///
/// `true` means *blocked*. On stock Multimax-like hardware the kernel's
/// `disable_interrupts()` sets both bits ([`IntrMask::ALL_BLOCKED`]); with
/// Section 9's high-priority software interrupt the kernel's device-critical
/// sections set only [`IntrMask::DEVICE_BLOCKED`].
///
/// # Examples
///
/// ```
/// use machtlb_sim::{IntrClass, IntrMask};
///
/// let m = IntrMask::DEVICE_BLOCKED;
/// assert!(m.blocks(IntrClass::Device));
/// assert!(!m.blocks(IntrClass::Ipi));
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct IntrMask {
    /// Device interrupts blocked.
    pub device: bool,
    /// Inter-processor interrupts blocked.
    pub ipi: bool,
}

impl IntrMask {
    /// Nothing blocked: all interrupts deliverable.
    pub const OPEN: IntrMask = IntrMask {
        device: false,
        ipi: false,
    };

    /// Everything blocked: the classic `disable_interrupts()`.
    pub const ALL_BLOCKED: IntrMask = IntrMask {
        device: true,
        ipi: true,
    };

    /// Device interrupts blocked, IPIs deliverable: the Section 9
    /// high-priority software-interrupt configuration.
    pub const DEVICE_BLOCKED: IntrMask = IntrMask {
        device: true,
        ipi: false,
    };

    /// Whether this mask blocks interrupts of `class`.
    pub const fn blocks(self, class: IntrClass) -> bool {
        match class {
            IntrClass::Device => self.device,
            IntrClass::Ipi => self.ipi,
        }
    }
}

impl fmt::Display for IntrMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.device, self.ipi) {
            (false, false) => write!(f, "open"),
            (true, true) => write!(f, "all-blocked"),
            (true, false) => write!(f, "device-blocked"),
            (false, true) => write!(f, "ipi-blocked"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_constants_block_expected_classes() {
        assert!(!IntrMask::OPEN.blocks(IntrClass::Device));
        assert!(!IntrMask::OPEN.blocks(IntrClass::Ipi));
        assert!(IntrMask::ALL_BLOCKED.blocks(IntrClass::Device));
        assert!(IntrMask::ALL_BLOCKED.blocks(IntrClass::Ipi));
        assert!(IntrMask::DEVICE_BLOCKED.blocks(IntrClass::Device));
        assert!(!IntrMask::DEVICE_BLOCKED.blocks(IntrClass::Ipi));
    }

    #[test]
    fn default_mask_is_open() {
        assert_eq!(IntrMask::default(), IntrMask::OPEN);
    }

    #[test]
    fn vectors_order_by_number() {
        assert!(Vector::new(1) < Vector::new(7));
        assert_eq!(Vector::new(3).number(), 3);
        assert_eq!(Vector::new(3).to_string(), "v3");
    }
}
