//! Interrupt structure: vectors, classes, and per-processor masks.
//!
//! The paper distinguishes two classes of interrupt that matter to the
//! shootdown algorithm:
//!
//! - **device interrupts**, which the kernel masks in many places to protect
//!   locks shared with interrupt routines, and
//! - the **shootdown inter-processor interrupt** (IPI), which on stock
//!   hardware shares the device-interrupt mask — so every kernel
//!   interrupt-disabled section delays shootdown responses, producing the
//!   skew in kernel-pmap shootdown times (Section 8).
//!
//! Section 9's first proposed hardware feature is a *high-priority software
//! interrupt* maskable independently of device interrupts. Modelling masks as
//! a pair of class bits lets the reproduction flip that single design switch.

use std::fmt;

/// An interrupt vector number.
///
/// Lower numbers are dispatched first when several vectors are pending.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Vector(u8);

impl Vector {
    /// Creates a vector with the given number.
    pub const fn new(n: u8) -> Vector {
        Vector(n)
    }

    /// The vector number.
    pub const fn number(self) -> u8 {
        self.0
    }
}

impl fmt::Display for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// The class an interrupt vector belongs to, which determines which mask
/// bit blocks it.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum IntrClass {
    /// A device interrupt (disk, network, clock).
    Device,
    /// An inter-processor interrupt (the shootdown interrupt).
    Ipi,
}

/// A per-processor interrupt mask: which classes are currently blocked.
///
/// `true` means *blocked*. On stock Multimax-like hardware the kernel's
/// `disable_interrupts()` sets both bits ([`IntrMask::ALL_BLOCKED`]); with
/// Section 9's high-priority software interrupt the kernel's device-critical
/// sections set only [`IntrMask::DEVICE_BLOCKED`].
///
/// # Examples
///
/// ```
/// use machtlb_sim::{IntrClass, IntrMask};
///
/// let m = IntrMask::DEVICE_BLOCKED;
/// assert!(m.blocks(IntrClass::Device));
/// assert!(!m.blocks(IntrClass::Ipi));
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct IntrMask {
    /// Device interrupts blocked.
    pub device: bool,
    /// Inter-processor interrupts blocked.
    pub ipi: bool,
}

impl IntrMask {
    /// Nothing blocked: all interrupts deliverable.
    pub const OPEN: IntrMask = IntrMask {
        device: false,
        ipi: false,
    };

    /// Everything blocked: the classic `disable_interrupts()`.
    pub const ALL_BLOCKED: IntrMask = IntrMask {
        device: true,
        ipi: true,
    };

    /// Device interrupts blocked, IPIs deliverable: the Section 9
    /// high-priority software-interrupt configuration.
    pub const DEVICE_BLOCKED: IntrMask = IntrMask {
        device: true,
        ipi: false,
    };

    /// Whether this mask blocks interrupts of `class`.
    pub const fn blocks(self, class: IntrClass) -> bool {
        match class {
            IntrClass::Device => self.device,
            IntrClass::Ipi => self.ipi,
        }
    }
}

impl fmt::Display for IntrMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.device, self.ipi) {
            (false, false) => write!(f, "open"),
            (true, true) => write!(f, "all-blocked"),
            (true, false) => write!(f, "device-blocked"),
            (false, true) => write!(f, "ipi-blocked"),
        }
    }
}

/// The forwarding topology of a tree-fanout multicast IPI (Section 9's
/// multicast hardware option).
///
/// A multicast descriptor names a flattened target list; the poster's
/// interrupt controller sends to the first `degree` slots, and each
/// recipient's controller forwards to its `degree` children in the implicit
/// k-ary heap laid over the list (children of slot `i` are slots
/// `(i+1)*degree .. (i+1)*degree + degree`). Delivery latency is therefore
/// O(degree · log_degree n) controller transactions instead of the n
/// serialized sends of the unicast loop.
///
/// A halted relay latches its own interrupt but forwards nothing, so its
/// whole subtree is lost until software (the watchdog) repairs it — the
/// fabric itself makes no reliability promise beyond what a single wire
/// does.
///
/// # Examples
///
/// ```
/// use machtlb_sim::FanoutTree;
///
/// let t = FanoutTree::new(2, 7);
/// assert_eq!(t.root_children().collect::<Vec<_>>(), vec![0, 1]);
/// assert_eq!(t.children(0).collect::<Vec<_>>(), vec![2, 3]);
/// assert_eq!(t.children(2).collect::<Vec<_>>(), vec![6]);
/// assert_eq!(t.depth(), 3);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct FanoutTree {
    degree: usize,
    len: usize,
}

impl FanoutTree {
    /// Lays a `degree`-ary forwarding tree over `len` flattened targets.
    ///
    /// # Panics
    ///
    /// Panics if `degree` is zero.
    pub fn new(degree: usize, len: usize) -> FanoutTree {
        assert!(degree >= 1, "fanout degree must be at least 1");
        FanoutTree { degree, len }
    }

    /// The fanout degree `k`.
    pub fn degree(self) -> usize {
        self.degree
    }

    /// Number of targets in the flattened list.
    pub fn len(self) -> usize {
        self.len
    }

    /// Whether the target list is empty.
    pub fn is_empty(self) -> bool {
        self.len == 0
    }

    /// The slots the poster's controller sends to directly.
    pub fn root_children(self) -> std::ops::Range<usize> {
        0..self.degree.min(self.len)
    }

    /// The slots the relay at `slot` forwards to.
    pub fn children(self, slot: usize) -> std::ops::Range<usize> {
        let first = (slot + 1).saturating_mul(self.degree);
        first.min(self.len)..first.saturating_add(self.degree).min(self.len)
    }

    /// The relay that forwards to `slot`, or `None` for the poster's own
    /// sends (slots below `degree`).
    pub fn parent(self, slot: usize) -> Option<usize> {
        (slot >= self.degree).then(|| slot / self.degree - 1)
    }

    /// Number of forwarding hops from the poster to `slot`, counting the
    /// poster's own send as one.
    pub fn hops(self, slot: usize) -> usize {
        let mut hops = 1;
        let mut s = slot;
        while let Some(p) = self.parent(s) {
            hops += 1;
            s = p;
        }
        hops
    }

    /// The maximum hop count over all slots: the tree's delivery depth.
    pub fn depth(self) -> usize {
        if self.len == 0 {
            0
        } else {
            self.hops(self.len - 1)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_constants_block_expected_classes() {
        assert!(!IntrMask::OPEN.blocks(IntrClass::Device));
        assert!(!IntrMask::OPEN.blocks(IntrClass::Ipi));
        assert!(IntrMask::ALL_BLOCKED.blocks(IntrClass::Device));
        assert!(IntrMask::ALL_BLOCKED.blocks(IntrClass::Ipi));
        assert!(IntrMask::DEVICE_BLOCKED.blocks(IntrClass::Device));
        assert!(!IntrMask::DEVICE_BLOCKED.blocks(IntrClass::Ipi));
    }

    #[test]
    fn default_mask_is_open() {
        assert_eq!(IntrMask::default(), IntrMask::OPEN);
    }

    #[test]
    fn vectors_order_by_number() {
        assert!(Vector::new(1) < Vector::new(7));
        assert_eq!(Vector::new(3).number(), 3);
        assert_eq!(Vector::new(3).to_string(), "v3");
    }

    #[test]
    fn fanout_tree_partitions_slots_exactly_once() {
        for degree in 1..=5 {
            for len in 0..40 {
                let t = FanoutTree::new(degree, len);
                let mut seen = vec![0u32; len];
                for s in t.root_children() {
                    seen[s] += 1;
                }
                for relay in 0..len {
                    for s in t.children(relay) {
                        assert_eq!(t.parent(s), Some(relay));
                        seen[s] += 1;
                    }
                }
                // Every slot is reached by exactly one sender (poster or relay).
                assert!(seen.iter().all(|&c| c == 1), "degree {degree} len {len}");
            }
        }
    }

    #[test]
    fn fanout_depth_is_logarithmic() {
        let t = FanoutTree::new(4, 1024);
        assert_eq!(t.depth(), 5); // 4 + 16 + 64 + 256 + 1024 covers 1024 slots
        assert_eq!(FanoutTree::new(2, 1).depth(), 1);
        assert_eq!(FanoutTree::new(2, 0).depth(), 0);
        // Degree >= len degenerates to one flat hop from the poster.
        assert_eq!(FanoutTree::new(16, 7).depth(), 1);
    }

    #[test]
    fn fanout_hops_grow_with_slot() {
        let t = FanoutTree::new(2, 15);
        assert_eq!(t.hops(0), 1);
        assert_eq!(t.hops(1), 1);
        assert_eq!(t.hops(2), 2);
        assert_eq!(t.hops(5), 2);
        assert_eq!(t.hops(6), 3);
        assert_eq!(t.hops(13), 3);
        assert_eq!(t.hops(14), 4);
    }
}
