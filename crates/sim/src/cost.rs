//! The simulated machine's cost model.
//!
//! Every primitive action a kernel or user process performs is charged a
//! duration drawn from this table. The defaults approximate the paper's
//! evaluation platform — a 16-processor NS32332 Encore Multimax (~2 MIPS per
//! CPU, write-through caches, single shared bus) — and are calibrated so the
//! basic shootdown cost lands near the paper's least-squares fit of
//! 430 µs + 55 µs per additional processor (Section 7.1). Absolute agreement
//! with 1989 hardware is not claimed; the *shape* of every reproduced result
//! is what the calibration targets.

use crate::time::Dur;

/// Durations charged for the primitive actions of the simulated machine.
///
/// This is a passive parameter bag: all fields are public so experiments can
/// explore the hardware-design space of Section 9 (e.g. zeroing
/// [`intr_entry`](Self::intr_entry) savings for hardware-assisted variants).
///
/// # Examples
///
/// ```
/// use machtlb_sim::{CostModel, Dur};
///
/// let mut costs = CostModel::multimax();
/// costs.ipi_latency = Dur::micros(5); // a faster interrupt controller
/// assert!(costs.ipi_latency < CostModel::multimax().ipi_latency);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CostModel {
    /// A register-to-register instruction or taken branch.
    pub local_op: Dur,
    /// A load that hits the (write-through) cache.
    pub cache_read: Dur,
    /// Memory latency of a bus read beyond the bus hold time.
    pub bus_read_latency: Dur,
    /// Memory latency of a bus write beyond the bus hold time.
    pub bus_write_latency: Dur,
    /// How long one transaction occupies the shared bus. Queueing behind
    /// other processors' transactions is what produces the contention knee
    /// above 12 processors in Figure 2. On a multi-node
    /// [`Topology`](crate::Topology) this is the per-node bus hold time.
    pub bus_occupancy: Dur,
    /// How long one cross-node transaction occupies the inter-node
    /// interconnect (unused on a flat topology; the crossing's latency
    /// beyond the hold comes from the topology's remote latency).
    pub interconnect_occupancy: Dur,
    /// Interrupt entry: vectoring, pipeline drain, and the dispatch code up
    /// to the handler body (state save is charged separately per word).
    pub intr_entry: Dur,
    /// Interrupt exit: state restore and return from interrupt.
    pub intr_exit: Dur,
    /// Number of register words saved to memory (through the write-through
    /// cache, hence over the bus) on interrupt entry.
    pub state_save_words: u32,
    /// Interrupt-controller delivery latency from the initiating processor's
    /// poke to the target processor observing the interrupt.
    pub ipi_latency: Dur,
    /// Cost on the sending processor of poking the interrupt controller for
    /// one target.
    pub ipi_send: Dur,
    /// Cost of poking the interrupt controller once to interrupt *all* other
    /// processors (the broadcast option of Section 9).
    pub ipi_broadcast: Dur,
    /// Acquiring an uncontended simple lock (interlocked bus access).
    pub lock_acquire: Dur,
    /// Releasing a simple lock.
    pub lock_release: Dur,
    /// One iteration of a spin-wait loop, excluding any bus traffic the
    /// specific loop performs.
    pub spin_iter: Dur,
    /// Enqueueing one consistency action on a processor's update queue,
    /// excluding the queue-lock and bus costs.
    pub queue_action: Dur,
    /// Invalidating a single TLB entry.
    pub tlb_invalidate_single: Dur,
    /// Flushing the entire TLB.
    pub tlb_flush_all: Dur,
    /// One level of a hardware page-table walk, excluding the bus read.
    pub ptw_level: Dur,
    /// Editing one page-table entry during a pmap update, excluding the bus
    /// write.
    pub pmap_update_per_page: Dur,
    /// Kernel entry/exit for a page fault, excluding the VM work performed.
    pub page_fault_overhead: Dur,
    /// Copying one page (for copy-on-write resolution or pagein).
    pub page_copy: Dur,
    /// A context switch between threads on one processor.
    pub context_switch: Dur,
}

impl CostModel {
    /// The calibrated Encore Multimax-like model used throughout the
    /// reproduction (see module docs).
    pub fn multimax() -> CostModel {
        CostModel {
            local_op: Dur::nanos(500),
            cache_read: Dur::nanos(350),
            bus_read_latency: Dur::nanos(900),
            bus_write_latency: Dur::nanos(700),
            bus_occupancy: Dur::nanos(600),
            interconnect_occupancy: Dur::nanos(400),
            intr_entry: Dur::micros(352),
            intr_exit: Dur::micros(25),
            state_save_words: 16,
            ipi_latency: Dur::micros(30),
            ipi_send: Dur::micros(19),
            ipi_broadcast: Dur::micros(12),
            lock_acquire: Dur::micros(4),
            lock_release: Dur::micros(2),
            spin_iter: Dur::micros(2),
            queue_action: Dur::micros(23),
            tlb_invalidate_single: Dur::micros(6),
            tlb_flush_all: Dur::micros(20),
            ptw_level: Dur::micros(2),
            pmap_update_per_page: Dur::micros(8),
            page_fault_overhead: Dur::micros(250),
            page_copy: Dur::micros(900),
            context_switch: Dur::micros(150),
        }
    }

    /// A uniformly fast model useful for tests that care about ordering and
    /// correctness rather than realistic magnitudes: every action costs one
    /// microsecond (bus occupancy stays sub-microsecond so contention is
    /// negligible).
    pub fn uniform_test() -> CostModel {
        let us = Dur::micros(1);
        CostModel {
            local_op: us,
            cache_read: us,
            bus_read_latency: us,
            bus_write_latency: us,
            bus_occupancy: Dur::nanos(100),
            interconnect_occupancy: Dur::nanos(100),
            intr_entry: us,
            intr_exit: us,
            state_save_words: 1,
            ipi_latency: us,
            ipi_send: us,
            ipi_broadcast: us,
            lock_acquire: us,
            lock_release: us,
            spin_iter: us,
            queue_action: us,
            tlb_invalidate_single: us,
            tlb_flush_all: us,
            ptw_level: us,
            pmap_update_per_page: us,
            page_fault_overhead: us,
            page_copy: us,
            context_switch: us,
        }
    }
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel::multimax()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_multimax() {
        assert_eq!(CostModel::default(), CostModel::multimax());
    }

    #[test]
    fn multimax_interrupt_path_dominates_local_ops() {
        let c = CostModel::multimax();
        assert!(c.intr_entry > c.lock_acquire * 10);
        assert!(c.ipi_latency > c.ipi_send);
    }

    #[test]
    fn uniform_test_model_is_uniform() {
        let c = CostModel::uniform_test();
        assert_eq!(c.local_op, c.intr_entry);
        assert_eq!(c.page_copy, c.spin_iter);
    }
}
