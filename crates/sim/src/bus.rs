//! The shared memory bus.
//!
//! The Encore Multimax is a bus-based multiprocessor with write-through
//! caches: every write, every cache miss, and every interlocked operation is
//! a bus transaction. The bus serializes transactions, so a processor whose
//! transaction arrives while the bus is held queues behind the holder. This
//! queueing is the paper's explanation for the departure from the linear
//! trend above 12 processors in Figure 2 ("bus contention and congestion
//! effects ... become significant on the Multimax when 12 or more processors
//! are actively using the bus").
//!
//! The model is a single-server FIFO queue: each transaction holds the bus
//! for a fixed occupancy, and a transaction issued at time `t` completes at
//! `max(t, busy_until) + occupancy + latency`. Because the simulator always
//! steps the processor with the smallest local clock, transactions are issued
//! in global time order and the queue is exact.

use crate::time::{Dur, Time};

/// The kind of bus transaction, for accounting.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum BusOp {
    /// A cache-miss read or uncached read.
    Read,
    /// A write (write-through caches write every store to the bus).
    Write,
    /// An interlocked read-modify-write (lock acquisition, interlocked
    /// referenced/modified-bit update).
    Interlocked,
}

impl BusOp {
    /// Every transaction kind, in [`BusOp::index`] order.
    pub const ALL: [BusOp; 3] = [BusOp::Read, BusOp::Write, BusOp::Interlocked];

    /// This kind's index into [`BusStats::per_op`].
    pub const fn index(self) -> usize {
        match self {
            BusOp::Read => 0,
            BusOp::Write => 1,
            BusOp::Interlocked => 2,
        }
    }

    /// A short name for tables.
    pub const fn name(self) -> &'static str {
        match self {
            BusOp::Read => "read",
            BusOp::Write => "write",
            BusOp::Interlocked => "interlocked",
        }
    }
}

/// Per-transaction-kind bus statistics (one row of [`BusStats::per_op`]).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct BusOpStats {
    /// Transactions of this kind issued.
    pub transactions: u64,
    /// Time transactions of this kind spent queued behind other holders.
    pub queued: Dur,
    /// Time the bus was held by this kind.
    pub held: Dur,
}

/// Cumulative bus statistics.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct BusStats {
    /// Total transactions issued.
    pub transactions: u64,
    /// Total time transactions spent queued behind other holders.
    pub queued: Dur,
    /// Total time the bus was held.
    pub held: Dur,
    /// The same accounting split by transaction kind, indexed by
    /// [`BusOp::index`] — the memory-traffic side of the IPI-vs-memory
    /// split the chaos tables report (IPI sends go through the interrupt
    /// controller, not the bus; their counts live in the kernel's
    /// `ipis_sent`/`ipi_retries`).
    pub per_op: [BusOpStats; 3],
}

impl BusStats {
    /// The per-kind row for `op`.
    pub fn of(&self, op: BusOp) -> &BusOpStats {
        &self.per_op[op.index()]
    }
}

/// The shared bus: a single-server FIFO queue over transactions.
///
/// # Examples
///
/// ```
/// use machtlb_sim::{Bus, BusOp, Dur, Time};
///
/// let mut bus = Bus::new(Dur::nanos(500));
/// // Two back-to-back transactions at the same instant: the second queues.
/// let first = bus.access(Time::ZERO, BusOp::Write, Dur::ZERO);
/// let second = bus.access(Time::ZERO, BusOp::Write, Dur::ZERO);
/// assert_eq!(first, Dur::nanos(500));
/// assert_eq!(second, Dur::nanos(1000));
/// ```
#[derive(Clone, Debug)]
pub struct Bus {
    occupancy: Dur,
    busy_until: Time,
    stats: BusStats,
}

impl Bus {
    /// Creates a bus whose transactions each hold it for `occupancy`.
    pub fn new(occupancy: Dur) -> Bus {
        Bus {
            occupancy,
            busy_until: Time::ZERO,
            stats: BusStats::default(),
        }
    }

    /// Issues a transaction at `now` and returns the delay until it
    /// completes, including queueing behind earlier transactions, the bus
    /// hold time, and `latency` (memory access time beyond the bus hold).
    ///
    /// Transactions must be issued in non-decreasing `now` order; the
    /// simulator's min-clock scheduling guarantees this.
    pub fn access(&mut self, now: Time, op: BusOp, latency: Dur) -> Dur {
        let start = self.busy_until.max(now);
        let end = start + self.occupancy;
        self.busy_until = end;
        let queued = start.saturating_duration_since(now);
        self.stats.transactions += 1;
        self.stats.queued += queued;
        self.stats.held += self.occupancy;
        let row = &mut self.stats.per_op[op.index()];
        row.transactions += 1;
        row.queued += queued;
        row.held += self.occupancy;
        end.duration_since(now) + latency
    }

    /// The instant the bus becomes free.
    pub fn busy_until(&self) -> Time {
        self.busy_until
    }

    /// Cumulative statistics since construction.
    pub fn stats(&self) -> BusStats {
        self.stats
    }

    /// The configured per-transaction hold time.
    pub fn occupancy(&self) -> Dur {
        self.occupancy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_access_costs_occupancy_plus_latency() {
        let mut bus = Bus::new(Dur::nanos(400));
        let d = bus.access(Time::from_micros(5), BusOp::Read, Dur::nanos(900));
        assert_eq!(d, Dur::nanos(1300));
    }

    #[test]
    fn contended_accesses_queue_fifo() {
        let mut bus = Bus::new(Dur::nanos(500));
        let d1 = bus.access(Time::ZERO, BusOp::Write, Dur::ZERO);
        let d2 = bus.access(Time::ZERO, BusOp::Write, Dur::ZERO);
        let d3 = bus.access(Time::ZERO, BusOp::Write, Dur::ZERO);
        assert_eq!(d1, Dur::nanos(500));
        assert_eq!(d2, Dur::nanos(1000));
        assert_eq!(d3, Dur::nanos(1500));
        assert_eq!(bus.stats().transactions, 3);
        assert_eq!(bus.stats().queued, Dur::nanos(1500)); // 0 + 500 + 1000
    }

    #[test]
    fn per_op_rows_partition_the_totals() {
        let mut bus = Bus::new(Dur::nanos(500));
        let _ = bus.access(Time::ZERO, BusOp::Write, Dur::ZERO);
        let _ = bus.access(Time::ZERO, BusOp::Write, Dur::ZERO);
        let _ = bus.access(Time::ZERO, BusOp::Read, Dur::ZERO);
        let _ = bus.access(Time::ZERO, BusOp::Interlocked, Dur::ZERO);
        let s = bus.stats();
        assert_eq!(s.of(BusOp::Write).transactions, 2);
        assert_eq!(s.of(BusOp::Read).transactions, 1);
        assert_eq!(s.of(BusOp::Interlocked).transactions, 1);
        let (mut txns, mut queued, mut held) = (0, Dur::ZERO, Dur::ZERO);
        for op in BusOp::ALL {
            txns += s.of(op).transactions;
            queued += s.of(op).queued;
            held += s.of(op).held;
        }
        assert_eq!(txns, s.transactions);
        assert_eq!(queued, s.queued);
        assert_eq!(held, s.held);
    }

    #[test]
    fn idle_gaps_do_not_accumulate_queueing() {
        let mut bus = Bus::new(Dur::nanos(500));
        let _ = bus.access(Time::ZERO, BusOp::Read, Dur::ZERO);
        // Issued long after the bus went idle: no queueing.
        let d = bus.access(Time::from_micros(100), BusOp::Read, Dur::ZERO);
        assert_eq!(d, Dur::nanos(500));
        assert_eq!(bus.stats().queued, Dur::ZERO);
    }

    #[test]
    fn queueing_grows_with_offered_load() {
        // Thirteen processors dumping their register state at once queue far
        // longer per access than two do — the Figure 2 knee mechanism.
        let delay_for = |cpus: u64| {
            let mut bus = Bus::new(Dur::nanos(450));
            let mut last = Dur::ZERO;
            for _ in 0..cpus * 16 {
                last = bus.access(Time::ZERO, BusOp::Write, Dur::ZERO);
            }
            last
        };
        assert!(delay_for(13) > delay_for(2) * 6);
    }
}
