//! Deterministic fault injection: a [`FaultPlan`] perturbs IPI delivery
//! and interrupt dispatch at the machine layer, without touching any
//! process code.
//!
//! Faults are *counter-deterministic*: every rule fires on every `n`-th
//! matching event, never on a random draw, so the same seed + plan always
//! produces the same perturbed execution — the repo's replay guarantee
//! extends to chaos runs. A machine with no plan installed takes a single
//! `Option` branch per IPI send and dispatch; the simulated timeline is
//! bit-identical to a build without this module.
//!
//! The plan targets one interrupt [`Vector`] (the shootdown vector, in
//! practice) so background traffic — device interrupts, reschedules —
//! is never perturbed. Eight fault classes cover the paper's fragile
//! spots:
//!
//! | fault        | models                                               |
//! |--------------|------------------------------------------------------|
//! | delay        | a slow interrupt controller / queued delivery        |
//! | drop         | a lost IPI (bounded: the tolerable envelope)         |
//! | duplicate    | a re-latched level-triggered interrupt               |
//! | reorder      | a held delivery overtaken by later sends             |
//! | isr stretch  | a long interrupt-masked window (device handler)      |
//! | stall        | a responder wedged mid-quiesce (dispatch made slow)  |
//! | halt         | a fail-stop processor: stops dispatching forever     |
//! | offline      | a fail-stop processor that later revives             |
//!
//! The halt/offline rules are *time-triggered* rather than counted: the
//! processor stops at an absolute instant chosen by the plan, which —
//! because the scheduler is deterministic — pins the halt to a precise
//! point in the protocol (mid-ISR, holding a named lock) for a given
//! seed. Replay stays bit-identical.

use crate::cpu::CpuId;
use crate::intr::{IntrClass, Vector};
use crate::time::{Dur, Time};

/// Delay every `every_nth` matching IPI delivery by `extra`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct IpiDelay {
    /// Fire on every `every_nth` matching send (1 = all). Must be > 0.
    pub every_nth: u64,
    /// Extra delivery latency added to the perturbed send.
    pub extra: Dur,
}

/// Drop every `every_nth` matching IPI, up to `max_drops` in total.
///
/// A bounded drop is inside the tolerable envelope when the kernel's
/// watchdog retries at least `max_drops` times; an unbounded drop
/// (`max_drops == u64::MAX`) with retries disabled is beyond it.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct IpiDrop {
    /// Fire on every `every_nth` matching send (1 = all). Must be > 0.
    pub every_nth: u64,
    /// Total drops across the run; further matches deliver normally.
    pub max_drops: u64,
}

/// Deliver every `every_nth` matching IPI twice, the copy `extra` later.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct IpiDuplicate {
    /// Fire on every `every_nth` matching send (1 = all). Must be > 0.
    pub every_nth: u64,
    /// How much later the duplicate copy lands.
    pub extra: Dur,
}

/// Hold every `every_nth` matching IPI back by `hold`, so deliveries
/// issued later overtake it — a deterministic reordering of the delivery
/// stream (the held IPI is never lost, only passed).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct IpiReorder {
    /// Fire on every `every_nth` matching send (1 = all). Must be > 0.
    pub every_nth: u64,
    /// How long the perturbed delivery is held back.
    pub hold: Dur,
}

/// Stretch every device-class interrupt dispatch by `extra`: models long
/// interrupt-masked windows on responders (the paper's worst-case
/// synchronization delay).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct IsrStretch {
    /// Extra entry cost added to every device-class dispatch.
    pub extra: Dur,
}

/// Stall one chosen processor's next `times` dispatches of the targeted
/// vector by `extra` each: a responder wedged mid-quiesce.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ResponderStall {
    /// The processor whose dispatches are stalled.
    pub cpu: CpuId,
    /// Extra dispatch cost per stalled dispatch.
    pub extra: Dur,
    /// How many dispatches to stall before the rule exhausts.
    pub times: u64,
}

/// Halt one processor at an absolute instant: it stops dispatching
/// forever (fail-stop). Its park state, stacked frames, and latched
/// interrupts are frozen in place — a halted processor never acknowledges
/// anything, which is exactly the availability hazard the kernel's health
/// monitor must survive.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Halt {
    /// The processor to halt.
    pub cpu: CpuId,
    /// The simulated instant the processor stops.
    pub at: Time,
}

/// Take one processor offline at `at` and revive it at `revive_at`:
/// a fail-stop fault followed by a restart. Between the two instants the
/// processor behaves exactly like [`Halt`]; at `revive_at` it resumes
/// dispatching with its clock advanced to the revival instant (its TLB
/// and queues keep whatever stale state they held — fencing is the
/// kernel's job, not the simulator's).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Offline {
    /// The processor to take offline.
    pub cpu: CpuId,
    /// The instant it stops dispatching.
    pub at: Time,
    /// The instant it resumes. Must be later than `at`.
    pub revive_at: Time,
}

/// A deterministic fault plan: which perturbations to apply to the
/// targeted interrupt vector. All rules default to off ([`FaultPlan::none`]).
///
/// The stall, halt, and offline rules are *event lists*: a plan composes
/// an arbitrary number of them (the fuzzer's schedules routinely arm a
/// dozen against five victims). Each list entry keeps its own budget
/// counter, and entries are evaluated in list order, so a plan that used
/// the historical `stall`/`stall2` pair replays bit-identically when the
/// two rules occupy `stalls[0]` and `stalls[1]`.
///
/// # Examples
///
/// ```
/// use machtlb_sim::{Dur, FaultPlan, IpiDelay, Vector};
///
/// let plan = FaultPlan {
///     delay: Some(IpiDelay { every_nth: 2, extra: Dur::micros(500) }),
///     ..FaultPlan::none(Vector::new(1))
/// };
/// assert_eq!(plan.vector, Vector::new(1));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// The interrupt vector the IPI rules target (other vectors pass
    /// through untouched).
    pub vector: Vector,
    /// Delay rule.
    pub delay: Option<IpiDelay>,
    /// Drop rule.
    pub drop: Option<IpiDrop>,
    /// Duplicate rule.
    pub duplicate: Option<IpiDuplicate>,
    /// Reorder (hold-back) rule.
    pub reorder: Option<IpiReorder>,
    /// Interrupt-masked-window stretch rule (device-class dispatches).
    pub isr_stretch: Option<IsrStretch>,
    /// Responder stall rules (targeted-vector dispatches on one cpu
    /// each). Every entry carries its own independent budget; entries
    /// naming the same processor stack their extras in list order.
    pub stalls: Vec<ResponderStall>,
    /// Fail-stop halt rules: each named processor stops forever at its
    /// instant. Multiple entries fail-stop multiple processors in one
    /// campaign.
    pub halts: Vec<Halt>,
    /// Fail-stop offline/revive rules (each processor stops, then
    /// resumes).
    pub offlines: Vec<Offline>,
}

impl FaultPlan {
    /// A plan with every rule disabled: installing it must not change the
    /// simulated timeline at all.
    pub fn none(vector: Vector) -> FaultPlan {
        FaultPlan {
            vector,
            delay: None,
            drop: None,
            duplicate: None,
            reorder: None,
            isr_stretch: None,
            stalls: Vec::new(),
            halts: Vec::new(),
            offlines: Vec::new(),
        }
    }
}

/// What a fault rule did to one event, for the log and the trace marks.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// An IPI delivery was delayed.
    Delayed,
    /// An IPI was dropped (never delivered).
    Dropped,
    /// An IPI was delivered twice.
    Duplicated,
    /// An IPI was held back past later sends.
    Reordered,
    /// A device-class dispatch was stretched.
    IsrStretched,
    /// A targeted-vector dispatch was stalled.
    Stalled,
    /// A processor halted (fail-stop).
    Halted,
    /// A processor came back online after an offline window.
    Revived,
}

impl FaultKind {
    /// A stable numeric code (for xpr / trace-mark arguments).
    pub fn code(self) -> u32 {
        match self {
            FaultKind::Delayed => 1,
            FaultKind::Dropped => 2,
            FaultKind::Duplicated => 3,
            FaultKind::Reordered => 4,
            FaultKind::IsrStretched => 5,
            FaultKind::Stalled => 6,
            FaultKind::Halted => 7,
            FaultKind::Revived => 8,
        }
    }

    /// A short human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Delayed => "delayed",
            FaultKind::Dropped => "dropped",
            FaultKind::Duplicated => "duplicated",
            FaultKind::Reordered => "reordered",
            FaultKind::IsrStretched => "isr-stretched",
            FaultKind::Stalled => "stalled",
            FaultKind::Halted => "halted",
            FaultKind::Revived => "revived",
        }
    }
}

/// Counts of injected faults, by kind.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// IPIs delayed.
    pub delayed: u64,
    /// IPIs dropped.
    pub dropped: u64,
    /// IPIs duplicated.
    pub duplicated: u64,
    /// IPIs held back (reordered).
    pub reordered: u64,
    /// Device-class dispatches stretched.
    pub isr_stretched: u64,
    /// Targeted dispatches stalled.
    pub stalled: u64,
    /// Processors halted (fail-stop).
    pub halted: u64,
    /// Processors revived after an offline window.
    pub revived: u64,
}

impl FaultStats {
    /// Total injected faults of every kind.
    pub fn total(&self) -> u64 {
        self.delayed
            + self.dropped
            + self.duplicated
            + self.reordered
            + self.isr_stretched
            + self.stalled
            + self.halted
            + self.revived
    }
}

/// One injected fault, for the post-run log (stamped into the flight
/// recorder and xpr by the chaos harness).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct FaultRecord {
    /// The perturbed event's original instant (send or dispatch time).
    pub at: Time,
    /// The affected processor (IPI target or dispatching cpu).
    pub cpu: CpuId,
    /// What was done to it.
    pub kind: FaultKind,
}

/// The runtime state of an installed [`FaultPlan`]: per-rule counters,
/// statistics, and the fault log.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    /// Matching IPI sends seen so far (1-based after increment).
    ipi_count: u64,
    drops_done: u64,
    /// Dispatches stalled so far, one budget counter per `plan.stalls`
    /// entry (same order).
    stalls_done: Vec<u64>,
    stats: FaultStats,
    log: Vec<FaultRecord>,
}

impl FaultInjector {
    /// Wraps a plan with zeroed counters.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        let stalls_done = vec![0; plan.stalls.len()];
        FaultInjector {
            plan,
            ipi_count: 0,
            drops_done: 0,
            stalls_done,
            stats: FaultStats::default(),
            log: Vec::new(),
        }
    }

    /// The installed plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Cumulative injected-fault statistics.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Every injected fault, in injection order.
    pub fn log(&self) -> &[FaultRecord] {
        &self.log
    }

    /// Books one injected fault into the statistics and the log. The
    /// machine calls this for the halt/revive events it executes (they
    /// fire at the scheduler layer, not inside the injector's filters).
    pub(crate) fn record(&mut self, at: Time, cpu: CpuId, kind: FaultKind) {
        match kind {
            FaultKind::Delayed => self.stats.delayed += 1,
            FaultKind::Dropped => self.stats.dropped += 1,
            FaultKind::Duplicated => self.stats.duplicated += 1,
            FaultKind::Reordered => self.stats.reordered += 1,
            FaultKind::IsrStretched => self.stats.isr_stretched += 1,
            FaultKind::Stalled => self.stats.stalled += 1,
            FaultKind::Halted => self.stats.halted += 1,
            FaultKind::Revived => self.stats.revived += 1,
        }
        self.log.push(FaultRecord { at, cpu, kind });
    }

    fn matches(count: u64, every_nth: u64) -> bool {
        debug_assert!(every_nth > 0, "every_nth must be positive");
        every_nth > 0 && count.is_multiple_of(every_nth)
    }

    /// Filters one IPI send: returns the deliveries to actually enqueue
    /// (empty = dropped, two = duplicated, shifted `at` = delayed or held).
    /// Non-targeted vectors pass through unchanged.
    pub(crate) fn filter_ipi(
        &mut self,
        target: CpuId,
        vector: Vector,
        at: Time,
    ) -> Vec<(CpuId, Time)> {
        if vector != self.plan.vector {
            return vec![(target, at)];
        }
        self.ipi_count += 1;
        let n = self.ipi_count;
        if let Some(rule) = self.plan.drop {
            if Self::matches(n, rule.every_nth) && self.drops_done < rule.max_drops {
                self.drops_done += 1;
                self.record(at, target, FaultKind::Dropped);
                return Vec::new();
            }
        }
        let mut when = at;
        if let Some(rule) = self.plan.delay {
            if Self::matches(n, rule.every_nth) {
                when += rule.extra;
                self.record(at, target, FaultKind::Delayed);
            }
        }
        if let Some(rule) = self.plan.reorder {
            if Self::matches(n, rule.every_nth) {
                when += rule.hold;
                self.record(at, target, FaultKind::Reordered);
            }
        }
        if let Some(rule) = self.plan.duplicate {
            if Self::matches(n, rule.every_nth) {
                self.record(at, target, FaultKind::Duplicated);
                return vec![(target, when), (target, when + rule.extra)];
            }
        }
        vec![(target, when)]
    }

    /// Extra dispatch cost injected when `cpu` vectors `vector` (of the
    /// given class) at `now`. Zero when no rule matches.
    pub(crate) fn dispatch_extra(
        &mut self,
        cpu: CpuId,
        vector: Vector,
        class: IntrClass,
        now: Time,
    ) -> Dur {
        let mut extra = Dur::ZERO;
        if let Some(rule) = self.plan.isr_stretch {
            if class == IntrClass::Device {
                extra += rule.extra;
                self.record(now, cpu, FaultKind::IsrStretched);
            }
        }
        for i in 0..self.plan.stalls.len() {
            let rule = self.plan.stalls[i];
            if vector == self.plan.vector && cpu == rule.cpu && self.stalls_done[i] < rule.times {
                self.stalls_done[i] += 1;
                extra += rule.extra;
                self.record(now, cpu, FaultKind::Stalled);
            }
        }
        extra
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const V: Vector = Vector::new(1);
    const OTHER: Vector = Vector::new(2);
    const T: Time = Time::from_micros(100);
    const C0: CpuId = CpuId::new(0);
    const C1: CpuId = CpuId::new(1);

    #[test]
    fn none_plan_passes_everything_through() {
        let mut inj = FaultInjector::new(FaultPlan::none(V));
        for i in 0..10 {
            assert_eq!(inj.filter_ipi(C1, V, T), vec![(C1, T)], "send {i}");
        }
        assert_eq!(inj.dispatch_extra(C1, V, IntrClass::Ipi, T), Dur::ZERO);
        assert_eq!(inj.stats(), FaultStats::default());
        assert!(inj.log().is_empty());
    }

    #[test]
    fn untargeted_vectors_are_never_perturbed() {
        let plan = FaultPlan {
            drop: Some(IpiDrop {
                every_nth: 1,
                max_drops: u64::MAX,
            }),
            ..FaultPlan::none(V)
        };
        let mut inj = FaultInjector::new(plan);
        assert_eq!(inj.filter_ipi(C1, OTHER, T), vec![(C1, T)]);
        assert_eq!(inj.stats().dropped, 0);
    }

    #[test]
    fn drop_respects_its_budget() {
        let plan = FaultPlan {
            drop: Some(IpiDrop {
                every_nth: 1,
                max_drops: 2,
            }),
            ..FaultPlan::none(V)
        };
        let mut inj = FaultInjector::new(plan);
        assert!(inj.filter_ipi(C1, V, T).is_empty());
        assert!(inj.filter_ipi(C1, V, T).is_empty());
        assert_eq!(inj.filter_ipi(C1, V, T), vec![(C1, T)], "budget exhausted");
        assert_eq!(inj.stats().dropped, 2);
        assert_eq!(inj.log().len(), 2);
        assert_eq!(inj.log()[0].kind, FaultKind::Dropped);
    }

    #[test]
    fn delay_fires_every_nth() {
        let plan = FaultPlan {
            delay: Some(IpiDelay {
                every_nth: 2,
                extra: Dur::micros(50),
            }),
            ..FaultPlan::none(V)
        };
        let mut inj = FaultInjector::new(plan);
        assert_eq!(inj.filter_ipi(C1, V, T), vec![(C1, T)]);
        assert_eq!(inj.filter_ipi(C1, V, T), vec![(C1, T + Dur::micros(50))]);
        assert_eq!(inj.filter_ipi(C1, V, T), vec![(C1, T)]);
        assert_eq!(inj.stats().delayed, 1);
    }

    #[test]
    fn duplicate_delivers_twice() {
        let plan = FaultPlan {
            duplicate: Some(IpiDuplicate {
                every_nth: 1,
                extra: Dur::micros(7),
            }),
            ..FaultPlan::none(V)
        };
        let mut inj = FaultInjector::new(plan);
        assert_eq!(
            inj.filter_ipi(C1, V, T),
            vec![(C1, T), (C1, T + Dur::micros(7))]
        );
        assert_eq!(inj.stats().duplicated, 1);
    }

    #[test]
    fn stall_targets_one_cpu_a_bounded_number_of_times() {
        let plan = FaultPlan {
            stalls: vec![ResponderStall {
                cpu: C1,
                extra: Dur::micros(300),
                times: 1,
            }],
            ..FaultPlan::none(V)
        };
        let mut inj = FaultInjector::new(plan);
        assert_eq!(inj.dispatch_extra(C0, V, IntrClass::Ipi, T), Dur::ZERO);
        assert_eq!(
            inj.dispatch_extra(C1, V, IntrClass::Ipi, T),
            Dur::micros(300)
        );
        assert_eq!(
            inj.dispatch_extra(C1, V, IntrClass::Ipi, T),
            Dur::ZERO,
            "budget of one"
        );
        assert_eq!(inj.stats().stalled, 1);
    }

    #[test]
    fn two_stall_rules_arm_independently() {
        let plan = FaultPlan {
            stalls: vec![
                ResponderStall {
                    cpu: C0,
                    extra: Dur::micros(100),
                    times: 1,
                },
                ResponderStall {
                    cpu: C1,
                    extra: Dur::micros(200),
                    times: 2,
                },
            ],
            ..FaultPlan::none(V)
        };
        let mut inj = FaultInjector::new(plan);
        // Each rule has its own budget and its own target.
        assert_eq!(
            inj.dispatch_extra(C0, V, IntrClass::Ipi, T),
            Dur::micros(100)
        );
        assert_eq!(
            inj.dispatch_extra(C1, V, IntrClass::Ipi, T),
            Dur::micros(200)
        );
        assert_eq!(inj.dispatch_extra(C0, V, IntrClass::Ipi, T), Dur::ZERO);
        assert_eq!(
            inj.dispatch_extra(C1, V, IntrClass::Ipi, T),
            Dur::micros(200)
        );
        assert_eq!(inj.dispatch_extra(C1, V, IntrClass::Ipi, T), Dur::ZERO);
        assert_eq!(inj.stats().stalled, 3);
    }

    #[test]
    fn isr_stretch_hits_device_class_only() {
        let plan = FaultPlan {
            isr_stretch: Some(IsrStretch {
                extra: Dur::micros(100),
            }),
            ..FaultPlan::none(V)
        };
        let mut inj = FaultInjector::new(plan);
        assert_eq!(
            inj.dispatch_extra(C0, OTHER, IntrClass::Device, T),
            Dur::micros(100)
        );
        assert_eq!(inj.dispatch_extra(C0, V, IntrClass::Ipi, T), Dur::ZERO);
        assert_eq!(inj.stats().isr_stretched, 1);
    }

    #[test]
    fn halt_and_revive_book_into_stats_and_log() {
        let mut inj = FaultInjector::new(FaultPlan::none(V));
        inj.record(T, C1, FaultKind::Halted);
        inj.record(T + Dur::micros(500), C1, FaultKind::Revived);
        assert_eq!(inj.stats().halted, 1);
        assert_eq!(inj.stats().revived, 1);
        assert_eq!(inj.stats().total(), 2);
        assert_eq!(inj.log().len(), 2);
        assert_eq!(inj.log()[0].kind, FaultKind::Halted);
        assert_eq!(FaultKind::Halted.code(), 7);
        assert_eq!(FaultKind::Revived.code(), 8);
        assert_eq!(FaultKind::Halted.name(), "halted");
        assert_eq!(FaultKind::Revived.name(), "revived");
    }

    #[test]
    fn injection_is_replayable() {
        let plan = FaultPlan {
            delay: Some(IpiDelay {
                every_nth: 3,
                extra: Dur::micros(11),
            }),
            drop: Some(IpiDrop {
                every_nth: 5,
                max_drops: 2,
            }),
            ..FaultPlan::none(V)
        };
        let run = || {
            let mut inj = FaultInjector::new(plan.clone());
            let mut out = Vec::new();
            for i in 0..20u64 {
                out.push(inj.filter_ipi(C1, V, T + Dur::micros(i)));
            }
            (out, inj.stats(), inj.log().to_vec())
        };
        assert_eq!(run(), run());
    }
}
