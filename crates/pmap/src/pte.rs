//! Page-table entries.

use std::fmt;

use crate::addr::Pfn;
use crate::prot::{Access, Prot};

/// A page-table entry: the memory-resident translation the MMU walks to and
/// the TLB caches.
///
/// The `referenced` and `modified` bits are set by the MMU as a side effect
/// of translation. On the paper's hardware the TLB writes these bits back to
/// memory **asynchronously and without interlock**, which is one of the two
/// TLB features (Section 3) that force responders to stall during pmap
/// updates: a stale writeback can clobber a concurrent pmap change.
///
/// # Examples
///
/// ```
/// use machtlb_pmap::{Access, Pfn, Prot, Pte};
///
/// let pte = Pte::valid(Pfn::new(42), Prot::READ_WRITE);
/// assert!(pte.permits(Access::Write));
/// assert!(!Pte::INVALID.permits(Access::Read));
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct Pte {
    /// Whether the entry maps a page.
    pub valid: bool,
    /// The mapped physical frame (meaningful only when `valid`).
    pub pfn: Pfn,
    /// Access rights (meaningful only when `valid`).
    pub prot: Prot,
    /// Set when the page has been accessed.
    pub referenced: bool,
    /// Set when the page has been written.
    pub modified: bool,
}

impl Pte {
    /// The invalid entry: no translation.
    pub const INVALID: Pte = Pte {
        valid: false,
        pfn: Pfn::new(0),
        prot: Prot::NONE,
        referenced: false,
        modified: false,
    };

    /// A valid entry with clear referenced/modified bits.
    pub fn valid(pfn: Pfn, prot: Prot) -> Pte {
        Pte {
            valid: true,
            pfn,
            prot,
            referenced: false,
            modified: false,
        }
    }

    /// Whether the entry is valid and permits `access`.
    pub fn permits(self, access: Access) -> bool {
        self.valid && self.prot.allows(access)
    }

    /// The entry with `referenced` (and for writes `modified`) set, as the
    /// MMU records an access of the given kind.
    pub fn touched(mut self, access: Access) -> Pte {
        self.referenced = true;
        if access == Access::Write {
            self.modified = true;
        }
        self
    }

    /// Whether the two entries map the same frame with the same rights
    /// (ignoring referenced/modified bookkeeping).
    pub fn same_translation(self, other: Pte) -> bool {
        self.valid == other.valid
            && (!self.valid || (self.pfn == other.pfn && self.prot == other.prot))
    }
}

impl fmt::Display for Pte {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.valid {
            return write!(f, "<invalid>");
        }
        write!(
            f,
            "{}:{}{}{}",
            self.pfn,
            self.prot,
            if self.referenced { "R" } else { "-" },
            if self.modified { "M" } else { "-" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalid_permits_nothing() {
        assert!(!Pte::INVALID.permits(Access::Read));
        assert!(!Pte::INVALID.permits(Access::Write));
        const { assert!(!Pte::INVALID.valid) }
    }

    #[test]
    fn touched_sets_bits() {
        let pte = Pte::valid(Pfn::new(1), Prot::READ_WRITE);
        let read = pte.touched(Access::Read);
        assert!(read.referenced && !read.modified);
        let written = pte.touched(Access::Write);
        assert!(written.referenced && written.modified);
    }

    #[test]
    fn same_translation_ignores_refmod() {
        let a = Pte::valid(Pfn::new(3), Prot::READ);
        let b = a.touched(Access::Read);
        assert!(a.same_translation(b));
        let c = Pte::valid(Pfn::new(4), Prot::READ);
        assert!(!a.same_translation(c));
        assert!(Pte::INVALID.same_translation(Pte::INVALID));
        assert!(!a.same_translation(Pte::INVALID));
    }

    #[test]
    fn display_shows_rights_and_bits() {
        let pte = Pte::valid(Pfn::new(0x42), Prot::READ_WRITE).touched(Access::Write);
        assert_eq!(pte.to_string(), "pfn:0x42:rw-RM");
    }
}
