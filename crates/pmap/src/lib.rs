//! # machtlb-pmap — the physical map layer
//!
//! The machine-dependent memory-management substrate of the `machtlb`
//! reproduction of *Translation Lookaside Buffer Consistency: A Software
//! Approach* (Black et al., ASPLOS 1989): addresses and protections
//! ([`Vaddr`], [`Prot`]), page-table entries with referenced/modified bits
//! ([`Pte`]), NS32382-style two-level page tables with chunk-aware range
//! operations ([`PageTable`]), processor sets ([`CpuSet`]), and the [`Pmap`]
//! object itself — page table plus the exclusive lock and in-use set the
//! shootdown algorithm synchronises on.
//!
//! The *time* costs of manipulating these structures are charged by the
//! kernel state machines in `machtlb-core`; this crate holds the data and
//! its invariants.
//!
//! # Examples
//!
//! ```
//! use machtlb_pmap::{PageRange, Pfn, Pmap, PmapId, Prot, Pte, Vpn};
//!
//! let mut pmap = Pmap::new(PmapId::new(1), 16);
//! pmap.table_mut().set(Vpn::new(0x100), Pte::valid(Pfn::new(5), Prot::READ_WRITE));
//!
//! // The lazy-evaluation check that avoids needless shootdowns:
//! assert!(pmap.table().any_valid_in(PageRange::new(Vpn::new(0x100), 1)));
//! assert!(!pmap.table().any_valid_in(PageRange::new(Vpn::new(0x200), 64)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod addr;
mod cpuset;
mod pmap;
mod prot;
mod pte;
mod table;

pub use addr::{Paddr, PageRange, Pfn, Vaddr, Vpn, PAGE_SHIFT, PAGE_SIZE, VPN_BITS, VPN_SPAN};
pub use cpuset::CpuSet;
pub use pmap::{Pmap, PmapId, PmapStats, SHARD_GRANULE};
pub use prot::{Access, Prot};
pub use pte::Pte;
pub use table::{PageTable, ValidIn, LEAF_ENTRIES, ROOT_ENTRIES};

#[cfg(test)]
mod proptests {
    use std::collections::HashMap;

    use proptest::prelude::*;

    use super::*;

    /// A trivially correct model of a page table: a hash map.
    #[derive(Default)]
    struct Model {
        map: HashMap<u64, Pte>,
    }

    impl Model {
        fn set(&mut self, vpn: u64, pte: Pte) {
            if pte.valid {
                self.map.insert(vpn, pte);
            } else {
                self.map.remove(&vpn);
            }
        }
        fn get(&self, vpn: u64) -> Pte {
            self.map.get(&vpn).copied().unwrap_or(Pte::INVALID)
        }
        fn remove_range(&mut self, start: u64, count: u64) -> u64 {
            let victims: Vec<u64> = self
                .map
                .keys()
                .copied()
                .filter(|&v| v >= start && v < start + count)
                .collect();
            for v in &victims {
                self.map.remove(v);
            }
            victims.len() as u64
        }
        fn protect_range(&mut self, start: u64, count: u64, prot: Prot) -> u64 {
            let mut changed = 0;
            for (&v, pte) in self.map.iter_mut() {
                if v >= start && v < start + count && pte.prot != prot {
                    pte.prot = prot;
                    changed += 1;
                }
            }
            changed
        }
    }

    #[derive(Debug, Clone)]
    enum Op {
        Set(u64, u64, bool),
        Remove(u64, u64),
        Protect(u64, u64, bool),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        // Confine activity to a small VPN window spanning a chunk boundary
        // so range operations hit missing, partial, and full chunks.
        let vpn = 900u64..1200;
        let count = 1u64..200;
        prop_oneof![
            (vpn.clone(), 0u64..64, any::<bool>()).prop_map(|(v, p, w)| Op::Set(v, p, w)),
            (vpn.clone(), count.clone()).prop_map(|(v, c)| Op::Remove(v, c)),
            (vpn, count, any::<bool>()).prop_map(|(v, c, w)| Op::Protect(v, c, w)),
        ]
    }

    proptest! {
        /// The chunked two-level table agrees with a flat map under any
        /// sequence of set/remove/protect operations.
        #[test]
        fn table_matches_flat_model(ops in proptest::collection::vec(op_strategy(), 1..60)) {
            let mut table = PageTable::new();
            let mut model = Model::default();
            for op in ops {
                match op {
                    Op::Set(v, p, w) => {
                        let prot = if w { Prot::READ_WRITE } else { Prot::READ };
                        let pte = if p == 0 { Pte::INVALID } else { Pte::valid(Pfn::new(p), prot) };
                        table.set(Vpn::new(v), pte);
                        model.set(v, pte);
                    }
                    Op::Remove(v, c) => {
                        let got = table.remove_range(PageRange::new(Vpn::new(v), c));
                        let want = model.remove_range(v, c);
                        prop_assert_eq!(got, want);
                    }
                    Op::Protect(v, c, w) => {
                        let prot = if w { Prot::READ_WRITE } else { Prot::READ };
                        let got = table.protect_range(PageRange::new(Vpn::new(v), c), prot);
                        let want = model.protect_range(v, c, prot);
                        prop_assert_eq!(got, want);
                    }
                }
                prop_assert_eq!(table.valid_count(), model.map.len() as u64);
            }
            // Point queries agree everywhere in the window.
            for v in 900..1200 {
                prop_assert_eq!(table.get(Vpn::new(v)), model.get(v));
            }
        }

        /// `any_valid_in` agrees with a brute-force scan.
        #[test]
        fn any_valid_matches_bruteforce(
            sets in proptest::collection::vec((0u64..4096, 1u64..32), 0..20),
            start in 0u64..4096,
            count in 1u64..512,
        ) {
            let mut table = PageTable::new();
            for (v, p) in &sets {
                table.set(Vpn::new(*v), Pte::valid(Pfn::new(*p), Prot::READ));
            }
            let range = PageRange::new(Vpn::new(start), count.min(VPN_SPAN - start));
            let brute = range.iter().any(|v| table.get(v).valid);
            prop_assert_eq!(table.any_valid_in(range), brute);
        }
    }
}
