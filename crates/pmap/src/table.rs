//! Two-level page tables, NS32382-style.
//!
//! The Multimax pmap module organises second-level tables into page-sized
//! chunks and exploits that structure for lazy evaluation: "if the pmap
//! module ever finds a missing second level page table entry, it knows that
//! an entire page of second level entries is missing and skips the
//! corresponding address range" (Section 7.2). [`PageTable::any_valid_in`]
//! and the range operations implement exactly that skip.

use std::fmt;

use crate::addr::{PageRange, Vpn};
use crate::prot::Prot;
use crate::pte::Pte;

/// Entries per second-level (leaf) table: one page-sized chunk.
pub const LEAF_ENTRIES: usize = 1024;
/// Entries in the root table.
pub const ROOT_ENTRIES: usize = 1024;

#[derive(Clone)]
struct Leaf {
    ptes: Vec<Pte>,
    valid_count: u32,
}

impl Leaf {
    fn new() -> Leaf {
        Leaf {
            ptes: vec![Pte::INVALID; LEAF_ENTRIES],
            valid_count: 0,
        }
    }
}

/// A two-level page table: the memory-resident translation structure the
/// hardware walks on TLB misses and the pmap module edits.
///
/// # Examples
///
/// ```
/// use machtlb_pmap::{PageRange, PageTable, Pfn, Prot, Pte, Vpn};
///
/// let mut pt = PageTable::new();
/// pt.set(Vpn::new(0x400), Pte::valid(Pfn::new(7), Prot::READ));
/// assert!(pt.get(Vpn::new(0x400)).valid);
/// // A whole missing second-level chunk is skipped without touching PTEs:
/// assert!(!pt.any_valid_in(PageRange::new(Vpn::new(0x8_0000), 2048)));
/// ```
#[derive(Clone)]
pub struct PageTable {
    root: Vec<Option<Box<Leaf>>>,
    valid_count: u64,
    leaves_allocated: u64,
}

impl PageTable {
    /// Creates an empty table with no second-level chunks allocated.
    pub fn new() -> PageTable {
        PageTable {
            root: (0..ROOT_ENTRIES).map(|_| None).collect(),
            valid_count: 0,
            leaves_allocated: 0,
        }
    }

    /// The entry for `vpn` ([`Pte::INVALID`] if the chunk is missing).
    pub fn get(&self, vpn: Vpn) -> Pte {
        match &self.root[vpn.root_index()] {
            Some(leaf) => leaf.ptes[vpn.leaf_index()],
            None => Pte::INVALID,
        }
    }

    /// Whether the second-level chunk covering `vpn` is allocated.
    pub fn leaf_present(&self, vpn: Vpn) -> bool {
        self.root[vpn.root_index()].is_some()
    }

    /// Number of levels a hardware walk of `vpn` traverses before
    /// concluding: 1 if the root entry is missing, 2 otherwise.
    pub fn walk_levels(&self, vpn: Vpn) -> u32 {
        if self.leaf_present(vpn) {
            2
        } else {
            1
        }
    }

    /// Stores `pte` at `vpn`, returning the previous entry. Allocates the
    /// second-level chunk on demand; storing [`Pte::INVALID`] into a missing
    /// chunk is a no-op.
    pub fn set(&mut self, vpn: Vpn, pte: Pte) -> Pte {
        let slot = &mut self.root[vpn.root_index()];
        if slot.is_none() {
            if !pte.valid {
                return Pte::INVALID;
            }
            *slot = Some(Box::new(Leaf::new()));
            self.leaves_allocated += 1;
        }
        let leaf = slot.as_mut().expect("leaf allocated above");
        let old = std::mem::replace(&mut leaf.ptes[vpn.leaf_index()], pte);
        match (old.valid, pte.valid) {
            (false, true) => {
                leaf.valid_count += 1;
                self.valid_count += 1;
            }
            (true, false) => {
                leaf.valid_count -= 1;
                self.valid_count -= 1;
            }
            _ => {}
        }
        old
    }

    /// Whether any page of `range` has a valid mapping — the lazy-evaluation
    /// check ("TLBs do not cache invalid mappings", Section 4). Missing
    /// chunks are skipped whole.
    pub fn any_valid_in(&self, range: PageRange) -> bool {
        self.valid_in(range).next().is_some()
    }

    /// Iterates the valid entries within `range` in ascending page order,
    /// skipping missing chunks whole.
    pub fn valid_in(&self, range: PageRange) -> ValidIn<'_> {
        ValidIn {
            table: self,
            next: range.start().raw(),
            end: range.end().raw(),
        }
    }

    /// Invalidates every valid entry in `range`, returning how many were
    /// removed.
    ///
    /// Walks the range chunk by chunk and edits PTEs in place: missing
    /// chunks and allocated-but-empty leaves are skipped whole, and no
    /// intermediate victim list is built.
    pub fn remove_range(&mut self, range: PageRange) -> u64 {
        let mut removed: u64 = 0;
        let end = range.end().raw();
        let mut next = range.start().raw();
        while next < end {
            let chunk_end = ((next | (LEAF_ENTRIES as u64 - 1)) + 1).min(end);
            let vpn = Vpn::new(next);
            if let Some(leaf) = self.root[vpn.root_index()].as_deref_mut() {
                if leaf.valid_count > 0 {
                    let lo = vpn.leaf_index();
                    let hi = lo + (chunk_end - next) as usize;
                    let mut cleared: u32 = 0;
                    for pte in &mut leaf.ptes[lo..hi] {
                        if pte.valid {
                            *pte = Pte::INVALID;
                            cleared += 1;
                        }
                    }
                    leaf.valid_count -= cleared;
                    self.valid_count -= u64::from(cleared);
                    removed += u64::from(cleared);
                }
            }
            next = chunk_end;
        }
        removed
    }

    /// Sets the protection of every valid entry in `range` to `prot`
    /// (referenced/modified bits are preserved), returning how many entries
    /// changed.
    ///
    /// Same in-place chunk walk as [`PageTable::remove_range`]; only the
    /// protection field is edited, so valid counts are untouched.
    pub fn protect_range(&mut self, range: PageRange, prot: Prot) -> u64 {
        let mut changed: u64 = 0;
        let end = range.end().raw();
        let mut next = range.start().raw();
        while next < end {
            let chunk_end = ((next | (LEAF_ENTRIES as u64 - 1)) + 1).min(end);
            let vpn = Vpn::new(next);
            if let Some(leaf) = self.root[vpn.root_index()].as_deref_mut() {
                if leaf.valid_count > 0 {
                    let lo = vpn.leaf_index();
                    let hi = lo + (chunk_end - next) as usize;
                    for pte in &mut leaf.ptes[lo..hi] {
                        if pte.valid && pte.prot != prot {
                            pte.prot = prot;
                            changed += 1;
                        }
                    }
                }
            }
            next = chunk_end;
        }
        changed
    }

    /// Total valid entries.
    pub fn valid_count(&self) -> u64 {
        self.valid_count
    }

    /// Second-level chunks allocated over the table's lifetime (allocated
    /// chunks are kept even when they empty out, as the Mach pmap does).
    pub fn leaves_allocated(&self) -> u64 {
        self.leaves_allocated
    }

    /// Drops every mapping and every chunk (pmap destruction; the pmap will
    /// be "reconstructed from scratch as page faults occur", Section 2).
    pub fn clear(&mut self) {
        for slot in &mut self.root {
            *slot = None;
        }
        self.valid_count = 0;
    }
}

impl Default for PageTable {
    fn default() -> PageTable {
        PageTable::new()
    }
}

impl fmt::Debug for PageTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PageTable")
            .field("valid_count", &self.valid_count)
            .field("leaves_allocated", &self.leaves_allocated)
            .finish()
    }
}

/// Iterator over the valid entries of a range; see [`PageTable::valid_in`].
#[derive(Debug)]
pub struct ValidIn<'a> {
    table: &'a PageTable,
    next: u64,
    end: u64,
}

impl Iterator for ValidIn<'_> {
    type Item = (Vpn, Pte);

    fn next(&mut self) -> Option<(Vpn, Pte)> {
        while self.next < self.end {
            let vpn = Vpn::new(self.next);
            match &self.table.root[vpn.root_index()] {
                None => {
                    // Skip the rest of the missing chunk in one stride.
                    let chunk_end = (self.next | (LEAF_ENTRIES as u64 - 1)) + 1;
                    self.next = chunk_end.min(self.end);
                }
                Some(leaf) => {
                    self.next += 1;
                    let pte = leaf.ptes[vpn.leaf_index()];
                    if pte.valid {
                        return Some((vpn, pte));
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Pfn;

    fn pte(pfn: u64) -> Pte {
        Pte::valid(Pfn::new(pfn), Prot::READ_WRITE)
    }

    #[test]
    fn get_set_round_trip() {
        let mut pt = PageTable::new();
        assert_eq!(pt.get(Vpn::new(5)), Pte::INVALID);
        let old = pt.set(Vpn::new(5), pte(9));
        assert_eq!(old, Pte::INVALID);
        assert_eq!(pt.get(Vpn::new(5)).pfn, Pfn::new(9));
        assert_eq!(pt.valid_count(), 1);
    }

    #[test]
    fn invalid_store_into_missing_chunk_allocates_nothing() {
        let mut pt = PageTable::new();
        pt.set(Vpn::new(123), Pte::INVALID);
        assert_eq!(pt.leaves_allocated(), 0);
        assert!(!pt.leaf_present(Vpn::new(123)));
        assert_eq!(pt.walk_levels(Vpn::new(123)), 1);
    }

    #[test]
    fn valid_in_skips_missing_chunks() {
        let mut pt = PageTable::new();
        pt.set(Vpn::new(10), pte(1));
        pt.set(Vpn::new(5000), pte(2));
        let got: Vec<u64> = pt
            .valid_in(PageRange::new(Vpn::new(0), 10_000))
            .map(|(v, _)| v.raw())
            .collect();
        assert_eq!(got, vec![10, 5000]);
    }

    #[test]
    fn any_valid_in_is_chunk_aware() {
        let mut pt = PageTable::new();
        pt.set(Vpn::new(2048), pte(1)); // chunk 2
        assert!(!pt.any_valid_in(PageRange::new(Vpn::new(0), 2048)));
        assert!(pt.any_valid_in(PageRange::new(Vpn::new(0), 2049)));
        // Allocated-but-invalid neighbours are still not "valid".
        pt.set(Vpn::new(2048), Pte::INVALID);
        assert!(!pt.any_valid_in(PageRange::new(Vpn::new(0), 4096)));
    }

    #[test]
    fn remove_range_counts_and_clears() {
        let mut pt = PageTable::new();
        for i in 0..10 {
            pt.set(Vpn::new(i), pte(i));
        }
        let removed = pt.remove_range(PageRange::new(Vpn::new(3), 4));
        assert_eq!(removed, 4);
        assert_eq!(pt.valid_count(), 6);
        assert!(!pt.get(Vpn::new(4)).valid);
        assert!(pt.get(Vpn::new(2)).valid);
        assert!(pt.get(Vpn::new(7)).valid);
    }

    #[test]
    fn remove_range_spans_chunks_and_skips_empty_leaves() {
        let mut pt = PageTable::new();
        // Chunk 0 is allocated but emptied out; chunks 1 and 2 hold victims;
        // chunk 3 is missing entirely.
        pt.set(Vpn::new(3), pte(1));
        pt.set(Vpn::new(3), Pte::INVALID);
        pt.set(Vpn::new(1023), pte(2)); // outside the range below
        pt.set(Vpn::new(1024), pte(3));
        pt.set(Vpn::new(2100), pte(4));
        let removed = pt.remove_range(PageRange::new(Vpn::new(1024), 3 * 1024));
        assert_eq!(removed, 2);
        assert_eq!(pt.valid_count(), 1);
        assert!(pt.get(Vpn::new(1023)).valid);
        assert!(!pt.get(Vpn::new(1024)).valid);
        assert!(!pt.get(Vpn::new(2100)).valid);
        // Emptied leaves stay allocated, as before.
        assert!(pt.leaf_present(Vpn::new(2100)));
    }

    #[test]
    fn protect_range_spans_chunks() {
        let mut pt = PageTable::new();
        pt.set(Vpn::new(1000), pte(1));
        pt.set(Vpn::new(1050), pte(2));
        let changed = pt.protect_range(PageRange::new(Vpn::new(900), 200), Prot::READ);
        assert_eq!(changed, 2);
        assert_eq!(pt.get(Vpn::new(1000)).prot, Prot::READ);
        assert_eq!(pt.get(Vpn::new(1050)).prot, Prot::READ);
        assert_eq!(pt.valid_count(), 2);
    }

    #[test]
    fn protect_range_preserves_refmod_and_counts_changes() {
        let mut pt = PageTable::new();
        let touched = pte(1).touched(crate::Access::Write);
        pt.set(Vpn::new(0), touched);
        pt.set(Vpn::new(1), pte(2));
        let changed = pt.protect_range(PageRange::new(Vpn::new(0), 2), Prot::READ);
        assert_eq!(changed, 2);
        let got = pt.get(Vpn::new(0));
        assert_eq!(got.prot, Prot::READ);
        assert!(got.referenced && got.modified);
        // Re-protecting to the same value changes nothing.
        assert_eq!(
            pt.protect_range(PageRange::new(Vpn::new(0), 2), Prot::READ),
            0
        );
    }

    #[test]
    fn clear_drops_everything() {
        let mut pt = PageTable::new();
        pt.set(Vpn::new(100), pte(1));
        pt.clear();
        assert_eq!(pt.valid_count(), 0);
        assert!(!pt.leaf_present(Vpn::new(100)));
        assert_eq!(pt.get(Vpn::new(100)), Pte::INVALID);
    }
}
