//! Sets of processors.
//!
//! The shootdown algorithm manipulates several processor sets (Section 4):
//! the *active* set, the *idle* set, and a per-pmap *in-use* set. They are
//! bit vectors in shared memory; the time cost of reading or writing them is
//! charged by the processes that do so.

use std::fmt;

use machtlb_sim::{CpuId, Topology};

/// A set of processors, implemented as a bit vector.
///
/// # Examples
///
/// ```
/// use machtlb_pmap::CpuSet;
/// use machtlb_sim::CpuId;
///
/// let mut set = CpuSet::new(16);
/// set.insert(CpuId::new(3));
/// set.insert(CpuId::new(11));
/// assert_eq!(set.len(), 2);
/// assert!(set.contains(CpuId::new(3)));
/// let members: Vec<CpuId> = set.iter().collect();
/// assert_eq!(members, vec![CpuId::new(3), CpuId::new(11)]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct CpuSet {
    words: Vec<u64>,
    capacity: usize,
}

impl CpuSet {
    /// Creates an empty set able to hold processors `0..capacity`.
    pub fn new(capacity: usize) -> CpuSet {
        CpuSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Creates a set containing all of `0..capacity`.
    pub fn full(capacity: usize) -> CpuSet {
        let mut s = CpuSet::new(capacity);
        for i in 0..capacity {
            s.insert(CpuId::new(i as u32));
        }
        s
    }

    /// The number of processors the set can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn check(&self, cpu: CpuId) {
        assert!(
            cpu.index() < self.capacity,
            "{cpu} out of range for CpuSet of capacity {}",
            self.capacity
        );
    }

    /// Adds `cpu`. Returns whether it was newly added.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` exceeds the capacity.
    pub fn insert(&mut self, cpu: CpuId) -> bool {
        self.check(cpu);
        let (w, b) = (cpu.index() / 64, cpu.index() % 64);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !had
    }

    /// Removes `cpu`. Returns whether it was present.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` exceeds the capacity.
    pub fn remove(&mut self, cpu: CpuId) -> bool {
        self.check(cpu);
        let (w, b) = (cpu.index() / 64, cpu.index() % 64);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        had
    }

    /// Whether `cpu` is in the set.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` exceeds the capacity.
    pub fn contains(&self, cpu: CpuId) -> bool {
        self.check(cpu);
        let (w, b) = (cpu.index() / 64, cpu.index() % 64);
        self.words[w] & (1 << b) != 0
    }

    /// Number of processors in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if no processor is in the set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes all processors.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Iterates over members in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = CpuId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64)
                .filter(move |b| w & (1 << b) != 0)
                .map(move |b| CpuId::new((wi * 64 + b) as u32))
        })
    }

    /// Whether any member other than `cpu` is present — the initiator's
    /// "other cpus using pmap" test.
    pub fn any_other_than(&self, cpu: CpuId) -> bool {
        self.iter().any(|c| c != cpu)
    }

    /// Number of 64-bit words backing the set: the unit multicast-round
    /// publishers charge for whole-set scans.
    pub fn word_count(&self) -> usize {
        self.words.len()
    }

    /// The members present in both sets (word-parallel and).
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn intersection(&self, other: &CpuSet) -> CpuSet {
        assert_eq!(self.capacity, other.capacity, "CpuSet capacity mismatch");
        CpuSet {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & b)
                .collect(),
            capacity: self.capacity,
        }
    }

    /// Iterates over the members that live on `node` of `topology`, in
    /// ascending id order.
    ///
    /// # Examples
    ///
    /// ```
    /// use machtlb_pmap::CpuSet;
    /// use machtlb_sim::{CpuId, Dur, Topology};
    ///
    /// let topo = Topology::numa(2, 4, Dur::micros(2));
    /// let set = CpuSet::full(8);
    /// let on_node_1: Vec<usize> = set.node_members(topo, 1).map(|c| c.index()).collect();
    /// assert_eq!(on_node_1, vec![4, 5, 6, 7]);
    /// ```
    pub fn node_members(
        &self,
        topology: Topology,
        node: usize,
    ) -> impl Iterator<Item = CpuId> + '_ {
        self.iter().filter(move |&c| topology.node_of(c) == node)
    }

    /// Splits the set into one subset per node of `topology`: element `n` of
    /// the result holds exactly the members living on node `n`. Every member
    /// appears in exactly one partition, so the partitions are disjoint and
    /// their union is `self`.
    pub fn partition_by_node(&self, topology: Topology) -> Vec<CpuSet> {
        let mut parts = vec![CpuSet::new(self.capacity); topology.nodes()];
        for c in self.iter() {
            parts[topology.node_of(c)].insert(c);
        }
        parts
    }

    /// The members of `self` absent from `other` (word-parallel and-not).
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn difference(&self, other: &CpuSet) -> CpuSet {
        assert_eq!(self.capacity, other.capacity, "CpuSet capacity mismatch");
        CpuSet {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & !b)
                .collect(),
            capacity: self.capacity,
        }
    }
}

impl fmt::Debug for CpuSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl fmt::Display for CpuSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, c) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", c.index())?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<CpuId> for CpuSet {
    /// Collects ids into a set sized to the largest id seen (capacity is
    /// `max_id + 1`; empty input yields capacity 0).
    fn from_iter<I: IntoIterator<Item = CpuId>>(iter: I) -> CpuSet {
        let ids: Vec<CpuId> = iter.into_iter().collect();
        let cap = ids.iter().map(|c| c.index() + 1).max().unwrap_or(0);
        let mut s = CpuSet::new(cap);
        for id in ids {
            s.insert(id);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = CpuSet::new(128);
        assert!(s.insert(CpuId::new(0)));
        assert!(s.insert(CpuId::new(127)));
        assert!(!s.insert(CpuId::new(0)), "double insert reports false");
        assert!(s.contains(CpuId::new(127)));
        assert_eq!(s.len(), 2);
        assert!(s.remove(CpuId::new(0)));
        assert!(!s.remove(CpuId::new(0)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn full_and_clear() {
        let mut s = CpuSet::full(16);
        assert_eq!(s.len(), 16);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn iter_is_ascending() {
        let s: CpuSet = [5u32, 1, 70, 64].into_iter().map(CpuId::new).collect();
        let got: Vec<usize> = s.iter().map(|c| c.index()).collect();
        assert_eq!(got, vec![1, 5, 64, 70]);
    }

    #[test]
    fn any_other_than_ignores_self() {
        let mut s = CpuSet::new(4);
        s.insert(CpuId::new(2));
        assert!(!s.any_other_than(CpuId::new(2)));
        s.insert(CpuId::new(3));
        assert!(s.any_other_than(CpuId::new(2)));
    }

    #[test]
    fn set_algebra() {
        let mut a = CpuSet::new(128);
        let mut b = CpuSet::new(128);
        for i in [0u32, 1, 2, 64] {
            a.insert(CpuId::new(i));
        }
        for i in [1u32, 64, 100] {
            b.insert(CpuId::new(i));
        }
        let both = a.intersection(&b);
        assert_eq!(both.iter().map(|c| c.index()).collect::<Vec<_>>(), [1, 64]);
        let only_a = a.difference(&b);
        assert_eq!(only_a.iter().map(|c| c.index()).collect::<Vec<_>>(), [0, 2]);
        assert_eq!(a.word_count(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let s = CpuSet::new(8);
        let _ = s.contains(CpuId::new(8));
    }

    #[test]
    fn node_members_respects_surplus_fold() {
        use machtlb_sim::Dur;
        // 10 cpus on a 2x4 topology: cpus 8 and 9 fold onto the last node.
        let topo = Topology::numa(2, 4, Dur::micros(1));
        let s = CpuSet::full(10);
        let n0: Vec<usize> = s.node_members(topo, 0).map(|c| c.index()).collect();
        let n1: Vec<usize> = s.node_members(topo, 1).map(|c| c.index()).collect();
        assert_eq!(n0, vec![0, 1, 2, 3]);
        assert_eq!(n1, vec![4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn partition_on_flat_is_the_whole_set() {
        let s: CpuSet = [3u32, 9, 77].into_iter().map(CpuId::new).collect();
        let parts = s.partition_by_node(Topology::flat(s.capacity()));
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0], s);
    }

    mod properties {
        use super::*;
        use machtlb_sim::Dur;
        use proptest::prelude::*;

        /// Topologies and member sets that exercise >64 cpus so multi-word
        /// bit-vector handling is covered. Ids range well past the topology's
        /// nominal span; surplus cpus fold onto the last node by design.
        fn topo_and_members() -> impl Strategy<Value = (Topology, Vec<u32>)> {
            (
                1usize..=8,
                1usize..=40,
                proptest::collection::vec(0u32..320, 0..96),
            )
                .prop_map(|(nodes, node_cpus, ids)| {
                    (Topology::numa(nodes, node_cpus, Dur::micros(2)), ids)
                })
        }

        proptest! {
            #[test]
            fn partitions_are_disjoint_and_cover_the_set((topo, ids) in topo_and_members()) {
                let cap = ids.iter().map(|&i| i as usize + 1).max().unwrap_or(0).max(65);
                let mut s = CpuSet::new(cap);
                for &i in &ids {
                    s.insert(CpuId::new(i));
                }
                let parts = s.partition_by_node(topo);
                prop_assert_eq!(parts.len(), topo.nodes());
                // Disjoint: total membership equals the set's size.
                let total: usize = parts.iter().map(CpuSet::len).sum();
                prop_assert_eq!(total, s.len());
                // Cover: every member lands in the partition of its node,
                // and no partition holds a foreign cpu.
                for (n, part) in parts.iter().enumerate() {
                    for c in part.iter() {
                        prop_assert!(s.contains(c));
                        prop_assert_eq!(topo.node_of(c), n);
                    }
                }
                for c in s.iter() {
                    prop_assert!(parts[topo.node_of(c)].contains(c));
                }
            }

            #[test]
            fn node_members_matches_partition((topo, ids) in topo_and_members()) {
                let cap = ids.iter().map(|&i| i as usize + 1).max().unwrap_or(0).max(65);
                let mut s = CpuSet::new(cap);
                for &i in &ids {
                    s.insert(CpuId::new(i));
                }
                let parts = s.partition_by_node(topo);
                prop_assert_eq!(parts.len(), topo.nodes());
                for (n, part) in parts.iter().enumerate() {
                    let via_iter: Vec<CpuId> = s.node_members(topo, n).collect();
                    let via_parts: Vec<CpuId> = part.iter().collect();
                    prop_assert_eq!(via_iter, via_parts, "node {}", n);
                }
            }
        }
    }
}
