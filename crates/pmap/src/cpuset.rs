//! Sets of processors.
//!
//! The shootdown algorithm manipulates several processor sets (Section 4):
//! the *active* set, the *idle* set, and a per-pmap *in-use* set. They are
//! bit vectors in shared memory; the time cost of reading or writing them is
//! charged by the processes that do so.

use std::fmt;

use machtlb_sim::CpuId;

/// A set of processors, implemented as a bit vector.
///
/// # Examples
///
/// ```
/// use machtlb_pmap::CpuSet;
/// use machtlb_sim::CpuId;
///
/// let mut set = CpuSet::new(16);
/// set.insert(CpuId::new(3));
/// set.insert(CpuId::new(11));
/// assert_eq!(set.len(), 2);
/// assert!(set.contains(CpuId::new(3)));
/// let members: Vec<CpuId> = set.iter().collect();
/// assert_eq!(members, vec![CpuId::new(3), CpuId::new(11)]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct CpuSet {
    words: Vec<u64>,
    capacity: usize,
}

impl CpuSet {
    /// Creates an empty set able to hold processors `0..capacity`.
    pub fn new(capacity: usize) -> CpuSet {
        CpuSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Creates a set containing all of `0..capacity`.
    pub fn full(capacity: usize) -> CpuSet {
        let mut s = CpuSet::new(capacity);
        for i in 0..capacity {
            s.insert(CpuId::new(i as u32));
        }
        s
    }

    /// The number of processors the set can hold.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn check(&self, cpu: CpuId) {
        assert!(
            cpu.index() < self.capacity,
            "{cpu} out of range for CpuSet of capacity {}",
            self.capacity
        );
    }

    /// Adds `cpu`. Returns whether it was newly added.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` exceeds the capacity.
    pub fn insert(&mut self, cpu: CpuId) -> bool {
        self.check(cpu);
        let (w, b) = (cpu.index() / 64, cpu.index() % 64);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] |= 1 << b;
        !had
    }

    /// Removes `cpu`. Returns whether it was present.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` exceeds the capacity.
    pub fn remove(&mut self, cpu: CpuId) -> bool {
        self.check(cpu);
        let (w, b) = (cpu.index() / 64, cpu.index() % 64);
        let had = self.words[w] & (1 << b) != 0;
        self.words[w] &= !(1 << b);
        had
    }

    /// Whether `cpu` is in the set.
    ///
    /// # Panics
    ///
    /// Panics if `cpu` exceeds the capacity.
    pub fn contains(&self, cpu: CpuId) -> bool {
        self.check(cpu);
        let (w, b) = (cpu.index() / 64, cpu.index() % 64);
        self.words[w] & (1 << b) != 0
    }

    /// Number of processors in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if no processor is in the set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes all processors.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Iterates over members in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = CpuId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64)
                .filter(move |b| w & (1 << b) != 0)
                .map(move |b| CpuId::new((wi * 64 + b) as u32))
        })
    }

    /// Whether any member other than `cpu` is present — the initiator's
    /// "other cpus using pmap" test.
    pub fn any_other_than(&self, cpu: CpuId) -> bool {
        self.iter().any(|c| c != cpu)
    }

    /// Number of 64-bit words backing the set: the unit multicast-round
    /// publishers charge for whole-set scans.
    pub fn word_count(&self) -> usize {
        self.words.len()
    }

    /// The members present in both sets (word-parallel and).
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn intersection(&self, other: &CpuSet) -> CpuSet {
        assert_eq!(self.capacity, other.capacity, "CpuSet capacity mismatch");
        CpuSet {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & b)
                .collect(),
            capacity: self.capacity,
        }
    }

    /// The members of `self` absent from `other` (word-parallel and-not).
    ///
    /// # Panics
    ///
    /// Panics if the capacities differ.
    pub fn difference(&self, other: &CpuSet) -> CpuSet {
        assert_eq!(self.capacity, other.capacity, "CpuSet capacity mismatch");
        CpuSet {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & !b)
                .collect(),
            capacity: self.capacity,
        }
    }
}

impl fmt::Debug for CpuSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl fmt::Display for CpuSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, c) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", c.index())?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<CpuId> for CpuSet {
    /// Collects ids into a set sized to the largest id seen (capacity is
    /// `max_id + 1`; empty input yields capacity 0).
    fn from_iter<I: IntoIterator<Item = CpuId>>(iter: I) -> CpuSet {
        let ids: Vec<CpuId> = iter.into_iter().collect();
        let cap = ids.iter().map(|c| c.index() + 1).max().unwrap_or(0);
        let mut s = CpuSet::new(cap);
        for id in ids {
            s.insert(id);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = CpuSet::new(128);
        assert!(s.insert(CpuId::new(0)));
        assert!(s.insert(CpuId::new(127)));
        assert!(!s.insert(CpuId::new(0)), "double insert reports false");
        assert!(s.contains(CpuId::new(127)));
        assert_eq!(s.len(), 2);
        assert!(s.remove(CpuId::new(0)));
        assert!(!s.remove(CpuId::new(0)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn full_and_clear() {
        let mut s = CpuSet::full(16);
        assert_eq!(s.len(), 16);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn iter_is_ascending() {
        let s: CpuSet = [5u32, 1, 70, 64].into_iter().map(CpuId::new).collect();
        let got: Vec<usize> = s.iter().map(|c| c.index()).collect();
        assert_eq!(got, vec![1, 5, 64, 70]);
    }

    #[test]
    fn any_other_than_ignores_self() {
        let mut s = CpuSet::new(4);
        s.insert(CpuId::new(2));
        assert!(!s.any_other_than(CpuId::new(2)));
        s.insert(CpuId::new(3));
        assert!(s.any_other_than(CpuId::new(2)));
    }

    #[test]
    fn set_algebra() {
        let mut a = CpuSet::new(128);
        let mut b = CpuSet::new(128);
        for i in [0u32, 1, 2, 64] {
            a.insert(CpuId::new(i));
        }
        for i in [1u32, 64, 100] {
            b.insert(CpuId::new(i));
        }
        let both = a.intersection(&b);
        assert_eq!(both.iter().map(|c| c.index()).collect::<Vec<_>>(), [1, 64]);
        let only_a = a.difference(&b);
        assert_eq!(only_a.iter().map(|c| c.index()).collect::<Vec<_>>(), [0, 2]);
        assert_eq!(a.word_count(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let s = CpuSet::new(8);
        let _ = s.contains(CpuId::new(8));
    }
}
