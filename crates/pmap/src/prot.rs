//! Page protections and access kinds.
//!
//! Whether a pmap change can leave *stale rights* in a remote TLB depends on
//! the direction of the protection change: reducing protection or removing a
//! mapping requires consistency actions, while increasing protection can at
//! worst cause a spurious fault (the paper's "temporary inconsistency"
//! optimization, Section 3 technique 3).

use std::fmt;

/// The kind of memory access a processor performs.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum Access {
    /// An instruction fetch or data read.
    Read,
    /// A data write.
    Write,
}

/// A page protection: which access kinds are permitted.
///
/// # Examples
///
/// ```
/// use machtlb_pmap::{Access, Prot};
///
/// assert!(Prot::READ_WRITE.allows(Access::Write));
/// assert!(!Prot::READ.allows(Access::Write));
/// // Downgrading rights is what forces a shootdown:
/// assert!(Prot::READ.is_downgrade_from(Prot::READ_WRITE));
/// assert!(!Prot::READ_WRITE.is_downgrade_from(Prot::READ));
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Default)]
pub struct Prot {
    read: bool,
    write: bool,
}

impl Prot {
    /// No access.
    pub const NONE: Prot = Prot {
        read: false,
        write: false,
    };
    /// Read-only.
    pub const READ: Prot = Prot {
        read: true,
        write: false,
    };
    /// Read and write.
    pub const READ_WRITE: Prot = Prot {
        read: true,
        write: true,
    };

    /// Whether this protection permits `access`.
    pub const fn allows(self, access: Access) -> bool {
        match access {
            Access::Read => self.read,
            Access::Write => self.write,
        }
    }

    /// Whether every right in `self` is also in `other`.
    pub const fn is_subset_of(self, other: Prot) -> bool {
        (!self.read || other.read) && (!self.write || other.write)
    }

    /// Whether switching from `old` to `self` removes at least one right —
    /// the condition under which stale TLB entries become dangerous.
    pub const fn is_downgrade_from(self, old: Prot) -> bool {
        !old.is_subset_of(self)
    }

    /// The intersection of two protections.
    pub const fn intersect(self, other: Prot) -> Prot {
        Prot {
            read: self.read && other.read,
            write: self.write && other.write,
        }
    }

    /// Whether no access is permitted.
    pub const fn is_none(self) -> bool {
        !self.read && !self.write
    }
}

impl fmt::Display for Prot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.read, self.write) {
            (false, false) => write!(f, "---"),
            (true, false) => write!(f, "r--"),
            (false, true) => write!(f, "-w-"),
            (true, true) => write!(f, "rw-"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allows_matches_rights() {
        assert!(Prot::READ.allows(Access::Read));
        assert!(!Prot::READ.allows(Access::Write));
        assert!(Prot::READ_WRITE.allows(Access::Write));
        assert!(!Prot::NONE.allows(Access::Read));
    }

    #[test]
    fn downgrade_detection() {
        assert!(Prot::NONE.is_downgrade_from(Prot::READ));
        assert!(Prot::READ.is_downgrade_from(Prot::READ_WRITE));
        assert!(!Prot::READ_WRITE.is_downgrade_from(Prot::READ));
        assert!(!Prot::READ.is_downgrade_from(Prot::READ));
    }

    #[test]
    fn subset_and_intersection() {
        assert!(Prot::NONE.is_subset_of(Prot::READ));
        assert!(Prot::READ.is_subset_of(Prot::READ_WRITE));
        assert!(!Prot::READ_WRITE.is_subset_of(Prot::READ));
        assert_eq!(Prot::READ_WRITE.intersect(Prot::READ), Prot::READ);
        assert_eq!(Prot::READ.intersect(Prot::NONE), Prot::NONE);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Prot::READ_WRITE.to_string(), "rw-");
        assert_eq!(Prot::NONE.to_string(), "---");
    }
}
