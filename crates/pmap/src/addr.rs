//! Virtual and physical addresses, page numbers, and page ranges.
//!
//! The simulated MMU uses a 32-bit virtual address space with 4 KiB pages:
//! 20 bits of virtual page number split 10/10 across a two-level page table,
//! matching the NS32382 MMU organisation the paper's pmap module targets.

use std::fmt;

/// Bytes per page.
pub const PAGE_SIZE: u64 = 4096;
/// log2 of [`PAGE_SIZE`].
pub const PAGE_SHIFT: u32 = 12;
/// Virtual page number bits (32-bit VA, 4 KiB pages).
pub const VPN_BITS: u32 = 20;
/// Number of virtual pages in an address space.
pub const VPN_SPAN: u64 = 1 << VPN_BITS;

/// A virtual address.
///
/// # Examples
///
/// ```
/// use machtlb_pmap::{Vaddr, Vpn};
///
/// let va = Vaddr::new(0x0040_1234);
/// assert_eq!(va.vpn(), Vpn::new(0x401));
/// assert_eq!(va.page_offset(), 0x234);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Vaddr(u64);

impl Vaddr {
    /// Creates a virtual address.
    ///
    /// # Panics
    ///
    /// Panics if the address does not fit in 32 bits.
    pub fn new(addr: u64) -> Vaddr {
        assert!(
            addr < (1 << 32),
            "virtual address {addr:#x} exceeds 32 bits"
        );
        Vaddr(addr)
    }

    /// The raw address.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The virtual page containing this address.
    pub const fn vpn(self) -> Vpn {
        Vpn(self.0 >> PAGE_SHIFT)
    }

    /// The offset within the page.
    pub const fn page_offset(self) -> u64 {
        self.0 & (PAGE_SIZE - 1)
    }
}

impl fmt::Display for Vaddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "va:{:#010x}", self.0)
    }
}

/// A physical address.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Paddr(u64);

impl Paddr {
    /// Creates a physical address.
    pub const fn new(addr: u64) -> Paddr {
        Paddr(addr)
    }

    /// The raw address.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The physical frame containing this address.
    pub const fn pfn(self) -> Pfn {
        Pfn(self.0 >> PAGE_SHIFT)
    }

    /// The offset within the frame.
    pub const fn page_offset(self) -> u64 {
        self.0 & (PAGE_SIZE - 1)
    }
}

impl fmt::Display for Paddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pa:{:#010x}", self.0)
    }
}

/// A virtual page number.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Vpn(u64);

impl Vpn {
    /// Creates a virtual page number.
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the 20-bit VPN space.
    pub fn new(n: u64) -> Vpn {
        assert!(n < VPN_SPAN, "vpn {n:#x} exceeds {VPN_BITS}-bit space");
        Vpn(n)
    }

    /// The raw page number.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The first address of the page.
    pub const fn base(self) -> Vaddr {
        Vaddr(self.0 << PAGE_SHIFT)
    }

    /// The page `n` pages after this one.
    ///
    /// # Panics
    ///
    /// Panics if the result leaves the VPN space.
    pub fn offset(self, n: u64) -> Vpn {
        Vpn::new(self.0 + n)
    }

    /// The root-level page-table index (upper 10 bits).
    pub const fn root_index(self) -> usize {
        (self.0 >> 10) as usize
    }

    /// The leaf-level page-table index (lower 10 bits).
    pub const fn leaf_index(self) -> usize {
        (self.0 & 0x3ff) as usize
    }
}

impl fmt::Display for Vpn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vpn:{:#07x}", self.0)
    }
}

/// A physical frame number.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pfn(u64);

impl Pfn {
    /// Creates a physical frame number.
    pub const fn new(n: u64) -> Pfn {
        Pfn(n)
    }

    /// The raw frame number.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The first address of the frame.
    pub const fn base(self) -> Paddr {
        Paddr(self.0 << PAGE_SHIFT)
    }
}

impl fmt::Display for Pfn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pfn:{:#x}", self.0)
    }
}

/// A contiguous, page-aligned range of virtual pages — the unit every Mach
/// address-space operation applies to.
///
/// # Examples
///
/// ```
/// use machtlb_pmap::{PageRange, Vpn};
///
/// let r = PageRange::new(Vpn::new(0x10), 3);
/// let pages: Vec<Vpn> = r.iter().collect();
/// assert_eq!(pages, vec![Vpn::new(0x10), Vpn::new(0x11), Vpn::new(0x12)]);
/// assert!(r.contains(Vpn::new(0x12)));
/// assert!(!r.contains(Vpn::new(0x13)));
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct PageRange {
    start: Vpn,
    count: u64,
}

impl PageRange {
    /// A range of `count` pages starting at `start`.
    ///
    /// # Panics
    ///
    /// Panics if the range leaves the VPN space.
    pub fn new(start: Vpn, count: u64) -> PageRange {
        assert!(
            start.raw() + count <= VPN_SPAN,
            "page range {}+{count} exceeds the address space",
            start
        );
        PageRange { start, count }
    }

    /// The single-page range containing `vpn`.
    pub fn single(vpn: Vpn) -> PageRange {
        PageRange {
            start: vpn,
            count: 1,
        }
    }

    /// First page of the range.
    pub const fn start(self) -> Vpn {
        self.start
    }

    /// One past the last page of the range.
    pub const fn end(self) -> Vpn {
        Vpn(self.start.0 + self.count)
    }

    /// Number of pages.
    pub const fn count(self) -> u64 {
        self.count
    }

    /// True if the range is empty.
    pub const fn is_empty(self) -> bool {
        self.count == 0
    }

    /// Whether `vpn` lies within the range.
    pub const fn contains(self, vpn: Vpn) -> bool {
        vpn.0 >= self.start.0 && vpn.0 < self.start.0 + self.count
    }

    /// Whether the two ranges share any page.
    pub const fn overlaps(self, other: PageRange) -> bool {
        self.start.0 < other.start.0 + other.count && other.start.0 < self.start.0 + self.count
    }

    /// Iterates over the pages of the range in ascending order.
    pub fn iter(self) -> impl Iterator<Item = Vpn> {
        (self.start.0..self.start.0 + self.count).map(Vpn)
    }
}

impl fmt::Display for PageRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}..{})", self.start, self.end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_decomposition() {
        let va = Vaddr::new(0xdead_b000 & 0xffff_ffff);
        assert_eq!(va.vpn().base().raw(), va.raw() & !(PAGE_SIZE - 1));
        assert_eq!(Vaddr::new(0x1234).page_offset(), 0x234);
    }

    #[test]
    fn vpn_index_split_matches_two_level_layout() {
        let vpn = Vpn::new(0b1100110011_0101010101);
        assert_eq!(vpn.root_index(), 0b1100110011);
        assert_eq!(vpn.leaf_index(), 0b0101010101);
    }

    #[test]
    #[should_panic(expected = "exceeds 32 bits")]
    fn vaddr_rejects_wide_addresses() {
        let _ = Vaddr::new(1 << 32);
    }

    #[test]
    #[should_panic(expected = "exceeds the address space")]
    fn range_rejects_overflow() {
        let _ = PageRange::new(Vpn::new(VPN_SPAN - 1), 2);
    }

    #[test]
    fn range_overlap_cases() {
        let a = PageRange::new(Vpn::new(10), 5); // [10,15)
        assert!(a.overlaps(PageRange::new(Vpn::new(14), 1)));
        assert!(a.overlaps(PageRange::new(Vpn::new(8), 3)));
        assert!(!a.overlaps(PageRange::new(Vpn::new(15), 4)));
        assert!(!a.overlaps(PageRange::new(Vpn::new(2), 8)));
        assert!(!a.overlaps(PageRange::new(Vpn::new(15), 0)));
    }

    #[test]
    fn pfn_paddr_round_trip() {
        let pfn = Pfn::new(0x321);
        assert_eq!(pfn.base().pfn(), pfn);
        assert_eq!(Paddr::new(0x321fff).pfn(), pfn);
    }
}
