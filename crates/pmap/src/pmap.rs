//! The physical map: the machine-dependent object the shootdown algorithm
//! protects.
//!
//! A [`Pmap`] bundles the page table with the shared-memory state the
//! algorithm in Section 4 manipulates: the exclusive pmap lock the initiator
//! holds across its update (and responders spin on), and the per-pmap set of
//! processors currently using the pmap, maintained by the bookkeeping calls
//! from the machine-independent layer.

use std::fmt;

use machtlb_sim::{CpuId, SpinLock, WaitChannel};

use crate::addr::PageRange;
use crate::cpuset::CpuSet;
use crate::table::PageTable;

/// Pages per lock shard: a shard covers every `SHARD_GRANULE`-page block
/// whose index is congruent to the shard number modulo the shard count.
/// Coarse enough that a typical operation's range lands in one shard, fine
/// enough that independent regions of a large address space hash to
/// different shards.
pub const SHARD_GRANULE: u64 = 64;

/// A pmap identifier. Id 0 is the kernel pmap, which is "potentially
/// executing on all processors of a multiprocessor" (Section 2).
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PmapId(u32);

impl PmapId {
    /// The kernel pmap.
    pub const KERNEL: PmapId = PmapId(0);

    /// Creates a pmap id.
    pub const fn new(n: u32) -> PmapId {
        PmapId(n)
    }

    /// The raw id.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Whether this is the kernel pmap.
    pub const fn is_kernel(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for PmapId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_kernel() {
            write!(f, "pmap:kernel")
        } else {
            write!(f, "pmap:{}", self.0)
        }
    }
}

/// Cumulative per-pmap operation counts.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct PmapStats {
    /// Mappings entered (validate operations and fault fills).
    pub enters: u64,
    /// Range removals executed.
    pub removes: u64,
    /// Range protection changes executed.
    pub protects: u64,
    /// Times the pmap was destroyed and reconstructed.
    pub destroys: u64,
    /// Referenced-bit clearing passes executed (pageout aging).
    pub ref_clears: u64,
}

/// A physical map: page table, exclusive lock, and in-use processor set.
///
/// # Examples
///
/// ```
/// use machtlb_pmap::{Pmap, PmapId};
/// use machtlb_sim::CpuId;
///
/// let mut pmap = Pmap::new(PmapId::new(3), 16);
/// pmap.mark_in_use(CpuId::new(2));
/// assert!(pmap.in_use().contains(CpuId::new(2)));
/// assert!(!pmap.in_use().any_other_than(CpuId::new(2)));
/// ```
pub struct Pmap {
    id: PmapId,
    table: PageTable,
    /// The pmap lock, split into `n_shards` independent range shards.
    /// Shard 0 doubles as "the pmap lock" for single-shard configurations
    /// (the seed behavior); every shard notifies the same umbrella wait
    /// channel, so waiters re-check on any shard's release.
    shards: Vec<SpinLock>,
    in_use: CpuSet,
    stats: PmapStats,
    /// The node whose memory holds this pmap's page tables and lock words
    /// (0 on a flat machine). Transactions against the pmap from other
    /// nodes cross the interconnect.
    home: usize,
}

impl Pmap {
    /// Creates an empty pmap with a single lock shard (the seed layout).
    pub fn new(id: PmapId, n_cpus: usize) -> Pmap {
        Pmap::with_shards(id, n_cpus, 1)
    }

    /// Creates an empty pmap whose lock is split into `n_shards` range
    /// shards.
    ///
    /// # Panics
    ///
    /// Panics if `n_shards` is zero.
    pub fn with_shards(id: PmapId, n_cpus: usize, n_shards: usize) -> Pmap {
        assert!(n_shards >= 1, "a pmap needs at least one lock shard");
        Pmap {
            id,
            table: PageTable::new(),
            shards: (0..n_shards)
                .map(|_| SpinLock::new().on_channel(Pmap::lock_channel(id)))
                .collect(),
            in_use: CpuSet::new(n_cpus),
            stats: PmapStats::default(),
            home: 0,
        }
    }

    /// The node whose memory homes this pmap's structures.
    pub fn home(&self) -> usize {
        self.home
    }

    /// Places the pmap's structures on `node` (NUMA placement; 0 is the
    /// flat machine's only node).
    pub fn set_home(&mut self, node: usize) {
        self.home = node;
    }

    /// The wait channel a pmap's lock releases notify (`0x1` key space;
    /// see `machtlb_sim::event`'s channel registry).
    pub fn lock_channel(id: PmapId) -> WaitChannel {
        WaitChannel::new(0x1_0000_0000 | u64::from(id.raw()))
    }

    /// This pmap's id.
    pub fn id(&self) -> PmapId {
        self.id
    }

    /// The page table.
    pub fn table(&self) -> &PageTable {
        &self.table
    }

    /// Mutable access to the page table. The caller is responsible for
    /// holding the pmap lock across mutations, as the shootdown protocol
    /// requires.
    pub fn table_mut(&mut self) -> &mut PageTable {
        &mut self.table
    }

    /// The exclusive pmap lock — shard 0, which for single-shard pmaps
    /// (the default) is the whole lock. Callers that respect ranges should
    /// use [`Pmap::shard`] with [`Pmap::shards_for`] instead.
    pub fn lock(&self) -> &SpinLock {
        &self.shards[0]
    }

    /// Mutable access to shard 0 (to acquire/release it).
    pub fn lock_mut(&mut self) -> &mut SpinLock {
        &mut self.shards[0]
    }

    /// Number of lock shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The lock shard with the given index.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn shard(&self, shard: usize) -> &SpinLock {
        &self.shards[shard]
    }

    /// Mutable access to a lock shard.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn shard_mut(&mut self, shard: usize) -> &mut SpinLock {
        &mut self.shards[shard]
    }

    /// Iterates over every lock shard.
    pub fn shards(&self) -> impl Iterator<Item = &SpinLock> {
        self.shards.iter()
    }

    /// The ascending list of shard indices an operation on `range` must
    /// hold. `None` (a whole-pmap operation, e.g. destroy) and any range
    /// wide enough to touch every shard return all of them. Single-shard
    /// pmaps always return `[0]`.
    pub fn shards_for(&self, range: Option<PageRange>) -> Vec<usize> {
        let n = self.shards.len();
        if n == 1 {
            return vec![0];
        }
        let Some(range) = range else {
            return (0..n).collect();
        };
        if range.is_empty() {
            return vec![0];
        }
        let first = range.start().raw() / SHARD_GRANULE;
        let last = (range.end().raw() - 1) / SHARD_GRANULE;
        if last - first + 1 >= n as u64 {
            return (0..n).collect();
        }
        let mut hit = vec![false; n];
        for block in first..=last {
            hit[(block % n as u64) as usize] = true;
        }
        (0..n).filter(|&s| hit[s]).collect()
    }

    /// Whether any shard of the pmap lock is held by a processor other than
    /// `me` — the responder's "pmap is being updated elsewhere" stall test.
    pub fn locked_by_other(&self, me: CpuId) -> bool {
        self.shards
            .iter()
            .any(|l| l.is_locked() && !l.is_held_by(me))
    }

    /// The set of processors currently using this pmap.
    pub fn in_use(&self) -> &CpuSet {
        &self.in_use
    }

    /// Bookkeeping: `cpu` started using this pmap (thread dispatch /
    /// context switch in).
    pub fn mark_in_use(&mut self, cpu: CpuId) {
        self.in_use.insert(cpu);
    }

    /// Bookkeeping: `cpu` stopped using this pmap (context switch out).
    /// With ASID-tagged TLBs this call is ignored by the consistency layer
    /// until the entries are flushed (Section 10); the pmap set itself still
    /// records the scheduler's view.
    pub fn mark_not_in_use(&mut self, cpu: CpuId) {
        self.in_use.remove(cpu);
    }

    /// Cumulative operation counts.
    pub fn stats(&self) -> PmapStats {
        self.stats
    }

    /// Mutable access to the statistics (updated by the pmap operations in
    /// the consistency layer).
    pub fn stats_mut(&mut self) -> &mut PmapStats {
        &mut self.stats
    }

    /// Destroys the pmap's contents. Pmaps "can even be destroyed at
    /// runtime; they will be reconstructed from scratch as page faults
    /// occur" (Section 2).
    pub fn destroy_contents(&mut self) {
        self.table.clear();
        self.stats.destroys += 1;
    }
}

impl fmt::Debug for Pmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Pmap")
            .field("id", &self.id)
            .field("valid_count", &self.table.valid_count())
            .field("shards", &self.shards)
            .field("in_use", &self.in_use)
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{Pfn, Vpn};
    use crate::prot::Prot;
    use crate::pte::Pte;

    #[test]
    fn kernel_id_is_zero() {
        assert!(PmapId::KERNEL.is_kernel());
        assert!(!PmapId::new(1).is_kernel());
        assert_eq!(PmapId::KERNEL.to_string(), "pmap:kernel");
        assert_eq!(PmapId::new(2).to_string(), "pmap:2");
    }

    #[test]
    fn in_use_bookkeeping() {
        let mut p = Pmap::new(PmapId::new(1), 4);
        p.mark_in_use(CpuId::new(1));
        p.mark_in_use(CpuId::new(3));
        assert_eq!(p.in_use().len(), 2);
        p.mark_not_in_use(CpuId::new(1));
        assert!(!p.in_use().contains(CpuId::new(1)));
    }

    #[test]
    fn single_shard_pmap_is_the_seed_layout() {
        let p = Pmap::new(PmapId::new(1), 4);
        assert_eq!(p.n_shards(), 1);
        assert_eq!(p.shards_for(None), vec![0]);
        assert_eq!(
            p.shards_for(Some(PageRange::new(Vpn::new(0), 1 << 18))),
            vec![0]
        );
        assert_eq!(p.lock().channel(), Some(Pmap::lock_channel(PmapId::new(1))));
    }

    #[test]
    fn shards_for_partitions_by_granule() {
        let p = Pmap::with_shards(PmapId::new(1), 4, 4);
        // One granule-sized block maps to exactly one shard.
        let r0 = PageRange::new(Vpn::new(0), SHARD_GRANULE);
        assert_eq!(p.shards_for(Some(r0)), vec![0]);
        let r1 = PageRange::new(Vpn::new(SHARD_GRANULE), 1);
        assert_eq!(p.shards_for(Some(r1)), vec![1]);
        // A range straddling two blocks needs both shards, ascending.
        let straddle = PageRange::new(Vpn::new(SHARD_GRANULE - 1), 2);
        assert_eq!(p.shards_for(Some(straddle)), vec![0, 1]);
        // Whole-pmap operations and huge ranges take every shard.
        assert_eq!(p.shards_for(None), vec![0, 1, 2, 3]);
        let huge = PageRange::new(Vpn::new(0), SHARD_GRANULE * 9);
        assert_eq!(p.shards_for(Some(huge)), vec![0, 1, 2, 3]);
    }

    #[test]
    fn shards_share_the_umbrella_channel_but_steal_independently() {
        let mut p = Pmap::with_shards(PmapId::new(2), 4, 2);
        let chan = Pmap::lock_channel(PmapId::new(2));
        assert!(p.shards().all(|l| l.channel() == Some(chan)));
        assert!(p.shard_mut(0).try_acquire(CpuId::new(1)));
        assert!(p.shard_mut(1).try_acquire(CpuId::new(2)));
        assert!(p.locked_by_other(CpuId::new(3)));
        // Stealing shard 1 bumps only shard 1's generation.
        p.shard_mut(1).steal(CpuId::new(2), CpuId::new(3));
        assert_eq!(p.shard(0).steal_gen(), 0);
        assert_eq!(p.shard(1).steal_gen(), 1);
        p.shard_mut(0).release(CpuId::new(1));
        p.shard_mut(1).release(CpuId::new(3));
        assert!(!p.locked_by_other(CpuId::new(0)));
    }

    #[test]
    #[should_panic(expected = "at least one lock shard")]
    fn zero_shards_rejected() {
        let _ = Pmap::with_shards(PmapId::new(1), 2, 0);
    }

    #[test]
    fn destroy_clears_table_and_counts() {
        let mut p = Pmap::new(PmapId::new(1), 4);
        p.table_mut()
            .set(Vpn::new(7), Pte::valid(Pfn::new(1), Prot::READ));
        p.destroy_contents();
        assert_eq!(p.table().valid_count(), 0);
        assert_eq!(p.stats().destroys, 1);
    }
}
