//! The physical map: the machine-dependent object the shootdown algorithm
//! protects.
//!
//! A [`Pmap`] bundles the page table with the shared-memory state the
//! algorithm in Section 4 manipulates: the exclusive pmap lock the initiator
//! holds across its update (and responders spin on), and the per-pmap set of
//! processors currently using the pmap, maintained by the bookkeeping calls
//! from the machine-independent layer.

use std::fmt;

use machtlb_sim::{CpuId, SpinLock, WaitChannel};

use crate::cpuset::CpuSet;
use crate::table::PageTable;

/// A pmap identifier. Id 0 is the kernel pmap, which is "potentially
/// executing on all processors of a multiprocessor" (Section 2).
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PmapId(u32);

impl PmapId {
    /// The kernel pmap.
    pub const KERNEL: PmapId = PmapId(0);

    /// Creates a pmap id.
    pub const fn new(n: u32) -> PmapId {
        PmapId(n)
    }

    /// The raw id.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Whether this is the kernel pmap.
    pub const fn is_kernel(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for PmapId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_kernel() {
            write!(f, "pmap:kernel")
        } else {
            write!(f, "pmap:{}", self.0)
        }
    }
}

/// Cumulative per-pmap operation counts.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct PmapStats {
    /// Mappings entered (validate operations and fault fills).
    pub enters: u64,
    /// Range removals executed.
    pub removes: u64,
    /// Range protection changes executed.
    pub protects: u64,
    /// Times the pmap was destroyed and reconstructed.
    pub destroys: u64,
    /// Referenced-bit clearing passes executed (pageout aging).
    pub ref_clears: u64,
}

/// A physical map: page table, exclusive lock, and in-use processor set.
///
/// # Examples
///
/// ```
/// use machtlb_pmap::{Pmap, PmapId};
/// use machtlb_sim::CpuId;
///
/// let mut pmap = Pmap::new(PmapId::new(3), 16);
/// pmap.mark_in_use(CpuId::new(2));
/// assert!(pmap.in_use().contains(CpuId::new(2)));
/// assert!(!pmap.in_use().any_other_than(CpuId::new(2)));
/// ```
pub struct Pmap {
    id: PmapId,
    table: PageTable,
    lock: SpinLock,
    in_use: CpuSet,
    stats: PmapStats,
}

impl Pmap {
    /// Creates an empty pmap for a machine with `n_cpus` processors.
    pub fn new(id: PmapId, n_cpus: usize) -> Pmap {
        Pmap {
            id,
            table: PageTable::new(),
            lock: SpinLock::new().on_channel(Pmap::lock_channel(id)),
            in_use: CpuSet::new(n_cpus),
            stats: PmapStats::default(),
        }
    }

    /// The wait channel a pmap's lock releases notify (`0x1` key space;
    /// see `machtlb_sim::event`'s channel registry).
    pub fn lock_channel(id: PmapId) -> WaitChannel {
        WaitChannel::new(0x1_0000_0000 | u64::from(id.raw()))
    }

    /// This pmap's id.
    pub fn id(&self) -> PmapId {
        self.id
    }

    /// The page table.
    pub fn table(&self) -> &PageTable {
        &self.table
    }

    /// Mutable access to the page table. The caller is responsible for
    /// holding the pmap lock across mutations, as the shootdown protocol
    /// requires.
    pub fn table_mut(&mut self) -> &mut PageTable {
        &mut self.table
    }

    /// The exclusive pmap lock.
    pub fn lock(&self) -> &SpinLock {
        &self.lock
    }

    /// Mutable access to the lock (to acquire/release it).
    pub fn lock_mut(&mut self) -> &mut SpinLock {
        &mut self.lock
    }

    /// The set of processors currently using this pmap.
    pub fn in_use(&self) -> &CpuSet {
        &self.in_use
    }

    /// Bookkeeping: `cpu` started using this pmap (thread dispatch /
    /// context switch in).
    pub fn mark_in_use(&mut self, cpu: CpuId) {
        self.in_use.insert(cpu);
    }

    /// Bookkeeping: `cpu` stopped using this pmap (context switch out).
    /// With ASID-tagged TLBs this call is ignored by the consistency layer
    /// until the entries are flushed (Section 10); the pmap set itself still
    /// records the scheduler's view.
    pub fn mark_not_in_use(&mut self, cpu: CpuId) {
        self.in_use.remove(cpu);
    }

    /// Cumulative operation counts.
    pub fn stats(&self) -> PmapStats {
        self.stats
    }

    /// Mutable access to the statistics (updated by the pmap operations in
    /// the consistency layer).
    pub fn stats_mut(&mut self) -> &mut PmapStats {
        &mut self.stats
    }

    /// Destroys the pmap's contents. Pmaps "can even be destroyed at
    /// runtime; they will be reconstructed from scratch as page faults
    /// occur" (Section 2).
    pub fn destroy_contents(&mut self) {
        self.table.clear();
        self.stats.destroys += 1;
    }
}

impl fmt::Debug for Pmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Pmap")
            .field("id", &self.id)
            .field("valid_count", &self.table.valid_count())
            .field("lock", &self.lock)
            .field("in_use", &self.in_use)
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::{Pfn, Vpn};
    use crate::prot::Prot;
    use crate::pte::Pte;

    #[test]
    fn kernel_id_is_zero() {
        assert!(PmapId::KERNEL.is_kernel());
        assert!(!PmapId::new(1).is_kernel());
        assert_eq!(PmapId::KERNEL.to_string(), "pmap:kernel");
        assert_eq!(PmapId::new(2).to_string(), "pmap:2");
    }

    #[test]
    fn in_use_bookkeeping() {
        let mut p = Pmap::new(PmapId::new(1), 4);
        p.mark_in_use(CpuId::new(1));
        p.mark_in_use(CpuId::new(3));
        assert_eq!(p.in_use().len(), 2);
        p.mark_not_in_use(CpuId::new(1));
        assert!(!p.in_use().contains(CpuId::new(1)));
    }

    #[test]
    fn destroy_clears_table_and_counts() {
        let mut p = Pmap::new(PmapId::new(1), 4);
        p.table_mut()
            .set(Vpn::new(7), Pte::valid(Pfn::new(1), Prot::READ));
        p.destroy_contents();
        assert_eq!(p.table().valid_count(), 0);
        assert_eq!(p.stats().destroys, 1);
    }
}
