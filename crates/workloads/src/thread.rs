//! The per-processor dispatcher and the thread shell.
//!
//! Each processor runs one [`Dispatcher`] as its base process. The
//! dispatcher pulls ready threads from its run queue, runs each to
//! completion with context-switch costs between them, and follows the
//! kernel's idle protocol: it detaches the user pmap and enters the idle
//! set when the queue drains (so the shootdown algorithm stops
//! interrupting this processor), and drains queued consistency actions on
//! the way back out.

use std::fmt;

use machtlb_core::{
    drive, enter_idle, Driven, ExitIdleProcess, HasKernel, SwitchUserPmapProcess, RESCHED_VECTOR,
    SYNC_CHANNEL,
};
use machtlb_sim::{CpuId, Ctx, Dur, Process, Step};
use machtlb_vm::TaskId;

use crate::state::{ThreadBox, WlState};

/// Pushes `thread` onto `target`'s run queue and pokes the dispatcher
/// awake. Charges nothing itself: the caller includes the returned cost in
/// its step.
pub fn enqueue_thread(ctx: &mut Ctx<'_, WlState, ()>, target: CpuId, thread: ThreadBox) -> Dur {
    ctx.shared.push_thread(target, thread);
    if target != ctx.cpu_id {
        ctx.send_ipi(target, RESCHED_VECTOR);
        ctx.costs().ipi_send + ctx.costs().local_op * 4
    } else {
        ctx.costs().local_op * 4
    }
}

enum DState {
    Idle,
    ExitingIdle(ExitIdleProcess),
    PopNext,
    Running(ThreadBox),
    Detaching(SwitchUserPmapProcess),
    EnteringIdle,
}

impl fmt::Debug for DState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            DState::Idle => "Idle",
            DState::ExitingIdle(_) => "ExitingIdle",
            DState::PopNext => "PopNext",
            DState::Running(t) => return write!(f, "Running({})", t.label()),
            DState::Detaching(_) => "Detaching",
            DState::EnteringIdle => "EnteringIdle",
        };
        f.write_str(name)
    }
}

/// The per-processor scheduler. Spawn one on each processor at boot
/// ([`build_workload_machine`](crate::harness::build_workload_machine)
/// does this automatically); feed it work with
/// [`WlState::push_thread`](crate::WlState::push_thread) or
/// [`enqueue_thread`].
#[derive(Debug)]
pub struct Dispatcher {
    state: DState,
    threads_run: u64,
}

impl Dispatcher {
    /// Creates a dispatcher (initially idle, matching the boot state).
    pub fn new() -> Dispatcher {
        Dispatcher {
            state: DState::Idle,
            threads_run: 0,
        }
    }
}

impl Default for Dispatcher {
    fn default() -> Dispatcher {
        Dispatcher::new()
    }
}

impl Process<WlState, ()> for Dispatcher {
    fn step(&mut self, ctx: &mut Ctx<'_, WlState, ()>) -> Step {
        let me = ctx.cpu_id;
        match &mut self.state {
            DState::Idle => {
                if ctx.shared.queue_len(me) > 0 {
                    self.state = DState::ExitingIdle(ExitIdleProcess::new());
                    Step::Run(ctx.costs().cache_read)
                } else {
                    // Sleep until anything arrives (wakeups may be
                    // spurious; the queue is re-checked).
                    Step::Park(None)
                }
            }
            DState::ExitingIdle(exit) => match drive(exit, ctx) {
                Driven::Yield(s) => s,
                Driven::Finished(d) => {
                    self.state = DState::PopNext;
                    Step::Run(d)
                }
            },
            DState::PopNext => match ctx.shared.pop_thread(me) {
                Some(t) => {
                    self.threads_run += 1;
                    self.state = DState::Running(t);
                    Step::Run(ctx.costs().context_switch)
                }
                None => {
                    self.state = DState::Detaching(SwitchUserPmapProcess::new(None));
                    Step::Run(ctx.costs().local_op)
                }
            },
            DState::Running(t) => match drive(t.as_mut(), ctx) {
                Driven::Yield(s) => s,
                Driven::Finished(d) => {
                    self.state = DState::PopNext;
                    Step::Run(d)
                }
            },
            DState::Detaching(sw) => match drive(sw, ctx) {
                Driven::Yield(s) => s,
                Driven::Finished(d) => {
                    self.state = DState::EnteringIdle;
                    Step::Run(d)
                }
            },
            DState::EnteringIdle => {
                enter_idle(ctx.shared.kernel_mut(), me);
                // Entering the idle set removes us from `active`, which can
                // satisfy a blocked initiator's queue scan.
                ctx.notify(SYNC_CHANNEL);
                self.state = DState::Idle;
                Step::Run(ctx.costs().local_op + ctx.bus_write() + ctx.bus_write())
            }
        }
    }

    fn label(&self) -> &'static str {
        "dispatcher"
    }
}

/// Wraps a thread body with its address-space attach: on first dispatch
/// the shell switches the processor to the thread's task pmap, then runs
/// the body to completion.
pub struct ThreadShell<B> {
    task: TaskId,
    switch: Option<SwitchUserPmapProcess>,
    attached: bool,
    body: B,
    label: &'static str,
}

impl<B: Process<WlState, ()>> ThreadShell<B> {
    /// Wraps `body` to run in `task`'s address space.
    pub fn new(task: TaskId, body: B) -> ThreadShell<B> {
        ThreadShell {
            task,
            switch: None,
            attached: false,
            body,
            label: "thread",
        }
    }

    /// Wraps `body` with a custom label (for traces).
    pub fn with_label(mut self, label: &'static str) -> ThreadShell<B> {
        self.label = label;
        self
    }
}

impl<B: Process<WlState, ()>> fmt::Debug for ThreadShell<B> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadShell")
            .field("label", &self.label)
            .field("task", &self.task)
            .field("attached", &self.attached)
            .finish()
    }
}

impl<B: Process<WlState, ()>> Process<WlState, ()> for ThreadShell<B> {
    fn step(&mut self, ctx: &mut Ctx<'_, WlState, ()>) -> Step {
        if !self.attached {
            let sw = self.switch.get_or_insert_with({
                let pmap = machtlb_vm::HasVm::vm(ctx.shared).pmap_of(self.task);
                move || SwitchUserPmapProcess::new(Some(pmap))
            });
            return match drive(sw, ctx) {
                Driven::Yield(s) => s,
                Driven::Finished(d) => {
                    self.switch = None;
                    self.attached = true;
                    Step::Run(d)
                }
            };
        }
        self.body.step(ctx)
    }

    fn label(&self) -> &'static str {
        self.label
    }
}
