//! The Camelot distributed transaction system.
//!
//! "Camelot makes aggressive use of memory sharing and copy-on-write
//! mapping to implement database access and transaction semantics. In
//! addition, many internal components ... are multi-threaded for
//! performance reasons" (Section 5.2). Camelot is the only evaluation
//! application causing **user-pmap** shootdowns (Table 3): every
//! transaction virtually copies a slice of the database into a client,
//! which strips write permission from the multi-threaded server's live
//! mappings — a user shootdown against the processors running server
//! threads.

use machtlb_core::{drive, Driven, HasKernel, MemOp, SpinMode};
use machtlb_pmap::{PageRange, Vaddr, Vpn, PAGE_SIZE};
use machtlb_sim::{BlockOn, CpuId, Ctx, Dur, Process, RunStatus, Step, WaitChannel};
use machtlb_vm::{
    HasVm, TaskId, UserAccess, UserAccessResult, UserAccessStep, VmOp, VmOpProcess, USER_SPAN_START,
};
use rand::Rng;

use crate::harness::{build_workload_machine, AppReport, RunConfig, WlMachine};
use crate::kernelops::KernelBufferOp;
use crate::state::{AppShared, WlState};
use crate::thread::{enqueue_thread, ThreadShell};

/// Notified when the last client finishes (workload `0x5` key space; see
/// `machtlb_sim::event`'s channel registry).
const CLIENTS_CHANNEL: WaitChannel = WaitChannel::new(0x5_0000_0004);
/// Notified when the last server thread stops.
const SERVERS_CHANNEL: WaitChannel = WaitChannel::new(0x5_0000_0005);

/// Transaction-system parameters.
#[derive(Clone, Debug)]
pub struct CamelotConfig {
    /// Client tasks running transactions ("8-way parallel").
    pub clients: u32,
    /// Server threads (the multi-threaded transaction manager).
    pub server_threads: u32,
    /// Transactions per client.
    pub transactions_per_client: u32,
    /// Database pages in the server's space.
    pub db_pages: u64,
    /// Pages virtually copied per transaction, sampled uniformly.
    pub tx_pages: (u64, u64),
    /// Percent of transactions that copy a jumbo range instead (bulk
    /// loads; the paper's Table 3 sees ranges up to ~360 pages).
    pub jumbo_percent: u32,
    /// Jumbo range size, sampled uniformly.
    pub jumbo_pages: (u64, u64),
    /// Pages the client actually writes per transaction, sampled
    /// uniformly (bounded by the copied range).
    pub tx_writes: (u64, u64),
    /// Compute chunks (50 µs) per transaction, sampled uniformly.
    pub tx_compute: (u32, u32),
    /// A kernel buffer cycle every this many transactions.
    pub kernel_op_every: u32,
}

impl Default for CamelotConfig {
    fn default() -> CamelotConfig {
        CamelotConfig {
            clients: 8,
            server_threads: 3,
            transactions_per_client: 14,
            db_pages: 128,
            tx_pages: (1, 24),
            jumbo_percent: 8,
            jumbo_pages: (48, 128),
            tx_writes: (1, 4),
            tx_compute: (4, 30),
            kernel_op_every: 5,
        }
    }
}

/// Transaction-system coordination state.
#[derive(Debug, Default)]
pub struct CamelotShared {
    /// The database server task.
    pub server_task: Option<TaskId>,
    /// Client tasks.
    pub client_tasks: Vec<TaskId>,
    /// Transactions committed so far.
    pub tx_done: u32,
    /// Set when all transactions committed: server threads drain.
    pub server_stop: bool,
    /// Server threads still running.
    pub servers_alive: u32,
    /// Clients still running.
    pub clients_alive: u32,
    /// When all transactions committed and the servers drained.
    pub completed_at: Option<machtlb_sim::Time>,
}

const DB_BASE: u64 = USER_SPAN_START + 0x200;

/// A server thread: continuously writes log records into random database
/// pages, keeping the server's mappings live (and therefore shot at).
#[derive(Debug)]
struct ServerThread {
    cfg: CamelotConfig,
    task: TaskId,
    access: Option<UserAccess>,
    computing: u32,
    writes: u64,
}

impl Process<WlState, ()> for ServerThread {
    fn step(&mut self, ctx: &mut Ctx<'_, WlState, ()>) -> Step {
        if self.computing > 0 {
            self.computing -= 1;
            return Step::Run(Dur::micros(50));
        }
        if self.access.is_none() && ctx.shared.camelot().server_stop {
            ctx.shared.camelot_mut().servers_alive -= 1;
            if ctx.shared.camelot().servers_alive == 0 {
                ctx.notify(SERVERS_CHANNEL);
            }
            return Step::Done(ctx.costs().local_op);
        }
        if self.access.is_none() {
            // Random page choice: the transaction manager's log and
            // metadata writes scatter over the database, re-dirtying
            // copy-on-write pages so later virtual copies have rights to
            // strip again.
            let page = ctx.rng().gen_range(0..self.cfg.db_pages);
            self.access = Some(UserAccess::new(
                self.task,
                Vaddr::new((DB_BASE + page) * PAGE_SIZE + 64),
                MemOp::Write(1),
            ));
        }
        let acc = self.access.as_mut().expect("set above");
        match acc.step(ctx) {
            UserAccessStep::Yield(s) => s,
            UserAccessStep::Finished(UserAccessResult::Ok(_), d) => {
                self.access = None;
                self.writes += 1;
                self.computing = ctx.rng().gen_range(1..6);
                Step::Run(d)
            }
            UserAccessStep::Finished(UserAccessResult::Killed, _) => {
                unreachable!("the database region stays read-write at the VM level")
            }
        }
    }

    fn label(&self) -> &'static str {
        "camelot-server"
    }
}

#[derive(Debug)]
enum TxPhase {
    Begin,
    Share,
    Touch { left: u64, offset: u64 },
    Compute { chunks: u32 },
    Release,
    KernelOp(Box<KernelBufferOp>),
    Commit,
}

/// A client: runs its transactions against the server's database.
#[derive(Debug)]
struct ClientThread {
    cfg: CamelotConfig,
    task: TaskId,
    tx_left: u32,
    phase: TxPhase,
    op: Option<VmOpProcess>,
    access: Option<UserAccess>,
    // Current transaction state:
    tx_range_pages: u64,
    dst_start: Option<Vpn>,
}

impl Process<WlState, ()> for ClientThread {
    fn step(&mut self, ctx: &mut Ctx<'_, WlState, ()>) -> Step {
        match &mut self.phase {
            TxPhase::Begin => {
                if self.tx_left == 0 {
                    ctx.shared.camelot_mut().clients_alive -= 1;
                    if ctx.shared.camelot().clients_alive == 0 {
                        ctx.notify(CLIENTS_CHANNEL);
                    }
                    return Step::Done(ctx.costs().local_op);
                }
                self.tx_left -= 1;
                let (lo, hi) = if ctx.rng().gen_range(0..100) < self.cfg.jumbo_percent {
                    self.cfg.jumbo_pages
                } else {
                    self.cfg.tx_pages
                };
                self.tx_range_pages = ctx.rng().gen_range(lo..=hi.min(self.cfg.db_pages));
                self.phase = TxPhase::Share;
                Step::Run(ctx.costs().local_op * 4)
            }
            TxPhase::Share => {
                let server = ctx.shared.camelot().server_task.expect("server installed");
                let pages = self.tx_range_pages;
                let task = self.task;
                // Draw the range only when creating the op: this arm re-runs
                // for every step the driven op yields, and a draw per step
                // would tie the machine's rng stream to the spin iteration
                // count (breaking stepped/event equivalence).
                if self.op.is_none() {
                    let max = self.cfg.db_pages - pages;
                    let db_off = ctx.rng().gen_range(0..=max);
                    self.op = Some(VmOpProcess::new(VmOp::ShareCow {
                        src: server,
                        src_range: PageRange::new(Vpn::new(DB_BASE + db_off), pages),
                        dst: task,
                    }));
                }
                let op = self.op.as_mut().expect("created above");
                match drive(op, ctx) {
                    Driven::Yield(s) => s,
                    Driven::Finished(d) => {
                        assert!(!op.failed(), "camelot share failed");
                        self.dst_start = op.outcome().dst_start;
                        self.op = None;
                        let (wlo, whi) = self.cfg.tx_writes;
                        let writes = ctx.rng().gen_range(wlo..=whi).min(self.tx_range_pages);
                        self.phase = TxPhase::Touch {
                            left: writes,
                            offset: 0,
                        };
                        Step::Run(d)
                    }
                }
            }
            TxPhase::Touch { left, offset } => {
                if *left == 0 {
                    let (lo, hi) = self.cfg.tx_compute;
                    let chunks = ctx.rng().gen_range(lo..=hi);
                    self.phase = TxPhase::Compute { chunks };
                    return Step::Run(ctx.costs().local_op);
                }
                let base = self.dst_start.expect("shared");
                let page = *offset % self.tx_range_pages;
                let va = Vaddr::new((base.raw() + page) * PAGE_SIZE + 128);
                let task = self.task;
                let acc = self
                    .access
                    .get_or_insert_with(|| UserAccess::new(task, va, MemOp::Write(2)));
                match acc.step(ctx) {
                    UserAccessStep::Yield(s) => s,
                    UserAccessStep::Finished(UserAccessResult::Ok(_), d) => {
                        self.access = None;
                        *left -= 1;
                        *offset += 1;
                        Step::Run(d)
                    }
                    UserAccessStep::Finished(UserAccessResult::Killed, _) => {
                        unreachable!("the copied range is read-write for the client")
                    }
                }
            }
            TxPhase::Compute { chunks } => {
                if *chunks > 0 {
                    *chunks -= 1;
                    return Step::Run(Dur::micros(50));
                }
                self.phase = TxPhase::Release;
                Step::Run(ctx.costs().local_op)
            }
            TxPhase::Release => {
                let base = self.dst_start.expect("shared");
                let pages = self.tx_range_pages;
                let task = self.task;
                let op = self.op.get_or_insert_with(|| {
                    VmOpProcess::new(VmOp::Deallocate {
                        task,
                        range: PageRange::new(base, pages),
                    })
                });
                match drive(op, ctx) {
                    Driven::Yield(s) => s,
                    Driven::Finished(d) => {
                        self.op = None;
                        let done = {
                            let c = ctx.shared.camelot_mut();
                            c.tx_done += 1;
                            c.tx_done
                        };
                        self.phase = if done.is_multiple_of(self.cfg.kernel_op_every) {
                            TxPhase::KernelOp(Box::new(KernelBufferOp::new(2, 2)))
                        } else {
                            TxPhase::Commit
                        };
                        Step::Run(d)
                    }
                }
            }
            TxPhase::KernelOp(op) => match drive(op.as_mut(), ctx) {
                Driven::Yield(s) => s,
                Driven::Finished(d) => {
                    self.phase = TxPhase::Commit;
                    Step::Run(d)
                }
            },
            TxPhase::Commit => {
                self.phase = TxPhase::Begin;
                Step::Run(ctx.costs().local_op * 8)
            }
        }
    }

    fn label(&self) -> &'static str {
        "camelot-client"
    }
}

#[derive(Debug)]
enum CPhase {
    CreateServer,
    AllocDb,
    SpawnServers { next: u32 },
    CreateClients { next: u32 },
    SpawnClients { next: u32 },
    WaitClients,
    StopServers,
    WaitServers,
}

/// The system coordinator.
#[derive(Debug)]
struct Coordinator {
    cfg: CamelotConfig,
    phase: CPhase,
    op: Option<VmOpProcess>,
}

impl Process<WlState, ()> for Coordinator {
    fn step(&mut self, ctx: &mut Ctx<'_, WlState, ()>) -> Step {
        match &mut self.phase {
            CPhase::CreateServer => {
                let task = {
                    let (k, vm) = ctx.shared.kernel_and_vm();
                    vm.create_task(k)
                };
                ctx.shared.camelot_mut().server_task = Some(task);
                self.phase = CPhase::AllocDb;
                Step::Run(ctx.costs().local_op * 16)
            }
            CPhase::AllocDb => {
                let task = ctx.shared.camelot().server_task.expect("created");
                let pages = self.cfg.db_pages;
                let op = self.op.get_or_insert_with(|| {
                    VmOpProcess::new(VmOp::Allocate {
                        task,
                        pages,
                        at: Some(Vpn::new(DB_BASE)),
                    })
                });
                match drive(op, ctx) {
                    Driven::Yield(s) => s,
                    Driven::Finished(d) => {
                        self.op = None;
                        self.phase = CPhase::SpawnServers { next: 0 };
                        Step::Run(d)
                    }
                }
            }
            CPhase::SpawnServers { next } => {
                if *next == self.cfg.server_threads {
                    ctx.shared.camelot_mut().servers_alive = self.cfg.server_threads;
                    self.phase = CPhase::CreateClients { next: 0 };
                    return Step::Run(ctx.costs().local_op);
                }
                let task = ctx.shared.camelot().server_task.expect("created");
                let body = ServerThread {
                    cfg: self.cfg.clone(),
                    task,
                    access: None,
                    computing: 0,
                    writes: u64::from(*next) * 7,
                };
                let target = CpuId::new(1 + *next);
                let cost = enqueue_thread(
                    ctx,
                    target,
                    Box::new(ThreadShell::new(task, body).with_label("camelot-server")),
                );
                self.phase = CPhase::SpawnServers { next: *next + 1 };
                Step::Run(cost)
            }
            CPhase::CreateClients { next } => {
                if *next == self.cfg.clients {
                    self.phase = CPhase::SpawnClients { next: 0 };
                    return Step::Run(ctx.costs().local_op);
                }
                let task = {
                    let (k, vm) = ctx.shared.kernel_and_vm();
                    vm.create_task(k)
                };
                ctx.shared.camelot_mut().client_tasks.push(task);
                self.phase = CPhase::CreateClients { next: *next + 1 };
                Step::Run(ctx.costs().local_op * 16)
            }
            CPhase::SpawnClients { next } => {
                if *next == self.cfg.clients {
                    ctx.shared.camelot_mut().clients_alive = self.cfg.clients;
                    self.phase = CPhase::WaitClients;
                    return Step::Run(ctx.costs().local_op);
                }
                let idx = *next as usize;
                let task = ctx.shared.camelot().client_tasks[idx];
                let n_cpus = ctx.n_cpus() as u32;
                let first_client_cpu = 1 + self.cfg.server_threads;
                let span = n_cpus - first_client_cpu;
                let target = CpuId::new(first_client_cpu + (*next % span));
                let body = ClientThread {
                    cfg: self.cfg.clone(),
                    task,
                    tx_left: self.cfg.transactions_per_client,
                    phase: TxPhase::Begin,
                    op: None,
                    access: None,
                    tx_range_pages: 0,
                    dst_start: None,
                };
                let cost = enqueue_thread(
                    ctx,
                    target,
                    Box::new(ThreadShell::new(task, body).with_label("camelot-client")),
                );
                self.phase = CPhase::SpawnClients { next: *next + 1 };
                Step::Run(cost)
            }
            CPhase::WaitClients => {
                if ctx.shared.camelot().clients_alive == 0 {
                    self.phase = CPhase::StopServers;
                    Step::Run(ctx.costs().local_op)
                } else if ctx.shared.kernel().config.spin_mode == SpinMode::Event {
                    Step::Block(BlockOn::one(CLIENTS_CHANNEL, Dur::micros(400)))
                } else {
                    Step::Run(Dur::micros(400))
                }
            }
            CPhase::StopServers => {
                ctx.shared.camelot_mut().server_stop = true;
                self.phase = CPhase::WaitServers;
                Step::Run(ctx.costs().local_op + ctx.bus_write())
            }
            CPhase::WaitServers => {
                if ctx.shared.camelot().servers_alive == 0 {
                    let now = ctx.now;
                    ctx.shared.camelot_mut().completed_at = Some(now);
                    Step::Done(ctx.costs().local_op)
                } else if ctx.shared.kernel().config.spin_mode == SpinMode::Event {
                    Step::Block(BlockOn::one(SERVERS_CHANNEL, Dur::micros(200)))
                } else {
                    Step::Run(Dur::micros(200))
                }
            }
        }
    }

    fn label(&self) -> &'static str {
        "camelot-coordinator"
    }
}

/// Installs the transaction system into a fresh workload machine.
///
/// # Panics
///
/// Panics if the machine has too few processors for the configured
/// server threads plus at least one client processor.
pub fn install_camelot(m: &mut WlMachine, cfg: &CamelotConfig) {
    assert!(
        m.n_cpus() as u32 >= 2 + cfg.server_threads,
        "camelot needs 1 coordinator + {} server + >=1 client processors",
        cfg.server_threads
    );
    let s = m.shared_mut();
    s.app = AppShared::Camelot(CamelotShared::default());
    let coord = ThreadShell::new(
        TaskId::KERNEL,
        Coordinator {
            cfg: cfg.clone(),
            phase: CPhase::CreateServer,
            op: None,
        },
    )
    .with_label("camelot-coordinator");
    s.push_thread(CpuId::new(0), Box::new(coord));
}

/// Runs the transaction system and returns its report.
///
/// # Panics
///
/// Panics if the run does not complete within the configured limit.
pub fn run_camelot(config: &RunConfig, cfg: &CamelotConfig) -> AppReport {
    let mut m = build_workload_machine(config, AppShared::None);
    install_camelot(&mut m, cfg);
    let status = crate::harness::run_until_done(&mut m, config.limit, |s| {
        s.camelot().completed_at.is_some()
    });
    assert_ne!(status, RunStatus::StepLimit, "camelot hit the step guard");
    let done = m.shared().camelot().tx_done;
    assert_eq!(
        done,
        cfg.clients * cfg.transactions_per_client,
        "camelot did not finish before {} (status {:?})",
        config.limit,
        status
    );
    let mut report = AppReport::extract("Camelot", &m);
    if let Some(t) = m.shared().camelot().completed_at {
        report.runtime = t.duration_since(machtlb_sim::Time::ZERO);
    }
    report
}
