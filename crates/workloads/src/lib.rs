//! # machtlb-workloads — the paper's evaluation programs
//!
//! The measurement workloads of *Translation Lookaside Buffer Consistency:
//! A Software Approach* (Black et al., ASPLOS 1989), as deterministic
//! models over the full kernel + VM simulation:
//!
//! - the Section 5.1 **consistency tester** — also the Figure 2 basic-cost
//!   instrument ([`run_tester`]);
//! - the four applications of Section 5.2, chosen to "typify the use of
//!   the Multimax": the **Mach kernel build** ([`run_machbuild`]),
//!   **Parthenon** ([`run_parthenon`]), **Agora** ([`run_agora`]), and
//!   **Camelot** ([`run_camelot`]), each reproducing the shootdown
//!   signature the paper reports for it (kernel-heavy, nearly none,
//!   bimodal, and user-pmap-heavy respectively).
//!
//! The common scheduler substrate ([`Dispatcher`], [`ThreadShell`]) binds
//! threads to processors, follows the kernel's idle protocol, and charges
//! context-switch costs; [`AppReport`] extracts the xpr measurements every
//! table is built from.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agora;
pub mod camelot;
mod harness;
mod kernelops;
pub mod machbuild;
pub mod migrate;
pub mod pageout;
pub mod parthenon;
mod state;
pub mod tester;
mod thread;

pub use agora::{install_agora, run_agora, AgoraConfig, AgoraShared};
pub use camelot::{install_camelot, run_camelot, CamelotConfig, CamelotShared};
pub use harness::{build_workload_machine, run_until_done, AppReport, RunConfig, WlMachine};
pub use kernelops::KernelBufferOp;
pub use machbuild::{install_machbuild, run_machbuild, MachBuildConfig, MachBuildShared};
pub use migrate::{
    install_autonuma, install_migration_storm, run_migration_storm, AutoNumaConfig, AutoNumaDaemon,
    MigrationOutcome, MigrationStormConfig, MigrationWorker,
};
pub use pageout::{install_pageout, PageoutConfig, PageoutDaemon};
pub use parthenon::{install_parthenon, run_parthenon, ParthenonConfig, ParthenonShared};
pub use state::{AppShared, ThreadBox, WlState};
pub use tester::{install_tester, run_tester, TesterConfig, TesterOutcome, TesterShared};
pub use thread::{enqueue_thread, Dispatcher, ThreadShell};

#[cfg(test)]
mod tests {
    use super::*;
    use machtlb_core::Strategy;
    use machtlb_sim::{CostModel, Dur, Time};

    fn quick_config(n_cpus: usize, seed: u64) -> RunConfig {
        RunConfig {
            n_cpus,
            seed,
            costs: CostModel::multimax(),
            kconfig: Default::default(),
            timer_flush_period: machtlb_sim::Dur::millis(5),
            device_period: None,
            limit: Time::from_micros(60_000_000),
        }
    }

    #[test]
    fn tester_shoots_exactly_k_processors_and_stays_consistent() {
        for k in [1u32, 3, 7] {
            let out = run_tester(
                &quick_config(16, 100 + u64::from(k)),
                &TesterConfig {
                    children: k,
                    warmup_increments: 30,
                },
            );
            assert!(!out.mismatch, "k={k}: counters advanced after reprotect");
            assert!(out.report.consistent, "k={k}: oracle violations");
            assert_eq!(out.children_dead, k, "k={k}: all children die");
            let shot = out.shootdown.expect("one shootdown happened");
            assert_eq!(shot.processors, k, "exactly k processors shot");
            assert_eq!(out.report.user_initiators.len(), 1, "exactly one shootdown");
            assert_eq!(out.report.stats.shootdowns_user, 1);
        }
    }

    #[test]
    fn tester_under_naive_strategy_detects_the_inconsistency() {
        let mut config = quick_config(8, 42);
        config.kconfig.strategy = Strategy::NaiveFlush;
        // Under the naive strategy children never fault: they keep writing
        // through stale entries. Give the run a time bound and inspect.
        let mut m = build_workload_machine(&config, AppShared::None);
        install_tester(
            &mut m,
            &TesterConfig {
                children: 4,
                warmup_increments: 30,
            },
        );
        let _ = m.run_bounded(Time::from_micros(5_000_000), 200_000_000);
        let s = m.shared();
        let t = s.tester();
        assert_eq!(
            t.mismatch,
            Some(true),
            "the tester must observe counters advancing after the reprotect"
        );
        assert!(!s.sys.kernel.checker.is_consistent(), "the oracle agrees");
    }

    #[test]
    fn machbuild_produces_kernel_shootdowns_only() {
        let cfg = MachBuildConfig {
            jobs: 10,
            compute_chunks: (5, 20),
            kernel_ops_per_job: (3, 6),
            ..MachBuildConfig::default()
        };
        let report = run_machbuild(&quick_config(8, 7), &cfg);
        assert!(report.consistent, "violations: {}", report.violations);
        assert!(
            !report.kernel_initiators.is_empty(),
            "buffer deallocations must shoot"
        );
        assert!(
            report.user_initiators.is_empty(),
            "the build shares no user memory"
        );
    }

    #[test]
    fn machbuild_lazy_ablation_reduces_kernel_events() {
        let cfg = MachBuildConfig {
            jobs: 12,
            compute_chunks: (5, 20),
            kernel_ops_per_job: (4, 8),
            ..MachBuildConfig::default()
        };
        let lazy_on = run_machbuild(&quick_config(8, 11), &cfg);
        let mut config = quick_config(8, 11);
        config.kconfig.lazy_eval = false;
        let lazy_off = run_machbuild(&config, &cfg);
        assert!(lazy_on.consistent && lazy_off.consistent);
        assert!(
            lazy_off.kernel_initiators.len() > lazy_on.kernel_initiators.len(),
            "lazy evaluation must cut kernel shootdowns ({} !> {})",
            lazy_off.kernel_initiators.len(),
            lazy_on.kernel_initiators.len()
        );
    }

    #[test]
    fn parthenon_user_shootdowns_appear_only_without_lazy_eval() {
        let cfg = ParthenonConfig {
            workers: 6,
            runs: 2,
            initial_items: 15,
            compute_chunks: (2, 10),
            ..ParthenonConfig::default()
        };
        let lazy_on = run_parthenon(&quick_config(8, 5), &cfg);
        assert!(lazy_on.consistent);
        assert!(
            lazy_on.user_initiators.is_empty(),
            "stack guards are unmapped: lazy evaluation skips them"
        );
        let mut config = quick_config(8, 5);
        config.kconfig.lazy_eval = false;
        let lazy_off = run_parthenon(&config, &cfg);
        assert!(lazy_off.consistent);
        // Guard-page reprotects shoot whenever earlier workers of the run
        // are already attached: up to (workers - 1) per run, and at least
        // a solid majority once the startup gaps let workers land.
        let max = ((cfg.workers - 1) * cfg.runs) as usize;
        let got = lazy_off.user_initiators.len();
        assert!(
            got >= max / 2 && got <= max,
            "stack-guard reprotects become user shootdowns without lazy \
             evaluation (got {got}, expected within [{}, {max}])",
            max / 2
        );
    }

    #[test]
    fn agora_kernel_shootdowns_are_bimodal() {
        let cfg = AgoraConfig {
            workers: 6,
            runs: 3,
            setup_ops: 8,
            wave_steps: 10,
            ..AgoraConfig::default()
        };
        let report = run_agora(&quick_config(8, 9), &cfg);
        assert!(report.consistent, "violations: {}", report.violations);
        let procs: Vec<u32> = report
            .kernel_initiators
            .iter()
            .map(|r| r.processors)
            .collect();
        let big = procs.iter().filter(|&&p| p >= cfg.workers - 1).count();
        let small = procs.iter().filter(|&&p| p <= 2).count();
        assert!(
            big >= cfg.setup_ops as usize / 2,
            "setup shootdowns hit the spinning workers: {procs:?}"
        );
        assert!(small >= 1, "inter-run shootdowns are small: {procs:?}");
    }

    #[test]
    fn camelot_causes_user_shootdowns() {
        let cfg = CamelotConfig {
            clients: 3,
            server_threads: 2,
            transactions_per_client: 4,
            db_pages: 48,
            ..CamelotConfig::default()
        };
        let report = run_camelot(&quick_config(8, 13), &cfg);
        assert!(report.consistent, "violations: {}", report.violations);
        assert!(
            !report.user_initiators.is_empty(),
            "virtual copies must shoot the server's processors"
        );
        // The shootdowns hit at most the server's processors.
        for r in &report.user_initiators {
            assert!(r.processors <= cfg.server_threads);
        }
        assert!(report.vm_stats.cow_copies > 0, "transactions copy on write");
    }

    #[test]
    fn runs_are_deterministic() {
        let out1 = run_tester(&quick_config(8, 77), &TesterConfig::default());
        let out2 = run_tester(&quick_config(8, 77), &TesterConfig::default());
        let e1 = out1.shootdown.expect("shootdown").elapsed;
        let e2 = out2.shootdown.expect("shootdown").elapsed;
        assert_eq!(e1, e2, "same seed, same measurement");
        assert_eq!(out1.report.runtime, out2.report.runtime);
    }

    #[test]
    fn dispatcher_runs_queued_threads_and_idles_between() {
        use machtlb_core::HasKernel;
        use machtlb_sim::{Ctx, Process, Step};

        #[derive(Debug)]
        struct Tick(u32);
        impl Process<WlState, ()> for Tick {
            fn step(&mut self, ctx: &mut Ctx<'_, WlState, ()>) -> Step {
                if self.0 == 0 {
                    ctx.shared.scratch += 1;
                    Step::Done(Dur::micros(1))
                } else {
                    self.0 -= 1;
                    Step::Run(Dur::micros(5))
                }
            }
        }

        let config = quick_config(2, 1);
        let mut m = build_workload_machine(&config, AppShared::None);
        for _ in 0..3 {
            m.shared_mut()
                .push_thread(machtlb_sim::CpuId::new(1), Box::new(Tick(4)));
        }
        let r = m.run_bounded(Time::from_micros(100_000), 1_000_000);
        assert_eq!(r.status, machtlb_sim::RunStatus::Quiescent);
        let s = m.shared();
        assert_eq!(s.scratch, 3, "all queued threads ran");
        // The processor re-entered the idle set afterwards.
        assert!(s.kernel().idle.contains(machtlb_sim::CpuId::new(1)));
        assert!(!s.kernel().active.contains(machtlb_sim::CpuId::new(1)));
    }

    #[test]
    fn enqueue_thread_wakes_a_parked_dispatcher() {
        use machtlb_sim::{Ctx, Process, Step};

        #[derive(Debug)]
        struct Poker {
            sent: bool,
        }
        impl Process<WlState, ()> for Poker {
            fn step(&mut self, ctx: &mut Ctx<'_, WlState, ()>) -> Step {
                if self.sent {
                    return Step::Done(Dur::micros(1));
                }
                self.sent = true;
                #[derive(Debug)]
                struct Mark;
                impl Process<WlState, ()> for Mark {
                    fn step(&mut self, ctx: &mut Ctx<'_, WlState, ()>) -> Step {
                        ctx.shared.done_flag = true;
                        Step::Done(Dur::micros(1))
                    }
                }
                let cost = enqueue_thread(ctx, machtlb_sim::CpuId::new(1), Box::new(Mark));
                Step::Run(cost)
            }
        }

        let config = quick_config(2, 2);
        let mut m = build_workload_machine(&config, AppShared::None);
        // The target dispatcher parks long before the poke arrives.
        m.shared_mut()
            .push_thread(machtlb_sim::CpuId::new(0), Box::new(Poker { sent: false }));
        let r = m.run_bounded(Time::from_micros(100_000), 1_000_000);
        assert_eq!(r.status, machtlb_sim::RunStatus::Quiescent);
        assert!(
            m.shared().done_flag,
            "the resched poke must wake cpu1's dispatcher"
        );
    }

    #[test]
    fn device_interrupts_do_not_break_consistency() {
        let mut config = quick_config(8, 3);
        config.device_period = Some(Dur::millis(2));
        let out = run_tester(
            &config,
            &TesterConfig {
                children: 5,
                warmup_increments: 30,
            },
        );
        assert!(!out.mismatch);
        assert!(out.report.consistent);
    }
}
