//! Building and running workload machines, and extracting the paper's
//! measurements from them.

use machtlb_core::{install_kernel_handlers, KernelConfig, KernelStats, NodeCounters};
use machtlb_sim::{BusStats, CostModel, CpuId, Dur, FabricStats, Machine, MachineConfig, Time};
use machtlb_vm::{SystemState, VmStats};
use machtlb_xpr::{InitiatorRecord, PmapKind, ResponderRecord, Summary, TraceEvent};

use crate::state::{AppShared, WlState};
use crate::thread::Dispatcher;

/// A simulated machine running a workload.
pub type WlMachine = Machine<WlState, ()>;

/// Common knobs for a workload run.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Number of processors (the paper's machine has 16).
    pub n_cpus: usize,
    /// Seed for the deterministic run.
    pub seed: u64,
    /// The hardware cost model.
    pub costs: CostModel,
    /// The kernel configuration (strategy, lazy evaluation, TLB hardware).
    pub kconfig: KernelConfig,
    /// If set, periodic device interrupts fire on every processor with
    /// this period (the background activity that skews kernel shootdowns).
    pub device_period: Option<Dur>,
    /// Period of the whole-TLB timer flush when the strategy is
    /// [`Strategy::TimerDelayed`](machtlb_core::Strategy::TimerDelayed);
    /// it is the technique's staleness bound.
    pub timer_flush_period: Dur,
    /// Wall-clock bound on the simulated run.
    pub limit: Time,
}

impl RunConfig {
    /// The paper's platform: 16 processors, Multimax costs, stock kernel.
    pub fn multimax16(seed: u64) -> RunConfig {
        RunConfig {
            n_cpus: 16,
            seed,
            costs: CostModel::multimax(),
            kconfig: KernelConfig::default(),
            device_period: Some(Dur::millis(20)),
            timer_flush_period: Dur::millis(5),
            limit: Time::from_micros(120_000_000),
        }
    }
}

/// Builds a machine with the workload state installed, kernel handlers
/// registered, and one [`Dispatcher`] spawned per processor.
pub fn build_workload_machine(config: &RunConfig, app: AppShared) -> WlMachine {
    let sys = SystemState::new(config.n_cpus, config.kconfig.clone());
    let state = WlState::new(sys, app);
    let mconfig = MachineConfig {
        n_cpus: config.n_cpus,
        seed: config.seed,
        costs: config.costs.clone(),
        topology: state.sys.kernel.topology,
    };
    let mut m = Machine::new(mconfig, state, |_| ());
    install_kernel_handlers(&mut m, config.kconfig.high_prio_ipi);
    for c in 0..config.n_cpus {
        m.spawn_at(
            CpuId::new(c as u32),
            Time::ZERO,
            Box::new(Dispatcher::new()),
        );
    }
    if let Some(period) = config.device_period {
        machtlb_core::schedule_device_interrupts(&mut m, period, config.limit);
    }
    if config.kconfig.strategy == machtlb_core::Strategy::TimerDelayed {
        machtlb_core::schedule_timer_flushes(&mut m, config.timer_flush_period, config.limit);
    }
    m
}

/// Runs the machine in bounded increments until `done` reports the
/// workload complete, the machine quiesces, or `limit` is reached. This
/// keeps pre-scheduled background interrupts (device activity, timer
/// flushes) from ticking the machine — and polluting its statistics —
/// long after the workload finished.
pub fn run_until_done(
    m: &mut WlMachine,
    limit: Time,
    mut done: impl FnMut(&WlState) -> bool,
) -> machtlb_sim::RunStatus {
    use machtlb_sim::RunStatus;
    let chunk = Dur::millis(10);
    let mut horizon = (Time::ZERO + chunk).min(limit);
    loop {
        let r = m.run_bounded(horizon, 100_000_000);
        if done(m.shared()) {
            return r.status;
        }
        match r.status {
            RunStatus::Quiescent => {
                // Nothing will ever happen again: finished or stuck.
                if horizon >= limit {
                    return r.status;
                }
                horizon = limit; // nothing scheduled before it either
            }
            RunStatus::TimeLimit => {
                if horizon >= limit {
                    return r.status;
                }
                horizon = (horizon + chunk).min(limit);
            }
            RunStatus::StepLimit => {
                // The guard tripped: say who was still running so the
                // runaway loop is identifiable without a debugger, and
                // attach the kernel-level stall report (decoded wait
                // channels, lock holders, in-flight IPIs).
                eprintln!(
                    "step guard tripped at {:?}:\n{}\n{}",
                    m.frontier(),
                    m.frames_diagnostic(),
                    machtlb_core::stall_report(m)
                );
                return r.status;
            }
        }
    }
}

/// Everything the paper's tables need from one application run.
#[derive(Clone, Debug)]
pub struct AppReport {
    /// The application's name.
    pub name: &'static str,
    /// Simulated runtime.
    pub runtime: Dur,
    /// Initiator events on the kernel pmap.
    pub kernel_initiators: Vec<InitiatorRecord>,
    /// Initiator events on user pmaps.
    pub user_initiators: Vec<InitiatorRecord>,
    /// Responder events (on the sampled processors).
    pub responders: Vec<ResponderRecord>,
    /// Kernel counters.
    pub stats: KernelStats,
    /// VM counters.
    pub vm_stats: VmStats,
    /// Whether the consistency oracle stayed silent.
    pub consistent: bool,
    /// Number of consistency violations (zero under the paper's algorithm).
    pub violations: usize,
    /// Number of processors in the machine.
    pub n_cpus: usize,
    /// Whole-TLB flushes summed over all processors.
    pub tlb_flushes: u64,
    /// Whole-TLB flushes that were epoch bumps (O(1), no slot scrubbing)
    /// summed over all processors; a subset of [`AppReport::tlb_flushes`].
    pub tlb_epoch_flushes: u64,
    /// TLB misses summed over all processors (reload pressure).
    pub tlb_misses: u64,
    /// Processors responder events were recorded on (for scaling the
    /// sampled responder totals machine-wide, as Section 7.3 does).
    pub responder_sample_size: usize,
    /// Flight-recorder events (time-sorted; empty unless
    /// [`KernelConfig::trace_shootdowns`](machtlb_core::KernelConfig) was
    /// set).
    pub trace: Vec<TraceEvent>,
    /// Bus statistics, including the per-transaction-kind occupancy split
    /// ([`BusStats::per_op`]).
    pub bus: BusStats,
    /// The topology-split bus statistics: per-node buses and the
    /// interconnect ([`FabricStats::total`] equals [`AppReport::bus`]).
    pub fabric: FabricStats,
    /// Per-node kernel counters (one entry per node; a single entry on a
    /// flat machine).
    pub node_stats: Vec<NodeCounters>,
}

impl AppReport {
    /// Extracts the report from a finished run.
    pub fn extract(name: &'static str, m: &WlMachine) -> AppReport {
        let s = m.shared();
        let k = &s.sys.kernel;
        assert_eq!(
            k.xpr.overwritten(),
            0,
            "xpr buffer overflowed; enlarge KernelConfig::xpr_capacity"
        );
        assert_eq!(
            k.trace.overwritten(),
            0,
            "flight recorder overflowed; enlarge KernelConfig::trace_capacity"
        );
        let mut kernel_initiators = Vec::new();
        let mut user_initiators = Vec::new();
        let mut responders = Vec::new();
        for event in k.xpr.iter() {
            if let Some(i) = event.as_initiator() {
                match i.kind {
                    PmapKind::Kernel => kernel_initiators.push(*i),
                    PmapKind::User => user_initiators.push(*i),
                }
            } else if let Some(r) = event.as_responder() {
                responders.push(*r);
            }
        }
        AppReport {
            name,
            runtime: m.frontier().duration_since(Time::ZERO),
            kernel_initiators,
            user_initiators,
            responders,
            stats: k.stats,
            vm_stats: s.sys.vm.stats,
            consistent: k.checker.is_consistent(),
            violations: k.checker.total_violations() as usize,
            n_cpus: k.n_cpus,
            tlb_flushes: k.tlbs.iter().map(|t| t.stats().flushes).sum(),
            tlb_epoch_flushes: k.tlbs.iter().map(|t| t.stats().epoch_flushes).sum(),
            tlb_misses: k.tlbs.iter().map(|t| t.stats().misses).sum(),
            responder_sample_size: k
                .config
                .responder_sample
                .as_ref()
                .map_or(k.n_cpus, Vec::len),
            trace: k.trace.events(),
            bus: m.bus_stats(),
            fabric: m.fabric_stats(),
            node_stats: k.node_stats.clone(),
        }
    }

    /// The Section 7.3 headline: shootdown overhead as a percentage of the
    /// machine's total processor-time during the run, "after scaling the
    /// overheads upward to represent shootdowns across the entire machine"
    /// (sampled responder totals are multiplied up to all processors).
    /// The paper's results: ~1% for kernel pmap shootdowns on the Mach
    /// build, <0.2% for user pmap shootdowns on Camelot.
    pub fn overhead_percent(&self, records: &[InitiatorRecord]) -> f64 {
        let initiator_us = Self::total_overhead_us(records);
        let responder_us: f64 = self
            .responders
            .iter()
            .map(|r| r.elapsed.as_micros_f64())
            .sum();
        let scale = self.n_cpus as f64 / self.responder_sample_size.max(1) as f64;
        // Attribute responders proportionally to this record class's share
        // of initiator events.
        let total_events = self.kernel_initiators.len() + self.user_initiators.len();
        let share = if total_events == 0 {
            0.0
        } else {
            records.len() as f64 / total_events as f64
        };
        let machine_us = self.runtime.as_micros_f64() * self.n_cpus as f64;
        if machine_us == 0.0 {
            return 0.0;
        }
        (initiator_us + responder_us * scale * share) / machine_us * 100.0
    }

    /// Summary of initiator elapsed times (µs) for the given set.
    pub fn elapsed_summary(records: &[InitiatorRecord]) -> Option<Summary> {
        let xs: Vec<f64> = records.iter().map(|r| r.elapsed.as_micros_f64()).collect();
        Summary::of(&xs)
    }

    /// Summary of processors shot at.
    pub fn processors_summary(records: &[InitiatorRecord]) -> Option<Summary> {
        let xs: Vec<f64> = records.iter().map(|r| f64::from(r.processors)).collect();
        Summary::of(&xs)
    }

    /// Summary of pages involved.
    pub fn pages_summary(records: &[InitiatorRecord]) -> Option<Summary> {
        let xs: Vec<f64> = records.iter().map(|r| r.pages as f64).collect();
        Summary::of(&xs)
    }

    /// Summary of responder elapsed times (µs).
    pub fn responder_summary(&self) -> Option<Summary> {
        let xs: Vec<f64> = self
            .responders
            .iter()
            .map(|r| r.elapsed.as_micros_f64())
            .collect();
        Summary::of(&xs)
    }

    /// Total shootdown overhead (µs) charged to initiators of the given
    /// set — "number of events times average time per event" (Section 7.2).
    pub fn total_overhead_us(records: &[InitiatorRecord]) -> f64 {
        records.iter().map(|r| r.elapsed.as_micros_f64()).sum()
    }
}
