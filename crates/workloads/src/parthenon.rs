//! The Parthenon parallel theorem prover.
//!
//! "Parthenon allocates memory as needed to hold the intermediate results
//! of the proof search" (Section 5.2): worker threads pull possibilities
//! from a central workpile, add new ones as they are generated, and stop
//! when one path finds the proof — the "essentially non-deterministic
//! control structure" that makes Parthenon the paper's perturbation probe
//! (Section 6.1). Its shootdown signature: the cthreads stack-guard
//! reprotection at thread startup (a user shootdown **only** without lazy
//! evaluation, because the guard page is never touched — Section 7.2's
//! "average four-fifths of a millisecond from the startup time for new
//! threads"), plus a trickle of mostly-untouched kernel buffers.

use machtlb_core::drive;
use machtlb_core::{Driven, HasKernel, SpinMode};
use machtlb_pmap::{PageRange, Prot, Vpn};
use machtlb_sim::{BlockOn, CpuId, Ctx, Dur, Process, RunStatus, Step, WaitChannel};
use machtlb_vm::{HasVm, TaskId, VmOp, VmOpProcess, USER_SPAN_START};
use rand::Rng;

use crate::harness::{build_workload_machine, AppReport, RunConfig, WlMachine};
use crate::kernelops::KernelBufferOp;
use crate::state::{AppShared, WlState};
use crate::thread::{enqueue_thread, ThreadShell};

/// Notified when the last worker of a run exits (workload `0x5` key space;
/// see `machtlb_sim::event`'s channel registry).
const RUN_CHANNEL: WaitChannel = WaitChannel::new(0x5_0000_0002);

/// Prover parameters.
#[derive(Clone, Debug)]
pub struct ParthenonConfig {
    /// Worker threads ("running 15-way parallel").
    pub workers: u32,
    /// Successive executions ("run five times in succession to increase
    /// the number of shootdown events").
    pub runs: u32,
    /// Initial workpile size per run.
    pub initial_items: u32,
    /// Maximum search depth.
    pub max_depth: u32,
    /// Children generated per expanded item, sampled uniformly.
    pub branch: (u32, u32),
    /// Compute chunks (50 µs) per item, sampled uniformly.
    pub compute_chunks: (u32, u32),
    /// Per-mille chance an expanded item is the proof (ends the run).
    pub proof_per_mille: u32,
    /// Allocate intermediate-result memory every this many items.
    pub alloc_every: u32,
    /// Perform a kernel buffer cycle every this many items.
    pub kernel_op_every: u32,
    /// Per-cent chance a kernel buffer is actually touched.
    pub kernel_touched_percent: u32,
    /// Pages per worker stack region (guard page at its second page).
    pub stack_pages: u64,
    /// Compute chunks (50 µs) the main thread spends between creating
    /// successive workers (application startup work; it lets earlier
    /// workers attach before the next stack-guard reprotection).
    pub spawn_gap_chunks: u32,
}

impl Default for ParthenonConfig {
    fn default() -> ParthenonConfig {
        ParthenonConfig {
            workers: 15,
            runs: 5,
            initial_items: 70,
            max_depth: 5,
            branch: (0, 3),
            compute_chunks: (4, 40),
            proof_per_mille: 2,
            alloc_every: 7,
            kernel_op_every: 12,
            kernel_touched_percent: 3,
            stack_pages: 32,
            spawn_gap_chunks: 60,
        }
    }
}

/// Prover coordination state.
#[derive(Debug, Default)]
pub struct ParthenonShared {
    /// The run's task.
    pub task: Option<TaskId>,
    /// The central workpile: item depths.
    pub workpile: Vec<u32>,
    /// Items popped but not yet expanded.
    pub outstanding: u32,
    /// Set when the proof is found (or the pile is exhausted): workers
    /// drain and exit.
    pub run_over: bool,
    /// Workers that have not exited this run.
    pub workers_alive: u32,
    /// Completed runs.
    pub runs_done: u32,
    /// Items expanded in total (across runs).
    pub items_expanded: u64,
    /// When the prover finished all runs.
    pub completed_at: Option<machtlb_sim::Time>,
}

const STACK_REGION_BASE: u64 = USER_SPAN_START + 0x1000;
const RESULT_BASE: u64 = USER_SPAN_START + 0x8000;

#[derive(Debug)]
enum WPhase {
    Pop,
    Compute { chunks: u32 },
    PushChildren { depth: u32 },
    Alloc(Box<VmOpProcess>),
    KernelOp(Box<KernelBufferOp>),
}

/// A prover worker.
#[derive(Debug)]
struct Worker {
    cfg: ParthenonConfig,
    task: TaskId,
    id: u32,
    phase: WPhase,
    items: u32,
    alloc_cursor: u64,
    /// Depth of the item being expanded (set at pop).
    pending_depth: u32,
}

impl Process<WlState, ()> for Worker {
    fn step(&mut self, ctx: &mut Ctx<'_, WlState, ()>) -> Step {
        match &mut self.phase {
            WPhase::Pop => {
                let p = ctx.shared.parthenon_mut();
                if p.run_over {
                    p.workers_alive -= 1;
                    if p.workers_alive == 0 {
                        ctx.notify(RUN_CHANNEL);
                    }
                    return Step::Done(ctx.costs().local_op);
                }
                match p.workpile.pop() {
                    Some(depth) => {
                        p.outstanding += 1;
                        p.items_expanded += 1;
                        let (lo, hi) = self.cfg.compute_chunks;
                        let chunks = ctx.rng().gen_range(lo..=hi);
                        self.items += 1;
                        self.phase = WPhase::Compute { chunks };
                        // Stash the depth in the next phase transition.
                        self.pending_depth = depth;
                        Step::Run(ctx.costs().local_op * 4 + ctx.costs().cache_read)
                    }
                    None => {
                        if p.outstanding == 0 {
                            // Exhausted without a proof: the run ends.
                            p.run_over = true;
                        }
                        Step::Run(Dur::micros(100))
                    }
                }
            }
            WPhase::Compute { chunks } => {
                if *chunks > 0 {
                    *chunks -= 1;
                    return Step::Run(Dur::micros(50));
                }
                let depth = self.pending_depth;
                self.phase = WPhase::PushChildren { depth };
                Step::Run(ctx.costs().local_op)
            }
            WPhase::PushChildren { depth } => {
                let depth = *depth;
                let proof = ctx.rng().gen_range(0..1000) < self.cfg.proof_per_mille;
                let (blo, bhi) = self.cfg.branch;
                let kids = if depth + 1 < self.cfg.max_depth {
                    ctx.rng().gen_range(blo..=bhi)
                } else {
                    0
                };
                {
                    let p = ctx.shared.parthenon_mut();
                    p.outstanding -= 1;
                    if proof {
                        p.run_over = true;
                    } else {
                        for _ in 0..kids {
                            p.workpile.push(depth + 1);
                        }
                    }
                }
                // Occasional allocations and kernel activity.
                if self.items.is_multiple_of(self.cfg.alloc_every) {
                    let at = RESULT_BASE + u64::from(self.id) * 0x400 + self.alloc_cursor * 2;
                    self.alloc_cursor += 1;
                    self.phase = WPhase::Alloc(Box::new(VmOpProcess::new(VmOp::Allocate {
                        task: self.task,
                        pages: 2,
                        at: Some(Vpn::new(at)),
                    })));
                } else if self.items.is_multiple_of(self.cfg.kernel_op_every) {
                    let touched = ctx.rng().gen_range(0..100) < self.cfg.kernel_touched_percent;
                    self.phase =
                        WPhase::KernelOp(Box::new(KernelBufferOp::new(1, u64::from(touched))));
                } else {
                    self.phase = WPhase::Pop;
                }
                Step::Run(ctx.costs().local_op * 4)
            }
            WPhase::Alloc(op) => match drive(op.as_mut(), ctx) {
                Driven::Yield(s) => s,
                Driven::Finished(d) => {
                    self.phase = WPhase::Pop;
                    Step::Run(d)
                }
            },
            WPhase::KernelOp(op) => match drive(op.as_mut(), ctx) {
                Driven::Yield(s) => s,
                Driven::Finished(d) => {
                    self.phase = WPhase::Pop;
                    Step::Run(d)
                }
            },
        }
    }

    fn label(&self) -> &'static str {
        "parthenon-worker"
    }
}

#[derive(Debug)]
enum CPhase {
    StartRun,
    SetupWorker { worker: u32, stage: u8 },
    WaitRun,
    TerminateTask,
    NextRun,
}

/// The prover's main thread: creates the task, sets up worker stacks (the
/// cthreads guard-page reprotection), spawns workers, and repeats for each
/// run.
#[derive(Debug)]
struct ProverMain {
    cfg: ParthenonConfig,
    phase: CPhase,
    op: Option<VmOpProcess>,
    run_task: Option<TaskId>,
    gap_left: u32,
}

impl Process<WlState, ()> for ProverMain {
    fn step(&mut self, ctx: &mut Ctx<'_, WlState, ()>) -> Step {
        match self.phase {
            CPhase::StartRun => {
                let task = {
                    let (k, vm) = ctx.shared.kernel_and_vm();
                    vm.create_task(k)
                };
                self.run_task = Some(task);
                let p = ctx.shared.parthenon_mut();
                p.task = Some(task);
                p.workpile = vec![0; self.cfg.initial_items as usize];
                p.outstanding = 0;
                p.run_over = false;
                p.workers_alive = self.cfg.workers;
                self.phase = CPhase::SetupWorker {
                    worker: 0,
                    stage: 0,
                };
                Step::Run(ctx.costs().local_op * 16)
            }
            CPhase::SetupWorker { worker, stage } => {
                if worker == self.cfg.workers {
                    self.phase = CPhase::WaitRun;
                    return Step::Run(ctx.costs().local_op);
                }
                let task = self.run_task.expect("run started");
                let stack_base =
                    Vpn::new(STACK_REGION_BASE + u64::from(worker) * self.cfg.stack_pages);
                match stage {
                    // cthreads stack setup: allocate a large aligned
                    // region...
                    0 => {
                        let pages = self.cfg.stack_pages;
                        let op = self.op.get_or_insert_with(|| {
                            VmOpProcess::new(VmOp::Allocate {
                                task,
                                pages,
                                at: Some(stack_base),
                            })
                        });
                        match drive(op, ctx) {
                            Driven::Yield(s) => s,
                            Driven::Finished(d) => {
                                self.op = None;
                                self.phase = CPhase::SetupWorker { worker, stage: 1 };
                                Step::Run(d)
                            }
                        }
                    }
                    // ...and reprotect the second page to no access to
                    // detect stack overflows. The page has never been
                    // touched: lazy evaluation skips the shootdown.
                    1 => {
                        let op = self.op.get_or_insert_with(|| {
                            VmOpProcess::new(VmOp::Protect {
                                task,
                                range: PageRange::new(stack_base.offset(1), 1),
                                prot: Prot::NONE,
                            })
                        });
                        match drive(op, ctx) {
                            Driven::Yield(s) => s,
                            Driven::Finished(d) => {
                                self.op = None;
                                self.phase = CPhase::SetupWorker { worker, stage: 2 };
                                Step::Run(d)
                            }
                        }
                    }
                    2 => {
                        let n_cpus = ctx.n_cpus() as u32;
                        let body = Worker {
                            cfg: self.cfg.clone(),
                            task,
                            id: worker,
                            phase: WPhase::Pop,
                            items: 0,
                            alloc_cursor: 0,
                            pending_depth: 0,
                        };
                        let target = CpuId::new(1 + (worker % (n_cpus - 1)));
                        let cost = enqueue_thread(
                            ctx,
                            target,
                            Box::new(ThreadShell::new(task, body).with_label("parthenon-worker")),
                        );
                        self.gap_left = self.cfg.spawn_gap_chunks;
                        self.phase = CPhase::SetupWorker { worker, stage: 3 };
                        Step::Run(cost)
                    }
                    // Startup work between thread creations: earlier
                    // workers get scheduled and attach the task's pmap.
                    _ => {
                        if self.gap_left > 0 {
                            self.gap_left -= 1;
                            return Step::Run(Dur::micros(50));
                        }
                        self.phase = CPhase::SetupWorker {
                            worker: worker + 1,
                            stage: 0,
                        };
                        Step::Run(ctx.costs().local_op)
                    }
                }
            }
            CPhase::WaitRun => {
                if ctx.shared.parthenon().workers_alive == 0 {
                    self.phase = CPhase::TerminateTask;
                    Step::Run(ctx.costs().local_op)
                } else if ctx.shared.kernel().config.spin_mode == SpinMode::Event {
                    Step::Block(BlockOn::one(RUN_CHANNEL, Dur::micros(300)))
                } else {
                    Step::Run(Dur::micros(300))
                }
            }
            CPhase::TerminateTask => {
                let task = self.run_task.expect("run started");
                let op = self
                    .op
                    .get_or_insert_with(|| VmOpProcess::new(VmOp::Terminate { task }));
                match drive(op, ctx) {
                    Driven::Yield(s) => s,
                    Driven::Finished(d) => {
                        self.op = None;
                        self.phase = CPhase::NextRun;
                        Step::Run(d)
                    }
                }
            }
            CPhase::NextRun => {
                let now = ctx.now;
                let p = ctx.shared.parthenon_mut();
                p.runs_done += 1;
                if p.runs_done == self.cfg.runs {
                    p.completed_at = Some(now);
                    Step::Done(ctx.costs().local_op)
                } else {
                    self.phase = CPhase::StartRun;
                    Step::Run(ctx.costs().local_op)
                }
            }
        }
    }

    fn label(&self) -> &'static str {
        "parthenon-main"
    }
}

/// Installs the prover into a fresh workload machine.
pub fn install_parthenon(m: &mut WlMachine, cfg: &ParthenonConfig) {
    let s = m.shared_mut();
    s.app = AppShared::Parthenon(ParthenonShared::default());
    let main = ThreadShell::new(
        TaskId::KERNEL,
        ProverMain {
            cfg: cfg.clone(),
            phase: CPhase::StartRun,
            op: None,
            run_task: None,
            gap_left: 0,
        },
    )
    .with_label("parthenon-main");
    s.push_thread(CpuId::new(0), Box::new(main));
}

/// Runs the prover and returns its report.
///
/// # Panics
///
/// Panics if the run does not complete within the configured limit.
pub fn run_parthenon(config: &RunConfig, cfg: &ParthenonConfig) -> AppReport {
    let mut m = build_workload_machine(config, AppShared::None);
    install_parthenon(&mut m, cfg);
    let status = crate::harness::run_until_done(&mut m, config.limit, |s| {
        s.parthenon().completed_at.is_some()
    });
    assert_ne!(status, RunStatus::StepLimit, "parthenon hit the step guard");
    assert_eq!(
        m.shared().parthenon().runs_done,
        cfg.runs,
        "parthenon did not finish before {} (status {:?})",
        config.limit,
        status
    );
    let mut report = AppReport::extract("Parthenon", &m);
    if let Some(t) = m.shared().parthenon().completed_at {
        report.runtime = t.duration_since(machtlb_sim::Time::ZERO);
    }
    report
}
