//! The parallel Mach kernel build.
//!
//! "The Mach kernel build uses multiple processors only for throughput; it
//! does not share memory among user tasks" (Section 5.2). Each compile job
//! is its own single-threaded task: it allocates a private working set,
//! computes, and performs kernel buffer cycles (file I/O), whose
//! deallocations are the build's — numerous — kernel-pmap shootdowns.
//! Roughly half the kernel cycles are metadata probes that never touch
//! their buffer, which is what lazy evaluation eliminates in Table 1.

use machtlb_core::{drive, Driven, HasKernel, MemOp, SpinMode};
use machtlb_pmap::{Vaddr, Vpn, PAGE_SIZE};
use machtlb_sim::{BlockOn, CpuId, Ctx, Dur, Process, RunStatus, Step, WaitChannel};
use machtlb_vm::{
    HasVm, TaskId, UserAccess, UserAccessResult, UserAccessStep, VmOp, VmOpProcess, USER_SPAN_START,
};
use rand::Rng;

use crate::harness::{build_workload_machine, AppReport, RunConfig, WlMachine};
use crate::kernelops::KernelBufferOp;
use crate::state::{AppShared, WlState};
use crate::thread::{enqueue_thread, ThreadShell};

/// Notified when a compile job retires (workload `0x5` key space; see
/// `machtlb_sim::event`'s channel registry).
const JOB_CHANNEL: WaitChannel = WaitChannel::new(0x5_0000_0003);

/// Build parameters.
#[derive(Clone, Debug)]
pub struct MachBuildConfig {
    /// Total compile jobs.
    pub jobs: u32,
    /// Compute chunks (50 µs each) per job phase, sampled uniformly.
    pub compute_chunks: (u32, u32),
    /// Kernel buffer cycles per job, sampled uniformly.
    pub kernel_ops_per_job: (u32, u32),
    /// Pages per kernel buffer, sampled uniformly.
    pub buffer_pages: (u64, u64),
    /// Percent of kernel cycles that actually touch their buffer (the
    /// rest are metadata probes lazy evaluation skips).
    pub touched_percent: u32,
    /// Private working-set pages per job.
    pub user_pages: u64,
}

impl Default for MachBuildConfig {
    fn default() -> MachBuildConfig {
        MachBuildConfig {
            jobs: 60,
            compute_chunks: (20, 120),
            kernel_ops_per_job: (6, 14),
            buffer_pages: (1, 4),
            touched_percent: 50,
            user_pages: 16,
        }
    }
}

/// Build coordination state.
#[derive(Debug, Default)]
pub struct MachBuildShared {
    /// Jobs not yet started.
    pub jobs_remaining: u32,
    /// Jobs currently running.
    pub jobs_running: u32,
    /// Jobs finished.
    pub jobs_done: u32,
    /// When the build finished.
    pub completed_at: Option<machtlb_sim::Time>,
}

#[derive(Debug)]
enum JobPhase {
    AllocateWs,
    Work,
    TouchWs,
    KernelOp(Box<KernelBufferOp>),
    Terminate,
}

/// One compile job: a single-threaded task.
#[derive(Debug)]
struct CompileJob {
    cfg: MachBuildConfig,
    task: TaskId,
    phase: JobPhase,
    op: Option<VmOpProcess>,
    access: Option<UserAccess>,
    ws_touched: u64,
    kernel_ops_left: u32,
    computing: u32,
}

const WS_BASE: u64 = USER_SPAN_START + 0x10;

impl Process<WlState, ()> for CompileJob {
    fn step(&mut self, ctx: &mut Ctx<'_, WlState, ()>) -> Step {
        match &mut self.phase {
            JobPhase::AllocateWs => {
                let task = self.task;
                let pages = self.cfg.user_pages;
                let op = self.op.get_or_insert_with(|| {
                    VmOpProcess::new(VmOp::Allocate {
                        task,
                        pages,
                        at: Some(Vpn::new(WS_BASE)),
                    })
                });
                match drive(op, ctx) {
                    Driven::Yield(s) => s,
                    Driven::Finished(d) => {
                        self.op = None;
                        let (lo, hi) = self.cfg.kernel_ops_per_job;
                        self.kernel_ops_left = ctx.rng().gen_range(lo..=hi);
                        self.phase = JobPhase::Work;
                        Step::Run(d)
                    }
                }
            }
            JobPhase::Work => {
                if self.computing > 0 {
                    self.computing -= 1;
                    return Step::Run(Dur::micros(50));
                }
                if self.kernel_ops_left == 0 {
                    self.phase = JobPhase::Terminate;
                    return Step::Run(ctx.costs().local_op);
                }
                self.kernel_ops_left -= 1;
                let (lo, hi) = self.cfg.compute_chunks;
                self.computing = ctx.rng().gen_range(lo..=hi);
                self.phase = JobPhase::TouchWs;
                Step::Run(ctx.costs().local_op)
            }
            JobPhase::TouchWs => {
                // Dirty one working-set page, then do the kernel cycle.
                let page = self.ws_touched % self.cfg.user_pages;
                self.ws_touched += 1;
                let va = Vaddr::new((WS_BASE + page) * PAGE_SIZE);
                let task = self.task;
                let acc = self
                    .access
                    .get_or_insert_with(|| UserAccess::new(task, va, MemOp::Write(7)));
                match acc.step(ctx) {
                    UserAccessStep::Yield(s) => s,
                    UserAccessStep::Finished(UserAccessResult::Ok(_), d) => {
                        self.access = None;
                        let (plo, phi) = self.cfg.buffer_pages;
                        let pages = ctx.rng().gen_range(plo..=phi);
                        let touched = ctx.rng().gen_range(0..100) < self.cfg.touched_percent;
                        let touch = if touched { pages } else { 0 };
                        self.phase =
                            JobPhase::KernelOp(Box::new(KernelBufferOp::new(pages, touch)));
                        Step::Run(d)
                    }
                    UserAccessStep::Finished(UserAccessResult::Killed, _) => {
                        unreachable!("the working set stays mapped for the job's lifetime")
                    }
                }
            }
            JobPhase::KernelOp(op) => match drive(op.as_mut(), ctx) {
                Driven::Yield(s) => s,
                Driven::Finished(d) => {
                    self.phase = JobPhase::Work;
                    Step::Run(d)
                }
            },
            JobPhase::Terminate => {
                let task = self.task;
                let op = self
                    .op
                    .get_or_insert_with(|| VmOpProcess::new(VmOp::Terminate { task }));
                match drive(op, ctx) {
                    Driven::Yield(s) => s,
                    Driven::Finished(d) => {
                        self.op = None;
                        let b = ctx.shared.machbuild_mut();
                        b.jobs_running -= 1;
                        b.jobs_done += 1;
                        ctx.notify(JOB_CHANNEL);
                        Step::Done(d)
                    }
                }
            }
        }
    }

    fn label(&self) -> &'static str {
        "compile-job"
    }
}

#[derive(Debug)]
enum CoordPhase {
    Dispatch,
    Wait,
}

/// The `make` coordinator: keeps one job per processor in flight.
#[derive(Debug)]
struct BuildCoordinator {
    cfg: MachBuildConfig,
    phase: CoordPhase,
    next_cpu: u32,
}

impl Process<WlState, ()> for BuildCoordinator {
    fn step(&mut self, ctx: &mut Ctx<'_, WlState, ()>) -> Step {
        match self.phase {
            CoordPhase::Dispatch => {
                let n_cpus = ctx.n_cpus() as u32;
                let b = ctx.shared.machbuild();
                if b.jobs_remaining == 0 {
                    self.phase = CoordPhase::Wait;
                    return Step::Run(ctx.costs().local_op);
                }
                if b.jobs_running >= n_cpus - 1 {
                    // All worker processors busy: poll until one retires.
                    if ctx.shared.kernel().config.spin_mode == SpinMode::Event {
                        return Step::Block(BlockOn::one(JOB_CHANNEL, Dur::micros(200)));
                    }
                    return Step::Run(Dur::micros(200));
                }
                {
                    let b = ctx.shared.machbuild_mut();
                    b.jobs_remaining -= 1;
                    b.jobs_running += 1;
                }
                let task = {
                    let (k, vm) = ctx.shared.kernel_and_vm();
                    vm.create_task(k)
                };
                let job = ThreadShell::new(
                    task,
                    CompileJob {
                        cfg: self.cfg.clone(),
                        task,
                        phase: JobPhase::AllocateWs,
                        op: None,
                        access: None,
                        ws_touched: 0,
                        kernel_ops_left: 0,
                        computing: 0,
                    },
                )
                .with_label("compile-job");
                // Round-robin over the worker processors 1..n.
                let target = CpuId::new(1 + (self.next_cpu % (n_cpus - 1)));
                self.next_cpu += 1;
                let cost = enqueue_thread(ctx, target, Box::new(job));
                Step::Run(cost + ctx.costs().local_op * 8)
            }
            CoordPhase::Wait => {
                let now = ctx.now;
                let b = ctx.shared.machbuild_mut();
                if b.jobs_done == self.cfg.jobs {
                    b.completed_at = Some(now);
                    Step::Done(ctx.costs().local_op)
                } else if ctx.shared.kernel().config.spin_mode == SpinMode::Event {
                    Step::Block(BlockOn::one(JOB_CHANNEL, Dur::micros(500)))
                } else {
                    Step::Run(Dur::micros(500))
                }
            }
        }
    }

    fn label(&self) -> &'static str {
        "build-coordinator"
    }
}

/// Installs the build into a fresh workload machine.
pub fn install_machbuild(m: &mut WlMachine, cfg: &MachBuildConfig) {
    let s = m.shared_mut();
    s.app = AppShared::MachBuild(MachBuildShared {
        jobs_remaining: cfg.jobs,
        ..MachBuildShared::default()
    });
    let coord = ThreadShell::new(
        TaskId::KERNEL,
        BuildCoordinator {
            cfg: cfg.clone(),
            phase: CoordPhase::Dispatch,
            next_cpu: 0,
        },
    )
    .with_label("build-coordinator");
    s.push_thread(CpuId::new(0), Box::new(coord));
}

/// Runs the build and returns its report.
///
/// # Panics
///
/// Panics if the build does not finish within the configured limit.
pub fn run_machbuild(config: &RunConfig, cfg: &MachBuildConfig) -> AppReport {
    let mut m = build_workload_machine(config, AppShared::None);
    install_machbuild(&mut m, cfg);
    let status = crate::harness::run_until_done(&mut m, config.limit, |s| {
        s.machbuild().completed_at.is_some()
    });
    assert_ne!(status, RunStatus::StepLimit, "build hit the step guard");
    assert_eq!(
        m.shared().machbuild().jobs_done,
        cfg.jobs,
        "build did not finish before {} (status {:?})",
        config.limit,
        status
    );
    let mut report = AppReport::extract("Mach", &m);
    if let Some(t) = m.shared().machbuild().completed_at {
        report.runtime = t.duration_since(machtlb_sim::Time::ZERO);
    }
    report
}
