//! The Section 5.1 consistency tester.
//!
//! "This program tries to cause a simple TLB inconsistency and then
//! attempts to detect its effects; if consistency is being maintained,
//! there will be no effects." A main thread allocates a read-write page,
//! starts `k` children that increment per-child counters in that page in
//! tight loops, reprotects the page read-only, immediately snapshots the
//! counters, and compares again later: any counter that advanced after the
//! reprotect reveals a stale TLB entry that kept permitting writes.
//!
//! The paper uses the same program as its Figure 2 measurement tool: with
//! `k < n` children it "causes exactly one shootdown on its user pmap
//! involving exactly k processors".

use machtlb_core::{drive, Driven, MemOp};
use machtlb_pmap::{PageRange, Prot, Vaddr, Vpn};
use machtlb_sim::{CpuId, Ctx, Dur, Process, RunStatus, Step};
use machtlb_vm::{
    TaskId, UserAccess, UserAccessResult, UserAccessStep, VmOp, VmOpProcess, USER_SPAN_START,
};
use machtlb_xpr::InitiatorRecord;

use crate::harness::{build_workload_machine, AppReport, RunConfig, WlMachine};
use crate::state::{AppShared, WlState};
use crate::thread::{enqueue_thread, ThreadShell};

/// Tester parameters.
#[derive(Clone, Debug)]
pub struct TesterConfig {
    /// Number of child threads (the paper varies 1..=15 on 16 processors).
    pub children: u32,
    /// Increments each child must reach before the main thread reprotects.
    pub warmup_increments: u64,
}

impl Default for TesterConfig {
    fn default() -> TesterConfig {
        TesterConfig {
            children: 4,
            warmup_increments: 50,
        }
    }
}

/// Tester coordination state.
#[derive(Debug, Default)]
pub struct TesterShared {
    /// The tester's task.
    pub task: Option<TaskId>,
    /// The counter page.
    pub page_vpn: u64,
    /// Snapshot taken immediately after the reprotect completed.
    pub counters_before: Vec<u64>,
    /// Snapshot taken after the dwell.
    pub counters_after: Vec<u64>,
    /// Whether any counter advanced after the reprotect (a detected
    /// inconsistency). `None` until the comparison ran.
    pub mismatch: Option<bool>,
    /// Children that terminated on their unrecoverable write fault.
    pub children_dead: u32,
}

const COUNTER_PAGE: u64 = USER_SPAN_START + 0x100;

#[derive(Debug)]
enum MainPhase {
    Allocate,
    SpawnChildren { next: u32 },
    WaitWarm { child: u32 },
    Protect,
    SnapshotBefore { child: u32 },
    Dwell { chunks: u32 },
    SnapshotAfter { child: u32 },
    Conclude,
}

/// The tester's main thread.
#[derive(Debug)]
struct TesterMain {
    cfg: TesterConfig,
    task: TaskId,
    phase: MainPhase,
    op: Option<VmOpProcess>,
    access: Option<UserAccess>,
}

impl TesterMain {
    fn counter_va(&self, child: u32) -> Vaddr {
        Vaddr::new(COUNTER_PAGE * 4096 + u64::from(child) * 8)
    }

    fn read_counter(
        &mut self,
        ctx: &mut Ctx<'_, WlState, ()>,
        child: u32,
        on_value: impl FnOnce(&mut Self, &mut Ctx<'_, WlState, ()>, u64),
    ) -> Step {
        let va = self.counter_va(child);
        let acc = self
            .access
            .get_or_insert_with(|| UserAccess::new(self.task, va, MemOp::Read));
        match acc.step(ctx) {
            UserAccessStep::Yield(s) => s,
            UserAccessStep::Finished(UserAccessResult::Ok(v), d) => {
                self.access = None;
                on_value(self, ctx, v);
                Step::Run(d)
            }
            UserAccessStep::Finished(UserAccessResult::Killed, _) => {
                unreachable!("the main thread reads a page it can always read")
            }
        }
    }
}

impl Process<WlState, ()> for TesterMain {
    fn step(&mut self, ctx: &mut Ctx<'_, WlState, ()>) -> Step {
        match self.phase {
            MainPhase::Allocate => {
                let op = self.op.get_or_insert_with(|| {
                    VmOpProcess::new(VmOp::Allocate {
                        task: self.task,
                        pages: 1,
                        at: Some(Vpn::new(COUNTER_PAGE)),
                    })
                });
                match drive(op, ctx) {
                    Driven::Yield(s) => s,
                    Driven::Finished(d) => {
                        assert!(!op.failed(), "tester allocation failed");
                        self.op = None;
                        self.phase = MainPhase::SpawnChildren { next: 0 };
                        Step::Run(d)
                    }
                }
            }
            MainPhase::SpawnChildren { next } => {
                if next == self.cfg.children {
                    self.phase = MainPhase::WaitWarm { child: 0 };
                    return Step::Run(ctx.costs().local_op);
                }
                // Child i runs on processor i+1 (the main thread owns its
                // own processor).
                let target = CpuId::new(next + 1);
                let child = ThreadShell::new(
                    self.task,
                    TesterChild {
                        task: self.task,
                        word: next,
                        count: 0,
                        access: None,
                    },
                )
                .with_label("tester-child");
                let cost = enqueue_thread(ctx, target, Box::new(child));
                self.phase = MainPhase::SpawnChildren { next: next + 1 };
                Step::Run(cost)
            }
            MainPhase::WaitWarm { child } => {
                let target = self.cfg.warmup_increments;
                let n = self.cfg.children;
                self.read_counter(ctx, child, move |this, _ctx, v| {
                    if v >= target {
                        this.phase = if child + 1 == n {
                            MainPhase::Protect
                        } else {
                            MainPhase::WaitWarm { child: child + 1 }
                        };
                    }
                    // Below target: stay and re-read.
                })
            }
            MainPhase::Protect => {
                let op = self.op.get_or_insert_with(|| {
                    VmOpProcess::new(VmOp::Protect {
                        task: self.task,
                        range: PageRange::new(Vpn::new(COUNTER_PAGE), 1),
                        prot: Prot::READ,
                    })
                });
                match drive(op, ctx) {
                    Driven::Yield(s) => s,
                    Driven::Finished(d) => {
                        self.op = None;
                        self.phase = MainPhase::SnapshotBefore { child: 0 };
                        Step::Run(d)
                    }
                }
            }
            MainPhase::SnapshotBefore { child } => {
                let n = self.cfg.children;
                self.read_counter(ctx, child, move |this, ctx, v| {
                    ctx.shared.tester_mut().counters_before.push(v);
                    this.phase = if child + 1 == n {
                        MainPhase::Dwell { chunks: 80 }
                    } else {
                        MainPhase::SnapshotBefore { child: child + 1 }
                    };
                })
            }
            MainPhase::Dwell { chunks } => {
                if chunks == 0 {
                    self.phase = MainPhase::SnapshotAfter { child: 0 };
                    return Step::Run(ctx.costs().local_op);
                }
                self.phase = MainPhase::Dwell { chunks: chunks - 1 };
                Step::Run(Dur::micros(25))
            }
            MainPhase::SnapshotAfter { child } => {
                let n = self.cfg.children;
                self.read_counter(ctx, child, move |this, ctx, v| {
                    ctx.shared.tester_mut().counters_after.push(v);
                    this.phase = if child + 1 == n {
                        MainPhase::Conclude
                    } else {
                        MainPhase::SnapshotAfter { child: child + 1 }
                    };
                })
            }
            MainPhase::Conclude => {
                let t = ctx.shared.tester_mut();
                let mismatch = t.counters_before != t.counters_after;
                t.mismatch = Some(mismatch);
                Step::Done(ctx.costs().local_op * 4)
            }
        }
    }

    fn label(&self) -> &'static str {
        "tester-main"
    }
}

/// A child thread: a tight increment loop on its own counter word until
/// the write fault kills it.
#[derive(Debug)]
struct TesterChild {
    task: TaskId,
    word: u32,
    count: u64,
    access: Option<UserAccess>,
}

impl Process<WlState, ()> for TesterChild {
    fn step(&mut self, ctx: &mut Ctx<'_, WlState, ()>) -> Step {
        let va = Vaddr::new(COUNTER_PAGE * 4096 + u64::from(self.word) * 8);
        let next = self.count + 1;
        let acc = self
            .access
            .get_or_insert_with(|| UserAccess::new(self.task, va, MemOp::Write(next)));
        match acc.step(ctx) {
            UserAccessStep::Yield(s) => s,
            UserAccessStep::Finished(UserAccessResult::Ok(_), d) => {
                self.access = None;
                self.count = next;
                // Loop overhead of the increment on a ~2 MIPS processor:
                // load, add, compare, branch around the store.
                Step::Run(d + ctx.costs().local_op * 6)
            }
            UserAccessStep::Finished(UserAccessResult::Killed, d) => {
                self.access = None;
                ctx.shared.tester_mut().children_dead += 1;
                Step::Done(d)
            }
        }
    }

    fn label(&self) -> &'static str {
        "tester-child"
    }
}

/// Installs the tester into a freshly built workload machine.
///
/// # Panics
///
/// Panics if the machine has fewer than `children + 1` processors.
pub fn install_tester(m: &mut WlMachine, cfg: &TesterConfig) {
    assert!(
        m.n_cpus() > cfg.children as usize,
        "tester needs children + 1 processors ({} children on {} cpus)",
        cfg.children,
        m.n_cpus()
    );
    let s = m.shared_mut();
    let task = {
        use machtlb_vm::HasVm;
        let (k, vm) = s.kernel_and_vm();
        vm.create_task(k)
    };
    s.app = AppShared::Tester(TesterShared {
        task: Some(task),
        page_vpn: COUNTER_PAGE,
        ..TesterShared::default()
    });
    let main = ThreadShell::new(
        task,
        TesterMain {
            cfg: cfg.clone(),
            task,
            phase: MainPhase::Allocate,
            op: None,
            access: None,
        },
    )
    .with_label("tester-main");
    s.push_thread(CpuId::new(0), Box::new(main));
}

/// Outcome of one tester run.
#[derive(Clone, Debug)]
pub struct TesterOutcome {
    /// The full measurement report.
    pub report: AppReport,
    /// The single user-pmap shootdown the reprotect caused (absent when
    /// the strategy performs none, e.g. hardware remote invalidation).
    pub shootdown: Option<InitiatorRecord>,
    /// Whether the tester detected counters advancing after the reprotect.
    pub mismatch: bool,
    /// Children that died on the expected unrecoverable fault.
    pub children_dead: u32,
}

/// Runs the consistency tester once and returns its outcome.
///
/// # Panics
///
/// Panics if the run fails to quiesce within the configured limit.
pub fn run_tester(config: &RunConfig, tcfg: &TesterConfig) -> TesterOutcome {
    let mut m = build_workload_machine(config, AppShared::None);
    install_tester(&mut m, tcfg);
    let children = tcfg.children;
    let status = crate::harness::run_until_done(&mut m, config.limit, |s| {
        let t = s.tester();
        t.mismatch.is_some() && t.children_dead == children
    });
    assert_ne!(
        status,
        RunStatus::StepLimit,
        "tester run hit the step guard"
    );
    let report = AppReport::extract("tester", &m);
    let s = m.shared();
    let t = s.tester();
    let mismatch = t.mismatch.unwrap_or_else(|| {
        panic!(
            "tester did not conclude before {} (status {:?})",
            config.limit, status
        )
    });
    TesterOutcome {
        shootdown: report.user_initiators.first().copied(),
        mismatch,
        children_dead: t.children_dead,
        report,
    }
}
