//! Page-migration workloads for multi-node topologies.
//!
//! Two actors drive the NUMA evaluation of Section 8's scaling questions
//! on a machine with an explicit [`Topology`](machtlb_sim::Topology):
//!
//! - [`MigrationWorker`] — the **migration-storm generator**. Each worker
//!   maps a private run of pages in a shared per-node pmap, then migrates
//!   them one at a time: a `pmap_remove` (the shootdown), a page copy into
//!   a frame on the worker's own node, and a `pmap_enter` of the new
//!   frame. In *local* mode workers share the pmap homed on their own
//!   node, so every lock word, queue slot, and IPI stays on the node bus.
//!   In *cross-node* mode each node's workers attack the next node's pmap,
//!   so the same traffic pays the interconnect — the remote-latency
//!   penalty the `sec8_numa` bench measures.
//! - [`AutoNumaDaemon`] — an autoNUMA-style balancer. It periodically
//!   partitions each user pmap's in-use set by node
//!   ([`CpuSet::partition_by_node`](machtlb_pmap::CpuSet::partition_by_node))
//!   and rehomes the pmap to the node running the majority of its users,
//!   charging a batch of page copies for the tables that move.
//!
//! Both actors count [`KernelStats::page_migrations`] and the per-node
//! [`NodeCounters::page_migrations_in`](machtlb_core::NodeCounters).

use machtlb_core::{drive, Driven, HasKernel, PmapOp, PmapOpProcess};
use machtlb_pmap::{PageRange, PmapId, Prot, Vpn};
use machtlb_sim::{CpuId, Ctx, Dur, Process, RunStatus, Step};
use machtlb_vm::HasVm;

use crate::harness::{run_until_done, AppReport, RunConfig, WlMachine};
use crate::state::{AppShared, WlState};
use crate::thread::ThreadShell;

/// Migration-storm parameters.
#[derive(Clone, Debug)]
pub struct MigrationStormConfig {
    /// Worker threads started per node (each on its own processor; clamped
    /// to the node's processor count).
    pub workers_per_node: usize,
    /// Pages each worker maps during setup and then migrates.
    pub pages_per_worker: u64,
    /// Migrations each worker performs (a worker may revisit its pages).
    pub migrations_per_worker: u64,
    /// `false`: workers share the pmap homed on their *own* node (all
    /// traffic local). `true`: each node's workers attack the *next*
    /// node's pmap (every touch crosses the interconnect).
    pub cross_node: bool,
}

impl Default for MigrationStormConfig {
    fn default() -> MigrationStormConfig {
        MigrationStormConfig {
            workers_per_node: 2,
            pages_per_worker: 4,
            migrations_per_worker: 8,
            cross_node: false,
        }
    }
}

/// Coordination state for a storm run.
#[derive(Debug, Default)]
pub struct MigrateShared {
    /// Workers that finished their migration quota.
    pub workers_done: u32,
    /// Workers started.
    pub total_workers: u32,
}

#[derive(Debug)]
enum WPhase {
    /// Map the worker's run of pages, one enter per step batch.
    Setup {
        next: u64,
    },
    /// Choose the next page to migrate.
    Pick,
    /// Copy the page into a frame on this worker's node.
    Copy {
        vpn: Vpn,
    },
    /// Drive the in-flight pmap operation, then continue at `then`.
    Op {
        op: Box<PmapOpProcess>,
        then: Then,
    },
    Finished,
}

#[derive(Copy, Clone, Debug)]
enum Then {
    Setup { next: u64 },
    Copy { vpn: Vpn },
    Migrated,
}

/// One storm worker (see the module docs). Wrap in a
/// [`ThreadShell`](crate::ThreadShell) for the target task so the
/// processor attaches the victim pmap — [`install_migration_storm`] does
/// this.
#[derive(Debug)]
pub struct MigrationWorker {
    pmap: PmapId,
    base_vpn: u64,
    pages: u64,
    remaining: u64,
    cursor: u64,
    phase: WPhase,
}

impl MigrationWorker {
    /// A worker migrating `pages` pages starting at `base_vpn` of `pmap`,
    /// `migrations` times in total.
    pub fn new(pmap: PmapId, base_vpn: u64, pages: u64, migrations: u64) -> MigrationWorker {
        MigrationWorker {
            pmap,
            base_vpn,
            pages,
            remaining: migrations,
            cursor: 0,
            phase: WPhase::Setup { next: 0 },
        }
    }

    fn enter_op(&self, ctx: &mut Ctx<'_, WlState, ()>, vpn: Vpn) -> Box<PmapOpProcess> {
        let pfn = ctx.shared.kernel_mut().frames.alloc();
        Box::new(PmapOpProcess::new(
            self.pmap,
            PmapOp::Enter {
                vpn,
                pfn,
                prot: Prot::READ_WRITE,
            },
        ))
    }
}

impl Process<WlState, ()> for MigrationWorker {
    fn step(&mut self, ctx: &mut Ctx<'_, WlState, ()>) -> Step {
        match &mut self.phase {
            WPhase::Setup { next } => {
                let next = *next;
                if next == self.pages {
                    self.phase = WPhase::Pick;
                    return Step::Run(ctx.costs().local_op);
                }
                let vpn = Vpn::new(self.base_vpn + next);
                let op = self.enter_op(ctx, vpn);
                self.phase = WPhase::Op {
                    op,
                    then: Then::Setup { next: next + 1 },
                };
                Step::Run(ctx.costs().local_op)
            }
            WPhase::Pick => {
                if self.remaining == 0 {
                    self.phase = WPhase::Finished;
                    ctx.shared.migrate_mut().workers_done += 1;
                    return Step::Done(ctx.costs().local_op);
                }
                self.remaining -= 1;
                let vpn = Vpn::new(self.base_vpn + self.cursor);
                self.cursor = (self.cursor + 1) % self.pages;
                // The migration's shootdown: unmap before the copy so no
                // processor writes the page mid-move.
                let op = Box::new(PmapOpProcess::new(
                    self.pmap,
                    PmapOp::Remove {
                        range: PageRange::single(vpn),
                    },
                ));
                self.phase = WPhase::Op {
                    op,
                    then: Then::Copy { vpn },
                };
                Step::Run(ctx.costs().local_op)
            }
            WPhase::Copy { vpn } => {
                let vpn = *vpn;
                // The frame lands in this worker's node memory: count the
                // page as migrated in here.
                let node = ctx.node();
                let k = ctx.shared.kernel_mut();
                k.stats.page_migrations += 1;
                k.node_stats[node].page_migrations_in += 1;
                let op = self.enter_op(ctx, vpn);
                self.phase = WPhase::Op {
                    op,
                    then: Then::Migrated,
                };
                Step::Run(ctx.costs().page_copy)
            }
            WPhase::Op { op, then } => {
                let then = *then;
                match drive(op.as_mut(), ctx) {
                    Driven::Yield(s) => s,
                    Driven::Finished(d) => {
                        self.phase = match then {
                            Then::Setup { next } => WPhase::Setup { next },
                            Then::Copy { vpn } => WPhase::Copy { vpn },
                            Then::Migrated => WPhase::Pick,
                        };
                        Step::Run(d)
                    }
                }
            }
            WPhase::Finished => Step::Done(Dur::ZERO),
        }
    }

    fn label(&self) -> &'static str {
        "migration-worker"
    }
}

/// AutoNUMA-style balancing daemon parameters.
#[derive(Clone, Debug)]
pub struct AutoNumaConfig {
    /// Sleep between balancing passes.
    pub period: Dur,
    /// Pages charged per rehoming (the hot tables that move with the
    /// pmap).
    pub migrate_batch: u64,
}

impl Default for AutoNumaConfig {
    fn default() -> AutoNumaConfig {
        AutoNumaConfig {
            period: Dur::millis(5),
            migrate_batch: 4,
        }
    }
}

/// The balancing daemon: rehomes each user pmap to the node running the
/// majority of its users (see the module docs). Never exits; runs are
/// bounded by the workload's completion.
#[derive(Debug)]
pub struct AutoNumaDaemon {
    cfg: AutoNumaConfig,
    sleeping: bool,
    /// Rehomings performed (exposed for tests via the kernel counters
    /// too).
    pub rehomed: u64,
}

impl AutoNumaDaemon {
    /// Creates the daemon.
    pub fn new(cfg: AutoNumaConfig) -> AutoNumaDaemon {
        AutoNumaDaemon {
            cfg,
            sleeping: false,
            rehomed: 0,
        }
    }

    /// One balancing pass. Returns (cost, pages migrated).
    fn balance(&mut self, ctx: &mut Ctx<'_, WlState, ()>) -> (Dur, u64) {
        let topology = ctx.topology();
        let mut cost = ctx.costs().local_op;
        let mut moved = 0;
        let n_pmaps = ctx.shared.kernel().pmaps.len();
        for i in 1..n_pmaps {
            let id = PmapId::new(i as u32);
            let (home, majority, users) = {
                let pmap = ctx.shared.kernel().pmaps.get(id);
                let parts = pmap.in_use().partition_by_node(topology);
                let majority = parts
                    .iter()
                    .enumerate()
                    .max_by_key(|(n, p)| (p.len(), usize::MAX - n))
                    .map(|(n, _)| n)
                    .unwrap_or(0);
                let users = pmap.in_use().len();
                (pmap.home(), majority, users)
            };
            // Reading the in-use set costs one cached read per word.
            let words = ctx.shared.kernel().pmaps.get(id).in_use().word_count();
            cost += ctx.costs().cache_read * words as u64;
            if users == 0 || majority == home {
                continue;
            }
            // Rehome: the pmap's tables and lock words move to the
            // majority node. Modeled as a batch of page copies plus the
            // descriptor write, charged against the new home's bus.
            let batch = self.cfg.migrate_batch;
            {
                let k = ctx.shared.kernel_mut();
                k.pmaps.get_mut(id).set_home(majority);
                k.stats.page_migrations += batch;
                k.node_stats[majority].page_migrations_in += batch;
            }
            self.rehomed += 1;
            moved += batch;
            cost += ctx.costs().page_copy * batch + ctx.bus_write_at(majority);
        }
        (cost, moved)
    }
}

impl Process<WlState, ()> for AutoNumaDaemon {
    fn step(&mut self, ctx: &mut Ctx<'_, WlState, ()>) -> Step {
        if !self.sleeping {
            self.sleeping = true;
            return Step::Park(Some(ctx.now + self.cfg.period));
        }
        self.sleeping = false;
        let (cost, _) = self.balance(ctx);
        Step::Run(cost)
    }

    fn label(&self) -> &'static str {
        "autonuma-daemon"
    }
}

/// Installs the balancing daemon on `cpu` of a freshly built machine.
pub fn install_autonuma(m: &mut WlMachine, cpu: CpuId, cfg: AutoNumaConfig) {
    let daemon = ThreadShell::new(machtlb_vm::TaskId::KERNEL, AutoNumaDaemon::new(cfg))
        .with_label("autonuma-daemon");
    m.shared_mut().push_thread(cpu, Box::new(daemon));
}

/// Installs the storm: one task per node (pmap homed there), workers
/// pinned round-robin over each node's processors, each worker attacking
/// its own node's pmap (local mode) or the next node's (cross mode).
pub fn install_migration_storm(m: &mut WlMachine, cfg: &MigrationStormConfig) {
    let topology = m.shared().kernel().topology;
    let nodes = topology.nodes();
    let node_cpus = topology.node_cpus();
    let n_cpus = m.n_cpus();
    let s = m.shared_mut();
    let tasks: Vec<machtlb_vm::TaskId> = (0..nodes)
        .map(|node| {
            let (k, vm) = s.kernel_and_vm();
            vm.create_task_on(k, node)
        })
        .collect();
    let mut total = 0u32;
    for node in 0..nodes {
        let target = if cfg.cross_node {
            (node + 1) % nodes
        } else {
            node
        };
        let task = tasks[target];
        let pmap = s.vm().pmap_of(task);
        for w in 0..cfg.workers_per_node.min(node_cpus) {
            let cpu = node * node_cpus + w;
            if cpu >= n_cpus {
                break;
            }
            // Workers of one node take disjoint page runs of the target
            // pmap so their operations contend on the lock, not the plan.
            let base =
                (node as u64 * cfg.workers_per_node as u64 + w as u64) * cfg.pages_per_worker;
            let worker = ThreadShell::new(
                task,
                MigrationWorker::new(pmap, base, cfg.pages_per_worker, cfg.migrations_per_worker),
            )
            .with_label("migration-worker");
            s.push_thread(CpuId::new(cpu as u32), Box::new(worker));
            total += 1;
        }
    }
    s.app = AppShared::Migrate(MigrateShared {
        workers_done: 0,
        total_workers: total,
    });
}

/// Outcome of one migration-storm run.
#[derive(Clone, Debug)]
pub struct MigrationOutcome {
    /// The full measurement report.
    pub report: AppReport,
    /// Pages migrated (the kernel counter).
    pub migrations: u64,
    /// Workers that completed their quota.
    pub workers_done: u32,
}

/// Runs the migration storm once and returns its outcome.
///
/// # Panics
///
/// Panics if the run fails to complete within the configured limit.
pub fn run_migration_storm(config: &RunConfig, cfg: &MigrationStormConfig) -> MigrationOutcome {
    let mut m = crate::harness::build_workload_machine(config, AppShared::None);
    install_migration_storm(&mut m, cfg);
    let status = run_until_done(&mut m, config.limit, |s| {
        let mig = s.migrate();
        mig.total_workers > 0 && mig.workers_done == mig.total_workers
    });
    assert_ne!(status, RunStatus::StepLimit, "storm run hit the step guard");
    let report = AppReport::extract("migration-storm", &m);
    let s = m.shared();
    let mig = s.migrate();
    assert_eq!(
        mig.workers_done, mig.total_workers,
        "storm did not finish before {} (status {:?})",
        config.limit, status
    );
    MigrationOutcome {
        migrations: s.kernel().stats.page_migrations,
        workers_done: mig.workers_done,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machtlb_core::KernelConfig;
    use machtlb_sim::{CostModel, Time, Topology};

    fn storm_config(n_cpus: usize, topology: Option<Topology>, seed: u64) -> RunConfig {
        RunConfig {
            n_cpus,
            seed,
            costs: CostModel::multimax(),
            kconfig: KernelConfig {
                topology,
                ..KernelConfig::default()
            },
            device_period: None,
            timer_flush_period: Dur::millis(5),
            limit: Time::from_micros(60_000_000),
        }
    }

    #[test]
    fn local_storm_on_a_flat_machine_migrates_and_stays_consistent() {
        let out = run_migration_storm(
            &storm_config(8, None, 11),
            &MigrationStormConfig {
                workers_per_node: 4,
                pages_per_worker: 3,
                migrations_per_worker: 5,
                ..MigrationStormConfig::default()
            },
        );
        assert!(out.report.consistent, "oracle violations");
        assert_eq!(out.workers_done, 4);
        assert_eq!(out.migrations, 4 * 5);
        assert_eq!(
            out.report.stats.ipis_remote, 0,
            "a flat machine has no remote IPIs"
        );
    }

    #[test]
    fn cross_node_storm_pays_remote_traffic() {
        let topo = Topology::numa(2, 4, Dur::micros(2));
        let out = run_migration_storm(
            &storm_config(8, Some(topo), 12),
            &MigrationStormConfig {
                workers_per_node: 2,
                pages_per_worker: 3,
                migrations_per_worker: 4,
                cross_node: true,
            },
        );
        assert!(out.report.consistent, "oracle violations");
        assert_eq!(out.migrations, 4 * 4);
        assert!(
            out.report.stats.remote_lock_refs > 0,
            "cross-node workers touch remote lock words"
        );
    }

    #[test]
    fn local_storm_on_numa_keeps_lock_traffic_on_node() {
        let topo = Topology::numa(2, 4, Dur::micros(2));
        let out = run_migration_storm(
            &storm_config(8, Some(topo), 13),
            &MigrationStormConfig {
                workers_per_node: 2,
                pages_per_worker: 3,
                migrations_per_worker: 4,
                cross_node: false,
            },
        );
        assert!(out.report.consistent);
        assert_eq!(
            out.report.stats.remote_lock_refs, 0,
            "same-node workers never cross the interconnect for the pmap lock"
        );
    }

    #[test]
    fn autonuma_rehomes_a_pmap_to_its_users() {
        // Build a 2-node machine; home a pmap on node 0 but mark it in use
        // only on node 1's processors. One balancing pass must rehome it.
        let topo = Topology::numa(2, 4, Dur::micros(2));
        let config = storm_config(8, Some(topo), 14);
        let mut m = crate::harness::build_workload_machine(&config, AppShared::None);
        let task = {
            let s = m.shared_mut();
            let (k, vm) = s.kernel_and_vm();
            vm.create_task_on(k, 0)
        };
        let pmap = m.shared().vm().pmap_of(task);
        {
            let k = m.shared_mut().kernel_mut();
            for c in [4u32, 5, 6] {
                k.pmaps
                    .get_mut(pmap)
                    .mark_in_use(machtlb_sim::CpuId::new(c));
            }
        }
        install_autonuma(&mut m, CpuId::new(0), AutoNumaConfig::default());
        let _ = m.run_bounded(Time::from_micros(50_000), 10_000_000);
        let s = m.shared();
        assert_eq!(
            s.kernel().pmaps.get(pmap).home(),
            1,
            "the balancer moves the pmap to its users' node"
        );
        assert!(s.kernel().stats.page_migrations > 0);
        assert!(s.kernel().node_stats[1].page_migrations_in > 0);
    }
}
