//! The pageout daemon.
//!
//! "Pageout does cause shootdowns, but the overhead of actually performing
//! the pageout is much greater than the overhead of the associated
//! shootdown" (Section 5). The daemon models the classic clock algorithm
//! over user pmaps: a scan pass ages mappings by clearing their referenced
//! bits (a rights-preserving pmap operation needing no shootdown), and a
//! later pass evicts mappings whose referenced bit stayed clear — a
//! `pmap_remove` that *does* shoot down every processor using the pmap.
//! Dirty victims are written out first (the dominant cost the paper notes).
//!
//! Evicted pages stay resident in their VM object, so a later touch simply
//! refaults them back in: clean pageout, which is all the shootdown
//! behaviour needs.

use machtlb_core::{drive, Driven, HasKernel, PmapOp, PmapOpProcess};
use machtlb_pmap::{PageRange, PmapId, Vpn};
use machtlb_sim::{Ctx, Dur, Process, Step};

use crate::state::WlState;

/// Pageout daemon parameters.
#[derive(Clone, Debug)]
pub struct PageoutConfig {
    /// Sleep between scan activations.
    pub period: Dur,
    /// Page-table entries examined per activation.
    pub batch: usize,
}

impl Default for PageoutConfig {
    fn default() -> PageoutConfig {
        PageoutConfig {
            period: Dur::millis(3),
            batch: 32,
        }
    }
}

#[derive(Debug)]
enum PPhase {
    Sleep,
    Scan,
    Write { pages: u64 },
    Op(Box<PmapOpProcess>),
}

/// The daemon thread: enqueue it on a processor via
/// [`enqueue_thread`](crate::enqueue_thread) (it never exits; runs are
/// bounded by the workload's completion).
#[derive(Debug)]
pub struct PageoutDaemon {
    cfg: PageoutConfig,
    phase: PPhase,
    /// Round-robin position: (pmap id, vpn cursor).
    pmap_cursor: u32,
    vpn_cursor: u64,
    /// Work discovered by the current scan.
    aging: Vec<Vpn>,
    victims: Vec<(Vpn, bool)>,
    current_pmap: Option<PmapId>,
    /// Pages the in-flight remove operation evicts.
    evicting: u64,
}

impl PageoutDaemon {
    /// Creates the daemon.
    pub fn new(cfg: PageoutConfig) -> PageoutDaemon {
        PageoutDaemon {
            cfg,
            phase: PPhase::Sleep,
            pmap_cursor: 1,
            vpn_cursor: 0,
            aging: Vec::new(),
            victims: Vec::new(),
            current_pmap: None,
            evicting: 0,
        }
    }

    /// Examines the next batch of one user pmap's valid entries, dividing
    /// them into aging work (referenced) and eviction victims (not
    /// referenced; dirty flag carried along).
    fn scan(&mut self, ctx: &mut Ctx<'_, WlState, ()>) -> Dur {
        let kernel = ctx.shared.kernel();
        let n_pmaps = kernel.pmaps.len() as u32;
        if n_pmaps <= 1 {
            return ctx.costs().local_op;
        }
        if self.pmap_cursor >= n_pmaps {
            self.pmap_cursor = 1;
        }
        let pmap_id = PmapId::new(self.pmap_cursor);
        let table = kernel.pmaps.get(pmap_id).table();
        self.aging.clear();
        self.victims.clear();
        let window = PageRange::new(
            Vpn::new(self.vpn_cursor),
            machtlb_pmap::VPN_SPAN - self.vpn_cursor,
        );
        let mut examined = 0;
        let mut last = None;
        for (vpn, pte) in table.valid_in(window) {
            if examined == self.cfg.batch {
                break;
            }
            examined += 1;
            last = Some(vpn);
            if pte.referenced {
                self.aging.push(vpn);
            } else {
                self.victims.push((vpn, pte.modified));
            }
        }
        match last {
            Some(vpn) if examined == self.cfg.batch => {
                self.vpn_cursor = vpn.raw() + 1;
            }
            _ => {
                // Wrapped this pmap: move to the next one.
                self.vpn_cursor = 0;
                self.pmap_cursor += 1;
            }
        }
        self.current_pmap = Some(pmap_id);
        // Reading each entry costs a cached read (the walk structures stay
        // warm in the daemon).
        ctx.costs().local_op * 4 + ctx.costs().cache_read * examined.max(1) as u64
    }
}

impl Process<WlState, ()> for PageoutDaemon {
    fn step(&mut self, ctx: &mut Ctx<'_, WlState, ()>) -> Step {
        match &mut self.phase {
            PPhase::Sleep => {
                self.phase = PPhase::Scan;
                Step::Park(Some(ctx.now + self.cfg.period))
            }
            PPhase::Scan => {
                let cost = self.scan(ctx);
                let pmap = self.current_pmap;
                // Aging first, one rights-preserving pass per page run; the
                // whole batch's aging is cheap enough to queue as single
                // ops back to back.
                if let (Some(pmap), Some(&vpn)) = (pmap, self.aging.first()) {
                    // Consecutive pages age in one range operation; a
                    // fragmented batch ages its first page and lets the
                    // next scan continue.
                    let contiguous = self.aging.windows(2).all(|w| w[1].raw() == w[0].raw() + 1);
                    let count = if contiguous {
                        self.aging.len() as u64
                    } else {
                        1
                    };
                    let range = PageRange::new(vpn, count);
                    self.aging.clear();
                    self.phase = PPhase::Op(Box::new(PmapOpProcess::new(
                        pmap,
                        PmapOp::ClearRefBits { range },
                    )));
                    return Step::Run(cost);
                }
                if let Some((_, dirty)) = self.victims.first().copied() {
                    let pages = self.victims.len() as u64;
                    self.phase = if dirty {
                        PPhase::Write { pages }
                    } else {
                        self.begin_evict(pages)
                    };
                    return Step::Run(cost);
                }
                self.phase = PPhase::Sleep;
                Step::Run(cost)
            }
            PPhase::Write { pages } => {
                // Write the dirty victims "to disk" before dropping their
                // mappings — the cost that dwarfs the shootdown.
                let pages = *pages;
                ctx.shared.kernel_mut().stats.pageout_writes += pages;
                let cost = ctx.costs().page_copy * pages;
                self.phase = self.begin_evict(pages);
                Step::Run(cost)
            }
            PPhase::Op(op) => match drive(op.as_mut(), ctx) {
                Driven::Yield(s) => s,
                Driven::Finished(d) => {
                    if self.evicting > 0 {
                        ctx.shared.kernel_mut().stats.pageouts += self.evicting;
                        self.evicting = 0;
                    }
                    self.phase = PPhase::Sleep;
                    Step::Run(d)
                }
            },
        }
    }

    fn label(&self) -> &'static str {
        "pageout-daemon"
    }
}

impl PageoutDaemon {
    /// Plans the eviction of the scan's victims: contiguous victims
    /// coalesce into one remove; a fragmented batch evicts its first page
    /// and lets the next scan continue.
    fn begin_evict(&mut self, _pages: u64) -> PPhase {
        let pmap = self.current_pmap.expect("victims imply a scanned pmap");
        let vpns: Vec<Vpn> = self.victims.drain(..).map(|(v, _)| v).collect();
        let contiguous = vpns.windows(2).all(|w| w[1].raw() == w[0].raw() + 1);
        let range = if contiguous {
            PageRange::new(vpns[0], vpns.len() as u64)
        } else {
            PageRange::single(vpns[0])
        };
        self.evicting = range.count();
        PPhase::Op(Box::new(PmapOpProcess::new(pmap, PmapOp::Remove { range })))
    }
}

/// Installs the daemon on `cpu` of a freshly built machine (before `run`).
pub fn install_pageout(
    m: &mut crate::harness::WlMachine,
    cpu: machtlb_sim::CpuId,
    cfg: PageoutConfig,
) {
    let daemon =
        crate::thread::ThreadShell::new(machtlb_vm::TaskId::KERNEL, PageoutDaemon::new(cfg))
            .with_label("pageout-daemon");
    m.shared_mut().push_thread(cpu, Box::new(daemon));
}

/// Counts evictions by diffing the kernel counter before/after; helper for
/// reports.
pub fn evictions(m: &crate::harness::WlMachine) -> u64 {
    m.shared().kernel().stats.pageouts
}
