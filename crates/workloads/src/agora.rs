//! The Agora shortest-path search.
//!
//! A "double ended wavefront-based shortest path search program based on
//! the Agora system" using "shared write-once memory for communication
//! among the tasks performing the search", run 15-way parallel
//! (Section 5.2). Its shootdown signature is bimodal (Section 7.3): large
//! kernel shootdowns (11–15 processors) while the setup phase allocates
//! memory with every worker already spinning, then only small ones (1–4
//! processors) between search runs once "it has allocated the memory
//! internally".

use machtlb_core::{drive, Driven, HasKernel, MemOp, SpinMode};
use machtlb_pmap::{Vaddr, Vpn, PAGE_SIZE};
use machtlb_sim::{BlockOn, CpuId, Ctx, Dur, Process, RunStatus, Step, WaitChannel};
use machtlb_vm::{
    HasVm, TaskId, UserAccess, UserAccessResult, UserAccessStep, VmOp, VmOpProcess, USER_SPAN_START,
};
use rand::Rng;

use crate::harness::{build_workload_machine, AppReport, RunConfig, WlMachine};
use crate::kernelops::KernelBufferOp;
use crate::state::{AppShared, WlState};
use crate::thread::{enqueue_thread, ThreadShell};

/// Search parameters.
#[derive(Clone, Debug)]
pub struct AgoraConfig {
    /// Worker tasks (the 15-way parallel search).
    pub workers: u32,
    /// Successive search runs over the same allocated memory.
    pub runs: u32,
    /// Kernel allocations during setup (each a touched multi-page buffer).
    pub setup_ops: u32,
    /// Pages per setup buffer, sampled uniformly.
    pub setup_buffer_pages: (u64, u64),
    /// Small kernel cycles between runs.
    pub inter_run_ops: u32,
    /// Wavefront steps per worker per run.
    pub wave_steps: u32,
    /// Compute chunks (50 µs) per wavefront step, sampled uniformly.
    pub compute_chunks: (u32, u32),
    /// Write-once region pages per worker.
    pub region_pages: u64,
}

impl Default for AgoraConfig {
    fn default() -> AgoraConfig {
        AgoraConfig {
            workers: 15,
            runs: 5,
            setup_ops: 16,
            setup_buffer_pages: (4, 12),
            inter_run_ops: 2,
            wave_steps: 24,
            compute_chunks: (4, 20),
            region_pages: 8,
        }
    }
}

/// Search coordination state.
#[derive(Debug, Default)]
pub struct AgoraShared {
    /// One task per worker.
    pub tasks: Vec<TaskId>,
    /// Set when setup-phase allocation is complete.
    pub setup_done: bool,
    /// Workers still running the current search.
    pub workers_alive: u32,
    /// Completed runs.
    pub runs_done: u32,
    /// When the search finished all runs.
    pub completed_at: Option<machtlb_sim::Time>,
}

const REGION_BASE: u64 = USER_SPAN_START + 0x40;

/// Notified when the master sets [`AgoraShared::setup_done`] (workload
/// `0x5` key space; see `machtlb_sim::event`'s channel registry).
const SETUP_CHANNEL: WaitChannel = WaitChannel::new(0x5_0000_0000);
/// Notified when the last worker of a run exits.
const RUN_CHANNEL: WaitChannel = WaitChannel::new(0x5_0000_0001);

#[derive(Debug)]
enum WPhase {
    SpinSetup,
    Step { left: u32, computing: u32 },
    WriteCell { left: u32, cell: u64 },
}

/// One search worker: spins until setup completes, then runs its
/// wavefront steps, writing its write-once cells.
#[derive(Debug)]
struct Worker {
    cfg: AgoraConfig,
    task: TaskId,
    phase: WPhase,
    access: Option<UserAccess>,
    cells_written: u64,
}

impl Process<WlState, ()> for Worker {
    fn step(&mut self, ctx: &mut Ctx<'_, WlState, ()>) -> Step {
        match &mut self.phase {
            WPhase::SpinSetup => {
                let spin = ctx.costs().spin_iter + ctx.costs().cache_read;
                if ctx.shared.agora().setup_done {
                    self.phase = WPhase::Step {
                        left: self.cfg.wave_steps,
                        computing: 0,
                    };
                } else if ctx.shared.kernel().config.spin_mode == SpinMode::Event {
                    return Step::Block(BlockOn::one(SETUP_CHANNEL, spin));
                }
                // Busy-polling: this worker stays active and is exactly
                // what the setup-phase shootdowns hit.
                Step::Run(spin)
            }
            WPhase::Step { left, computing } => {
                if *computing > 0 {
                    *computing -= 1;
                    return Step::Run(Dur::micros(50));
                }
                if *left == 0 {
                    ctx.shared.agora_mut().workers_alive -= 1;
                    if ctx.shared.agora().workers_alive == 0 {
                        ctx.notify(RUN_CHANNEL);
                    }
                    return Step::Done(ctx.costs().local_op);
                }
                let left_now = *left - 1;
                let cell = self.cells_written % (self.cfg.region_pages * 8);
                self.cells_written += 1;
                self.phase = WPhase::WriteCell {
                    left: left_now,
                    cell,
                };
                Step::Run(ctx.costs().local_op)
            }
            WPhase::WriteCell { left, cell } => {
                let left = *left;
                let va = Vaddr::new(REGION_BASE * PAGE_SIZE + *cell * 512);
                let task = self.task;
                let acc = self
                    .access
                    .get_or_insert_with(|| UserAccess::new(task, va, MemOp::Write(1)));
                match acc.step(ctx) {
                    UserAccessStep::Yield(s) => s,
                    UserAccessStep::Finished(UserAccessResult::Ok(_), d) => {
                        self.access = None;
                        let (lo, hi) = self.cfg.compute_chunks;
                        let chunks = ctx.rng().gen_range(lo..=hi);
                        self.phase = WPhase::Step {
                            left,
                            computing: chunks,
                        };
                        Step::Run(d)
                    }
                    UserAccessStep::Finished(UserAccessResult::Killed, _) => {
                        unreachable!("the write-once region stays mapped")
                    }
                }
            }
        }
    }

    fn label(&self) -> &'static str {
        "agora-worker"
    }
}

#[derive(Debug)]
enum CPhase {
    CreateTasks {
        next: u32,
    },
    AllocRegions {
        next: u32,
    },
    SpawnSpinners {
        next: u32,
    },
    Setup {
        op: u32,
        current: Option<KernelBufferOp>,
    },
    FinishSetup,
    WaitRun,
    InterRun {
        op: u32,
        current: Option<KernelBufferOp>,
    },
    Respawn {
        next: u32,
    },
}

/// The search master: allocates everything (causing the setup-phase
/// shootdowns against the spinning workers), then drives the repeated
/// searches.
#[derive(Debug)]
struct Master {
    cfg: AgoraConfig,
    phase: CPhase,
    op: Option<VmOpProcess>,
}

impl Process<WlState, ()> for Master {
    fn step(&mut self, ctx: &mut Ctx<'_, WlState, ()>) -> Step {
        match &mut self.phase {
            CPhase::CreateTasks { next } => {
                if *next == self.cfg.workers {
                    self.phase = CPhase::AllocRegions { next: 0 };
                    return Step::Run(ctx.costs().local_op);
                }
                let task = {
                    let (k, vm) = ctx.shared.kernel_and_vm();
                    vm.create_task(k)
                };
                ctx.shared.agora_mut().tasks.push(task);
                *next += 1;
                Step::Run(ctx.costs().local_op * 16)
            }
            CPhase::AllocRegions { next } => {
                if *next == self.cfg.workers {
                    self.phase = CPhase::SpawnSpinners { next: 0 };
                    return Step::Run(ctx.costs().local_op);
                }
                let idx = *next as usize;
                let task = ctx.shared.agora().tasks[idx];
                let pages = self.cfg.region_pages;
                let op = self.op.get_or_insert_with(|| {
                    VmOpProcess::new(VmOp::Allocate {
                        task,
                        pages,
                        at: Some(Vpn::new(REGION_BASE)),
                    })
                });
                match drive(op, ctx) {
                    Driven::Yield(s) => s,
                    Driven::Finished(d) => {
                        self.op = None;
                        self.phase = CPhase::AllocRegions { next: *next + 1 };
                        Step::Run(d)
                    }
                }
            }
            CPhase::SpawnSpinners { next } => {
                if *next == self.cfg.workers {
                    ctx.shared.agora_mut().workers_alive = self.cfg.workers;
                    self.phase = CPhase::Setup {
                        op: 0,
                        current: None,
                    };
                    return Step::Run(ctx.costs().local_op);
                }
                let idx = *next as usize;
                let task = ctx.shared.agora().tasks[idx];
                let n_cpus = ctx.n_cpus() as u32;
                let target = CpuId::new(1 + (*next % (n_cpus - 1)));
                let body = Worker {
                    cfg: self.cfg.clone(),
                    task,
                    phase: WPhase::SpinSetup,
                    access: None,
                    cells_written: 0,
                };
                let cost = enqueue_thread(
                    ctx,
                    target,
                    Box::new(ThreadShell::new(task, body).with_label("agora-worker")),
                );
                self.phase = CPhase::SpawnSpinners { next: *next + 1 };
                Step::Run(cost)
            }
            CPhase::Setup { op, current } => {
                if let Some(k) = current.as_mut() {
                    return match drive(k, ctx) {
                        Driven::Yield(s) => s,
                        Driven::Finished(d) => {
                            *current = None;
                            Step::Run(d)
                        }
                    };
                }
                if *op == self.cfg.setup_ops {
                    self.phase = CPhase::FinishSetup;
                    return Step::Run(ctx.costs().local_op);
                }
                let (lo, hi) = self.cfg.setup_buffer_pages;
                let pages = ctx.rng().gen_range(lo..=hi);
                *current = Some(KernelBufferOp::new(pages, pages));
                *op += 1;
                Step::Run(ctx.costs().local_op)
            }
            CPhase::FinishSetup => {
                ctx.shared.agora_mut().setup_done = true;
                ctx.notify(SETUP_CHANNEL);
                self.phase = CPhase::WaitRun;
                Step::Run(ctx.costs().local_op + ctx.bus_write())
            }
            CPhase::WaitRun => {
                if ctx.shared.agora().workers_alive == 0 {
                    let now = ctx.now;
                    ctx.shared.agora_mut().runs_done += 1;
                    if ctx.shared.agora().runs_done == self.cfg.runs {
                        ctx.shared.agora_mut().completed_at = Some(now);
                        return Step::Done(ctx.costs().local_op);
                    }
                    self.phase = CPhase::InterRun {
                        op: 0,
                        current: None,
                    };
                    Step::Run(ctx.costs().local_op)
                } else if ctx.shared.kernel().config.spin_mode == SpinMode::Event {
                    Step::Block(BlockOn::one(RUN_CHANNEL, Dur::micros(300)))
                } else {
                    Step::Run(Dur::micros(300))
                }
            }
            CPhase::InterRun { op, current } => {
                // Between runs, only the master (and at most a straggling
                // dispatcher) is active: these small touched buffers are
                // the 1–4 processor shootdowns of the bimodal split.
                if let Some(k) = current.as_mut() {
                    return match drive(k, ctx) {
                        Driven::Yield(s) => s,
                        Driven::Finished(d) => {
                            *current = None;
                            Step::Run(d)
                        }
                    };
                }
                if *op == self.cfg.inter_run_ops {
                    self.phase = CPhase::Respawn { next: 0 };
                    return Step::Run(ctx.costs().local_op);
                }
                *current = Some(KernelBufferOp::new(1, 1));
                *op += 1;
                Step::Run(ctx.costs().local_op)
            }
            CPhase::Respawn { next } => {
                if *next == self.cfg.workers {
                    ctx.shared.agora_mut().workers_alive = self.cfg.workers;
                    self.phase = CPhase::WaitRun;
                    return Step::Run(ctx.costs().local_op);
                }
                let idx = *next as usize;
                let task = ctx.shared.agora().tasks[idx];
                let n_cpus = ctx.n_cpus() as u32;
                let target = CpuId::new(1 + (*next % (n_cpus - 1)));
                // Memory already allocated: workers go straight to their
                // wavefront steps.
                let body = Worker {
                    cfg: self.cfg.clone(),
                    task,
                    phase: WPhase::Step {
                        left: self.cfg.wave_steps,
                        computing: 0,
                    },
                    access: None,
                    cells_written: 0,
                };
                let cost = enqueue_thread(
                    ctx,
                    target,
                    Box::new(ThreadShell::new(task, body).with_label("agora-worker")),
                );
                self.phase = CPhase::Respawn { next: *next + 1 };
                Step::Run(cost)
            }
        }
    }

    fn label(&self) -> &'static str {
        "agora-master"
    }
}

/// Installs the search into a fresh workload machine.
pub fn install_agora(m: &mut WlMachine, cfg: &AgoraConfig) {
    let s = m.shared_mut();
    s.app = AppShared::Agora(AgoraShared::default());
    let master = ThreadShell::new(
        TaskId::KERNEL,
        Master {
            cfg: cfg.clone(),
            phase: CPhase::CreateTasks { next: 0 },
            op: None,
        },
    )
    .with_label("agora-master");
    s.push_thread(CpuId::new(0), Box::new(master));
}

/// Runs the search and returns its report.
///
/// # Panics
///
/// Panics if the run does not complete within the configured limit.
pub fn run_agora(config: &RunConfig, cfg: &AgoraConfig) -> AppReport {
    let mut m = build_workload_machine(config, AppShared::None);
    install_agora(&mut m, cfg);
    let status =
        crate::harness::run_until_done(&mut m, config.limit, |s| s.agora().completed_at.is_some());
    assert_ne!(status, RunStatus::StepLimit, "agora hit the step guard");
    assert_eq!(
        m.shared().agora().runs_done,
        cfg.runs,
        "agora did not finish before {} (status {:?})",
        config.limit,
        status
    );
    let mut report = AppReport::extract("Agora", &m);
    if let Some(t) = m.shared().agora().completed_at {
        report.runtime = t.duration_since(machtlb_sim::Time::ZERO);
    }
    report
}
