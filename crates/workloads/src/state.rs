//! Workload shared state: the system image plus per-application
//! coordination structures and per-processor run queues.

use std::collections::VecDeque;
use std::fmt;

use machtlb_core::{HasKernel, KernelState};
use machtlb_sim::{CpuId, Process};
use machtlb_vm::{HasVm, SystemState, VmState};

use crate::agora::AgoraShared;
use crate::camelot::CamelotShared;
use crate::machbuild::MachBuildShared;
use crate::migrate::MigrateShared;
use crate::parthenon::ParthenonShared;
use crate::tester::TesterShared;

/// A workload thread: any process over the workload state.
pub type ThreadBox = Box<dyn Process<WlState, ()>>;

/// Application coordination state (exactly one variant per run).
#[derive(Debug, Default)]
pub enum AppShared {
    /// No application coordination (bring-up and unit tests).
    #[default]
    None,
    /// The Section 5.1 consistency tester.
    Tester(TesterShared),
    /// The parallel kernel build.
    MachBuild(MachBuildShared),
    /// The Parthenon theorem prover.
    Parthenon(ParthenonShared),
    /// The Agora shortest-path search.
    Agora(AgoraShared),
    /// The Camelot transaction system.
    Camelot(CamelotShared),
    /// The page-migration storm.
    Migrate(MigrateShared),
}

macro_rules! app_accessors {
    ($get:ident, $get_mut:ident, $variant:ident, $ty:ty) => {
        /// Accesses the application state.
        ///
        /// # Panics
        ///
        /// Panics if a different application is installed.
        pub fn $get(&self) -> &$ty {
            match &self.app {
                AppShared::$variant(s) => s,
                other => panic!(
                    concat!("expected ", stringify!($variant), " state, found {:?}"),
                    std::mem::discriminant(other)
                ),
            }
        }

        /// Mutable access to the application state.
        ///
        /// # Panics
        ///
        /// Panics if a different application is installed.
        pub fn $get_mut(&mut self) -> &mut $ty {
            match &mut self.app {
                AppShared::$variant(s) => s,
                other => panic!(
                    concat!("expected ", stringify!($variant), " state, found {:?}"),
                    std::mem::discriminant(other)
                ),
            }
        }
    };
}

/// The machine's shared state for workload runs: system image, run queues,
/// and application coordination.
pub struct WlState {
    /// The kernel + VM image.
    pub sys: SystemState,
    /// Per-processor run queues of ready threads (only the owning
    /// processor pops; anyone may push).
    pub run_queues: Vec<VecDeque<ThreadBox>>,
    /// Application coordination.
    pub app: AppShared,
    /// A general-purpose completion latch for bespoke harnesses and tests
    /// (apps with structured state use their own `completed_at` instead).
    pub done_flag: bool,
    /// A general-purpose counter for bespoke harnesses and tests.
    pub scratch: u64,
}

impl WlState {
    /// Wraps a system state with empty run queues.
    pub fn new(sys: SystemState, app: AppShared) -> WlState {
        let n = sys.kernel.n_cpus;
        WlState {
            sys,
            run_queues: (0..n).map(|_| VecDeque::new()).collect(),
            app,
            done_flag: false,
            scratch: 0,
        }
    }

    /// Pushes a ready thread onto `cpu`'s run queue. The caller should
    /// also send a [`RESCHED_VECTOR`](machtlb_core::RESCHED_VECTOR) poke
    /// so an idle dispatcher wakes (see
    /// [`enqueue_thread`](crate::enqueue_thread)).
    pub fn push_thread(&mut self, cpu: CpuId, thread: ThreadBox) {
        self.run_queues[cpu.index()].push_back(thread);
    }

    /// Pops the next ready thread for `cpu`.
    pub fn pop_thread(&mut self, cpu: CpuId) -> Option<ThreadBox> {
        self.run_queues[cpu.index()].pop_front()
    }

    /// Ready threads queued for `cpu`.
    pub fn queue_len(&self, cpu: CpuId) -> usize {
        self.run_queues[cpu.index()].len()
    }

    app_accessors!(tester, tester_mut, Tester, TesterShared);
    app_accessors!(machbuild, machbuild_mut, MachBuild, MachBuildShared);
    app_accessors!(parthenon, parthenon_mut, Parthenon, ParthenonShared);
    app_accessors!(agora, agora_mut, Agora, AgoraShared);
    app_accessors!(camelot, camelot_mut, Camelot, CamelotShared);
    app_accessors!(migrate, migrate_mut, Migrate, MigrateShared);
}

impl HasKernel for WlState {
    fn kernel(&self) -> &KernelState {
        &self.sys.kernel
    }
    fn kernel_mut(&mut self) -> &mut KernelState {
        &mut self.sys.kernel
    }
}

impl HasVm for WlState {
    fn vm(&self) -> &VmState {
        &self.sys.vm
    }
    fn vm_mut(&mut self) -> &mut VmState {
        &mut self.sys.vm
    }
    fn kernel_and_vm(&mut self) -> (&mut KernelState, &mut VmState) {
        (&mut self.sys.kernel, &mut self.sys.vm)
    }
}

impl fmt::Debug for WlState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WlState")
            .field("sys", &self.sys)
            .field(
                "queued_threads",
                &self.run_queues.iter().map(VecDeque::len).sum::<usize>(),
            )
            .finish_non_exhaustive()
    }
}
