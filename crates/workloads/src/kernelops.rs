//! Kernel-memory activity: the source of kernel-pmap shootdowns.
//!
//! The kernel pmap is "in use" on every processor, so removing or
//! downgrading a mapped kernel page must shoot down every non-idle
//! processor in the machine. The applications' kernel activity (file
//! buffers, message buffers, internal copy-on-write) is modelled as
//! allocate–touch–deallocate cycles on the kernel task's address space; an
//! untouched buffer never enters the pmap, so with lazy evaluation its
//! deallocation requires no shootdown at all (the Table 1 effect).

use machtlb_core::{drive, Driven, MemOp};
use machtlb_pmap::{PageRange, Vaddr, Vpn};
use machtlb_sim::{Ctx, Process, Step};
use machtlb_vm::{TaskId, UserAccess, UserAccessResult, UserAccessStep, VmOp, VmOpProcess};

use crate::state::WlState;

#[derive(Debug)]
enum KPhase {
    Allocate,
    Touch { next: u64 },
    Deallocate,
}

/// One kernel buffer cycle: allocate `pages` in a kernel address space,
/// write the first `touch` of them, deallocate. Embed and drive to
/// completion.
#[derive(Debug)]
pub struct KernelBufferOp {
    task: TaskId,
    pages: u64,
    touch: u64,
    phase: KPhase,
    base: Option<Vpn>,
    op: Option<VmOpProcess>,
    access: Option<UserAccess>,
}

impl KernelBufferOp {
    /// Creates a cycle over `pages` pages touching the first `touch`,
    /// in the machine-wide kernel address space.
    ///
    /// # Panics
    ///
    /// Panics if `touch > pages` or `pages` is zero.
    pub fn new(pages: u64, touch: u64) -> KernelBufferOp {
        KernelBufferOp::in_task(TaskId::KERNEL, pages, touch)
    }

    /// Like [`KernelBufferOp::new`] but against a specific backing task —
    /// a *pool* kernel region in the Section 8 restructuring, whose pmap
    /// is in use only on the pool's processors.
    ///
    /// # Panics
    ///
    /// Panics if `touch > pages` or `pages` is zero.
    pub fn in_task(task: TaskId, pages: u64, touch: u64) -> KernelBufferOp {
        assert!(pages > 0, "a kernel buffer needs pages");
        assert!(touch <= pages, "cannot touch more pages than allocated");
        KernelBufferOp {
            task,
            pages,
            touch,
            phase: KPhase::Allocate,
            base: None,
            op: None,
            access: None,
        }
    }
}

impl Process<WlState, ()> for KernelBufferOp {
    fn step(&mut self, ctx: &mut Ctx<'_, WlState, ()>) -> Step {
        match self.phase {
            KPhase::Allocate => {
                let pages = self.pages;
                let task = self.task;
                let op = self.op.get_or_insert_with(|| {
                    VmOpProcess::new(VmOp::Allocate {
                        task,
                        pages,
                        at: None,
                    })
                });
                match drive(op, ctx) {
                    Driven::Yield(s) => s,
                    Driven::Finished(d) => {
                        assert!(!op.failed(), "kernel address space exhausted");
                        self.base = op.outcome().allocated;
                        self.op = None;
                        self.phase = KPhase::Touch { next: 0 };
                        Step::Run(d)
                    }
                }
            }
            KPhase::Touch { next } => {
                if next >= self.touch {
                    self.phase = KPhase::Deallocate;
                    return Step::Run(ctx.costs().local_op);
                }
                let base = self.base.expect("allocated");
                let va = Vaddr::new((base.raw() + next) * machtlb_pmap::PAGE_SIZE);
                let task = self.task;
                let acc = self
                    .access
                    .get_or_insert_with(|| UserAccess::new(task, va, MemOp::Write(1)));
                match acc.step(ctx) {
                    UserAccessStep::Yield(s) => s,
                    UserAccessStep::Finished(UserAccessResult::Ok(_), d) => {
                        self.access = None;
                        self.phase = KPhase::Touch { next: next + 1 };
                        Step::Run(d)
                    }
                    UserAccessStep::Finished(UserAccessResult::Killed, _) => {
                        unreachable!("the kernel buffer is read-write while it exists")
                    }
                }
            }
            KPhase::Deallocate => {
                let base = self.base.expect("allocated");
                let pages = self.pages;
                let task = self.task;
                let op = self.op.get_or_insert_with(|| {
                    VmOpProcess::new(VmOp::Deallocate {
                        task,
                        range: PageRange::new(base, pages),
                    })
                });
                match drive(op, ctx) {
                    Driven::Yield(s) => s,
                    Driven::Finished(d) => {
                        self.op = None;
                        Step::Done(d)
                    }
                }
            }
        }
    }

    fn label(&self) -> &'static str {
        "kernel-buffer-op"
    }
}
