//! Log-bucketed latency histograms.
//!
//! The paper reports its time distributions as mean ± std plus
//! median/10th/90th percentiles because they are "not normal in the
//! statistical sense" (Section 7.3) — heavily right-skewed, with a long
//! tail of interrupted shootdowns. A histogram with power-of-two buckets
//! captures that shape compactly at any scale: nanosecond lock handoffs
//! and millisecond full-machine shootdowns land in the same structure
//! without choosing bin widths up front.

use std::fmt;
use std::fmt::Write as _;

use machtlb_sim::Dur;

/// A histogram of durations with logarithmic (power-of-two nanosecond)
/// buckets: bucket 0 counts `[0, 1)` ns, bucket `i >= 1` counts
/// `[2^(i-1), 2^i)` ns.
///
/// # Examples
///
/// ```
/// use machtlb_xpr::Histogram;
/// use machtlb_sim::Dur;
///
/// let mut h = Histogram::new();
/// h.record(Dur::micros(480));
/// h.record(Dur::micros(520));
/// h.record(Dur::micros(870)); // the long tail
/// assert_eq!(h.count(), 3);
/// assert!(h.render(30).contains('#'));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    total: Dur,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// The bucket index a duration falls into.
    fn bucket_of(d: Dur) -> usize {
        let ns = d.as_nanos();
        match ns {
            0 => 0,
            _ => 64 - ns.leading_zeros() as usize,
        }
    }

    /// The half-open nanosecond range `[lo, hi)` of bucket `i`.
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        if i == 0 {
            (0, 1)
        } else {
            (1 << (i - 1), 1 << i)
        }
    }

    /// Records one duration.
    pub fn record(&mut self, d: Dur) {
        let b = Self::bucket_of(d);
        if self.buckets.len() <= b {
            self.buckets.resize(b + 1, 0);
        }
        self.buckets[b] += 1;
        self.count += 1;
        self.total += d;
    }

    /// Builds a histogram from a slice of durations.
    pub fn of(samples: &[Dur]) -> Histogram {
        let mut h = Histogram::new();
        for &d in samples {
            h.record(d);
        }
        h
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded durations.
    pub fn total(&self) -> Dur {
        self.total
    }

    /// Counts per bucket, lowest first (trailing empty buckets trimmed).
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, &c) in other.buckets.iter().enumerate() {
            self.buckets[b] += c;
        }
        self.count += other.count;
        self.total += other.total;
    }

    /// Renders the occupied bucket range as ASCII bars, one line per
    /// bucket, labelled in microseconds. Empty histograms render to an
    /// empty string.
    pub fn render(&self, width: usize) -> String {
        let Some(first) = self.buckets.iter().position(|&c| c > 0) else {
            return String::new();
        };
        let last = self.buckets.iter().rposition(|&c| c > 0).expect("first");
        let peak = self.buckets.iter().copied().max().unwrap_or(1).max(1);
        let mut out = String::new();
        for i in first..=last {
            let (lo, hi) = Self::bucket_bounds(i);
            let c = self.buckets[i];
            let bar = "#".repeat((c as usize * width).div_ceil(peak as usize).min(width));
            let _ = writeln!(
                out,
                "{:>10.1}-{:<10.1} us |{bar} {c}",
                lo as f64 / 1000.0,
                hi as f64 / 1000.0,
            );
        }
        out
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "histogram[{} samples over {} buckets]",
            self.count,
            self.buckets.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_powers_of_two() {
        assert_eq!(Histogram::bucket_bounds(0), (0, 1));
        assert_eq!(Histogram::bucket_bounds(1), (1, 2));
        assert_eq!(Histogram::bucket_bounds(11), (1024, 2048));
        let mut h = Histogram::new();
        h.record(Dur::nanos(0));
        h.record(Dur::nanos(1));
        h.record(Dur::nanos(1023));
        h.record(Dur::nanos(1024));
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[1], 1);
        assert_eq!(h.buckets()[10], 1, "1023 ns is in [512, 1024)");
        assert_eq!(h.buckets()[11], 1, "1024 ns is in [1024, 2048)");
    }

    #[test]
    fn every_sample_lands_in_its_bounds() {
        for ns in [0u64, 1, 2, 3, 7, 8, 100, 999, 1_000_000, u32::MAX as u64] {
            let b = Histogram::bucket_of(Dur::nanos(ns));
            let (lo, hi) = Histogram::bucket_bounds(b);
            assert!(lo <= ns && ns < hi, "{ns} ns not in [{lo}, {hi})");
        }
    }

    #[test]
    fn merge_adds_counts() {
        let a = Histogram::of(&[Dur::micros(1), Dur::micros(2)]);
        let mut b = Histogram::of(&[Dur::micros(500)]);
        b.merge(&a);
        assert_eq!(b.count(), 3);
        assert_eq!(b.total(), Dur::micros(503));
    }

    #[test]
    fn render_covers_occupied_range_only() {
        let h = Histogram::of(&[Dur::micros(480), Dur::micros(490), Dur::micros(870)]);
        let r = h.render(20);
        assert_eq!(r.lines().count(), 2, "two occupied buckets, adjacent");
        assert!(r.contains('#'));
        assert!(Histogram::new().render(20).is_empty());
    }
}
