//! Plain-text table rendering for the reproduction's reports.

use std::fmt;

/// A simple aligned text table, used by the bench harnesses to print the
/// paper's tables.
///
/// # Examples
///
/// ```
/// use machtlb_xpr::TextTable;
///
/// let mut t = TextTable::new(vec!["Application", "Events", "Mean Time"]);
/// t.add_row(vec!["Mach".into(), "7494".into(), "1109\u{b1}1272".into()]);
/// let s = t.to_string();
/// assert!(s.contains("Mach"));
/// assert!(s.lines().count() >= 3);
/// ```
#[derive(Clone, Debug)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> TextTable {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        assert!(!headers.is_empty(), "a table needs at least one column");
        TextTable {
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn add_row(&mut self, row: Vec<String>) -> &mut TextTable {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width {} != {} columns",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.chars().count());
            }
        }
        w
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:<width$}", width = widths[i])?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Builds the standard two-column counter table used for run-level
/// kernel counters (shootdowns taken, actions coalesced, epoch flushes).
///
/// # Examples
///
/// ```
/// use machtlb_xpr::counters_table;
///
/// let t = counters_table(&[("actions coalesced", 12), ("epoch flushes", 3)]);
/// assert_eq!(t.n_rows(), 2);
/// assert!(t.to_string().contains("epoch flushes"));
/// ```
pub fn counters_table(counters: &[(&str, u64)]) -> TextTable {
    let mut t = TextTable::new(vec!["counter", "value"]);
    for (name, value) in counters {
        t.add_row(vec![(*name).to_string(), value.to_string()]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligns_columns() {
        let mut t = TextTable::new(vec!["a", "bbbb"]);
        t.add_row(vec!["xxxxxx".into(), "y".into()]);
        let out = t.to_string();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a     "), "{out}");
        assert!(lines[2].starts_with("xxxxxx"), "{out}");
        assert_eq!(t.n_rows(), 1);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut t = TextTable::new(vec!["a"]);
        t.add_row(vec!["x".into(), "y".into()]);
    }
}
