//! The xpr circular event buffer.
//!
//! "The xpr package forms the basis of our instrumentation; it provides a
//! circular buffer of events including data arguments, event identifiers,
//! processor numbers and timestamps" (Section 6). The buffer can be turned
//! on and off at runtime, as the paper's utility programs do, and counts
//! events dropped while disabled or after wrap-around so a run can verify —
//! as the paper did — that "the event buffer ... was sized so that it would
//! never overflow during our test runs".

use std::fmt;

/// A fixed-capacity circular buffer of trace records.
///
/// # Examples
///
/// ```
/// use machtlb_xpr::XprBuffer;
///
/// let mut buf: XprBuffer<u32> = XprBuffer::new(2);
/// buf.record(1);
/// buf.record(2);
/// buf.record(3); // overwrites 1
/// assert_eq!(buf.iter().copied().collect::<Vec<_>>(), vec![2, 3]);
/// assert_eq!(buf.overwritten(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct XprBuffer<T> {
    slots: Vec<T>,
    /// Ring size, stored explicitly: `Vec::with_capacity` may over-allocate,
    /// and a derived `Clone` shrinks the vector's capacity to its length —
    /// either would silently change how many records the ring retains.
    capacity: usize,
    head: usize,
    len: usize,
    enabled: bool,
    recorded: u64,
    overwritten: u64,
    suppressed: u64,
}

impl<T> XprBuffer<T> {
    /// Creates an enabled buffer holding up to `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> XprBuffer<T> {
        assert!(capacity > 0, "xpr buffer needs capacity");
        XprBuffer {
            slots: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            len: 0,
            enabled: true,
            recorded: 0,
            overwritten: 0,
            suppressed: 0,
        }
    }

    /// Records an event (dropped silently if tracing is off).
    pub fn record(&mut self, event: T) {
        if !self.enabled {
            self.suppressed += 1;
            return;
        }
        self.recorded += 1;
        let cap = self.capacity;
        if self.slots.len() < cap {
            self.slots.push(event);
            self.len += 1;
        } else {
            self.slots[self.head] = event;
            self.head = (self.head + 1) % cap;
            self.overwritten += 1;
        }
    }

    /// Turns tracing on or off (the paper's `on`/`off` utilities). Returns
    /// the previous state.
    pub fn set_enabled(&mut self, enabled: bool) -> bool {
        std::mem::replace(&mut self.enabled, enabled)
    }

    /// Whether tracing is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Clears the buffer and counters (the paper's `reset` utility).
    pub fn reset(&mut self) {
        self.slots.clear();
        self.head = 0;
        self.len = 0;
        self.recorded = 0;
        self.overwritten = 0;
        self.suppressed = 0;
    }

    /// The ring size this buffer was created with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Iterates over retained records in record order (oldest to newest),
    /// not slot order: after a wrap the oldest retained record sits at
    /// `head`, where the next overwrite will land.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        let n = self.slots.len();
        (0..n).map(move |i| &self.slots[(self.head + i) % n])
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Records accepted while enabled (including any later overwritten).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Records lost to wrap-around. The evaluation methodology requires
    /// this to be zero for a valid run.
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }

    /// Records dropped because tracing was off.
    pub fn suppressed(&self) -> u64 {
        self.suppressed
    }
}

impl<T> fmt::Display for XprBuffer<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "xpr[{}/{} retained, {} recorded, {} overwritten, {}]",
            self.len,
            self.capacity,
            self.recorded,
            self.overwritten,
            if self.enabled { "on" } else { "off" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_until_capacity() {
        let mut b = XprBuffer::new(4);
        for i in 0..3 {
            b.record(i);
        }
        assert_eq!(b.iter().copied().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.overwritten(), 0);
    }

    #[test]
    fn wraps_and_counts_overwrites() {
        let mut b = XprBuffer::new(3);
        for i in 0..5 {
            b.record(i);
        }
        assert_eq!(b.iter().copied().collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(b.overwritten(), 2);
        assert_eq!(b.recorded(), 5);
    }

    #[test]
    fn disabled_buffer_suppresses() {
        let mut b = XprBuffer::new(3);
        b.record(1);
        assert!(b.set_enabled(false));
        b.record(2);
        assert_eq!(b.len(), 1);
        assert_eq!(b.suppressed(), 1);
        b.set_enabled(true);
        b.record(3);
        assert_eq!(b.iter().copied().collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn reset_clears_everything() {
        let mut b = XprBuffer::new(2);
        b.record(1);
        b.record(2);
        b.record(3);
        b.reset();
        assert!(b.is_empty());
        assert_eq!(b.recorded(), 0);
        assert_eq!(b.overwritten(), 0);
        b.record(9);
        assert_eq!(b.iter().copied().collect::<Vec<_>>(), vec![9]);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _: XprBuffer<u8> = XprBuffer::new(0);
    }

    #[test]
    fn iter_stays_in_record_order_across_many_wraps() {
        // Regression: the ring size must not depend on Vec::capacity(),
        // which is free to exceed the requested 5. After any number of
        // wraps, iteration yields exactly the newest 5 records, oldest
        // first (record order, not slot order).
        let mut b = XprBuffer::new(5);
        for i in 0..23 {
            b.record(i);
            let got: Vec<i32> = b.iter().copied().collect();
            let lo = (i + 1 - (i + 1).min(5)).max(0);
            assert_eq!(got, (lo..=i).collect::<Vec<_>>(), "after record {i}");
        }
        assert_eq!(b.overwritten(), 23 - 5);
    }

    #[test]
    fn clone_preserves_ring_capacity() {
        // Regression: a derived Clone clones the slot vector with capacity
        // possibly shrunk to its length; the explicit capacity field keeps
        // the clone behaving like the original.
        let mut b = XprBuffer::new(4);
        b.record(0);
        b.record(1);
        let mut c = b.clone();
        assert_eq!(c.capacity(), 4);
        for i in 2..6 {
            c.record(i);
        }
        assert_eq!(c.iter().copied().collect::<Vec<_>>(), vec![2, 3, 4, 5]);
        assert_eq!(c.overwritten(), 2, "clone wraps at the same size");
    }

    #[test]
    fn reset_clears_overwritten_and_suppressed_counters() {
        let mut b = XprBuffer::new(2);
        b.record(1);
        b.record(2);
        b.record(3); // overwrites
        b.set_enabled(false);
        b.record(4); // suppressed
        b.set_enabled(true);
        assert_eq!((b.overwritten(), b.suppressed()), (1, 1));
        b.reset();
        assert_eq!((b.overwritten(), b.suppressed()), (0, 0));
        assert_eq!(b.recorded(), 0);
        assert!(b.is_enabled(), "reset keeps the on/off switch");
        // The ring still wraps at its original size after a reset.
        for i in 0..3 {
            b.record(i);
        }
        assert_eq!(b.iter().copied().collect::<Vec<_>>(), vec![1, 2]);
    }
}
