//! Minimal ASCII scatter plots for the figure harnesses.

use std::fmt::Write as _;

/// Renders an ASCII scatter of `(x, y, y_err)` points with an optional
/// trend line, the way Figure 2 presents mean ± standard deviation per
/// processor count.
///
/// # Examples
///
/// ```
/// use machtlb_xpr::ascii_scatter;
///
/// let pts = vec![(1.0, 485.0, 2.0), (2.0, 540.0, 3.0), (3.0, 595.0, 2.0)];
/// let plot = ascii_scatter(&pts, Some((430.0, 55.0)), 40, 12);
/// assert!(plot.contains('*'));
/// assert!(plot.lines().count() > 10);
/// ```
///
/// # Panics
///
/// Panics if `points` is empty or the plot area is degenerate.
#[allow(clippy::needless_range_loop)] // the trend loop reads best indexed
pub fn ascii_scatter(
    points: &[(f64, f64, f64)],
    trend: Option<(f64, f64)>,
    width: usize,
    height: usize,
) -> String {
    assert!(!points.is_empty(), "nothing to plot");
    assert!(width >= 10 && height >= 4, "plot area too small");
    let xmin = points.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
    let xmax = points.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max);
    let ymin = points
        .iter()
        .map(|p| p.1 - p.2)
        .fold(f64::INFINITY, f64::min)
        .min(0.0f64.max(points.iter().map(|p| p.1).fold(f64::INFINITY, f64::min) * 0.8));
    let ymax = points
        .iter()
        .map(|p| p.1 + p.2)
        .fold(f64::NEG_INFINITY, f64::max)
        * 1.05;
    let xspan = (xmax - xmin).max(1e-9);
    let yspan = (ymax - ymin).max(1e-9);

    let col = |x: f64| (((x - xmin) / xspan) * (width - 1) as f64).round() as usize;
    let row = |y: f64| {
        let r = ((y - ymin) / yspan) * (height - 1) as f64;
        (height - 1).saturating_sub(r.round() as usize)
    };

    let mut grid = vec![vec![' '; width]; height];
    if let Some((intercept, slope)) = trend {
        for c in 0..width {
            let x = xmin + xspan * c as f64 / (width - 1) as f64;
            let y = intercept + slope * x;
            if y >= ymin && y <= ymax {
                grid[row(y)][c] = '.';
            }
        }
    }
    for &(x, y, err) in points {
        let c = col(x);
        let top = row((y + err).min(ymax));
        let bottom = row((y - err).max(ymin));
        for line in grid.iter_mut().take(bottom + 1).skip(top) {
            if line[c] == ' ' || line[c] == '.' {
                line[c] = '|';
            }
        }
        grid[row(y)][c] = '*';
    }

    let mut out = String::new();
    for (i, line) in grid.into_iter().enumerate() {
        let y_label = if i == 0 {
            format!("{ymax:>8.0} ")
        } else if i == height - 1 {
            format!("{ymin:>8.0} ")
        } else {
            "         ".to_string()
        };
        let _ = writeln!(out, "{y_label}|{}", line.into_iter().collect::<String>());
    }
    let _ = writeln!(out, "         +{}", "-".repeat(width));
    let _ = writeln!(
        out,
        "          {xmin:<.0}{pad}{xmax:>.0}",
        pad = " ".repeat(width.saturating_sub(4))
    );
    out
}

/// Renders an ASCII histogram of `samples` over `bins` equal-width bins —
/// the quickest way to *see* the right skew the paper describes in its
/// time distributions.
///
/// # Examples
///
/// ```
/// use machtlb_xpr::ascii_histogram;
///
/// let h = ascii_histogram(&[1.0, 1.1, 1.2, 2.0, 9.0], 4, 30);
/// assert!(h.contains('#'));
/// ```
///
/// # Panics
///
/// Panics if `samples` is empty or `bins` is zero.
pub fn ascii_histogram(samples: &[f64], bins: usize, width: usize) -> String {
    assert!(!samples.is_empty(), "nothing to plot");
    assert!(bins > 0 && width > 0, "degenerate histogram");
    let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
    let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (max - min).max(1e-9);
    let mut counts = vec![0usize; bins];
    for &s in samples {
        let b = (((s - min) / span) * bins as f64) as usize;
        counts[b.min(bins - 1)] += 1;
    }
    let peak = counts.iter().copied().max().unwrap_or(1).max(1);
    let mut out = String::new();
    for (i, &c) in counts.iter().enumerate() {
        let lo = min + span * i as f64 / bins as f64;
        let hi = min + span * (i + 1) as f64 / bins as f64;
        let bar = "#".repeat(c * width / peak);
        let _ = writeln!(out, "{lo:>8.0}-{hi:<8.0} |{bar} {c}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plot_contains_points_and_trend() {
        let pts: Vec<(f64, f64, f64)> = (1..=10)
            .map(|k| (k as f64, 430.0 + 55.0 * k as f64, 10.0))
            .collect();
        let plot = ascii_scatter(&pts, Some((430.0, 55.0)), 50, 14);
        assert_eq!(plot.matches('*').count(), 10);
        assert!(plot.contains('.'), "trend line rendered");
        assert!(plot.contains('|'), "error bars rendered");
    }

    #[test]
    #[should_panic(expected = "nothing to plot")]
    fn empty_points_rejected() {
        let _ = ascii_scatter(&[], None, 40, 10);
    }

    #[test]
    fn histogram_bins_cover_all_samples() {
        let samples: Vec<f64> = (0..100).map(f64::from).collect();
        let h = ascii_histogram(&samples, 5, 20);
        assert_eq!(h.lines().count(), 5);
        let total: usize = h
            .lines()
            .map(|l| l.rsplit(' ').next().unwrap().parse::<usize>().unwrap())
            .sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn histogram_shows_skew() {
        // A right-skewed sample: the first bin dominates.
        let mut samples = vec![10.0; 50];
        samples.extend([500.0, 900.0]);
        let h = ascii_histogram(&samples, 4, 30);
        let first_bar = h.lines().next().unwrap().matches('#').count();
        let last_bar = h.lines().last().unwrap().matches('#').count();
        assert!(first_bar > last_bar * 5);
    }
}
