//! # machtlb-xpr — tracing and statistics
//!
//! The measurement half of the `machtlb` reproduction of *Translation
//! Lookaside Buffer Consistency: A Software Approach* (Black et al., ASPLOS
//! 1989): the xpr circular event buffer the paper instrumented the Mach
//! kernel with ([`XprBuffer`]), the initiator/responder record schema of
//! Section 6 ([`InitiatorRecord`], [`ResponderRecord`]), the statistics the
//! tables report ([`Summary`], [`linear_fit`]), and a plain-text table
//! renderer for the harnesses ([`TextTable`]).
//!
//! # Examples
//!
//! ```
//! use machtlb_xpr::{linear_fit, Summary};
//!
//! // Figure 2's analysis: fit shootdown cost against processor count.
//! let points = vec![(1.0, 487.0), (2.0, 539.0), (3.0, 596.0), (4.0, 651.0)];
//! let fit = linear_fit(&points).expect("enough points");
//! assert!(fit.slope > 50.0 && fit.slope < 60.0);
//!
//! let s = Summary::of(&[100.0, 110.0, 500.0]).expect("non-empty");
//! assert!(s.is_right_skewed() || s.median <= s.mean);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buffer;
mod chrome;
mod histogram;
mod plot;
mod record;
mod stats;
mod table;
mod trace;

pub use buffer::XprBuffer;
pub use chrome::{chrome_trace_json, validate_json_shape};
pub use histogram::Histogram;
pub use plot::{ascii_histogram, ascii_scatter};
pub use record::{InitiatorRecord, PmapKind, ResponderRecord, ShootdownEvent};
pub use stats::{linear_fit, percentile_nearest_rank, percentile_sorted, LinFit, Summary};
pub use table::{counters_table, TextTable};
pub use trace::{
    assemble_spans, check_monotone_per_cpu, phase_latencies, phase_latencies_by_node,
    recovery_latencies, validate_spans, FlightRecorder, PhaseSlice, Span, SpanId, SpanMark,
    TraceEdge, TraceEvent, TracePhase,
};

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use super::*;

    proptest! {
        /// The circular buffer retains exactly the most recent
        /// `min(capacity, pushed)` items, in order.
        #[test]
        fn buffer_retains_suffix(cap in 1usize..20, items in proptest::collection::vec(any::<u16>(), 0..60)) {
            let mut b = XprBuffer::new(cap);
            for &x in &items {
                b.record(x);
            }
            let got: Vec<u16> = b.iter().copied().collect();
            let keep = items.len().min(cap);
            prop_assert_eq!(&got[..], &items[items.len() - keep..]);
            prop_assert_eq!(b.recorded() as usize, items.len());
            prop_assert_eq!(b.overwritten() as usize, items.len().saturating_sub(cap));
        }

        /// Summary invariants: min <= p10 <= median <= p90 <= max, and the
        /// mean lies within [min, max].
        #[test]
        fn summary_orderings(samples in proptest::collection::vec(0.0f64..1e6, 1..100)) {
            let s = Summary::of(&samples).expect("non-empty");
            prop_assert!(s.min <= s.p10 + 1e-9);
            prop_assert!(s.p10 <= s.median + 1e-9);
            prop_assert!(s.median <= s.p90 + 1e-9);
            prop_assert!(s.p90 <= s.max + 1e-9);
            prop_assert!(s.mean >= s.min - 1e-9 && s.mean <= s.max + 1e-9);
            prop_assert!(s.std >= 0.0);
        }

        /// Summary's tail percentiles match a reference nearest-rank
        /// implementation written independently of `percentile_nearest_rank`
        /// (count-based rather than index-based): the p-th percentile is the
        /// smallest sample v such that at least p% of the sample is <= v.
        #[test]
        fn summary_tails_match_reference_nearest_rank(
            samples in proptest::collection::vec(0.0f64..1e6, 1..60),
        ) {
            fn reference(samples: &[f64], p: f64) -> f64 {
                let mut sorted = samples.to_vec();
                sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN"));
                let need = p / 100.0 * sorted.len() as f64;
                *sorted
                    .iter()
                    .find(|&&v| {
                        let at_or_below = sorted.iter().filter(|&&w| w <= v).count();
                        at_or_below as f64 >= need
                    })
                    .expect("some sample covers 100%")
            }
            let s = Summary::of(&samples).expect("non-empty");
            prop_assert_eq!(s.p10, reference(&samples, 10.0));
            prop_assert_eq!(s.p90, reference(&samples, 90.0));
            // And in particular both are actual samples, never interpolants.
            prop_assert!(samples.contains(&s.p10));
            prop_assert!(samples.contains(&s.p90));
        }

        /// A least-squares fit of exact points on a line recovers the line.
        #[test]
        fn fit_recovers_line(slope in -100.0f64..100.0, intercept in -1e4f64..1e4) {
            let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, intercept + slope * i as f64)).collect();
            let fit = linear_fit(&pts).expect("x spread is nonzero");
            prop_assert!((fit.slope - slope).abs() < 1e-6 * (1.0 + slope.abs()));
            prop_assert!((fit.intercept - intercept).abs() < 1e-6 * (1.0 + intercept.abs()));
        }
    }
}
