//! Chrome trace-event JSON export of flight-recorder traces.
//!
//! Emits the Trace Event Format's JSON-object form (a `traceEvents`
//! array), which Perfetto and `chrome://tracing` both load directly. Each
//! simulated processor gets its own named track (thread), plus one "bus"
//! track carrying IPI-flight slices from the send mark on the initiator
//! to the matching delivery mark on the target. Phase slices become
//! `B`/`E` duration events; point events become `i` instants.
//!
//! The format is flat enough that the writer is hand-rolled string
//! assembly — every emitted name is static ASCII, so no escaping layer
//! is needed (and the crate stays dependency-free).

use crate::trace::{TraceEdge, TraceEvent, TracePhase};

/// Nanoseconds rendered as the microsecond `ts` values the trace-event
/// format expects, keeping full nanosecond precision.
fn ts_us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// Serializes flight-recorder events as a Chrome trace-event JSON
/// document. `n_cpus` fixes the track layout: tids `0..n_cpus` are the
/// processors and tid `n_cpus` is the bus track.
///
/// Events must be in the order [`FlightRecorder::events`] produces
/// (globally time-sorted, per-CPU record order preserved); begin/end
/// nesting per track then matches the recorder's phase nesting.
///
/// [`FlightRecorder::events`]: crate::FlightRecorder::events
pub fn chrome_trace_json(events: &[TraceEvent], n_cpus: usize) -> String {
    let mut out = String::with_capacity(256 + events.len() * 128);
    out.push_str("{\"traceEvents\":[\n");
    let mut first = true;

    // Track names, so Perfetto labels rows "cpu 0".."cpu N", "bus".
    for tid in 0..=n_cpus {
        let name = if tid == n_cpus {
            "bus".to_string()
        } else {
            format!("cpu {tid}")
        };
        let line = format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
             \"args\":{{\"name\":\"{name}\"}}}}"
        );
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&line);
    }
    let line = "{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
                \"args\":{\"sort_index\":0}}";
    out.push_str(",\n");
    out.push_str(line);

    for e in events {
        let tid = e.cpu.index();
        let ts = ts_us(e.at.as_nanos());
        let line = match e.edge {
            TraceEdge::Begin | TraceEdge::End => {
                let ph = if e.edge == TraceEdge::Begin { "B" } else { "E" };
                format!(
                    "{{\"name\":\"{}\",\"cat\":\"shootdown\",\"ph\":\"{ph}\",\
                     \"pid\":1,\"tid\":{tid},\"ts\":{ts},\
                     \"args\":{{\"span\":{}}}}}",
                    e.phase.name(),
                    e.span.raw(),
                )
            }
            TraceEdge::Mark => {
                let name = if e.phase == TracePhase::IpiSend {
                    format!("{}-to-cpu{}", e.phase.name(), e.arg)
                } else {
                    e.phase.name().to_string()
                };
                format!(
                    "{{\"name\":\"{name}\",\"cat\":\"shootdown\",\"ph\":\"i\",\
                     \"s\":\"t\",\"pid\":1,\"tid\":{tid},\"ts\":{ts},\
                     \"args\":{{\"span\":{}}}}}",
                    e.span.raw(),
                )
            }
        };
        out.push_str(",\n");
        out.push_str(&line);
    }

    // The bus track: one complete ("X") slice per IPI, from the send mark
    // to the matching delivery mark on the target processor.
    for flight in ipi_flights(events) {
        let line = format!(
            "{{\"name\":\"ipi cpu{}-to-cpu{}\",\"cat\":\"bus\",\"ph\":\"X\",\
             \"pid\":1,\"tid\":{n_cpus},\"ts\":{},\"dur\":{},\
             \"args\":{{\"span\":{}}}}}",
            flight.from,
            flight.to,
            ts_us(flight.sent_ns),
            ts_us(flight.delivered_ns - flight.sent_ns),
            flight.span,
        );
        out.push_str(",\n");
        out.push_str(&line);
    }

    out.push_str("\n]}\n");
    out
}

/// One IPI's flight from send to delivery.
struct IpiFlight {
    span: u64,
    from: usize,
    to: usize,
    sent_ns: u64,
    delivered_ns: u64,
}

/// Pairs each [`TracePhase::IpiSend`] mark (whose `arg` names the target
/// processor) with the earliest not-yet-claimed
/// [`TracePhase::IpiDelivery`] mark on that target for the same span at
/// or after the send instant.
fn ipi_flights(events: &[TraceEvent]) -> Vec<IpiFlight> {
    let mut flights = Vec::new();
    let mut claimed = vec![false; events.len()];
    for e in events {
        if e.phase != TracePhase::IpiSend || e.edge != TraceEdge::Mark {
            continue;
        }
        let target = e.arg as usize;
        let delivery = events.iter().enumerate().find(|(i, d)| {
            !claimed[*i]
                && d.phase == TracePhase::IpiDelivery
                && d.edge == TraceEdge::Mark
                && d.span == e.span
                && d.cpu.index() == target
                && d.at >= e.at
        });
        if let Some((i, d)) = delivery {
            claimed[i] = true;
            flights.push(IpiFlight {
                span: e.span.raw(),
                from: e.cpu.index(),
                to: target,
                sent_ns: e.at.as_nanos(),
                delivered_ns: d.at.as_nanos(),
            });
        }
    }
    flights
}

/// A minimal structural validator for the exporter's own output (used by
/// tests and the CLI's self-check): balanced braces/brackets outside
/// strings, and a sanity count of emitted events.
pub fn validate_json_shape(json: &str) -> Result<usize, String> {
    let mut depth_obj = 0i64;
    let mut depth_arr = 0i64;
    let mut in_str = false;
    let mut escaped = false;
    let mut objects = 0usize;
    for c in json.chars() {
        if in_str {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' => {
                depth_obj += 1;
                objects += 1;
            }
            '}' => depth_obj -= 1,
            '[' => depth_arr += 1,
            ']' => depth_arr -= 1,
            _ => {}
        }
        if depth_obj < 0 || depth_arr < 0 {
            return Err("unbalanced close".into());
        }
    }
    if in_str {
        return Err("unterminated string".into());
    }
    if depth_obj != 0 || depth_arr != 0 {
        return Err(format!(
            "unbalanced: {depth_obj} objects, {depth_arr} arrays open"
        ));
    }
    Ok(objects)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{FlightRecorder, TraceEdge, TracePhase};
    use machtlb_sim::{CpuId, Time};

    fn sample_events() -> Vec<TraceEvent> {
        let mut r = FlightRecorder::new(2, 32);
        let s = r.begin_span();
        let c0 = CpuId::new(0);
        let c1 = CpuId::new(1);
        r.record(
            c0,
            s,
            TracePhase::Initiate,
            TraceEdge::Begin,
            Time::from_nanos(100),
        );
        r.record(
            c0,
            s,
            TracePhase::Initiate,
            TraceEdge::End,
            Time::from_nanos(300),
        );
        r.record(
            c0,
            s,
            TracePhase::IpiSend,
            TraceEdge::Begin,
            Time::from_nanos(300),
        );
        r.record_arg(
            c0,
            s,
            TracePhase::IpiSend,
            TraceEdge::Mark,
            Time::from_nanos(350),
            1,
        );
        r.record(
            c0,
            s,
            TracePhase::IpiSend,
            TraceEdge::End,
            Time::from_nanos(400),
        );
        r.record(
            c1,
            s,
            TracePhase::IpiDelivery,
            TraceEdge::Mark,
            Time::from_nanos(900),
        );
        r.events()
    }

    #[test]
    fn export_is_structurally_valid_json() {
        let json = chrome_trace_json(&sample_events(), 2);
        let objects = validate_json_shape(&json).expect("well-formed");
        // 3 thread names + sort index + 6 events + 1 bus slice + args
        // objects — just check it's plausibly populated.
        assert!(objects > 10, "{objects} objects");
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"cpu 0\""));
        assert!(json.contains("\"name\":\"bus\""));
    }

    #[test]
    fn bus_track_carries_ipi_flight() {
        let json = chrome_trace_json(&sample_events(), 2);
        assert!(json.contains("\"name\":\"ipi cpu0-to-cpu1\""));
        // send at 350ns = 0.350us, delivery at 900ns → dur 0.550us.
        assert!(json.contains("\"ts\":0.350,\"dur\":0.550"));
    }

    #[test]
    fn timestamps_are_microseconds_with_ns_precision() {
        assert_eq!(ts_us(0), "0.000");
        assert_eq!(ts_us(999), "0.999");
        assert_eq!(ts_us(1000), "1.000");
        assert_eq!(ts_us(1_234_567), "1234.567");
    }

    #[test]
    fn deliveries_are_claimed_once() {
        // Two sends to the same target in different spans must not both
        // pair with the same delivery mark.
        let mut r = FlightRecorder::new(2, 32);
        let s0 = r.begin_span();
        let s1 = r.begin_span();
        let c0 = CpuId::new(0);
        let c1 = CpuId::new(1);
        r.record_arg(
            c0,
            s0,
            TracePhase::IpiSend,
            TraceEdge::Mark,
            Time::from_nanos(10),
            1,
        );
        r.record_arg(
            c0,
            s1,
            TracePhase::IpiSend,
            TraceEdge::Mark,
            Time::from_nanos(20),
            1,
        );
        r.record(
            c1,
            s0,
            TracePhase::IpiDelivery,
            TraceEdge::Mark,
            Time::from_nanos(30),
        );
        r.record(
            c1,
            s1,
            TracePhase::IpiDelivery,
            TraceEdge::Mark,
            Time::from_nanos(40),
        );
        let flights = ipi_flights(&r.events());
        assert_eq!(flights.len(), 2);
        assert_eq!((flights[0].sent_ns, flights[0].delivered_ns), (10, 30));
        assert_eq!((flights[1].sent_ns, flights[1].delivered_ns), (20, 40));
    }
}
