//! The statistics the paper's evaluation reports.
//!
//! Tables 2–4 report results as mean ± standard deviation plus median and
//! 10th/90th percentiles — the medians because "most of the time
//! distributions are not normal in the statistical sense" (Section 7.3) —
//! and Figure 2's trend line is a least-squares fit.

use std::fmt;

/// Summary statistics of a sample.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator).
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 10th percentile.
    pub p10: f64,
    /// 90th percentile.
    pub p90: f64,
}

impl Summary {
    /// Summarises a sample. Returns `None` for an empty sample.
    pub fn of(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        } else {
            0.0
        };
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN samples"));
        Some(Summary {
            n,
            mean,
            std: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            median: percentile_sorted(&sorted, 50.0),
            // Tail percentiles use nearest rank, not interpolation: at
            // small n the interpolated p10/p90 manufacture values between
            // the extremes and their neighbours that no run produced (for
            // n = 2, "p90" would be 0.1*min + 0.9*max), and collapse
            // toward min/max at rates that depend on n. Nearest rank
            // always reports an actual sample.
            p10: percentile_nearest_rank(&sorted, 10.0),
            p90: percentile_nearest_rank(&sorted, 90.0),
        })
    }

    /// The paper's "mean±std" cell format, rounded to integers.
    pub fn mean_pm_std(&self) -> String {
        format!("{:.0}\u{b1}{:.0}", self.mean, self.std)
    }

    /// Whether the distribution is skewed toward low values the way the
    /// paper describes: "the greater difference between the 90th percentile
    /// and the median than between the 10th percentile and the median".
    pub fn is_right_skewed(&self) -> bool {
        (self.p90 - self.median) > (self.median - self.p10)
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.1} std={:.1} median={:.1} p10={:.1} p90={:.1}",
            self.n, self.mean, self.std, self.median, self.p10, self.p90
        )
    }
}

/// The `p`-th percentile of `sorted` (ascending) using linear interpolation
/// between closest ranks.
///
/// # Panics
///
/// Panics if `sorted` is empty or `p` is outside `[0, 100]`.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty sample");
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// The `p`-th percentile of `sorted` (ascending) by the nearest-rank
/// definition: the smallest sample at or above which at least `p`% of the
/// sample lies, i.e. `sorted[ceil(p/100 * n) - 1]` (with `p = 0` mapping
/// to the minimum). Always returns an element of the sample.
///
/// # Panics
///
/// Panics if `sorted` is empty or `p` is outside `[0, 100]`.
pub fn percentile_nearest_rank(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty sample");
    assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
    let rank = (p / 100.0 * sorted.len() as f64).ceil() as usize;
    sorted[rank.max(1) - 1]
}

/// A least-squares line fit.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct LinFit {
    /// Slope of the fitted line.
    pub slope: f64,
    /// Intercept of the fitted line.
    pub intercept: f64,
    /// Coefficient of determination.
    pub r2: f64,
}

impl LinFit {
    /// The fitted value at `x`.
    pub fn at(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

impl fmt::Display for LinFit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "y = {:.1} + {:.1}x (r2 = {:.3})",
            self.intercept, self.slope, self.r2
        )
    }
}

/// Least-squares fit of `points`. Returns `None` with fewer than two
/// points or a degenerate x spread.
pub fn linear_fit(points: &[(f64, f64)]) -> Option<LinFit> {
    if points.len() < 2 {
        return None;
    }
    let n = points.len() as f64;
    let mx = points.iter().map(|(x, _)| x).sum::<f64>() / n;
    let my = points.iter().map(|(_, y)| y).sum::<f64>() / n;
    let sxx: f64 = points.iter().map(|(x, _)| (x - mx).powi(2)).sum();
    if sxx == 0.0 {
        return None;
    }
    let sxy: f64 = points.iter().map(|(x, y)| (x - mx) * (y - my)).sum();
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let syy: f64 = points.iter().map(|(_, y)| (y - my).powi(2)).sum();
    let r2 = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    Some(LinFit {
        slope,
        intercept,
        r2,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).expect("non-empty");
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-9);
        assert!((s.std - 2.138).abs() < 1e-3);
        assert!((s.median - 4.5).abs() < 1e-9);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn summary_of_empty_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn single_sample_summary() {
        let s = Summary::of(&[3.0]).expect("non-empty");
        assert_eq!(s.std, 0.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.p90, 3.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let sorted = [10.0, 20.0, 30.0, 40.0];
        assert!((percentile_sorted(&sorted, 0.0) - 10.0).abs() < 1e-9);
        assert!((percentile_sorted(&sorted, 100.0) - 40.0).abs() < 1e-9);
        assert!((percentile_sorted(&sorted, 50.0) - 25.0).abs() < 1e-9);
        assert!((percentile_sorted(&sorted, 25.0) - 17.5).abs() < 1e-9);
    }

    #[test]
    fn nearest_rank_returns_actual_samples() {
        let sorted = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile_nearest_rank(&sorted, 0.0), 10.0);
        assert_eq!(percentile_nearest_rank(&sorted, 25.0), 10.0);
        assert_eq!(percentile_nearest_rank(&sorted, 50.0), 20.0);
        assert_eq!(percentile_nearest_rank(&sorted, 90.0), 40.0);
        assert_eq!(percentile_nearest_rank(&sorted, 100.0), 40.0);
    }

    #[test]
    fn small_n_tail_percentiles_hit_the_extremes() {
        // n = 1, 2, 3: p10 must be the minimum and p90 the maximum —
        // the interpolated definition used to land strictly between them.
        let one = Summary::of(&[7.0]).expect("non-empty");
        assert_eq!((one.p10, one.p90), (7.0, 7.0));
        let two = Summary::of(&[3.0, 9.0]).expect("non-empty");
        assert_eq!((two.p10, two.p90), (3.0, 9.0));
        let three = Summary::of(&[1.0, 5.0, 8.0]).expect("non-empty");
        assert_eq!((three.p10, three.p90), (1.0, 8.0));
        assert_eq!(three.median, 5.0);
    }

    #[test]
    fn skew_detection() {
        let skewed = Summary::of(&[1.0, 1.0, 1.0, 2.0, 2.0, 3.0, 10.0, 30.0]).expect("non-empty");
        assert!(skewed.is_right_skewed());
        let symmetric = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).expect("non-empty");
        assert!(!symmetric.is_right_skewed());
    }

    #[test]
    fn exact_line_fits_perfectly() {
        // The paper's Figure 2 line: 430 + 55x.
        let pts: Vec<(f64, f64)> = (1..=12)
            .map(|k| (k as f64, 430.0 + 55.0 * k as f64))
            .collect();
        let fit = linear_fit(&pts).expect("fit exists");
        assert!((fit.slope - 55.0).abs() < 1e-9);
        assert!((fit.intercept - 430.0).abs() < 1e-9);
        assert!((fit.r2 - 1.0).abs() < 1e-9);
        assert!(
            (fit.at(100.0) - 5930.0).abs() < 1e-9,
            "Section 11's ~6ms at 100 cpus"
        );
    }

    #[test]
    fn degenerate_fits_are_none() {
        assert!(linear_fit(&[(1.0, 2.0)]).is_none());
        assert!(linear_fit(&[(1.0, 2.0), (1.0, 3.0)]).is_none());
    }

    #[test]
    fn noisy_fit_has_reasonable_r2() {
        let pts: Vec<(f64, f64)> = (0..20)
            .map(|i| {
                let x = i as f64;
                (x, 3.0 * x + if i % 2 == 0 { 1.0 } else { -1.0 })
            })
            .collect();
        let fit = linear_fit(&pts).expect("fit exists");
        assert!((fit.slope - 3.0).abs() < 0.1);
        assert!(fit.r2 > 0.99);
    }
}
