//! The shootdown flight recorder: per-phase span tracing.
//!
//! The paper's xpr instrumentation records one event per shootdown *end*
//! (Section 6) — enough for the tables, but not for seeing where inside a
//! shootdown the time goes. The flight recorder keeps the same circular
//! buffers but records an event at every phase boundary of the algorithm:
//!
//! initiate → queue actions → IPI send → IPI delivery → responder
//! quiesce/spin → pmap update → unlock → responder drain (or full flush)
//! → rejoin active set.
//!
//! Fail-stop recovery adds two off-path phases: an `evict` mark on the
//! initiator's track when the health monitor declares a responder dead,
//! and a `fence` slice on a revived processor's track covering its fenced
//! rejoin (TLB flush, queue discard, generation handshake).
//!
//! Every shootdown becomes a **span**, identified by a [`SpanId`] the
//! initiator allocates. Initiator-side phases are recorded on the
//! initiator's track; responder-side phases on each responder's track,
//! linked to the span that queued their consistency action. Events land
//! in per-CPU [`XprBuffer`]s at simulated timestamps, so recording order
//! per processor is timestamp order by construction.
//!
//! The recorder is a run-time no-op unless enabled: every instrumentation
//! site guards on [`FlightRecorder::is_enabled`] (one branch on a bool),
//! and the disabled recorder allocates no meaningful buffer space.

use std::collections::HashMap;
use std::fmt;

use machtlb_sim::{CpuId, Time, Topology};

use crate::buffer::XprBuffer;

/// Identifies one traced shootdown span (allocated by the initiator).
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId(u64);

impl SpanId {
    /// The raw span number.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "span{}", self.0)
    }
}

/// A phase of the shootdown algorithm, as a traced span segment.
///
/// The first six are initiator-side; the rest are responder-side.
/// [`TracePhase::RemoteInvalidate`] appears only under the Section 9
/// hardware-remote-invalidation strategy, where the initiator shoots
/// remote TLB entries directly instead of interrupting their owners.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TracePhase {
    /// Initiator: disable interrupts, leave the active set, take the pmap
    /// lock, run the consistency check, invalidate the local TLB.
    Initiate,
    /// Initiator: scan the pmap's users, queue actions, set
    /// action-needed flags.
    QueueActions,
    /// Initiator: send shootdown IPIs to the non-idle users.
    IpiSend,
    /// Initiator: spin until every notified processor has left the active
    /// set or stopped using the pmap.
    SyncWait,
    /// Initiator: apply the planned page-table changes.
    PmapUpdate,
    /// Initiator: release the pmap lock and rejoin the active set.
    Unlock,
    /// Initiator (hardware-remote strategy only): invalidate entries
    /// directly out of remote TLBs over the bus.
    RemoteInvalidate,
    /// Responder: the shootdown interrupt was dispatched (a mark, not a
    /// slice — the delivery instant on the responder's track).
    IpiDelivery,
    /// Responder: spin until no pmap this processor may cache entries of
    /// is locked.
    Quiesce,
    /// Responder: drain the queued actions, invalidating TLB ranges.
    Drain,
    /// Responder: the action queue overflowed; flush the whole TLB
    /// instead of draining ranges.
    FullFlush,
    /// Responder: rejoin the active set (a mark).
    Rejoin,
    /// Initiator: the watchdog re-sent a shootdown IPI after the
    /// synchronization wait outlived its deadline (a mark; the arg is
    /// the target processor index, as for [`TracePhase::IpiSend`]).
    Retry,
    /// A fault-injection perturbation landed (a mark; the arg is the
    /// [`FaultKind` code](machtlb_sim::FaultKind::code)). Recorded on the
    /// affected processor's track so injected chaos is visible next to
    /// the phases it perturbs.
    Fault,
    /// Initiator: the health monitor declared a responder dead after the
    /// watchdog exhausted its retries and evicted it from the active set
    /// and every pmap (a mark; the arg is the evicted processor index).
    Evict,
    /// Responder: a revived processor runs the fenced rejoin protocol —
    /// full TLB flush, action-queue discard, and the generation handshake
    /// — before touching any pmap again (a slice on the revived
    /// processor's track, closed by the rejoin).
    Fence,
    /// Initiator: the residency filter excluded an in-use processor from
    /// the IPI target set because its TLB cannot hold a stale entry for
    /// the affected range (a mark; the arg is the filtered processor
    /// index, as for [`TracePhase::IpiSend`]).
    Filter,
}

impl TracePhase {
    /// Every phase, in algorithm order.
    pub const ALL: [TracePhase; 17] = [
        TracePhase::Initiate,
        TracePhase::QueueActions,
        TracePhase::IpiSend,
        TracePhase::SyncWait,
        TracePhase::PmapUpdate,
        TracePhase::Unlock,
        TracePhase::RemoteInvalidate,
        TracePhase::IpiDelivery,
        TracePhase::Quiesce,
        TracePhase::Drain,
        TracePhase::FullFlush,
        TracePhase::Rejoin,
        TracePhase::Retry,
        TracePhase::Fault,
        TracePhase::Evict,
        TracePhase::Fence,
        TracePhase::Filter,
    ];

    /// A short stable name (used in trace exports and tables).
    pub fn name(self) -> &'static str {
        match self {
            TracePhase::Initiate => "initiate",
            TracePhase::QueueActions => "queue-actions",
            TracePhase::IpiSend => "ipi-send",
            TracePhase::SyncWait => "sync-wait",
            TracePhase::PmapUpdate => "pmap-update",
            TracePhase::Unlock => "unlock",
            TracePhase::RemoteInvalidate => "remote-invalidate",
            TracePhase::IpiDelivery => "ipi-delivery",
            TracePhase::Quiesce => "quiesce",
            TracePhase::Drain => "drain",
            TracePhase::FullFlush => "full-flush",
            TracePhase::Rejoin => "rejoin",
            TracePhase::Retry => "ipi-retry",
            TracePhase::Fault => "fault",
            TracePhase::Evict => "evict",
            TracePhase::Fence => "fence",
            TracePhase::Filter => "filter",
        }
    }

    /// Whether the phase runs on the initiating processor.
    pub fn is_initiator_side(self) -> bool {
        matches!(
            self,
            TracePhase::Initiate
                | TracePhase::QueueActions
                | TracePhase::IpiSend
                | TracePhase::SyncWait
                | TracePhase::PmapUpdate
                | TracePhase::Unlock
                | TracePhase::RemoteInvalidate
                | TracePhase::Retry
                | TracePhase::Evict
                | TracePhase::Filter
        )
    }
}

impl fmt::Display for TracePhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Whether a [`TraceEvent`] opens a phase, closes it, or marks an
/// instant.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TraceEdge {
    /// The phase starts at this instant.
    Begin,
    /// The phase ends at this instant.
    End,
    /// A point event (IPI delivery, rejoin, per-target send).
    Mark,
}

/// One flight-recorder event.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Simulated instant of the phase boundary.
    pub at: Time,
    /// The processor whose track the event belongs to.
    pub cpu: CpuId,
    /// The shootdown span the event is part of.
    pub span: SpanId,
    /// Which phase.
    pub phase: TracePhase,
    /// Begin, end, or point.
    pub edge: TraceEdge,
    /// Small payload: the target processor index for per-target
    /// [`TracePhase::IpiSend`] marks, zero otherwise.
    pub arg: u32,
}

/// Per-CPU circular buffers of [`TraceEvent`]s plus the span-id allocator
/// and the per-processor pending-span table that links responder events
/// to the shootdown that queued their work.
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    enabled: bool,
    bufs: Vec<XprBuffer<TraceEvent>>,
    /// The span that most recently queued a consistency action for each
    /// processor (cleared when the processor's drain completes). This is
    /// recorder bookkeeping, not kernel state: the algorithm itself never
    /// reads it.
    pending: Vec<Option<SpanId>>,
    next_span: u64,
}

impl FlightRecorder {
    /// Creates an enabled recorder with one `capacity`-event buffer per
    /// processor.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(n_cpus: usize, capacity: usize) -> FlightRecorder {
        FlightRecorder {
            enabled: true,
            bufs: (0..n_cpus).map(|_| XprBuffer::new(capacity)).collect(),
            pending: vec![None; n_cpus],
            next_span: 0,
        }
    }

    /// Creates a disabled recorder (the default): no per-CPU buffers are
    /// allocated and every instrumentation site reduces to one branch.
    pub fn disabled(n_cpus: usize) -> FlightRecorder {
        FlightRecorder {
            enabled: false,
            bufs: Vec::new(),
            pending: vec![None; n_cpus],
            next_span: 0,
        }
    }

    /// Whether the recorder is tracing. Every instrumentation site checks
    /// this first; when false nothing else is touched.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Allocates a fresh span id (initiators call this when their
    /// operation turns out to require consistency actions).
    pub fn begin_span(&mut self) -> SpanId {
        let id = SpanId(self.next_span);
        self.next_span += 1;
        id
    }

    /// Spans allocated so far.
    pub fn spans_begun(&self) -> u64 {
        self.next_span
    }

    /// Records a phase edge on `cpu`'s track.
    pub fn record(
        &mut self,
        cpu: CpuId,
        span: SpanId,
        phase: TracePhase,
        edge: TraceEdge,
        at: Time,
    ) {
        self.record_arg(cpu, span, phase, edge, at, 0);
    }

    /// Records a phase edge carrying a small payload (per-target IPI-send
    /// marks put the target processor index here).
    pub fn record_arg(
        &mut self,
        cpu: CpuId,
        span: SpanId,
        phase: TracePhase,
        edge: TraceEdge,
        at: Time,
        arg: u32,
    ) {
        debug_assert!(self.enabled, "record on a disabled recorder");
        self.bufs[cpu.index()].record(TraceEvent {
            at,
            cpu,
            span,
            phase,
            edge,
            arg,
        });
    }

    /// Remembers that `span` queued a consistency action for `cpu`.
    pub fn set_pending(&mut self, cpu: CpuId, span: SpanId) {
        self.pending[cpu.index()] = Some(span);
    }

    /// The span whose action `cpu` has yet to drain, if any.
    pub fn pending(&self, cpu: CpuId) -> Option<SpanId> {
        self.pending[cpu.index()]
    }

    /// Forgets `cpu`'s pending span (its drain completed).
    pub fn clear_pending(&mut self, cpu: CpuId) {
        self.pending[cpu.index()] = None;
    }

    /// The per-CPU buffers (empty when the recorder is disabled).
    pub fn buffers(&self) -> &[XprBuffer<TraceEvent>] {
        &self.bufs
    }

    /// Every retained event, merged across processors and stably sorted
    /// by timestamp — each processor's events keep their record order, so
    /// grouping the result by `cpu` yields monotone per-track sequences.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut all: Vec<TraceEvent> = self.bufs.iter().flat_map(|b| b.iter().copied()).collect();
        all.sort_by_key(|e| e.at);
        all
    }

    /// Events recorded across all processors.
    pub fn recorded(&self) -> u64 {
        self.bufs.iter().map(XprBuffer::recorded).sum()
    }

    /// Events lost to wrap-around across all processors. A valid traced
    /// run requires zero, exactly as the paper's methodology required of
    /// the original xpr buffer.
    pub fn overwritten(&self) -> u64 {
        self.bufs.iter().map(XprBuffer::overwritten).sum()
    }

    /// Clears every buffer and the pending table (keeps the span counter
    /// monotone so ids never repeat within a run).
    pub fn reset(&mut self) {
        for b in &mut self.bufs {
            b.reset();
        }
        self.pending.fill(None);
    }
}

/// One completed phase slice of a span: `phase` ran on `cpu` over
/// `[begin, end]`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct PhaseSlice {
    /// The phase.
    pub phase: TracePhase,
    /// The processor it ran on.
    pub cpu: CpuId,
    /// When it began.
    pub begin: Time,
    /// When it ended.
    pub end: Time,
}

/// A point event of a span.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct SpanMark {
    /// The phase marked.
    pub phase: TracePhase,
    /// The processor it happened on.
    pub cpu: CpuId,
    /// When.
    pub at: Time,
    /// The event's payload (IPI-send marks: target processor index).
    pub arg: u32,
}

/// One shootdown span assembled from its events.
#[derive(Clone, Debug)]
pub struct Span {
    /// The span id.
    pub id: SpanId,
    /// The initiating processor (the track of the
    /// [`TracePhase::Initiate`] slice).
    pub initiator: CpuId,
    /// Completed begin/end slices, in begin order.
    pub slices: Vec<PhaseSlice>,
    /// Point events, in time order.
    pub marks: Vec<SpanMark>,
}

impl Span {
    /// The first slice of the given phase, if any completed.
    pub fn slice(&self, phase: TracePhase) -> Option<&PhaseSlice> {
        self.slices.iter().find(|s| s.phase == phase)
    }

    /// All slices of the given phase.
    pub fn slices_of(&self, phase: TracePhase) -> impl Iterator<Item = &PhaseSlice> {
        self.slices.iter().filter(move |s| s.phase == phase)
    }

    /// All marks of the given phase.
    pub fn marks_of(&self, phase: TracePhase) -> impl Iterator<Item = &SpanMark> {
        self.marks.iter().filter(move |m| m.phase == phase)
    }
}

/// Assembles spans from an event list (as produced by
/// [`FlightRecorder::events`]): begin/end edges pair up per
/// (span, processor, phase), marks attach directly. Unpaired begins
/// (a run cut off mid-span) are dropped. Spans are returned in id order.
pub fn assemble_spans(events: &[TraceEvent]) -> Vec<Span> {
    let mut spans: HashMap<SpanId, Span> = HashMap::new();
    let mut open: HashMap<(SpanId, u32, TracePhase), Time> = HashMap::new();
    for e in events {
        let span = spans.entry(e.span).or_insert_with(|| Span {
            id: e.span,
            initiator: e.cpu,
            slices: Vec::new(),
            marks: Vec::new(),
        });
        match e.edge {
            TraceEdge::Begin => {
                if e.phase == TracePhase::Initiate {
                    span.initiator = e.cpu;
                }
                open.insert((e.span, e.cpu.index() as u32, e.phase), e.at);
            }
            TraceEdge::End => {
                if let Some(begin) = open.remove(&(e.span, e.cpu.index() as u32, e.phase)) {
                    span.slices.push(PhaseSlice {
                        phase: e.phase,
                        cpu: e.cpu,
                        begin,
                        end: e.at,
                    });
                }
            }
            TraceEdge::Mark => span.marks.push(SpanMark {
                phase: e.phase,
                cpu: e.cpu,
                at: e.at,
                arg: e.arg,
            }),
        }
    }
    let mut out: Vec<Span> = spans.into_values().collect();
    for s in &mut out {
        s.slices.sort_by_key(|s| (s.begin, s.cpu.index()));
        s.marks.sort_by_key(|m| (m.at, m.cpu.index()));
    }
    out.sort_by_key(|s| s.id);
    out
}

/// Per-phase slice durations (µs) across every span in `events`, in
/// [`TracePhase::ALL`] order; phases with no completed slices are
/// omitted. These samples are what the phase-latency table summarizes
/// with [`Summary::of`](crate::Summary::of) and what the histogram
/// module buckets.
pub fn phase_latencies(events: &[TraceEvent]) -> Vec<(TracePhase, Vec<f64>)> {
    let spans = assemble_spans(events);
    let mut by_phase: HashMap<TracePhase, Vec<f64>> = HashMap::new();
    for span in &spans {
        for s in &span.slices {
            by_phase
                .entry(s.phase)
                .or_default()
                .push(s.end.duration_since(s.begin).as_micros_f64());
        }
    }
    TracePhase::ALL
        .iter()
        .filter_map(|p| by_phase.remove(p).map(|v| (*p, v)))
        .collect()
}

/// The [`phase_latencies`] samples split by the node each slice ran on,
/// so a NUMA run's table can carry a node column and attribute shootdown
/// time to nodes. Rows come back phase-major (in [`TracePhase::ALL`]
/// order), node-minor; `(phase, node)` pairs with no completed slices
/// are omitted. On a flat topology this is [`phase_latencies`] with a
/// constant node 0 column.
pub fn phase_latencies_by_node(
    events: &[TraceEvent],
    topology: Topology,
) -> Vec<(TracePhase, usize, Vec<f64>)> {
    let spans = assemble_spans(events);
    let mut by_key: HashMap<(TracePhase, usize), Vec<f64>> = HashMap::new();
    for span in &spans {
        for s in &span.slices {
            by_key
                .entry((s.phase, topology.node_of(s.cpu)))
                .or_default()
                .push(s.end.duration_since(s.begin).as_micros_f64());
        }
    }
    let mut out: Vec<(TracePhase, usize, Vec<f64>)> =
        by_key.into_iter().map(|((p, n), v)| (p, n, v)).collect();
    out.sort_by_key(|&(p, n, _)| {
        (
            TracePhase::ALL
                .iter()
                .position(|q| *q == p)
                .unwrap_or(usize::MAX),
            n,
        )
    });
    out
}

/// Recovery-path latencies (µs) the slice-based [`phase_latencies`]
/// table cannot see, because they live in marks rather than begin/end
/// pairs:
///
/// - `evict-detect`: from a span's first recorded instant to each
///   [`TracePhase::Evict`] mark — how long the watchdog plus health
///   monitor took to declare a responder dead;
/// - `rejoin`: from a responder's [`TracePhase::IpiDelivery`] mark to
///   its [`TracePhase::Rejoin`] mark in the same span — the responder's
///   whole service turnaround;
/// - `fence`: [`TracePhase::Fence`] slice durations — what a revived
///   processor pays before touching any pmap again.
///
/// Rows with no samples are omitted, like the slice table's.
pub fn recovery_latencies(events: &[TraceEvent]) -> Vec<(&'static str, Vec<f64>)> {
    let spans = assemble_spans(events);
    let mut evicts = Vec::new();
    let mut rejoins = Vec::new();
    let mut fences = Vec::new();
    for span in &spans {
        let begin = span
            .slices
            .iter()
            .map(|s| s.begin)
            .chain(span.marks.iter().map(|m| m.at))
            .min();
        for m in &span.marks {
            match m.phase {
                TracePhase::Evict => {
                    if let Some(b) = begin {
                        evicts.push(m.at.duration_since(b).as_micros_f64());
                    }
                }
                TracePhase::Rejoin => {
                    let delivered = span
                        .marks
                        .iter()
                        .find(|d| d.phase == TracePhase::IpiDelivery && d.cpu == m.cpu)
                        .map(|d| d.at);
                    if let Some(d) = delivered.filter(|&d| d <= m.at) {
                        rejoins.push(m.at.duration_since(d).as_micros_f64());
                    }
                }
                _ => {}
            }
        }
        for s in &span.slices {
            if s.phase == TracePhase::Fence {
                fences.push(s.end.duration_since(s.begin).as_micros_f64());
            }
        }
    }
    let mut out = Vec::new();
    if !evicts.is_empty() {
        out.push(("evict-detect", evicts));
    }
    if !fences.is_empty() {
        out.push(("fence", fences));
    }
    if !rejoins.is_empty() {
        out.push(("rejoin", rejoins));
    }
    out
}

/// Checks that, per processor, event timestamps never go backwards in
/// record order (grouping a [`FlightRecorder::events`] list by `cpu`
/// preserves record order). Returns the offending pair on failure.
pub fn check_monotone_per_cpu(events: &[TraceEvent]) -> Result<(), String> {
    let mut last: HashMap<u32, Time> = HashMap::new();
    for e in events {
        let cpu = e.cpu.index() as u32;
        if let Some(&prev) = last.get(&cpu) {
            if e.at < prev {
                return Err(format!(
                    "cpu{cpu} track goes backwards: {} after {}",
                    e.at, prev
                ));
            }
        }
        last.insert(cpu, e.at);
    }
    Ok(())
}

/// Structural validation of an assembled trace, returning the number of
/// spans checked. Rejects shapes no correct recording can produce:
///
/// - a slice that ends before it begins;
/// - initiator-side slices of one span spread across processors (every
///   initiator phase runs on the processor that began the span);
/// - a [`TracePhase::Retry`] mark off the initiator's track;
/// - a span that completed its [`TracePhase::Unlock`] slice without a
///   completed [`TracePhase::Initiate`] slice.
///
/// Spans cut off mid-flight (a bounded run's tail) have their unpaired
/// begins dropped by [`assemble_spans`] and are tolerated here; this
/// checks what *was* recorded, not that every shootdown finished.
pub fn validate_spans(events: &[TraceEvent]) -> Result<usize, String> {
    let spans = assemble_spans(events);
    for span in &spans {
        for s in &span.slices {
            if s.end < s.begin {
                return Err(format!(
                    "{}: {} slice on {} ends at {} before its begin {}",
                    span.id, s.phase, s.cpu, s.end, s.begin
                ));
            }
            if s.phase.is_initiator_side() && s.cpu != span.initiator {
                return Err(format!(
                    "{}: initiator-side {} slice on {} but the span initiated on {}",
                    span.id, s.phase, s.cpu, span.initiator
                ));
            }
        }
        for m in &span.marks {
            if m.phase == TracePhase::Retry && m.cpu != span.initiator {
                return Err(format!(
                    "{}: retry mark on {} but the span initiated on {}",
                    span.id, m.cpu, span.initiator
                ));
            }
        }
        if span.slice(TracePhase::Unlock).is_some() && span.slice(TracePhase::Initiate).is_none() {
            return Err(format!(
                "{}: unlock slice completed without an initiate slice",
                span.id
            ));
        }
    }
    Ok(spans.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at_ns: u64, cpu: u32, span: u64, phase: TracePhase, edge: TraceEdge) -> TraceEvent {
        TraceEvent {
            at: Time::from_nanos(at_ns),
            cpu: CpuId::new(cpu),
            span: SpanId(span),
            phase,
            edge,
            arg: 0,
        }
    }

    #[test]
    fn phase_latencies_split_by_node() {
        // Two responders on different nodes of a 2x2 machine service the
        // same span: the per-node split separates them, the flat split
        // folds them onto node 0.
        let events = vec![
            ev(1_000, 0, 1, TracePhase::Initiate, TraceEdge::Begin),
            ev(2_000, 0, 1, TracePhase::Initiate, TraceEdge::End),
            ev(3_000, 1, 1, TracePhase::Quiesce, TraceEdge::Begin),
            ev(5_000, 1, 1, TracePhase::Quiesce, TraceEdge::End),
            ev(3_000, 2, 1, TracePhase::Quiesce, TraceEdge::Begin),
            ev(8_000, 2, 1, TracePhase::Quiesce, TraceEdge::End),
        ];
        let topo = Topology::numa(2, 2, machtlb_sim::Dur::micros(1));
        let rows = phase_latencies_by_node(&events, topo);
        assert_eq!(rows.len(), 3, "initiate@0, quiesce@0, quiesce@1");
        assert_eq!((rows[0].0, rows[0].1), (TracePhase::Initiate, 0));
        assert_eq!((rows[1].0, rows[1].1), (TracePhase::Quiesce, 0));
        assert_eq!(rows[1].2, vec![2.0], "cpu 1 lives on node 0");
        assert_eq!((rows[2].0, rows[2].1), (TracePhase::Quiesce, 1));
        assert_eq!(rows[2].2, vec![5.0], "cpu 2 lives on node 1");
        // Flat: same samples as phase_latencies, all on node 0.
        let flat = phase_latencies_by_node(&events, Topology::flat(4));
        assert!(flat.iter().all(|&(_, n, _)| n == 0));
        let plain = phase_latencies(&events);
        assert_eq!(flat.len(), plain.len());
        for ((fp, _, fv), (pp, pv)) in flat.iter().zip(&plain) {
            assert_eq!(fp, pp);
            assert_eq!(fv, pv);
        }
    }

    #[test]
    fn recovery_latencies_cover_marks_and_fence_slices() {
        let events = vec![
            ev(1_000, 0, 1, TracePhase::Initiate, TraceEdge::Begin),
            ev(2_000, 0, 1, TracePhase::Initiate, TraceEdge::End),
            ev(3_000, 1, 1, TracePhase::IpiDelivery, TraceEdge::Mark),
            ev(9_000, 1, 1, TracePhase::Rejoin, TraceEdge::Mark),
            ev(21_000, 0, 1, TracePhase::Evict, TraceEdge::Mark),
            ev(30_000, 2, 1, TracePhase::Fence, TraceEdge::Begin),
            ev(34_000, 2, 1, TracePhase::Fence, TraceEdge::End),
        ];
        let rows = recovery_latencies(&events);
        let get = |name: &str| {
            rows.iter()
                .find(|(n, _)| *n == name)
                .map(|(_, v)| v.clone())
                .unwrap_or_default()
        };
        assert_eq!(
            get("evict-detect"),
            vec![20.0],
            "evict at 21us, span at 1us"
        );
        assert_eq!(get("rejoin"), vec![6.0], "delivery 3us -> rejoin 9us");
        assert_eq!(get("fence"), vec![4.0]);
        // An event list with no recovery activity yields no rows at all.
        assert!(recovery_latencies(&events[..2]).is_empty());
    }

    #[test]
    fn recorder_round_trip_and_ordering() {
        let mut r = FlightRecorder::new(2, 16);
        let s = r.begin_span();
        r.record(
            CpuId::new(0),
            s,
            TracePhase::Initiate,
            TraceEdge::Begin,
            Time::from_nanos(10),
        );
        r.record(
            CpuId::new(1),
            s,
            TracePhase::Quiesce,
            TraceEdge::Begin,
            Time::from_nanos(5),
        );
        r.record(
            CpuId::new(0),
            s,
            TracePhase::Initiate,
            TraceEdge::End,
            Time::from_nanos(20),
        );
        let events = r.events();
        assert_eq!(events.len(), 3);
        assert!(events.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(check_monotone_per_cpu(&events).is_ok());
        assert_eq!(r.recorded(), 3);
        assert_eq!(r.overwritten(), 0);
    }

    #[test]
    fn disabled_recorder_holds_nothing() {
        let r = FlightRecorder::disabled(4);
        assert!(!r.is_enabled());
        assert!(r.events().is_empty());
        assert_eq!(r.recorded(), 0);
        assert!(r.buffers().is_empty());
    }

    #[test]
    fn pending_links_responders_to_spans() {
        let mut r = FlightRecorder::new(2, 4);
        let s = r.begin_span();
        r.set_pending(CpuId::new(1), s);
        assert_eq!(r.pending(CpuId::new(1)), Some(s));
        assert_eq!(r.pending(CpuId::new(0)), None);
        r.clear_pending(CpuId::new(1));
        assert_eq!(r.pending(CpuId::new(1)), None);
    }

    #[test]
    fn spans_assemble_slices_and_marks() {
        let events = vec![
            ev(100, 0, 0, TracePhase::Initiate, TraceEdge::Begin),
            ev(200, 0, 0, TracePhase::Initiate, TraceEdge::End),
            ev(200, 0, 0, TracePhase::QueueActions, TraceEdge::Begin),
            ev(250, 1, 0, TracePhase::IpiDelivery, TraceEdge::Mark),
            ev(300, 0, 0, TracePhase::QueueActions, TraceEdge::End),
            // A second span, interleaved, with an unpaired begin.
            ev(310, 1, 1, TracePhase::Initiate, TraceEdge::Begin),
        ];
        let spans = assemble_spans(&events);
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].initiator, CpuId::new(0));
        assert_eq!(spans[0].slices.len(), 2);
        assert_eq!(spans[0].marks.len(), 1);
        let init = spans[0].slice(TracePhase::Initiate).expect("slice");
        assert_eq!(init.end.duration_since(init.begin).as_nanos(), 100);
        assert!(spans[1].slices.is_empty(), "unpaired begin dropped");
    }

    #[test]
    fn phase_latencies_group_by_phase_in_order() {
        let events = vec![
            ev(0, 0, 0, TracePhase::Initiate, TraceEdge::Begin),
            ev(1_000, 0, 0, TracePhase::Initiate, TraceEdge::End),
            ev(0, 1, 1, TracePhase::Initiate, TraceEdge::Begin),
            ev(3_000, 1, 1, TracePhase::Initiate, TraceEdge::End),
            ev(5_000, 1, 1, TracePhase::Drain, TraceEdge::Begin),
            ev(9_000, 1, 1, TracePhase::Drain, TraceEdge::End),
        ];
        let lat = phase_latencies(&events);
        assert_eq!(lat.len(), 2);
        assert_eq!(lat[0].0, TracePhase::Initiate);
        assert_eq!(lat[0].1.len(), 2);
        assert_eq!(lat[1].0, TracePhase::Drain);
        assert!((lat[1].1[0] - 4.0).abs() < 1e-9);
    }

    #[test]
    fn monotonicity_violations_are_reported() {
        let events = vec![
            ev(500, 0, 0, TracePhase::Initiate, TraceEdge::Begin),
            ev(400, 0, 0, TracePhase::Initiate, TraceEdge::End),
        ];
        assert!(check_monotone_per_cpu(&events).is_err());
    }

    #[test]
    fn validation_accepts_a_well_formed_span() {
        let events = vec![
            ev(100, 0, 0, TracePhase::Initiate, TraceEdge::Begin),
            ev(200, 0, 0, TracePhase::Initiate, TraceEdge::End),
            ev(200, 0, 0, TracePhase::IpiSend, TraceEdge::Begin),
            ev(210, 0, 0, TracePhase::Retry, TraceEdge::Mark),
            ev(250, 1, 0, TracePhase::IpiDelivery, TraceEdge::Mark),
            ev(300, 0, 0, TracePhase::IpiSend, TraceEdge::End),
            ev(300, 0, 0, TracePhase::Unlock, TraceEdge::Begin),
            ev(350, 0, 0, TracePhase::Unlock, TraceEdge::End),
            // A second span cut off mid-flight: tolerated.
            ev(360, 1, 1, TracePhase::Initiate, TraceEdge::Begin),
        ];
        assert_eq!(validate_spans(&events), Ok(2));
    }

    #[test]
    fn validation_rejects_migrating_initiator_slices() {
        let events = vec![
            ev(100, 0, 0, TracePhase::Initiate, TraceEdge::Begin),
            ev(200, 0, 0, TracePhase::Initiate, TraceEdge::End),
            // SyncWait is initiator-side but lands on another processor.
            ev(200, 1, 0, TracePhase::SyncWait, TraceEdge::Begin),
            ev(300, 1, 0, TracePhase::SyncWait, TraceEdge::End),
        ];
        assert!(validate_spans(&events).is_err());
    }

    #[test]
    fn validation_rejects_unlock_without_initiate() {
        let events = vec![
            ev(100, 0, 0, TracePhase::Unlock, TraceEdge::Begin),
            ev(200, 0, 0, TracePhase::Unlock, TraceEdge::End),
        ];
        assert!(validate_spans(&events).is_err());
    }

    #[test]
    fn retry_and_fault_phases_have_stable_names() {
        assert_eq!(TracePhase::Retry.name(), "ipi-retry");
        assert_eq!(TracePhase::Fault.name(), "fault");
        assert!(TracePhase::Retry.is_initiator_side());
        assert!(!TracePhase::Fault.is_initiator_side());
        assert_eq!(TracePhase::Evict.name(), "evict");
        assert_eq!(TracePhase::Fence.name(), "fence");
        assert!(TracePhase::Evict.is_initiator_side());
        assert!(!TracePhase::Fence.is_initiator_side());
        assert_eq!(TracePhase::Filter.name(), "filter");
        assert!(TracePhase::Filter.is_initiator_side());
        assert_eq!(TracePhase::ALL.len(), 17);
    }
}
