//! The shootdown measurement records of Section 6.

use std::fmt;

use machtlb_sim::{CpuId, Dur, FaultRecord, Time};

/// Which pmap a shootdown operated on — the first datum of the paper's
/// initiator record ("a flag indicating whether this shootdown is on the
/// kernel pmap or some user pmap").
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub enum PmapKind {
    /// The kernel pmap (in use on potentially every processor).
    Kernel,
    /// A task's pmap.
    User,
}

impl fmt::Display for PmapKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PmapKind::Kernel => write!(f, "kernel"),
            PmapKind::User => write!(f, "user"),
        }
    }
}

/// One initiator event: everything the paper's instrumentation saves "in
/// one event record" (Section 6).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct InitiatorRecord {
    /// When the shootdown was invoked.
    pub at: Time,
    /// The initiating processor.
    pub cpu: CpuId,
    /// Kernel or user pmap.
    pub kind: PmapKind,
    /// "Number of Mach VM pages involved in the shootdown."
    pub pages: u64,
    /// "Number of processors being shot at."
    pub processors: u32,
    /// "Elapsed time from invoking the shootdown algorithm until the
    /// initiator can begin making its changes to the pmap."
    pub elapsed: Dur,
}

/// One responder event: "the elapsed time in the interrupt service routine"
/// (a slight underestimate, as the paper notes, because interrupt dispatch
/// and return are excluded).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ResponderRecord {
    /// When the service routine began.
    pub at: Time,
    /// The responding processor.
    pub cpu: CpuId,
    /// Time spent in the service routine.
    pub elapsed: Dur,
}

/// Any shootdown trace record.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ShootdownEvent {
    /// An initiator completed its synchronization phase.
    Initiator(InitiatorRecord),
    /// A responder completed its service routine.
    Responder(ResponderRecord),
    /// A fault-injection perturbation landed (chaos runs only; stamped
    /// into the stream after the run so injected chaos appears alongside
    /// the measurements it perturbed).
    Fault(FaultRecord),
}

impl ShootdownEvent {
    /// The initiator record, if this is one.
    pub fn as_initiator(&self) -> Option<&InitiatorRecord> {
        match self {
            ShootdownEvent::Initiator(r) => Some(r),
            _ => None,
        }
    }

    /// The responder record, if this is one.
    pub fn as_responder(&self) -> Option<&ResponderRecord> {
        match self {
            ShootdownEvent::Responder(r) => Some(r),
            _ => None,
        }
    }

    /// The fault record, if this is one.
    pub fn as_fault(&self) -> Option<&FaultRecord> {
        match self {
            ShootdownEvent::Fault(r) => Some(r),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_select_variant() {
        let init = ShootdownEvent::Initiator(InitiatorRecord {
            at: Time::ZERO,
            cpu: CpuId::new(1),
            kind: PmapKind::Kernel,
            pages: 1,
            processors: 3,
            elapsed: Dur::micros(500),
        });
        assert!(init.as_initiator().is_some());
        assert!(init.as_responder().is_none());
        let resp = ShootdownEvent::Responder(ResponderRecord {
            at: Time::ZERO,
            cpu: CpuId::new(2),
            elapsed: Dur::micros(100),
        });
        assert!(resp.as_responder().is_some());
        assert!(resp.as_initiator().is_none());
    }

    #[test]
    fn pmap_kind_display() {
        assert_eq!(PmapKind::Kernel.to_string(), "kernel");
        assert_eq!(PmapKind::User.to_string(), "user");
    }
}
