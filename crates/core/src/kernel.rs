//! Machine assembly: interrupt vectors, handlers, device-interrupt
//! background activity, and the context-switch path.

use machtlb_pmap::PmapId;
use machtlb_sim::{
    BlockOn, CostModel, CpuId, Ctx, Dur, IntrClass, IntrMask, Machine, MachineConfig, Process,
    Step, Time, Vector,
};
use machtlb_xpr::{TraceEdge, TracePhase};
use rand::Rng;

use crate::responder::ResponderProcess;
use crate::state::{HasKernel, KernelConfig, KernelState, SpinMode, SYNC_CHANNEL};

/// The device-interrupt vector (disk/network/clock background activity).
pub const DEVICE_VECTOR: Vector = Vector::new(0);
/// The shootdown inter-processor interrupt.
pub const SHOOTDOWN_VECTOR: Vector = Vector::new(1);
/// The reschedule poke used to wake idle dispatchers.
pub const RESCHED_VECTOR: Vector = Vector::new(2);
/// The periodic timer driving whole-TLB flushes under the
/// [`Strategy::TimerDelayed`](crate::Strategy::TimerDelayed) technique.
pub const TIMER_FLUSH_VECTOR: Vector = Vector::new(3);

/// A simulated machine running the kernel model.
pub type KernelMachine = Machine<KernelState, ()>;

/// Builds a machine with the kernel image installed and the interrupt
/// handlers registered.
///
/// With [`KernelConfig::high_prio_ipi`] set, device handlers run with only
/// device interrupts blocked, so shootdown IPIs preempt them — the first
/// hardware feature Section 9 recommends.
pub fn build_kernel_machine(
    n_cpus: usize,
    seed: u64,
    costs: CostModel,
    kconfig: KernelConfig,
) -> KernelMachine {
    let high_prio = kconfig.high_prio_ipi;
    let state = KernelState::new(n_cpus, kconfig);
    let mconfig = MachineConfig {
        n_cpus,
        seed,
        costs,
        topology: state.topology,
    };
    let mut m = Machine::new(mconfig, state, |_| ());
    install_kernel_handlers(&mut m, high_prio);
    m
}

/// Registers the kernel's interrupt handlers on a machine whose shared
/// state embeds a kernel image (used by higher layers that wrap
/// [`KernelState`] in their own state type).
pub fn install_kernel_handlers<S: HasKernel + 'static>(
    m: &mut Machine<S, ()>,
    high_prio_ipi: bool,
) {
    m.register_handler(SHOOTDOWN_VECTOR, IntrClass::Ipi, |s, cpu, at| {
        // The delivery instant belongs to the trace, not the handler body:
        // by the time the responder first steps, the interrupt-entry and
        // state-save costs have already elapsed.
        let k = s.kernel_mut();
        if k.trace.is_enabled() {
            if let Some(span) = k.trace.pending(cpu) {
                k.trace
                    .record(cpu, span, TracePhase::IpiDelivery, TraceEdge::Mark, at);
            }
        }
        Box::new(ResponderProcess::new())
    });
    let device_mask = if high_prio_ipi {
        IntrMask::DEVICE_BLOCKED
    } else {
        IntrMask::ALL_BLOCKED
    };
    m.register_handler_with_mask(DEVICE_VECTOR, IntrClass::Device, device_mask, |_, _, _| {
        Box::new(DeviceHandler::new())
    });
    m.register_handler(RESCHED_VECTOR, IntrClass::Ipi, |_, _, _| {
        Box::new(NopHandler)
    });
    m.register_handler(TIMER_FLUSH_VECTOR, IntrClass::Device, |_, _, _| {
        Box::new(TimerFlushHandler)
    });
}

/// The timer-flush service routine of the timer-delayed technique: flush
/// this processor's whole TLB, stamp the epoch clock, and commit any
/// change every processor has now flushed past.
#[derive(Debug)]
pub struct TimerFlushHandler;

impl<S: HasKernel> Process<S, ()> for TimerFlushHandler {
    fn step(&mut self, ctx: &mut Ctx<'_, S, ()>) -> Step {
        let me = ctx.cpu_id;
        let now = ctx.now;
        let kernel = ctx.shared.kernel_mut();
        kernel.tlbs[me.index()].flush_all();
        kernel.tlb_flush_stamp[me.index()] = now;
        kernel.mature_pending_commits(now);
        Step::Done(ctx.costs().tlb_flush_all + ctx.bus_write())
    }

    fn label(&self) -> &'static str {
        "timer-flush"
    }
}

/// Pre-schedules the timer-delayed technique's periodic flush on every
/// processor until `until`, with per-processor phase offsets. Unlike
/// device activity this is clocked, not jittered: the flush period is the
/// technique's staleness bound.
pub fn schedule_timer_flushes<S, P>(m: &mut Machine<S, P>, period: Dur, until: Time) {
    assert!(!period.is_zero(), "flush period must be positive");
    let n = m.n_cpus();
    for c in 0..n {
        let mut t = Time::ZERO + period.mul_f64((c + 1) as f64 / (n + 1) as f64);
        while t <= until {
            m.schedule_interrupt(CpuId::new(c as u32), TIMER_FLUSH_VECTOR, t);
            t += period;
        }
    }
}

/// A device interrupt service routine of random duration: mostly short,
/// occasionally long. The long tail is what skews kernel-pmap shootdown
/// times on stock hardware ("there are many short intervals, but few long
/// ones", Section 8), because the handler runs with shootdown IPIs blocked
/// unless the high-priority software interrupt is present.
#[derive(Debug)]
pub struct DeviceHandler {
    chunks_left: Option<u32>,
}

impl DeviceHandler {
    /// Creates the handler; its duration is sampled on first step.
    pub fn new() -> DeviceHandler {
        DeviceHandler { chunks_left: None }
    }
}

impl Default for DeviceHandler {
    fn default() -> DeviceHandler {
        DeviceHandler::new()
    }
}

/// Device handler work proceeds in chunks of this many microseconds.
const DEVICE_CHUNK_US: u64 = 10;

impl<S: HasKernel> Process<S, ()> for DeviceHandler {
    fn step(&mut self, ctx: &mut Ctx<'_, S, ()>) -> Step {
        let chunks = match self.chunks_left {
            Some(c) => c,
            None => {
                let rng = ctx.rng();
                let total_us: u64 = if rng.gen_bool(0.03) {
                    rng.gen_range(80..250)
                } else {
                    rng.gen_range(5..25)
                };
                let c = (total_us / DEVICE_CHUNK_US).max(1) as u32;
                self.chunks_left = Some(c);
                c
            }
        };
        if chunks <= 1 {
            Step::Done(Dur::micros(DEVICE_CHUNK_US))
        } else {
            self.chunks_left = Some(chunks - 1);
            Step::Run(Dur::micros(DEVICE_CHUNK_US))
        }
    }

    fn label(&self) -> &'static str {
        "device-isr"
    }
}

/// A handler that does nothing (the reschedule poke: its purpose is the
/// wakeup, not the body).
#[derive(Debug)]
pub struct NopHandler;

impl<S: HasKernel> Process<S, ()> for NopHandler {
    fn step(&mut self, ctx: &mut Ctx<'_, S, ()>) -> Step {
        Step::Done(ctx.costs().local_op)
    }

    fn label(&self) -> &'static str {
        "resched"
    }
}

/// Pre-schedules device interrupts on every processor until `until`, with
/// the given mean period and full jitter (each gap is uniform in
/// `(0, 2*period)`): device arrivals are bursty, not clocked, so they do
/// not synchronize with the measured workloads.
pub fn schedule_device_interrupts<S, P>(m: &mut Machine<S, P>, period: Dur, until: Time) {
    assert!(
        !period.is_zero(),
        "device interrupt period must be positive"
    );
    let n = m.n_cpus();
    for c in 0..n {
        let mut t = Time::ZERO + period.mul_f64(m.rng_mut().gen_range(0.0..2.0));
        while t <= until {
            m.schedule_interrupt(CpuId::new(c as u32), DEVICE_VECTOR, t);
            t += period.mul_f64(m.rng_mut().gen_range(0.05..1.95));
        }
    }
}

#[derive(Debug)]
enum SwitchPhase {
    DetachOld,
    SpinNewLock,
    AttachNew,
}

/// The context-switch path of the pmap module: detach the old user pmap
/// (flushing the untagged TLB; ASID-tagged buffers keep entries and the
/// pmap stays "in use" until they are explicitly flushed, Section 10),
/// then attach the new one.
///
/// Attaching spins while the target pmap is locked: a processor must not
/// start caching translations of a pmap whose update (and shootdown) is in
/// flight, because the initiator has already decided whom to synchronize
/// with.
#[derive(Debug)]
pub struct SwitchUserPmapProcess {
    new: Option<PmapId>,
    phase: SwitchPhase,
}

impl SwitchUserPmapProcess {
    /// Creates a switch to `new` (or to no user pmap).
    pub fn new(new: Option<PmapId>) -> SwitchUserPmapProcess {
        SwitchUserPmapProcess {
            new,
            phase: SwitchPhase::DetachOld,
        }
    }
}

impl<S: HasKernel> Process<S, ()> for SwitchUserPmapProcess {
    fn step(&mut self, ctx: &mut Ctx<'_, S, ()>) -> Step {
        let me = ctx.cpu_id;
        match self.phase {
            SwitchPhase::DetachOld => {
                let mut cost = ctx.costs().local_op;
                if ctx.shared.kernel_mut().cur_user_pmap[me.index()] == self.new {
                    // Same address space (or staying detached): a thread
                    // switch with no pmap work.
                    return Step::Done(ctx.costs().context_switch);
                }
                if let Some(old) = ctx.shared.kernel_mut().cur_user_pmap[me.index()].take() {
                    let flushed = ctx.shared.kernel_mut().tlbs[me.index()].on_context_switch(old);
                    if flushed > 0 {
                        cost += ctx.costs().tlb_flush_all;
                    }
                    if !ctx.shared.kernel_mut().config.tlb.asid_tagged {
                        ctx.shared
                            .kernel_mut()
                            .pmaps
                            .get_mut(old)
                            .mark_not_in_use(me);
                        // Dropping out of the user set can satisfy an
                        // initiator's wait or change its queue scan.
                        ctx.notify(SYNC_CHANNEL);
                        cost += ctx.bus_write();
                    }
                }
                self.phase = SwitchPhase::SpinNewLock;
                Step::Run(cost)
            }
            SwitchPhase::SpinNewLock => {
                if let Some(new) = self.new {
                    let (contended, live_holder, chan) = {
                        let pmap = ctx.shared.kernel().pmaps.get(new);
                        let contended = pmap.locked_by_other(me);
                        // Every shard shares the umbrella channel, so any
                        // blocking holder can be waited for on shard 0's.
                        let chan = pmap.lock().channel();
                        // A holder that is still alive (or health tracking is
                        // off, in which case every holder counts as alive).
                        let health = ctx.shared.kernel().config.health;
                        let live = pmap.shards().any(|l| {
                            l.holder().is_some_and(|h| {
                                h != me && !(health.enabled && ctx.is_cpu_halted(h))
                            })
                        });
                        (contended, live, chan)
                    };
                    if contended {
                        let health = ctx.shared.kernel().config.health;
                        if health.enabled && !live_holder {
                            // A fail-stop holder never releases. The switch
                            // only waits for the in-flight update to settle,
                            // and a dead updater's half-staged work is redone
                            // by the next (lock-stealing) operation anyway,
                            // so proceeding is as sound as the steal itself.
                            self.phase = SwitchPhase::AttachNew;
                            return Step::Run(ctx.costs().local_op + ctx.bus_read());
                        }
                        let spin = ctx.costs().spin_iter + ctx.costs().cache_read;
                        if let (SpinMode::Event, Some(chan)) =
                            (ctx.shared.kernel().config.spin_mode, chan)
                        {
                            let block = BlockOn::one(chan, spin);
                            if health.enabled {
                                // A dead holder never notifies the channel:
                                // wake at the watchdog timeout so the
                                // liveness probe above eventually runs.
                                let deadline =
                                    ctx.now + ctx.shared.kernel().config.watchdog.timeout;
                                return Step::Block(block.with_deadline(deadline));
                            }
                            return Step::Block(block);
                        }
                        return Step::Run(spin);
                    }
                }
                self.phase = SwitchPhase::AttachNew;
                Step::Run(ctx.costs().local_op)
            }
            SwitchPhase::AttachNew => {
                let mut cost = ctx.costs().context_switch;
                if let Some(new) = self.new {
                    // Recheck the lock in the SAME atomic step as the
                    // attach. An interrupt can delay this step long enough
                    // for an initiator to lock the pmap and scan the user
                    // set without us; attaching anyway would let this
                    // processor demand-load soon-to-be-stale translations
                    // that no shootdown will ever flush. A fail-stop holder
                    // is excused exactly as in SpinNewLock.
                    let health = ctx.shared.kernel().config.health;
                    let relocked = {
                        let pmap = ctx.shared.kernel().pmaps.get(new);
                        pmap.locked_by_other(me)
                            && (!health.enabled
                                || pmap.shards().any(|l| {
                                    l.holder().is_some_and(|h| h != me && !ctx.is_cpu_halted(h))
                                }))
                    };
                    if relocked {
                        ctx.shared.kernel_mut().stats.attach_rechecks += 1;
                        self.phase = SwitchPhase::SpinNewLock;
                        return Step::Run(ctx.costs().spin_iter + ctx.costs().cache_read);
                    }
                    ctx.shared.kernel_mut().pmaps.get_mut(new).mark_in_use(me);
                    ctx.shared.kernel_mut().cur_user_pmap[me.index()] = Some(new);
                    // Joining the user set can redirect a blocked
                    // initiator's queue scan to this processor.
                    ctx.notify(SYNC_CHANNEL);
                    cost += ctx.bus_write();
                }
                Step::Done(cost)
            }
        }
    }

    fn label(&self) -> &'static str {
        "switch-pmap"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::KernelConfig;
    use machtlb_pmap::{Pfn, Prot, Vpn};
    use machtlb_sim::RunStatus;

    #[test]
    fn switch_to_same_pmap_skips_the_flush() {
        let mut m = build_kernel_machine(1, 1, CostModel::multimax(), KernelConfig::default());
        let pmap = {
            let s = m.shared_mut();
            let pmap = s.pmaps.create();
            s.force_active(CpuId::new(0));
            pmap
        };
        m.spawn_at(
            CpuId::new(0),
            Time::ZERO,
            Box::new(SwitchUserPmapProcess::new(Some(pmap))),
        );
        m.run(Time::from_micros(10_000));
        let flushes_after_first = m.shared().tlbs[0].stats().flushes;
        // Load an entry, switch to the same pmap again: it must survive.
        {
            let s = m.shared_mut();
            let pfn = Pfn::new(9);
            s.seed_mapping(pmap, Vpn::new(1), pfn, Prot::READ);
            s.tlbs[0].insert(
                pmap,
                Vpn::new(1),
                machtlb_pmap::Pte::valid(pfn, Prot::READ),
                Time::ZERO,
            );
        }
        m.spawn_at(
            CpuId::new(0),
            Time::from_micros(20_000),
            Box::new(SwitchUserPmapProcess::new(Some(pmap))),
        );
        let r = m.run(Time::from_micros(50_000));
        assert_eq!(r.status, RunStatus::Quiescent);
        let s = m.shared();
        assert_eq!(
            s.tlbs[0].stats().flushes,
            flushes_after_first,
            "no flush on same-pmap switch"
        );
        assert!(
            s.tlbs[0].peek(pmap, Vpn::new(1)).is_some(),
            "entry survived"
        );
        assert_eq!(s.cur_user_pmap[0], Some(pmap));
    }

    #[test]
    fn timer_flush_handler_stamps_and_flushes() {
        let kconfig = KernelConfig {
            strategy: crate::Strategy::TimerDelayed,
            tlb: machtlb_tlb::TlbConfig {
                writeback: machtlb_tlb::WritebackPolicy::Interlocked,
                ..machtlb_tlb::TlbConfig::multimax()
            },
            ..KernelConfig::default()
        };
        let mut m = build_kernel_machine(2, 3, CostModel::multimax(), kconfig);
        {
            let s = m.shared_mut();
            let pmap = s.pmaps.create();
            let pfn = s.frames.alloc();
            s.tlbs[1].insert(
                pmap,
                Vpn::new(4),
                machtlb_pmap::Pte::valid(pfn, Prot::READ),
                Time::ZERO,
            );
        }
        m.schedule_interrupt(CpuId::new(1), TIMER_FLUSH_VECTOR, Time::from_micros(100));
        m.run(Time::from_micros(10_000));
        let s = m.shared();
        assert!(s.tlbs[1].is_empty(), "the handler flushed the buffer");
        assert!(
            s.tlb_flush_stamp[1] >= Time::from_micros(100),
            "and stamped the epoch clock"
        );
        assert_eq!(s.tlb_flush_stamp[0], Time::ZERO, "cpu0 untouched");
    }

    #[test]
    fn device_handler_durations_are_bounded() {
        // Dispatch many device interrupts and check every handler finished
        // within the configured bounds (5us..250us bodies).
        let mut m = build_kernel_machine(1, 9, CostModel::multimax(), KernelConfig::default());
        for i in 0..50u64 {
            m.schedule_interrupt(CpuId::new(0), DEVICE_VECTOR, Time::from_micros(i * 5_000));
        }
        let r = m.run(Time::from_micros(300_000_000));
        assert_eq!(r.status, RunStatus::Quiescent);
        assert_eq!(m.cpu(CpuId::new(0)).stats().interrupts, 50);
    }

    #[test]
    fn pending_commits_mature_only_after_every_processor_flushes() {
        let kconfig = KernelConfig {
            strategy: crate::Strategy::TimerDelayed,
            tlb: machtlb_tlb::TlbConfig {
                writeback: machtlb_tlb::WritebackPolicy::Interlocked,
                ..machtlb_tlb::TlbConfig::multimax()
            },
            ..KernelConfig::default()
        };
        let mut m = build_kernel_machine(2, 5, CostModel::multimax(), kconfig);
        {
            let s = m.shared_mut();
            let pmap = s.pmaps.create();
            s.pending_commits.push(crate::PendingCommit {
                pmap,
                changes: vec![(Vpn::new(1), machtlb_pmap::Pte::INVALID)],
                applied_at: Time::from_micros(50),
            });
        }
        // Only cpu0 flushes: the commit must not mature.
        m.schedule_interrupt(CpuId::new(0), TIMER_FLUSH_VECTOR, Time::from_micros(100));
        m.run(Time::from_micros(5_000));
        assert_eq!(m.shared().pending_commits.len(), 1);
        // cpu1 flushes too: now it matures.
        m.schedule_interrupt(CpuId::new(1), TIMER_FLUSH_VECTOR, Time::from_micros(10_000));
        m.run(Time::from_micros(50_000));
        assert!(m.shared().pending_commits.is_empty());
    }
}
