//! Adversarial fault-schedule fuzzing: randomized compound-fault
//! schedules, replayable serialization, and a delta-debugging shrinker.
//!
//! The soak harness cycles five hand-written fault shapes — it explores
//! the schedules we already thought of. This module samples schedules the
//! catalog never wrote: a [`FaultSchedule`] composes an arbitrary number
//! of timed fault events (halts, offline/revive windows, dispatch
//! stalls including the 100 ms wrongful-eviction trigger, and the IPI
//! perturbation rules) against victim sets of three or more processors
//! spanning NUMA nodes and fanout-relay positions.
//!
//! Three properties make the fuzzer usable rather than merely noisy:
//!
//! - **Determinism.** A schedule compiles to a [`ChaosConfig`] whose
//!   faults are counter- or time-triggered, never randomly drawn at run
//!   time, so the same schedule always replays bit-identically. The
//!   generator itself is a [`SplitMix64`] stream: the same generator seed
//!   always produces the same schedule sequence.
//! - **Serialization.** Every schedule round-trips through JSON
//!   ([`schedule_json`] / [`parse_schedule`]) losslessly — all instants
//!   are integral microseconds — so a failing schedule is a committable,
//!   replayable artifact: `machtlb replay --schedule repro.json`.
//! - **Shrinking.** On a red run, [`shrink`] removes events, normalizes
//!   sabotage flags toward their defaults, retimes what remains onto
//!   canonical instants, and shrinks the machine to the victims actually
//!   needed, until the failure is minimal. The shrinker is deterministic
//!   and counts its replays, so minimality claims are testable.
//!
//! Red classification matches the chaos harness: a run is red iff it
//! classifies [`Survival::DetectedFatal`] — a checker violation, an
//! unrecovered watchdog give-up, an exhausted FailOp budget, or a
//! campaign that never completed.

use machtlb_sim::{
    CpuId, Dur, FaultPlan, Halt, IpiDelay, IpiDrop, IpiDuplicate, IpiReorder, IsrStretch, Offline,
    ResponderStall, Time, Topology,
};

use crate::chaos::{run_chaos, ChaosConfig, ChaosOutcome, ChaosPlan, Survival};
use crate::health::RecoveryPolicy;
use crate::kernel::SHOOTDOWN_VECTOR;

/// A dispatch stretch at or beyond this length overshoots the chaos
/// watchdog's give-up horizon: the stalled-but-alive victim is wrongly
/// evicted and must self-fence on resume — the wrongful-eviction trigger.
pub const WRONGFUL_STALL_US: u64 = 100_000;

// ---------------------------------------------------------------------
// The RNG
// ---------------------------------------------------------------------

/// The generator's random stream: SplitMix64, written out in full so
/// schedule generation never depends on an external crate's internals
/// staying stable. Same seed, same stream, forever.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A stream seeded with `seed`.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A draw in `0..n` (n > 0). The modulo bias is irrelevant for
    /// schedule sampling.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// True with probability `pct`/100.
    pub fn chance(&mut self, pct: u64) -> bool {
        self.below(100) < pct
    }
}

// ---------------------------------------------------------------------
// The schedule
// ---------------------------------------------------------------------

/// One timed fault event inside a [`FaultSchedule`]. All instants and
/// durations are integral microseconds, so serialization is lossless.
///
/// The five IPI/dispatch perturbation rules (`Delay` … `IsrStretch`) are
/// *singletons*: the machine layer holds at most one of each, and
/// [`FaultSchedule::validate`] rejects duplicates. The processor-targeted
/// rules (`Stall`, `Halt`, `Offline`) are event lists — a schedule arms
/// as many as it likes, against as many victims as it likes, with at
/// most one fail-stop (`Halt` or `Offline`) per victim.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScheduleEvent {
    /// Delay every `every_nth` shootdown IPI by `extra_us`.
    Delay {
        /// Fire on every `every_nth` matching send (1 = all).
        every_nth: u64,
        /// Extra delivery latency, microseconds.
        extra_us: u64,
    },
    /// Drop every `every_nth` shootdown IPI, `max_drops` in total.
    Drop {
        /// Fire on every `every_nth` matching send (1 = all).
        every_nth: u64,
        /// Total drops across the run.
        max_drops: u64,
    },
    /// Deliver every `every_nth` shootdown IPI twice.
    Duplicate {
        /// Fire on every `every_nth` matching send (1 = all).
        every_nth: u64,
        /// How much later the duplicate copy lands, microseconds.
        extra_us: u64,
    },
    /// Hold every `every_nth` shootdown IPI back so later sends pass it.
    Reorder {
        /// Fire on every `every_nth` matching send (1 = all).
        every_nth: u64,
        /// How long the held delivery waits, microseconds.
        hold_us: u64,
    },
    /// Stretch every device-class dispatch (long interrupt-masked
    /// windows on responders).
    IsrStretch {
        /// Extra entry cost per dispatch, microseconds.
        extra_us: u64,
    },
    /// Stall `cpu`'s next `times` shootdown dispatches by `extra_us`
    /// each. At [`WRONGFUL_STALL_US`] and beyond this is the
    /// wrongful-eviction trigger.
    Stall {
        /// The stalled processor.
        cpu: u32,
        /// Extra dispatch cost per stalled dispatch, microseconds.
        extra_us: u64,
        /// Dispatches stalled before the rule exhausts.
        times: u64,
    },
    /// Fail-stop `cpu` forever at `at_us`.
    Halt {
        /// The halted processor.
        cpu: u32,
        /// The halt instant, microseconds.
        at_us: u64,
    },
    /// Take `cpu` offline at `at_us` and revive it (through the fenced
    /// rejoin) at `revive_at_us`.
    Offline {
        /// The processor taken offline.
        cpu: u32,
        /// The offline instant, microseconds.
        at_us: u64,
        /// The revival instant, microseconds (must be later).
        revive_at_us: u64,
    },
}

impl ScheduleEvent {
    /// The event's kind name, as serialized in the JSON `kind` field.
    pub fn kind(&self) -> &'static str {
        match self {
            ScheduleEvent::Delay { .. } => "delay",
            ScheduleEvent::Drop { .. } => "drop",
            ScheduleEvent::Duplicate { .. } => "duplicate",
            ScheduleEvent::Reorder { .. } => "reorder",
            ScheduleEvent::IsrStretch { .. } => "isr-stretch",
            ScheduleEvent::Stall { .. } => "stall",
            ScheduleEvent::Halt { .. } => "halt",
            ScheduleEvent::Offline { .. } => "offline",
        }
    }

    /// The targeted processor, for the cpu-targeted kinds.
    pub fn cpu(&self) -> Option<u32> {
        match *self {
            ScheduleEvent::Stall { cpu, .. }
            | ScheduleEvent::Halt { cpu, .. }
            | ScheduleEvent::Offline { cpu, .. } => Some(cpu),
            _ => None,
        }
    }

    fn is_fail_stop(&self) -> bool {
        matches!(
            self,
            ScheduleEvent::Halt { .. } | ScheduleEvent::Offline { .. }
        )
    }

    fn is_singleton(&self) -> bool {
        self.cpu().is_none()
    }
}

/// A complete, self-contained fuzz schedule: machine shape, kernel
/// sabotage flags, and the fault-event list. Compiles to a
/// [`ChaosConfig`] via [`FaultSchedule::compile`]; serializes via
/// [`schedule_json`]; replays bit-identically.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultSchedule {
    /// The machine seed (device-interrupt jitter).
    pub seed: u64,
    /// Processors in the machine (>= 4).
    pub n_cpus: usize,
    /// Reprotect/restore rounds the driver performs.
    pub rounds: u64,
    /// NUMA nodes (1 = the flat single-bus machine).
    pub nodes: usize,
    /// Multicast IPI fanout degree (1 = the paper's unicast loop).
    pub fanout: usize,
    /// Whether eviction/rejoin fencing is enabled. `false` is the
    /// beyond-envelope sabotage used by known-bad schedules.
    pub fencing: bool,
    /// Arm the final read-only reprotect before the sentinel — the
    /// stale-translation probe for revived and self-fencing victims.
    pub final_ro: bool,
    /// Park a never-releasing lock holder on the last processor (which
    /// the schedule must then fail-stop).
    pub grab_lock: bool,
    /// Run a redundant co-initiating driver on processor 1.
    pub co_initiator: bool,
    /// Recover dead lock holders through [`RecoveryPolicy::FailOp`]
    /// (retry driver) instead of the default fence-and-steal.
    pub failop: bool,
    /// Whether the schedule is declared inside the tolerable envelope: a
    /// red run on a tolerable schedule is a finding, a green run on an
    /// intolerable one is a silent pass.
    pub tolerable: bool,
    /// The fault events.
    pub events: Vec<ScheduleEvent>,
}

/// The revival instant the generator uses, scaled with machine size like
/// the chaos catalog: the revival must land after the finale's reprotect
/// or the stale-translation probe never probes anything.
pub fn revive_floor_us(n_cpus: usize) -> u64 {
    120_000u64.max(50_000 + 2_500 * n_cpus as u64)
}

/// The offline/halt instant floor: the victim must have won the
/// serialized bus and cached its stale entry before it can die holding
/// one.
pub fn offline_floor_us(n_cpus: usize) -> u64 {
    2_000u64.max(100 * n_cpus as u64)
}

impl FaultSchedule {
    /// The distinct processors targeted by cpu-targeted events, sorted.
    pub fn victims(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self.events.iter().filter_map(|e| e.cpu()).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Structural validity: every event names a live non-initiator
    /// processor, budgets and instants are sane, singleton rules are not
    /// duplicated, no victim is fail-stopped twice, and the sabotage
    /// flags are self-consistent (a parked lock holder must actually be
    /// fail-stopped or the drivers spin on a live holder forever).
    pub fn validate(&self) -> Result<(), String> {
        if self.n_cpus < 4 {
            return Err(format!("n_cpus {} < 4", self.n_cpus));
        }
        if self.rounds == 0 {
            return Err("rounds must be at least 1".into());
        }
        if self.nodes == 0 || self.fanout == 0 {
            return Err("nodes and fanout must be at least 1".into());
        }
        if self.nodes > 1 {
            let node_cpus = self.n_cpus.div_ceil(self.nodes);
            if node_cpus * (self.nodes - 1) >= self.n_cpus {
                return Err(format!(
                    "{} nodes leave no processor for the last node on {} cpus",
                    self.nodes, self.n_cpus
                ));
            }
        }
        let last = self.n_cpus as u32 - 1;
        let mut seen_singleton: Vec<&'static str> = Vec::new();
        let mut fail_stopped: Vec<u32> = Vec::new();
        for e in &self.events {
            if e.is_singleton() {
                if seen_singleton.contains(&e.kind()) {
                    return Err(format!("duplicate singleton rule: {}", e.kind()));
                }
                seen_singleton.push(e.kind());
            }
            if let Some(cpu) = e.cpu() {
                if cpu == 0 {
                    return Err(format!("{} targets cpu0, the primary driver", e.kind()));
                }
                if cpu as usize >= self.n_cpus {
                    return Err(format!("{} targets cpu{cpu} out of range", e.kind()));
                }
                if e.is_fail_stop() {
                    if fail_stopped.contains(&cpu) {
                        return Err(format!("cpu{cpu} fail-stopped twice"));
                    }
                    fail_stopped.push(cpu);
                }
            }
            match *e {
                ScheduleEvent::Delay { every_nth: 0, .. }
                | ScheduleEvent::Drop { every_nth: 0, .. }
                | ScheduleEvent::Duplicate { every_nth: 0, .. }
                | ScheduleEvent::Reorder { every_nth: 0, .. } => {
                    return Err(format!("{}: every_nth must be > 0", e.kind()));
                }
                ScheduleEvent::Stall { times: 0, .. } => {
                    return Err("stall: times must be > 0".into());
                }
                ScheduleEvent::Offline {
                    at_us,
                    revive_at_us,
                    ..
                } if revive_at_us <= at_us => {
                    return Err("offline: revive_at_us must be after at_us".into());
                }
                _ => {}
            }
        }
        if self.grab_lock
            && !self
                .events
                .iter()
                .any(|e| e.is_fail_stop() && e.cpu() == Some(last))
        {
            return Err(format!(
                "grab_lock parks a never-releasing holder on cpu{last}, which \
                 must be fail-stopped or every driver spins on it forever"
            ));
        }
        Ok(())
    }

    /// Compiles the schedule into a runnable [`ChaosConfig`]. Bounds are
    /// scaled with the processor count like the soak harness (with extra
    /// headroom: fuzz schedules stack wrongful stalls and late revives
    /// that the catalog never combines).
    pub fn compile(&self) -> ChaosConfig {
        let v = SHOOTDOWN_VECTOR;
        let mut fault = FaultPlan::none(v);
        for e in &self.events {
            match *e {
                ScheduleEvent::Delay {
                    every_nth,
                    extra_us,
                } => {
                    fault.delay = Some(IpiDelay {
                        every_nth,
                        extra: Dur::micros(extra_us),
                    });
                }
                ScheduleEvent::Drop {
                    every_nth,
                    max_drops,
                } => {
                    fault.drop = Some(IpiDrop {
                        every_nth,
                        max_drops,
                    });
                }
                ScheduleEvent::Duplicate {
                    every_nth,
                    extra_us,
                } => {
                    fault.duplicate = Some(IpiDuplicate {
                        every_nth,
                        extra: Dur::micros(extra_us),
                    });
                }
                ScheduleEvent::Reorder { every_nth, hold_us } => {
                    fault.reorder = Some(IpiReorder {
                        every_nth,
                        hold: Dur::micros(hold_us),
                    });
                }
                ScheduleEvent::IsrStretch { extra_us } => {
                    fault.isr_stretch = Some(IsrStretch {
                        extra: Dur::micros(extra_us),
                    });
                }
                ScheduleEvent::Stall {
                    cpu,
                    extra_us,
                    times,
                } => {
                    fault.stalls.push(ResponderStall {
                        cpu: CpuId::new(cpu),
                        extra: Dur::micros(extra_us),
                        times,
                    });
                }
                ScheduleEvent::Halt { cpu, at_us } => {
                    fault.halts.push(Halt {
                        cpu: CpuId::new(cpu),
                        at: Time::from_micros(at_us),
                    });
                }
                ScheduleEvent::Offline {
                    cpu,
                    at_us,
                    revive_at_us,
                } => {
                    fault.offlines.push(Offline {
                        cpu: CpuId::new(cpu),
                        at: Time::from_micros(at_us),
                        revive_at: Time::from_micros(revive_at_us),
                    });
                }
            }
        }
        let plan = ChaosPlan {
            name: "fuzz",
            fault,
            queue_capacity: None,
            poison_cpu: None,
            watchdog_enabled: true,
            fencing: self.fencing,
            final_ro: self.final_ro,
            grab_lock: self.grab_lock,
            policy: if self.failop {
                RecoveryPolicy::FailOp
            } else {
                RecoveryPolicy::FenceAndSteal
            },
            failop_retries: 3,
            co_initiator: self.co_initiator,
            tolerable: self.tolerable,
        };
        let mut cfg = ChaosConfig::new(self.n_cpus, self.seed, Some(plan));
        cfg.rounds = self.rounds;
        // Dead victims are given up on sequentially, ~75 ms of watchdog
        // horizon each, and every wrongful stall adds its own stretch
        // before the victim self-fences — so the wall-clock budget must
        // scale with the fail-stop count, not just the machine size.
        let fail_stops = self.events.iter().filter(|e| e.is_fail_stop()).count() as u64;
        let wrongful = self
            .events
            .iter()
            .filter(|e| {
                matches!(e, ScheduleEvent::Stall { extra_us, .. } if *extra_us >= WRONGFUL_STALL_US)
            })
            .count() as u64;
        cfg.max_steps = 8_000_000 + self.n_cpus as u64 * 750_000;
        cfg.limit = Time::from_micros(
            300_000 + self.n_cpus as u64 * 6_000 + 90_000 * fail_stops + 150_000 * wrongful,
        );
        if self.nodes > 1 {
            cfg.kconfig.topology = Some(Topology::numa(
                self.nodes,
                self.n_cpus.div_ceil(self.nodes),
                Dur::micros(4),
            ));
        }
        cfg.kconfig.fanout = self.fanout;
        cfg
    }
}

/// Runs one schedule to its [`ChaosOutcome`].
pub fn run_schedule(s: &FaultSchedule) -> ChaosOutcome {
    run_chaos(&s.compile())
}

/// The red predicate: a run that was caught rather than survived.
pub fn is_red(outcome: &ChaosOutcome) -> bool {
    outcome.survival == Survival::DetectedFatal
}

// ---------------------------------------------------------------------
// The generator
// ---------------------------------------------------------------------

/// Samples one schedule from the stream, with coverage-biased victim
/// selection: beyond the uniform pool, victims are preferentially drawn
/// from the roles the protocol's recovery machinery exists for —
/// fanout-relay positions (node-leader processors), the co-initiator,
/// the parked lock holder, and offline victims become rejoiners. Every
/// sampled schedule validates, stays inside the tolerable envelope
/// (fencing on, watchdog on, bounded drops), and arms at least three
/// victims with at most one fail-stop each.
pub fn generate_schedule(rng: &mut SplitMix64, n_cpus: usize, rounds: u64) -> FaultSchedule {
    assert!(n_cpus >= 6, "the generator needs room for 3+ victims");
    let n = n_cpus as u32;
    let last = n - 1;

    // Machine shape: NUMA nodes only where they divide the machine, so
    // node-leader arithmetic stays exact.
    let nodes = *pick(rng, &[1usize, 2, 4])
        .iter()
        .find(|&&k| k == 1 || (n_cpus.is_multiple_of(k) && n_cpus / k >= 2))
        .unwrap_or(&1);
    let fanout = pick(rng, &[1usize, 1, 4, 8])[0];

    let grab_lock = rng.chance(20);
    let co_initiator = rng.chance(25);
    let failop = grab_lock && rng.chance(50);

    // The victim pool: never cpu0 (the primary driver); the last
    // processor is reserved for the parked holder when grab_lock is
    // armed; cpu1 is in the pool only through the initiator role below.
    // The draw is clamped to the eligible pool so small machines (where
    // the reservations eat most of it) still terminate: at the 6-cpu
    // floor the pool bottoms out at exactly the 3-victim minimum.
    let mut victims: Vec<u32> = Vec::new();
    let pool = (n_cpus - 1) as u64 - u64::from(grab_lock) - u64::from(!co_initiator);
    let n_victims = (3 + rng.below(3)).min(pool); // 3..=5
    let node_cpus = (n_cpus / nodes) as u32;

    // Coverage-biased roles, tried first with 50% weight each draw.
    let mut roles: Vec<u32> = Vec::new();
    if nodes > 1 || fanout > 1 {
        // Node leaders / relay positions.
        for k in 1..nodes as u32 {
            roles.push(k * node_cpus);
        }
    }
    if co_initiator {
        roles.push(1); // the redundant initiator itself
    }
    if !grab_lock {
        roles.push(last); // the classic holder/victim position
    }
    while (victims.len() as u64) < n_victims {
        let pick_role = !roles.is_empty() && rng.chance(50);
        let c = if pick_role {
            roles[rng.below(roles.len() as u64) as usize]
        } else {
            1 + rng.below(u64::from(n - 1)) as u32
        };
        let reserved = c == 0 || (grab_lock && c == last) || (!co_initiator && c == 1);
        if !reserved && !victims.contains(&c) {
            victims.push(c);
        }
    }

    // Event bundles, one per victim, at most one fail-stop each. The
    // wrongful-eviction trigger is rationed: every armed 100 ms stall
    // extends the campaign's tail, and the compile bounds budget two.
    let mut events: Vec<ScheduleEvent> = Vec::new();
    let mut wrongful_budget = 2u64;
    let mut final_ro = false;
    for &cpu in &victims {
        let roll = rng.below(100);
        if roll < 30 {
            // Frozen mid-dispatch, then fail-stopped.
            events.push(ScheduleEvent::Stall {
                cpu,
                extra_us: 8_000,
                times: 1,
            });
            events.push(ScheduleEvent::Halt {
                cpu,
                at_us: 1_000 + 500 * rng.below(23),
            });
        } else if roll < 55 {
            // Offline mid-run, revived through the fence: a rejoiner.
            events.push(ScheduleEvent::Stall {
                cpu,
                extra_us: 8_000,
                times: 1,
            });
            events.push(ScheduleEvent::Offline {
                cpu,
                at_us: offline_floor_us(n_cpus) + 500 * rng.below(4),
                revive_at_us: revive_floor_us(n_cpus) + 500 * rng.below(8),
            });
            final_ro = true;
        } else if roll < 75 && wrongful_budget > 0 {
            // Slow but alive: the wrongful-eviction trigger.
            wrongful_budget -= 1;
            events.push(ScheduleEvent::Stall {
                cpu,
                extra_us: WRONGFUL_STALL_US,
                times: 1,
            });
            final_ro = true;
        } else {
            // A benign (sub-horizon) stall.
            events.push(ScheduleEvent::Stall {
                cpu,
                extra_us: 8_000,
                times: 1 + rng.below(2),
            });
        }
    }

    // Global IPI/dispatch perturbations, layered over the victims.
    if rng.chance(35) {
        events.push(ScheduleEvent::Delay {
            every_nth: 1 + rng.below(3),
            extra_us: 100 + 100 * rng.below(10),
        });
    }
    if rng.chance(25) {
        events.push(ScheduleEvent::Duplicate {
            every_nth: 1 + rng.below(3),
            extra_us: 100 + 100 * rng.below(5),
        });
    }
    if rng.chance(25) {
        events.push(ScheduleEvent::Reorder {
            every_nth: 1 + rng.below(3),
            hold_us: 100 + 100 * rng.below(5),
        });
    }
    if rng.chance(25) {
        events.push(ScheduleEvent::IsrStretch {
            extra_us: 200 + 100 * rng.below(9),
        });
    }
    if rng.chance(20) {
        // Bounded: the watchdog's retry budget absorbs up to a couple of
        // lost IPIs; unbounded loss is beyond the envelope by design.
        events.push(ScheduleEvent::Drop {
            every_nth: 1 + rng.below(2),
            max_drops: 1 + rng.below(2),
        });
    }
    if grab_lock {
        // The mandated fail-stop of the parked holder.
        events.push(ScheduleEvent::Halt {
            cpu: last,
            at_us: 1_000,
        });
    }
    if !final_ro {
        final_ro = rng.chance(40);
    }

    let s = FaultSchedule {
        seed: rng.below(1_000_000),
        n_cpus,
        rounds,
        nodes,
        fanout,
        fencing: true,
        final_ro,
        grab_lock,
        co_initiator,
        failop,
        tolerable: true,
        events,
    };
    debug_assert!(s.validate().is_ok(), "{:?}", s.validate());
    s
}

fn pick<'a, T>(rng: &mut SplitMix64, options: &'a [T]) -> &'a [T] {
    let i = rng.below(options.len() as u64) as usize;
    &options[i..]
}

// ---------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------

fn push_event_json(s: &mut String, e: &ScheduleEvent) {
    match *e {
        ScheduleEvent::Delay {
            every_nth,
            extra_us,
        } => s.push_str(&format!(
            "{{\"kind\": \"delay\", \"every_nth\": {every_nth}, \"extra_us\": {extra_us}}}"
        )),
        ScheduleEvent::Drop {
            every_nth,
            max_drops,
        } => s.push_str(&format!(
            "{{\"kind\": \"drop\", \"every_nth\": {every_nth}, \"max_drops\": {max_drops}}}"
        )),
        ScheduleEvent::Duplicate {
            every_nth,
            extra_us,
        } => s.push_str(&format!(
            "{{\"kind\": \"duplicate\", \"every_nth\": {every_nth}, \"extra_us\": {extra_us}}}"
        )),
        ScheduleEvent::Reorder { every_nth, hold_us } => s.push_str(&format!(
            "{{\"kind\": \"reorder\", \"every_nth\": {every_nth}, \"hold_us\": {hold_us}}}"
        )),
        ScheduleEvent::IsrStretch { extra_us } => s.push_str(&format!(
            "{{\"kind\": \"isr-stretch\", \"extra_us\": {extra_us}}}"
        )),
        ScheduleEvent::Stall {
            cpu,
            extra_us,
            times,
        } => s.push_str(&format!(
            "{{\"kind\": \"stall\", \"cpu\": {cpu}, \"extra_us\": {extra_us}, \"times\": {times}}}"
        )),
        ScheduleEvent::Halt { cpu, at_us } => s.push_str(&format!(
            "{{\"kind\": \"halt\", \"cpu\": {cpu}, \"at_us\": {at_us}}}"
        )),
        ScheduleEvent::Offline {
            cpu,
            at_us,
            revive_at_us,
        } => s.push_str(&format!(
            "{{\"kind\": \"offline\", \"cpu\": {cpu}, \"at_us\": {at_us}, \
             \"revive_at_us\": {revive_at_us}}}"
        )),
    }
}

/// Renders a schedule as JSON (the `repro.json` format; see DESIGN.md
/// §17 for the schema). Integral microseconds throughout: the round trip
/// through [`parse_schedule`] is lossless and the replay bit-identical.
pub fn schedule_json(s: &FaultSchedule) -> String {
    let mut out = format!(
        "{{\n  \"version\": 1,\n  \"seed\": {},\n  \"cpus\": {},\n  \"rounds\": {},\n  \
         \"nodes\": {},\n  \"fanout\": {},\n  \"fencing\": {},\n  \"final_ro\": {},\n  \
         \"grab_lock\": {},\n  \"co_initiator\": {},\n  \"failop\": {},\n  \
         \"tolerable\": {},\n  \"events\": [\n",
        s.seed,
        s.n_cpus,
        s.rounds,
        s.nodes,
        s.fanout,
        s.fencing,
        s.final_ro,
        s.grab_lock,
        s.co_initiator,
        s.failop,
        s.tolerable,
    );
    for (i, e) in s.events.iter().enumerate() {
        out.push_str("    ");
        push_event_json(&mut out, e);
        out.push_str(if i + 1 == s.events.len() { "\n" } else { ",\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// A minimal JSON value, just enough for the schedule schema (the repo
/// vendors no JSON dependency). Numbers are unsigned integers — the
/// schema has no floats by construction.
#[derive(Clone, Debug, PartialEq)]
enum Json {
    Obj(Vec<(String, Json)>),
    Arr(Vec<Json>),
    Str(String),
    Num(u64),
    Bool(bool),
}

struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Parser<'a> {
        Parser {
            b: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .b
            .get(self.pos)
            .is_some_and(|c| matches!(c, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.b.get(self.pos).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        match self.peek() {
            Some(got) if got == c => {
                self.pos += 1;
                Ok(())
            }
            got => Err(format!(
                "schedule json: expected '{}' at byte {}, found {:?}",
                c as char,
                self.pos,
                got.map(|g| g as char)
            )),
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(c) if c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "schedule json: unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn keyword(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("schedule json: bad keyword at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self.b.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.b[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("schedule json: bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.b.get(self.pos).copied() {
                None => return Err("schedule json: unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .b
                        .get(self.pos)
                        .copied()
                        .ok_or("schedule json: bad escape")?;
                    out.push(match esc {
                        b'"' => '"',
                        b'\\' => '\\',
                        b'/' => '/',
                        b'n' => '\n',
                        b't' => '\t',
                        b'r' => '\r',
                        other => {
                            return Err(format!(
                                "schedule json: unsupported escape \\{}",
                                other as char
                            ))
                        }
                    });
                    self.pos += 1;
                }
                Some(c) => {
                    // Multi-byte UTF-8 is copied through verbatim.
                    let ch_len = match c {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = (self.pos + ch_len).min(self.b.len());
                    out.push_str(
                        std::str::from_utf8(&self.b[self.pos..end])
                            .map_err(|_| "schedule json: bad utf-8")?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("schedule json: bad object at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("schedule json: bad array at byte {}", self.pos)),
            }
        }
    }
}

impl Json {
    fn field<'a>(&'a self, name: &str) -> Result<&'a Json, String> {
        match self {
            Json::Obj(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("schedule json: missing field \"{name}\"")),
            _ => Err(format!(
                "schedule json: \"{name}\" looked up on a non-object"
            )),
        }
    }

    fn num(&self, name: &str) -> Result<u64, String> {
        match self.field(name)? {
            Json::Num(n) => Ok(*n),
            other => Err(format!(
                "schedule json: \"{name}\" is not a number: {other:?}"
            )),
        }
    }

    fn bool(&self, name: &str) -> Result<bool, String> {
        match self.field(name)? {
            Json::Bool(b) => Ok(*b),
            other => Err(format!(
                "schedule json: \"{name}\" is not a bool: {other:?}"
            )),
        }
    }

    fn str(&self, name: &str) -> Result<&str, String> {
        match self.field(name)? {
            Json::Str(s) => Ok(s),
            other => Err(format!(
                "schedule json: \"{name}\" is not a string: {other:?}"
            )),
        }
    }
}

fn parse_event(v: &Json) -> Result<ScheduleEvent, String> {
    Ok(match v.str("kind")? {
        "delay" => ScheduleEvent::Delay {
            every_nth: v.num("every_nth")?,
            extra_us: v.num("extra_us")?,
        },
        "drop" => ScheduleEvent::Drop {
            every_nth: v.num("every_nth")?,
            max_drops: v.num("max_drops")?,
        },
        "duplicate" => ScheduleEvent::Duplicate {
            every_nth: v.num("every_nth")?,
            extra_us: v.num("extra_us")?,
        },
        "reorder" => ScheduleEvent::Reorder {
            every_nth: v.num("every_nth")?,
            hold_us: v.num("hold_us")?,
        },
        "isr-stretch" => ScheduleEvent::IsrStretch {
            extra_us: v.num("extra_us")?,
        },
        "stall" => ScheduleEvent::Stall {
            cpu: v.num("cpu")? as u32,
            extra_us: v.num("extra_us")?,
            times: v.num("times")?,
        },
        "halt" => ScheduleEvent::Halt {
            cpu: v.num("cpu")? as u32,
            at_us: v.num("at_us")?,
        },
        "offline" => ScheduleEvent::Offline {
            cpu: v.num("cpu")? as u32,
            at_us: v.num("at_us")?,
            revive_at_us: v.num("revive_at_us")?,
        },
        other => return Err(format!("schedule json: unknown event kind \"{other}\"")),
    })
}

/// Parses a schedule produced by [`schedule_json`] (or hand-edited — the
/// result is validated). The inverse of the serializer: parse ∘ render
/// is the identity.
pub fn parse_schedule(text: &str) -> Result<FaultSchedule, String> {
    let mut p = Parser::new(text);
    let root = p.value()?;
    p.skip_ws();
    if p.pos != p.b.len() {
        return Err(format!("schedule json: trailing garbage at byte {}", p.pos));
    }
    let version = root.num("version")?;
    if version != 1 {
        return Err(format!("schedule json: unsupported version {version}"));
    }
    let events = match root.field("events")? {
        Json::Arr(items) => items
            .iter()
            .map(parse_event)
            .collect::<Result<Vec<_>, _>>()?,
        other => {
            return Err(format!(
                "schedule json: \"events\" is not an array: {other:?}"
            ))
        }
    };
    let s = FaultSchedule {
        seed: root.num("seed")?,
        n_cpus: root.num("cpus")? as usize,
        rounds: root.num("rounds")?,
        nodes: root.num("nodes")? as usize,
        fanout: root.num("fanout")? as usize,
        fencing: root.bool("fencing")?,
        final_ro: root.bool("final_ro")?,
        grab_lock: root.bool("grab_lock")?,
        co_initiator: root.bool("co_initiator")?,
        failop: root.bool("failop")?,
        tolerable: root.bool("tolerable")?,
        events,
    };
    s.validate()?;
    Ok(s)
}

// ---------------------------------------------------------------------
// The campaign
// ---------------------------------------------------------------------

/// A fuzz campaign's inputs.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// The generator seed: the whole campaign is a pure function of it.
    pub seed: u64,
    /// Schedules to run.
    pub budget: u64,
    /// Machine size; 0 rotates through the 32/48/64 acceptance band.
    pub n_cpus: usize,
    /// Reprotect/restore rounds per schedule.
    pub rounds: u64,
}

impl FuzzConfig {
    /// A standard campaign at the acceptance band's sizes.
    pub fn new(seed: u64, budget: u64) -> FuzzConfig {
        FuzzConfig {
            seed,
            budget,
            n_cpus: 0,
            rounds: 3,
        }
    }
}

/// One campaign run's summary (the full schedule is regenerable from the
/// campaign seed and the run index; red runs also carry it verbatim).
#[derive(Clone, Debug, PartialEq)]
pub struct FuzzRun {
    /// Index within the campaign.
    pub index: u64,
    /// Processors in the machine.
    pub n_cpus: usize,
    /// The schedule's machine seed.
    pub machine_seed: u64,
    /// Events in the schedule.
    pub events: usize,
    /// Distinct victim processors.
    pub victims: usize,
    /// The verdict.
    pub survival: Survival,
    /// Whether the run was red (caught) — a finding on a tolerable
    /// schedule.
    pub red: bool,
    /// Simulated end of the run, integral microseconds (deterministic —
    /// the bench headline that baselines can hold).
    pub sim_us: u64,
}

/// What the campaign exercised, for the coverage artifact: a fuzzer that
/// silently stops generating a fault class looks green for the wrong
/// reason, so the counts are part of the contract.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Coverage {
    /// Schedules run.
    pub schedules: u64,
    /// Total events across all schedules.
    pub events: u64,
    /// Events by kind, in [`Coverage::KIND_NAMES`] order.
    pub by_kind: [u64; 8],
    /// Stalls at or beyond the wrongful-eviction horizon.
    pub wrongful_stalls: u64,
    /// Victims in relay (node-leader) positions.
    pub relay_victims: u64,
    /// Victims that were the parked lock holder.
    pub holder_victims: u64,
    /// Victims that were the co-initiator.
    pub initiator_victims: u64,
    /// Victims with an offline/revive window (rejoiners).
    pub rejoiner_victims: u64,
    /// Schedules on a multi-node machine.
    pub numa_schedules: u64,
    /// Schedules with multicast fanout > 1.
    pub fanout_schedules: u64,
    /// Schedules with a parked lock holder.
    pub grab_lock_schedules: u64,
    /// Schedules with a redundant co-initiator.
    pub co_initiator_schedules: u64,
    /// Schedules recovering under [`RecoveryPolicy::FailOp`].
    pub failop_schedules: u64,
    /// Schedules arming the final read-only probe.
    pub final_ro_schedules: u64,
    /// Outcomes by survival: tolerated, degraded, detected-fatal.
    pub survivals: [u64; 3],
}

impl Coverage {
    /// The `by_kind` axis labels.
    pub const KIND_NAMES: [&'static str; 8] = [
        "delay",
        "drop",
        "duplicate",
        "reorder",
        "isr-stretch",
        "stall",
        "halt",
        "offline",
    ];

    fn kind_index(e: &ScheduleEvent) -> usize {
        match e {
            ScheduleEvent::Delay { .. } => 0,
            ScheduleEvent::Drop { .. } => 1,
            ScheduleEvent::Duplicate { .. } => 2,
            ScheduleEvent::Reorder { .. } => 3,
            ScheduleEvent::IsrStretch { .. } => 4,
            ScheduleEvent::Stall { .. } => 5,
            ScheduleEvent::Halt { .. } => 6,
            ScheduleEvent::Offline { .. } => 7,
        }
    }

    fn absorb(&mut self, s: &FaultSchedule, survival: Survival) {
        self.schedules += 1;
        self.events += s.events.len() as u64;
        let node_cpus = (s.n_cpus / s.nodes) as u32;
        for e in &s.events {
            self.by_kind[Coverage::kind_index(e)] += 1;
            if let ScheduleEvent::Stall { extra_us, .. } = e {
                if *extra_us >= WRONGFUL_STALL_US {
                    self.wrongful_stalls += 1;
                }
            }
        }
        for cpu in s.victims() {
            if s.nodes > 1 && cpu % node_cpus == 0 {
                self.relay_victims += 1;
            }
            if s.grab_lock && cpu == s.n_cpus as u32 - 1 {
                self.holder_victims += 1;
            }
            if s.co_initiator && cpu == 1 {
                self.initiator_victims += 1;
            }
            if s.events
                .iter()
                .any(|e| matches!(e, ScheduleEvent::Offline { cpu: c, .. } if *c == cpu))
            {
                self.rejoiner_victims += 1;
            }
        }
        self.numa_schedules += u64::from(s.nodes > 1);
        self.fanout_schedules += u64::from(s.fanout > 1);
        self.grab_lock_schedules += u64::from(s.grab_lock);
        self.co_initiator_schedules += u64::from(s.co_initiator);
        self.failop_schedules += u64::from(s.failop);
        self.final_ro_schedules += u64::from(s.final_ro);
        self.survivals[survival as usize] += 1;
    }
}

/// A whole campaign's result.
#[derive(Clone, Debug, PartialEq)]
pub struct FuzzReport {
    /// The generator seed.
    pub seed: u64,
    /// Schedules run.
    pub budget: u64,
    /// Per-run summaries, in order.
    pub runs: Vec<FuzzRun>,
    /// Red runs (findings on tolerable schedules).
    pub reds: u64,
    /// What the campaign exercised.
    pub coverage: Coverage,
    /// The first red schedule, verbatim, ready for [`shrink`].
    pub first_red: Option<FaultSchedule>,
}

/// Runs a seeded fuzz campaign: `budget` generated schedules, each run
/// under the chaos harness with recovery enabled. Deterministic: the
/// same config always produces the same report.
pub fn run_fuzz(cfg: &FuzzConfig) -> FuzzReport {
    let mut rng = SplitMix64::new(cfg.seed);
    let sizes: &[usize] = &[32, 48, 64];
    let mut report = FuzzReport {
        seed: cfg.seed,
        budget: cfg.budget,
        runs: Vec::new(),
        reds: 0,
        coverage: Coverage::default(),
        first_red: None,
    };
    for i in 0..cfg.budget {
        let n_cpus = if cfg.n_cpus == 0 {
            sizes[(i % sizes.len() as u64) as usize]
        } else {
            cfg.n_cpus
        };
        let s = generate_schedule(&mut rng, n_cpus, cfg.rounds);
        let o = run_schedule(&s);
        let red = is_red(&o) && s.tolerable;
        report.coverage.absorb(&s, o.survival);
        report.runs.push(FuzzRun {
            index: i,
            n_cpus,
            machine_seed: s.seed,
            events: s.events.len(),
            victims: s.victims().len(),
            survival: o.survival,
            red,
            sim_us: o.end.as_micros_f64() as u64,
        });
        if red {
            report.reds += 1;
            if report.first_red.is_none() {
                report.first_red = Some(s);
            }
        }
    }
    report
}

/// Renders a campaign report as the coverage JSON artifact. `green`
/// mirrors the `machtlb fuzz` exit code: `false` iff any tolerable
/// schedule was caught.
pub fn fuzz_json(r: &FuzzReport) -> String {
    let mut s = format!(
        "{{\n  \"seed\": {}, \"budget\": {}, \"reds\": {},\n  \"coverage\": {{\n    \
         \"schedules\": {}, \"events\": {}, \"wrongful_stalls\": {},\n    \"by_kind\": {{",
        r.seed,
        r.budget,
        r.reds,
        r.coverage.schedules,
        r.coverage.events,
        r.coverage.wrongful_stalls,
    );
    for (i, name) in Coverage::KIND_NAMES.iter().enumerate() {
        s.push_str(&format!(
            "\"{name}\": {}{}",
            r.coverage.by_kind[i],
            if i + 1 == Coverage::KIND_NAMES.len() {
                ""
            } else {
                ", "
            }
        ));
    }
    s.push_str(&format!(
        "}},\n    \"victim_roles\": {{\"relay\": {}, \"holder\": {}, \"initiator\": {}, \
         \"rejoiner\": {}}},\n    \"schedule_flags\": {{\"numa\": {}, \"fanout\": {}, \
         \"grab_lock\": {}, \"co_initiator\": {}, \"failop\": {}, \"final_ro\": {}}},\n    \
         \"survivals\": {{\"tolerated\": {}, \"degraded\": {}, \"detected_fatal\": {}}}\n  \
         }},\n  \"runs\": [\n",
        r.coverage.relay_victims,
        r.coverage.holder_victims,
        r.coverage.initiator_victims,
        r.coverage.rejoiner_victims,
        r.coverage.numa_schedules,
        r.coverage.fanout_schedules,
        r.coverage.grab_lock_schedules,
        r.coverage.co_initiator_schedules,
        r.coverage.failop_schedules,
        r.coverage.final_ro_schedules,
        r.coverage.survivals[0],
        r.coverage.survivals[1],
        r.coverage.survivals[2],
    ));
    for (i, run) in r.runs.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"index\": {}, \"cpus\": {}, \"machine_seed\": {}, \"events\": {}, \
             \"victims\": {}, \"survival\": \"{}\", \"red\": {}, \"sim_us\": {}}}{}\n",
            run.index,
            run.n_cpus,
            run.machine_seed,
            run.events,
            run.victims,
            run.survival.name(),
            run.red,
            run.sim_us,
            if i + 1 == r.runs.len() { "" } else { "," },
        ));
    }
    s.push_str(&format!("  ],\n  \"green\": {}\n}}\n", r.reds == 0));
    s
}

// ---------------------------------------------------------------------
// The shrinker
// ---------------------------------------------------------------------

/// What the shrinker did, with the minimized schedule.
#[derive(Clone, Debug, PartialEq)]
pub struct ShrinkReport {
    /// Replays spent (every candidate costs one).
    pub replays: u64,
    /// Events in the input schedule.
    pub original_events: usize,
    /// Events surviving minimization.
    pub minimal_events: usize,
    /// A human-readable log of the accepted reductions.
    pub steps: Vec<String>,
    /// The minimized, still-red schedule.
    pub schedule: FaultSchedule,
}

struct Shrinker {
    replays: u64,
    max_replays: u64,
    steps: Vec<String>,
}

impl Shrinker {
    /// True iff the candidate validates, the replay budget allows, and
    /// the candidate still replays red.
    fn still_red(&mut self, candidate: &FaultSchedule) -> bool {
        if candidate.validate().is_err() || self.replays >= self.max_replays {
            return false;
        }
        self.replays += 1;
        is_red(&run_schedule(candidate))
    }

    fn try_adopt(
        &mut self,
        cur: &mut FaultSchedule,
        candidate: FaultSchedule,
        step: String,
    ) -> bool {
        if self.still_red(&candidate) {
            *cur = candidate;
            self.steps.push(step);
            true
        } else {
            false
        }
    }
}

/// Delta-debugs a red schedule to a minimal reproduction: greedy event
/// removal to a fixpoint, sabotage flags normalized toward their
/// defaults (a failure that survives `fencing: true` is a deeper finding
/// than one that needs the sabotage), canonical retiming of what
/// remains, and a machine shrunk to the victims actually used. Fully
/// deterministic; every candidate costs one counted replay, bounded by
/// `max_replays`.
///
/// Returns `Err` if the input schedule does not replay red in the first
/// place (nothing to shrink).
pub fn shrink(input: &FaultSchedule, max_replays: u64) -> Result<ShrinkReport, String> {
    let mut sh = Shrinker {
        replays: 1, // the confirmation replay below
        max_replays: max_replays.max(1),
        steps: Vec::new(),
    };
    if !is_red(&run_schedule(input)) {
        return Err("shrink: the input schedule replays green".into());
    }
    let mut cur = input.clone();
    loop {
        let mut changed = false;

        // Pass 1: greedy event removal, last to first so indices stay
        // stable across accepted removals.
        let mut i = cur.events.len();
        while i > 0 {
            i -= 1;
            let mut candidate = cur.clone();
            let removed = candidate.events.remove(i);
            if sh.try_adopt(&mut cur, candidate, format!("removed {}", removed.kind())) {
                changed = true;
            }
        }

        // Pass 2: normalize sabotage flags toward their defaults.
        type FlagStep = (&'static str, fn(&mut FaultSchedule) -> bool);
        let flags: [FlagStep; 7] = [
            ("fencing -> true", |s| {
                !s.fencing && {
                    s.fencing = true;
                    true
                }
            }),
            ("final_ro -> false", |s| {
                s.final_ro && {
                    s.final_ro = false;
                    true
                }
            }),
            ("grab_lock -> false", |s| {
                s.grab_lock && {
                    s.grab_lock = false;
                    true
                }
            }),
            ("co_initiator -> false", |s| {
                s.co_initiator && {
                    s.co_initiator = false;
                    true
                }
            }),
            ("failop -> false", |s| {
                s.failop && {
                    s.failop = false;
                    true
                }
            }),
            ("nodes -> 1", |s| {
                s.nodes > 1 && {
                    s.nodes = 1;
                    true
                }
            }),
            ("fanout -> 1", |s| {
                s.fanout > 1 && {
                    s.fanout = 1;
                    true
                }
            }),
        ];
        for (name, apply) in flags {
            let mut candidate = cur.clone();
            if apply(&mut candidate)
                && sh.try_adopt(&mut cur, candidate, format!("normalized {name}"))
            {
                changed = true;
            }
        }

        // Pass 3: retime surviving events onto canonical instants.
        for i in 0..cur.events.len() {
            let retimed = match cur.events[i] {
                ScheduleEvent::Halt { cpu, at_us } if at_us != 2_000 => {
                    Some(ScheduleEvent::Halt { cpu, at_us: 2_000 })
                }
                ScheduleEvent::Offline {
                    cpu,
                    at_us,
                    revive_at_us,
                } if at_us != offline_floor_us(cur.n_cpus)
                    || revive_at_us != revive_floor_us(cur.n_cpus) =>
                {
                    Some(ScheduleEvent::Offline {
                        cpu,
                        at_us: offline_floor_us(cur.n_cpus),
                        revive_at_us: revive_floor_us(cur.n_cpus),
                    })
                }
                ScheduleEvent::Stall {
                    cpu,
                    extra_us,
                    times,
                } if times > 1 => Some(ScheduleEvent::Stall {
                    cpu,
                    extra_us,
                    times: 1,
                }),
                _ => None,
            };
            if let Some(e) = retimed {
                let mut candidate = cur.clone();
                let step = format!("retimed {}", e.kind());
                candidate.events[i] = e;
                if sh.try_adopt(&mut cur, candidate, step) {
                    changed = true;
                }
            }
        }

        // Pass 4: shrink the machine to the victims actually used.
        let needed = 1 + cur.events.iter().filter_map(|e| e.cpu()).max().unwrap_or(0) as usize;
        let target = needed.max(4);
        if target < cur.n_cpus {
            let mut candidate = cur.clone();
            candidate.n_cpus = target;
            if candidate.nodes > 1 && !target.is_multiple_of(candidate.nodes) {
                candidate.nodes = 1;
            }
            if sh.try_adopt(
                &mut cur,
                candidate,
                format!("shrank machine to {target} cpus"),
            ) {
                changed = true;
            }
        }

        if !changed || sh.replays >= sh.max_replays {
            break;
        }
    }
    Ok(ShrinkReport {
        replays: sh.replays,
        original_events: input.events.len(),
        minimal_events: cur.events.len(),
        steps: sh.steps,
        schedule: cur,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wrongful_no_fence(n_cpus: usize) -> FaultSchedule {
        FaultSchedule {
            seed: 3,
            n_cpus,
            rounds: 3,
            nodes: 1,
            fanout: 1,
            fencing: false,
            final_ro: true,
            grab_lock: false,
            co_initiator: false,
            failop: false,
            tolerable: false,
            events: vec![ScheduleEvent::Stall {
                cpu: n_cpus as u32 - 1,
                extra_us: WRONGFUL_STALL_US,
                times: 1,
            }],
        }
    }

    #[test]
    fn splitmix_is_deterministic_and_nontrivial() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
        // The canonical SplitMix64 test vector for seed 0.
        assert_eq!(SplitMix64::new(0).next_u64(), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn generated_schedules_validate_and_replay_deterministically() {
        let mut rng = SplitMix64::new(7);
        let s = generate_schedule(&mut rng, 8, 2);
        s.validate().expect("generated schedule validates");
        assert!(s.victims().len() >= 3, "{s:?}");
        let a = run_schedule(&s);
        let b = run_schedule(&s);
        assert_eq!(a, b, "a schedule must replay bit-identically");
    }

    #[test]
    fn schedule_json_round_trips() {
        let mut rng = SplitMix64::new(11);
        for _ in 0..10 {
            let s = generate_schedule(&mut rng, 12, 2);
            let text = schedule_json(&s);
            let back = parse_schedule(&text).expect("round trip parses");
            assert_eq!(back, s, "{text}");
        }
    }

    #[test]
    fn parse_rejects_malformed_and_invalid_schedules() {
        assert!(parse_schedule("{").is_err());
        assert!(parse_schedule("[]").is_err());
        let s = wrongful_no_fence(8);
        let good = schedule_json(&s);
        assert!(parse_schedule(&good).is_ok());
        // A structurally valid document with a bogus victim must be
        // rejected by validation, not silently accepted.
        let bad = good.replace("\"cpu\": 7", "\"cpu\": 99");
        assert!(parse_schedule(&bad).is_err(), "{bad}");
        let dup = good.replace(
            "\"events\": [\n",
            "\"events\": [\n    {\"kind\": \"delay\", \"every_nth\": 1, \"extra_us\": 5},\n    \
             {\"kind\": \"delay\", \"every_nth\": 2, \"extra_us\": 9},\n",
        );
        assert!(parse_schedule(&dup).is_err(), "duplicate singleton: {dup}");
    }

    #[test]
    fn known_bad_schedule_replays_red_and_tolerable_twin_green() {
        let bad = wrongful_no_fence(8);
        let o = run_schedule(&bad);
        assert!(is_red(&o), "{o:?}");
        assert!(o.violations >= 1, "{o:?}");
        let mut fenced = bad;
        fenced.fencing = true;
        fenced.tolerable = true;
        let o = run_schedule(&fenced);
        assert!(!is_red(&o), "the fence is load-bearing: {o:?}");
    }

    #[test]
    fn a_small_campaign_is_green_and_deterministic() {
        let cfg = FuzzConfig {
            seed: 5,
            budget: 4,
            n_cpus: 8,
            rounds: 2,
        };
        let a = run_fuzz(&cfg);
        assert_eq!(a.reds, 0, "{:?}", a.first_red);
        assert_eq!(a.runs.len(), 4);
        assert!(a.coverage.events > 0);
        let b = run_fuzz(&cfg);
        assert_eq!(a, b, "a campaign must replay bit-identically");
    }

    #[test]
    fn fuzz_json_carries_coverage_and_verdict() {
        let r = run_fuzz(&FuzzConfig {
            seed: 5,
            budget: 2,
            n_cpus: 8,
            rounds: 2,
        });
        let json = fuzz_json(&r);
        assert!(json.contains("\"by_kind\""), "{json}");
        assert!(json.contains("\"victim_roles\""), "{json}");
        assert!(json.contains("\"green\": true"), "{json}");
        assert!(json.contains("\"survival\": "), "{json}");
    }

    #[test]
    fn shrink_rejects_a_green_schedule() {
        let mut green = wrongful_no_fence(8);
        green.fencing = true;
        assert!(shrink(&green, 10).is_err());
    }
}
