//! The health monitor: fail-stop processor eviction and the fenced
//! rejoin protocol.
//!
//! The paper's algorithm assumes every notified responder eventually
//! answers; a fail-stop processor (halted by hardware fault or taken
//! offline) breaks that assumption and, untreated, wedges every initiator
//! that synchronizes with it and orphans every lock it held. This module
//! adds the recovery layer:
//!
//! - **Eviction** ([`evict`]): after the initiator watchdog exhausts its
//!   bounded IPI retries, the responder is declared *suspect* and removed
//!   from the kernel's active and idle sets and from every pmap's in-use
//!   set. The shootdown then completes against the reduced quorum. A dead
//!   processor's stale TLB entries are harmless precisely because it is
//!   dead: fail-stop means it performs no further translations.
//! - **Dead-holder lock recovery**: a spinning lock acquirer probes the
//!   holder's liveness; a halted holder is handled per the configured
//!   [`RecoveryPolicy`] — fence-and-steal for the pmap lock (whose
//!   critical section is a pure page-table update the thief redoes from
//!   scratch), or failing the operation with a decoded dead-holder error.
//! - **Fenced rejoin** ([`FencedRejoinProcess`]): a revived processor may
//!   not touch any pmap until it (1) flushes its whole TLB — every
//!   pre-offline translation is suspect, (2) drains its action queue
//!   *discarding* the stale generations (the flush already covered them),
//!   and (3) passes a generation-number handshake proving no newer
//!   eviction superseded the fence. Only then does it rejoin the active
//!   set. The consistency checker is the oracle that a revived processor
//!   never uses a pre-offline translation: disable the fence and the
//!   checker flags the stale use.

use machtlb_sim::{BlockOn, CpuId, Ctx, Process, Step, Time};
use machtlb_xpr::{SpanId, TraceEdge, TracePhase};

use crate::state::{queue_lock_channel, HasKernel, KernelState, SpinMode, SYNC_CHANNEL};

/// What a lock acquirer does upon finding the holder fail-stop halted.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum RecoveryPolicy {
    /// Forcibly transfer the lock to the prober and proceed. Sound for
    /// the pmap lock: its critical section only stages page-table and
    /// TLB updates that the thief's own operation recomputes under the
    /// stolen lock.
    #[default]
    FenceAndSteal,
    /// Abort the operation, reporting the dead holder in the outcome
    /// ([`OpOutcome::dead_lock_holder`](crate::OpOutcome::dead_lock_holder))
    /// so the caller can decide.
    FailOp,
}

/// Health-monitor configuration, embedded in
/// [`KernelConfig`](crate::KernelConfig).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct HealthConfig {
    /// Whether the monitor acts at all. Off, a watchdog give-up only
    /// files a report (the PR-4 behaviour) and dead lock holders wedge
    /// their waiters.
    pub enabled: bool,
    /// Whether a revived processor runs the full fence before rejoining.
    /// Turned off only by beyond-envelope chaos plans, to prove the
    /// checker catches an unfenced rejoin rather than the kernel
    /// silently surviving it.
    pub fencing: bool,
    /// What lock acquirers do about halted holders.
    pub policy: RecoveryPolicy,
}

impl Default for HealthConfig {
    fn default() -> HealthConfig {
        HealthConfig {
            enabled: true,
            fencing: true,
            policy: RecoveryPolicy::default(),
        }
    }
}

/// One eviction, as recorded in [`KernelState::eviction_reports`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct EvictionReport {
    /// When the responder was declared dead.
    pub at: Time,
    /// The initiator whose watchdog gave up.
    pub initiator: CpuId,
    /// The evicted processor.
    pub target: CpuId,
}

/// Declares `target` dead and removes it from every set a shootdown
/// consults: the kernel active and idle sets, every pmap's in-use set,
/// and every in-flight multicast round's pending and cleanup sets. Bumps
/// the target's health generation (the fenced rejoin's handshake token),
/// marks it evicted, files an [`EvictionReport`], and counts the
/// eviction. The caller notifies [`SYNC_CHANNEL`](crate::SYNC_CHANNEL) in
/// the same step — leaving the active set and the in-use sets can satisfy
/// other initiators' waits — and owes a
/// [`round_channel`](crate::round_channel) notification for each returned
/// pmap, whose round's acknowledgement count the excusal drove to zero.
pub fn evict(
    k: &mut KernelState,
    initiator: CpuId,
    target: CpuId,
    now: Time,
) -> Vec<machtlb_pmap::PmapId> {
    k.active.remove(target);
    k.idle.remove(target);
    for i in 0..k.pmaps.len() {
        k.pmaps
            .get_mut(machtlb_pmap::PmapId::new(i as u32))
            .mark_not_in_use(target);
    }
    k.evicted[target.index()] = true;
    k.health_gen[target.index()] += 1;
    k.eviction_reports.push(EvictionReport {
        at: now,
        initiator,
        target,
    });
    k.stats.evictions += 1;
    k.excuse_from_rounds(target)
}

/// Forcibly releases every lock a fail-stop processor still holds — its
/// pmap lock shards and any per-processor queue locks — and scrubs the
/// rounds it led. Sound for the same reason fence-and-steal is: a dead
/// holder's critical section only staged page-table and TLB updates that
/// the next acquirer recomputes from scratch under a fresh acquisition,
/// and the steal-generation bump tells any process that sampled the lock
/// mid-section to restart. The FailOp retry driver calls this after
/// evicting the dead holder, so the re-dispatched operation finds the
/// lock free instead of aborting on the same corpse forever. Each freed
/// lock counts into [`KernelStats::locks_stolen`](crate::KernelStats::locks_stolen).
/// Returns the wait channels the caller must notify in the same step (a
/// release can satisfy event-blocked waiters).
///
/// # Panics
///
/// Panics if `rescuer == dead` (a processor cannot reclaim from itself).
pub fn reclaim_dead_locks(
    k: &mut KernelState,
    rescuer: CpuId,
    dead: CpuId,
) -> Vec<machtlb_sim::WaitChannel> {
    assert_ne!(rescuer, dead, "a processor cannot reclaim its own locks");
    let mut chans = Vec::new();
    for i in 0..k.pmaps.len() {
        let id = machtlb_pmap::PmapId::new(i as u32);
        let shards = k.pmaps.get(id).shards().count();
        for s in 0..shards {
            let lock = k.pmaps.get_mut(id).shard_mut(s);
            if lock.is_held_by(dead) {
                lock.steal(dead, rescuer);
                lock.release(rescuer);
                k.stats.locks_stolen += 1;
                if let Some(c) = k.pmaps.get(id).lock().channel() {
                    chans.push(c);
                }
            }
        }
    }
    for (i, lock) in k.queue_locks.iter_mut().enumerate() {
        if lock.is_held_by(dead) {
            lock.steal(dead, rescuer);
            lock.release(rescuer);
            k.stats.locks_stolen += 1;
            chans.push(queue_lock_channel(CpuId::new(i as u32)));
        }
    }
    // A dead leader's published rounds will never complete or be
    // reclaimed; scrub them so stalled responders find nothing.
    k.rounds.retain(|r| r.initiator != dead);
    chans
}

#[derive(Debug)]
enum FencePhase {
    FlushTlb,
    LockQueue,
    Discard,
    Handshake,
    Rejoin,
}

/// The fenced rejoin protocol a revived processor runs before touching
/// any pmap (see the module docs). Spawned on the revived processor at
/// its revival instant; the spawned frame lands on top of whatever was
/// frozen, so the fence completes before the interrupted work resumes.
///
/// With [`HealthConfig::fencing`] off the process skips the flush,
/// discard, and handshake and rejoins immediately — the unsound shortcut
/// the chaos suite's beyond-envelope plan exists to have the checker
/// catch.
#[derive(Debug)]
pub struct FencedRejoinProcess {
    phase: FencePhase,
    /// The health generation observed when the fence began; the
    /// handshake re-reads it to detect a superseding eviction.
    observed_gen: Option<u64>,
    /// The fence's flight-recorder span, when tracing.
    span: Option<SpanId>,
    /// The queue lock's steal generation, sampled when
    /// [`FencePhase::LockQueue`] acquires it. [`FencePhase::Discard`]
    /// rechecks it: a mismatch means the processor was fail-stopped
    /// *again* mid-fence and the FailOp reclaimer freed the lock, so the
    /// fence restarts from the flush instead of releasing a lock it no
    /// longer holds.
    lock_gen: u64,
}

impl FencedRejoinProcess {
    /// Creates the rejoin sequence for the processor it is spawned on.
    pub fn new() -> FencedRejoinProcess {
        FencedRejoinProcess {
            phase: FencePhase::FlushTlb,
            observed_gen: None,
            span: None,
            lock_gen: 0,
        }
    }
}

impl Default for FencedRejoinProcess {
    fn default() -> FencedRejoinProcess {
        FencedRejoinProcess::new()
    }
}

impl<S: HasKernel> Process<S, ()> for FencedRejoinProcess {
    fn step(&mut self, ctx: &mut Ctx<'_, S, ()>) -> Step {
        let me = ctx.cpu_id;
        match self.phase {
            FencePhase::FlushTlb => {
                if !ctx.shared.kernel().config.health.fencing {
                    // The unsound shortcut: rejoin with the pre-offline
                    // TLB contents intact.
                    self.phase = FencePhase::Rejoin;
                    return Step::Run(ctx.costs().local_op);
                }
                self.observed_gen = Some(ctx.shared.kernel().health_gen[me.index()]);
                if ctx.shared.kernel().trace.is_enabled() {
                    let now = ctx.now;
                    let k = ctx.shared.kernel_mut();
                    let span = k.trace.begin_span();
                    k.trace
                        .record(me, span, TracePhase::Fence, TraceEdge::Begin, now);
                    self.span = Some(span);
                }
                let now = ctx.now;
                let k = ctx.shared.kernel_mut();
                k.tlbs[me.index()].flush_all();
                k.tlb_flush_stamp[me.index()] = now;
                self.phase = FencePhase::LockQueue;
                Step::Run(ctx.costs().tlb_flush_all)
            }
            FencePhase::LockQueue => {
                let woken = ctx.woken_spins();
                let lock = &mut ctx.shared.kernel_mut().queue_locks[me.index()];
                lock.charge_spins(woken);
                if !lock.try_acquire(me) {
                    let spin = ctx.costs().spin_iter + ctx.costs().cache_read;
                    if ctx.shared.kernel().config.spin_mode == SpinMode::Event {
                        return Step::Block(BlockOn::one(queue_lock_channel(me), spin));
                    }
                    return Step::Run(spin);
                }
                self.lock_gen = lock.steal_gen();
                self.phase = FencePhase::Discard;
                Step::Run(ctx.costs().lock_acquire + ctx.bus_interlocked())
            }
            FencePhase::Discard => {
                // Steal-generation check: fail-stopped again between the
                // acquisition and this step, lock reclaimed. The claim is
                // gone; restart the fence from the flush (the handshake's
                // generation test alone cannot save us — it runs after
                // the release below would have panicked).
                if ctx.shared.kernel().queue_locks[me.index()].steal_gen() != self.lock_gen {
                    ctx.shared.kernel_mut().stats.robbed_restarts += 1;
                    self.phase = FencePhase::FlushTlb;
                    return Step::Run(ctx.costs().local_op + ctx.bus_read());
                }
                // Drain and *discard*: every queued action predates the
                // full flush, so its invalidations are already done — and
                // its generation is stale by definition.
                let k = ctx.shared.kernel_mut();
                let (actions, _flush_all) = k.queues[me.index()].drain();
                drop(actions);
                k.action_needed[me.index()] = false;
                k.ipi_pending[me.index()] = false;
                k.queue_locks[me.index()].release(me);
                ctx.notify(SYNC_CHANNEL);
                ctx.notify(queue_lock_channel(me));
                self.phase = FencePhase::Handshake;
                Step::Run(ctx.costs().lock_release + ctx.bus_write() + ctx.bus_write())
            }
            FencePhase::Handshake => {
                // The generation handshake: the fence is valid only if no
                // eviction superseded it since the flush. A mismatch means
                // this processor was declared dead *again* mid-fence;
                // restart from the flush so the fence covers the newest
                // generation.
                let current = ctx.shared.kernel().health_gen[me.index()];
                if self.observed_gen != Some(current) {
                    self.phase = FencePhase::FlushTlb;
                    return Step::Run(ctx.costs().local_op + ctx.bus_read());
                }
                ctx.shared.kernel_mut().evicted[me.index()] = false;
                self.phase = FencePhase::Rejoin;
                Step::Run(ctx.costs().local_op + ctx.bus_read())
            }
            FencePhase::Rejoin => {
                // The attach rule (see SwitchUserPmapProcess): a processor
                // must not re-enter a pmap's in-use set while an update on
                // it is in flight, because the initiator already decided
                // whom to synchronize with when it scanned the set — a
                // mid-scan rejoin would re-cache entries the updater never
                // shoots down. Spin until no live holder is mid-update on
                // the pmaps being re-attached (a fail-stop holder never
                // releases; its half-staged work is redone under a fresh
                // acquisition, so proceeding past a corpse is sound).
                let (contended, chan) = {
                    let k = ctx.shared.kernel();
                    let health = k.config.health;
                    let user = k.cur_user_pmap[me.index()];
                    let mut contended = false;
                    let mut chan = None;
                    for id in [Some(machtlb_pmap::PmapId::KERNEL), user]
                        .into_iter()
                        .flatten()
                    {
                        let pmap = k.pmaps.get(id);
                        let live = pmap.shards().any(|l| {
                            l.holder().is_some_and(|h| {
                                h != me && !(health.enabled && ctx.is_cpu_halted(h))
                            })
                        });
                        if live {
                            contended = true;
                            if chan.is_none() {
                                chan = pmap.lock().channel();
                            }
                        }
                    }
                    (contended, chan)
                };
                if contended {
                    let spin = ctx.costs().spin_iter + ctx.costs().cache_read;
                    if let (SpinMode::Event, Some(chan)) =
                        (ctx.shared.kernel().config.spin_mode, chan)
                    {
                        // A holder that halts mid-update never notifies:
                        // wake at the watchdog timeout so the liveness
                        // probe above runs even without a release.
                        let deadline = ctx.now + ctx.shared.kernel().config.watchdog.timeout;
                        return Step::Block(BlockOn::one(chan, spin).with_deadline(deadline));
                    }
                    return Step::Run(spin);
                }
                let now = ctx.now;
                let k = ctx.shared.kernel_mut();
                // Re-enter the sets eviction removed this processor from:
                // the kernel pmap is in use wherever translations happen,
                // and the current user pmap (if the frozen work was
                // executing in one) becomes visible to shootdowns again.
                k.pmaps
                    .get_mut(machtlb_pmap::PmapId::KERNEL)
                    .mark_in_use(me);
                if let Some(user) = k.cur_user_pmap[me.index()] {
                    k.pmaps.get_mut(user).mark_in_use(me);
                }
                k.active.insert(me);
                k.stats.fenced_rejoins += 1;
                if let Some(span) = self.span.take() {
                    k.trace
                        .record(me, span, TracePhase::Fence, TraceEdge::End, now);
                    k.trace
                        .record(me, span, TracePhase::Rejoin, TraceEdge::Mark, now);
                }
                ctx.notify(SYNC_CHANNEL);
                Step::Done(ctx.costs().local_op + ctx.bus_write())
            }
        }
    }

    fn label(&self) -> &'static str {
        "fenced-rejoin"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{KernelConfig, KernelState};
    use machtlb_pmap::PmapId;

    #[test]
    fn evict_removes_every_membership_and_books_the_report() {
        let mut k = KernelState::new(4, KernelConfig::default());
        let target = CpuId::new(2);
        k.force_active(target);
        let user = k.pmaps.create();
        k.pmaps.get_mut(user).mark_in_use(target);
        assert!(k.pmaps.kernel().in_use().contains(target));

        evict(&mut k, CpuId::new(0), target, Time::from_micros(77));

        assert!(!k.active.contains(target));
        assert!(!k.idle.contains(target));
        assert!(!k.pmaps.kernel().in_use().contains(target));
        assert!(!k.pmaps.get(user).in_use().contains(target));
        assert!(k.evicted[2]);
        assert_eq!(k.health_gen[2], 1);
        assert_eq!(k.stats.evictions, 1);
        assert_eq!(
            k.eviction_reports,
            vec![EvictionReport {
                at: Time::from_micros(77),
                initiator: CpuId::new(0),
                target,
            }]
        );
        // Other processors untouched.
        assert!(k.idle.contains(CpuId::new(1)));
        assert!(k.pmaps.get(PmapId::KERNEL).in_use().contains(CpuId::new(1)));
    }

    #[test]
    fn repeated_evictions_advance_the_generation() {
        let mut k = KernelState::new(2, KernelConfig::default());
        evict(&mut k, CpuId::new(0), CpuId::new(1), Time::from_micros(1));
        evict(&mut k, CpuId::new(0), CpuId::new(1), Time::from_micros(2));
        assert_eq!(k.health_gen[1], 2);
        assert_eq!(k.stats.evictions, 2);
        assert_eq!(k.eviction_reports.len(), 2);
    }
}
