//! The multi-fault soak harness: halt, offline/revive, wrongful
//! eviction, compound halts, and FailOp dead-holder recovery cycled back
//! to back for hundreds of cycles (thousands of pmap operations) at
//! 32–128 processors, with the checker on throughout.
//!
//! Each cycle is one [`run_chaos`] campaign under a rotating fault shape
//! and a rotating victim processor, so membership churn sweeps the whole
//! machine rather than hammering one processor. [`run_soak`] aggregates
//! the cycles into a [`SoakOutcome`]; [`soak_json`] renders it for CI
//! artifacts. The harness *survives* iff every cycle completed with zero
//! checker violations, zero unrecovered watchdog give-ups, and zero
//! exhausted FailOp retries — the "chaos at scale" acceptance gate.
//!
//! Everything inherits the chaos harness's determinism: the same
//! [`SoakConfig`] always produces a bit-identical [`SoakOutcome`].

use machtlb_sim::{CpuId, Dur, FaultPlan, Halt, Offline, ResponderStall, Time};

use crate::chaos::{plan_catalog, run_chaos, ChaosConfig, ChaosOutcome, ChaosPlan, Survival};
use crate::health::RecoveryPolicy;
use crate::kernel::SHOOTDOWN_VECTOR;

/// One soak run's inputs.
#[derive(Clone, Debug)]
pub struct SoakConfig {
    /// Processors in the machine (>= 4; the acceptance gate runs 32–128).
    pub n_cpus: usize,
    /// Fault cycles to run. The shape rotates through the five-entry
    /// family each cycle; `cycles` that is a multiple of five sweeps the
    /// whole family evenly.
    pub cycles: u64,
    /// Base machine seed; each cycle derives its own seed from it.
    pub seed: u64,
    /// Reprotect/restore rounds per cycle (4 pmap operations each, plus
    /// the finale's reprotects where the shape arms one).
    pub rounds: u64,
    /// Append one beyond-envelope cycle that runs the FailOp shape with a
    /// zero restart budget, forcing `retries_exhausted` — the CI gate's
    /// injected failure, proving a red soak actually exits red.
    pub inject_exhaustion: bool,
    /// Run cycles until this much wall-clock time has elapsed instead of
    /// counting to [`SoakConfig::cycles`] (at least one cycle always
    /// runs). Each cycle stays seed-deterministic; only *how many* run
    /// depends on the host's speed, so duration-bounded outcomes are not
    /// bit-reproducible across machines — use `cycles` for goldens.
    pub duration: Option<std::time::Duration>,
}

impl SoakConfig {
    /// A standard soak: `cycles` cycles at `n_cpus` processors, 3 rounds
    /// a cycle, no injected failure.
    pub fn new(n_cpus: usize, cycles: u64, seed: u64) -> SoakConfig {
        SoakConfig {
            n_cpus,
            cycles,
            seed,
            rounds: 3,
            inject_exhaustion: false,
            duration: None,
        }
    }
}

/// One cycle's result, kept compact for the JSON artifact.
#[derive(Clone, Debug, PartialEq)]
pub struct SoakCycle {
    /// Cycle index.
    pub cycle: u64,
    /// The fault shape's plan name.
    pub plan: &'static str,
    /// The derived machine seed.
    pub seed: u64,
    /// The cycle's verdict.
    pub survival: Survival,
    /// Whether the cycle's campaign ran to completion.
    pub completed: bool,
    /// Checker violations in this cycle.
    pub violations: usize,
    /// Watchdog give-ups the health monitor did not absorb.
    pub unrecovered: u64,
    /// The campaign's simulated end time.
    pub end: Time,
}

/// Everything a soak produced.
#[derive(Clone, Debug, PartialEq)]
pub struct SoakOutcome {
    /// Processors in the machine.
    pub n_cpus: usize,
    /// Cycles run (including the injected-exhaustion cycle, if armed).
    pub cycles: u64,
    /// The base seed.
    pub seed: u64,
    /// Pmap operations driven across all cycles.
    pub ops: u64,
    /// Cycles whose campaign ran to completion.
    pub completed_cycles: u64,
    /// Checker violations across all cycles.
    pub violations: u64,
    /// Watchdog give-ups not absorbed into evictions, across all cycles.
    pub unrecovered: u64,
    /// Processors evicted across all cycles.
    pub evictions: u64,
    /// Fenced rejoins across all cycles.
    pub fenced_rejoins: u64,
    /// Self-detected evictions (wrongful-eviction recoveries).
    pub self_fences: u64,
    /// Stale-generation acknowledgements rejected.
    pub late_acks_rejected: u64,
    /// FailOp operations restarted after dead-holder aborts.
    pub ops_retried: u64,
    /// FailOp drivers that exhausted their restart budget.
    pub retries_exhausted: u64,
    /// Locks stolen from dead holders.
    pub locks_stolen: u64,
    /// The acceptance verdict: every cycle completed, zero violations,
    /// zero unrecovered give-ups, zero exhausted retries.
    pub survived: bool,
    /// Per-cycle results, in order.
    pub log: Vec<SoakCycle>,
}

/// The rotating fault-shape family, by cycle index. Victims rotate
/// through the writer processors so churn sweeps the machine.
fn cycle_plan(cfg: &SoakConfig, cycle: u64) -> ChaosPlan {
    let v = SHOOTDOWN_VECTOR;
    let n = cfg.n_cpus as u32;
    let last = CpuId::new(n - 1);
    // Writers run on processors 1..n; rotate the victim among them but
    // keep clear of the driver on 0 (and of `last` only where a shape
    // pins its own process there).
    let victim = CpuId::new(1 + (cycle % u64::from(n - 2)) as u32);
    let victim2 = CpuId::new(1 + ((cycle + 1) % u64::from(n - 2)) as u32);
    let mut base = plan_catalog(cfg.n_cpus)
        .into_iter()
        .find(|p| p.name == "none")
        .expect("catalog has the none plan");
    match cycle % 5 {
        // Fail-stop halt: a responder frozen mid-dispatch, then dead.
        0 => {
            base.name = "soak-halt";
            base.fault = FaultPlan {
                stalls: vec![ResponderStall {
                    cpu: victim,
                    extra: Dur::millis(8),
                    times: 1,
                }],
                halts: vec![Halt {
                    cpu: victim,
                    at: Time::from_micros(2_000),
                }],
                ..FaultPlan::none(v)
            };
        }
        // Offline mid-shootdown, revive through the fence.
        1 => {
            base.name = "soak-offline-revive";
            base.final_ro = true;
            base.fault = FaultPlan {
                stalls: vec![ResponderStall {
                    cpu: victim,
                    extra: Dur::millis(8),
                    times: 1,
                }],
                offlines: vec![Offline {
                    cpu: victim,
                    at: Time::from_micros(2_000),
                    revive_at: Time::from_micros(120_000),
                }],
                ..FaultPlan::none(v)
            };
        }
        // Wrongful eviction: slow-but-alive, self-fenced on resume.
        2 => {
            base.name = "soak-wrongful-evict";
            base.final_ro = true;
            base.fault = FaultPlan {
                stalls: vec![ResponderStall {
                    cpu: victim,
                    extra: Dur::millis(100),
                    times: 1,
                }],
                ..FaultPlan::none(v)
            };
        }
        // Two responders dead in one campaign.
        3 => {
            base.name = "soak-two-halt";
            base.fault = FaultPlan {
                stalls: vec![
                    ResponderStall {
                        cpu: victim,
                        extra: Dur::millis(8),
                        times: 1,
                    },
                    ResponderStall {
                        cpu: victim2,
                        extra: Dur::millis(8),
                        times: 1,
                    },
                ],
                halts: vec![
                    Halt {
                        cpu: victim,
                        at: Time::from_micros(2_000),
                    },
                    Halt {
                        cpu: victim2,
                        at: Time::from_micros(2_500),
                    },
                ],
                ..FaultPlan::none(v)
            };
        }
        // FailOp end to end: a dead lock holder retried past.
        _ => {
            base.name = "soak-failop";
            base.grab_lock = true;
            base.policy = RecoveryPolicy::FailOp;
            base.fault = FaultPlan {
                halts: vec![Halt {
                    cpu: last,
                    at: Time::from_micros(1_000),
                }],
                ..FaultPlan::none(v)
            };
        }
    }
    base
}

/// The beyond-envelope injected-failure cycle: the FailOp shape with a
/// zero restart budget, guaranteed to book `retries_exhausted`.
fn exhaustion_plan(cfg: &SoakConfig) -> ChaosPlan {
    let mut p = cycle_plan(cfg, 4); // the FailOp shape
    p.name = "soak-failop-exhausted";
    p.failop_retries = 0;
    p.tolerable = false;
    p
}

/// Runs one soak cycle and returns its full campaign outcome.
fn run_cycle(cfg: &SoakConfig, cycle: u64, plan: ChaosPlan) -> ChaosOutcome {
    // Derive a per-cycle seed; the multiplier just decorrelates the
    // device-interrupt jitter between consecutive cycles.
    let seed = cfg.seed.wrapping_add(cycle.wrapping_mul(7919));
    let mut ccfg = ChaosConfig::new(cfg.n_cpus, seed, Some(plan));
    ccfg.rounds = cfg.rounds;
    // Big machines run many more writer events per simulated second than
    // the 4-processor chaos default budgeted for, and bus serialization
    // stretches the campaign's simulated time roughly linearly in the
    // processor count (a 128-cpu halt cycle quiesces around 270ms).
    ccfg.max_steps = 5_000_000 + (cfg.n_cpus as u64) * 500_000;
    ccfg.limit = Time::from_micros(200_000 + (cfg.n_cpus as u64) * 4_000);
    run_chaos(&ccfg)
}

/// Runs the whole soak: `cycles` rotating-fault campaigns (plus the
/// injected-exhaustion cycle when armed), aggregated into one verdict.
///
/// # Panics
///
/// Panics if `n_cpus < 4` (inherited from [`plan_catalog`]).
pub fn run_soak(cfg: &SoakConfig) -> SoakOutcome {
    let mut out = SoakOutcome {
        n_cpus: cfg.n_cpus,
        cycles: 0,
        seed: cfg.seed,
        ops: 0,
        completed_cycles: 0,
        violations: 0,
        unrecovered: 0,
        evictions: 0,
        fenced_rejoins: 0,
        self_fences: 0,
        late_acks_rejected: 0,
        ops_retried: 0,
        retries_exhausted: 0,
        locks_stolen: 0,
        survived: true,
        log: Vec::new(),
    };
    // Plans are generated lazily: a duration-bounded soak does not know
    // its cycle count up front, it keeps rotating the shape family until
    // the wall-clock budget is spent (at least one cycle always runs).
    let started = std::time::Instant::now();
    let mut cycle = 0u64;
    let mut exhaustion_done = false;
    loop {
        let more = match cfg.duration {
            Some(budget) => cycle == 0 || started.elapsed() < budget,
            None => cycle < cfg.cycles,
        };
        let plan = if more {
            cycle_plan(cfg, cycle)
        } else if cfg.inject_exhaustion && !exhaustion_done {
            exhaustion_done = true;
            exhaustion_plan(cfg)
        } else {
            break;
        };
        let ops = cfg.rounds * 4 + if plan.final_ro { 2 } else { 0 };
        let o = run_cycle(cfg, cycle, plan);
        let unrecovered = o.stats.watchdog_gaveup.saturating_sub(o.stats.evictions);
        out.cycles += 1;
        out.ops += ops;
        out.completed_cycles += u64::from(o.completed);
        out.violations += o.violations as u64;
        out.unrecovered += unrecovered;
        out.evictions += o.stats.evictions;
        out.fenced_rejoins += o.stats.fenced_rejoins;
        out.self_fences += o.stats.self_fences;
        out.late_acks_rejected += o.stats.late_acks_rejected;
        out.ops_retried += o.stats.ops_retried;
        out.retries_exhausted += o.stats.retries_exhausted;
        out.locks_stolen += o.stats.locks_stolen;
        out.log.push(SoakCycle {
            cycle,
            plan: o.plan,
            seed: o.seed,
            survival: o.survival,
            completed: o.completed,
            violations: o.violations,
            unrecovered,
            end: o.end,
        });
        cycle += 1;
    }
    out.survived = out.completed_cycles == out.cycles
        && out.violations == 0
        && out.unrecovered == 0
        && out.retries_exhausted == 0;
    out
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders a soak outcome as machine-readable JSON for CI artifacts.
/// `survived` mirrors the process exit code of `machtlb soak`.
pub fn soak_json(o: &SoakOutcome) -> String {
    let mut s = format!(
        "{{\n  \"cpus\": {}, \"cycles\": {}, \"seed\": {}, \"ops\": {},\n  \
         \"completed_cycles\": {}, \"violations\": {}, \"unrecovered\": {},\n  \
         \"evictions\": {}, \"fenced_rejoins\": {}, \"self_fences\": {}, \
         \"late_acks_rejected\": {},\n  \"ops_retried\": {}, \
         \"retries_exhausted\": {}, \"locks_stolen\": {},\n  \"cycle_log\": [\n",
        o.n_cpus,
        o.cycles,
        o.seed,
        o.ops,
        o.completed_cycles,
        o.violations,
        o.unrecovered,
        o.evictions,
        o.fenced_rejoins,
        o.self_fences,
        o.late_acks_rejected,
        o.ops_retried,
        o.retries_exhausted,
        o.locks_stolen,
    );
    for (i, c) in o.log.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"cycle\": {}, \"plan\": \"{}\", \"seed\": {}, \"survival\": \"{}\", \
             \"completed\": {}, \"violations\": {}, \"unrecovered\": {}, \
             \"end_ms\": {:.1}}}{}\n",
            c.cycle,
            json_escape(c.plan),
            c.seed,
            c.survival.name(),
            c.completed,
            c.violations,
            c.unrecovered,
            c.end.as_millis_f64(),
            if i + 1 == o.log.len() { "" } else { "," },
        ));
    }
    s.push_str(&format!("  ],\n  \"survived\": {}\n}}\n", o.survived));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_small_soak_survives_every_shape() {
        // One full rotation of the five shapes at the smallest machine.
        let o = run_soak(&SoakConfig::new(4, 5, 3));
        assert!(o.survived, "{o:?}");
        assert_eq!(o.completed_cycles, 5, "{o:?}");
        assert_eq!(o.violations, 0, "{o:?}");
        assert_eq!(o.unrecovered, 0, "{o:?}");
        assert!(o.evictions >= 4, "every halt shape evicts: {o:?}");
        assert!(o.self_fences >= 1, "the wrongful cycle self-fences: {o:?}");
        assert!(o.ops_retried >= 1, "the failop cycle retries: {o:?}");
        assert!(o.ops >= 5 * 12, "{o:?}");
    }

    #[test]
    fn soak_replays_bit_identically() {
        let a = run_soak(&SoakConfig::new(4, 5, 9));
        let b = run_soak(&SoakConfig::new(4, 5, 9));
        assert_eq!(a, b, "a soak must replay exactly");
    }

    #[test]
    fn injected_exhaustion_turns_the_soak_red() {
        let mut cfg = SoakConfig::new(4, 1, 3);
        cfg.inject_exhaustion = true;
        let o = run_soak(&cfg);
        assert!(!o.survived, "{o:?}");
        assert!(o.retries_exhausted >= 1, "{o:?}");
        let json = soak_json(&o);
        assert!(json.contains("\"survived\": false"), "{json}");
        assert!(json.contains("soak-failop-exhausted"), "{json}");
    }

    #[test]
    fn soak_json_round_trips_the_verdict() {
        let o = run_soak(&SoakConfig::new(4, 2, 3));
        let json = soak_json(&o);
        assert!(json.contains("\"cpus\": 4"), "{json}");
        assert!(json.contains("\"survived\": true"), "{json}");
        assert!(json.contains("\"plan\": \"soak-halt\""), "{json}");
        assert!(json.contains("\"plan\": \"soak-offline-revive\""), "{json}");
    }
}
