//! Stall diagnosis: turning a timed-out run into a readable report.
//!
//! A bare `StepLimit` from the scheduler says *that* a run wedged, not
//! *why*. [`stall_report`] decodes the machine's end state into the facts
//! a deadlock or livelock diagnosis needs: what every processor is doing
//! (its stacked processes and, if parked, the wait channels it blocks
//! on), which locks are held and by whom, the active/idle sets, the
//! interrupts still in flight, and the watchdog's case files. The wait
//! channels are decoded through the same key-space registry the kernel
//! allocates them from (`0x1` pmap locks, `0x2` action-queue locks,
//! `0x3` the sync channel), so a blocked processor's report line names
//! the lock — and its holder — rather than a raw key.

use std::fmt::Write as _;

use machtlb_pmap::PmapId;
use machtlb_sim::{CpuId, Machine, ParkView, WaitChannel};

use crate::state::HasKernel;
use crate::KernelState;

/// Formats a lock holder, tagging fail-stop holders: a waiter blocked on
/// a DEAD holder is a wedge the health monitor should have recovered,
/// not ordinary contention.
fn fmt_holder(h: CpuId, halted: &dyn Fn(CpuId) -> bool) -> String {
    if halted(h) {
        format!("{h}, DEAD")
    } else {
        h.to_string()
    }
}

/// Decodes a wait channel into kernel terms, naming the lock holder when
/// the channel guards a lock (and whether that holder is fail-stop dead).
fn describe_channel(k: &KernelState, halted: &dyn Fn(CpuId) -> bool, ch: WaitChannel) -> String {
    let key = ch.key();
    let space = key >> 32;
    let low = (key & 0xffff_ffff) as u32;
    match space {
        0x1 => {
            let mut s = if low == 0 {
                "kernel-pmap lock".to_string()
            } else {
                format!("pmap{low} lock")
            };
            if (low as usize) < k.pmaps.len() {
                match k.pmaps.get(PmapId::new(low)).lock().holder() {
                    Some(h) => {
                        let _ = write!(s, " (held by {})", fmt_holder(h, halted));
                    }
                    None => s.push_str(" (unheld)"),
                }
            }
            s
        }
        0x2 => {
            let mut s = format!("queue lock of cpu{low}");
            if (low as usize) < k.queue_locks.len() {
                match k.queue_locks[low as usize].holder() {
                    Some(h) => {
                        let _ = write!(s, " (held by {})", fmt_holder(h, halted));
                    }
                    None => s.push_str(" (unheld)"),
                }
            }
            s
        }
        0x3 => "sync channel".to_string(),
        0x4 => format!("vm channel {low:#x}"),
        0x5 => format!("workload channel {low:#x}"),
        _ => format!("channel {key:#x}"),
    }
}

/// Renders a diagnosable report of a wedged machine: per-processor state
/// (clock, stacked processes, park state with decoded wait channels,
/// latched interrupts, kernel flags), held locks, the active/idle sets,
/// in-flight interrupt deliveries, watchdog reports, and the hardening
/// counters. Meant for the moment a bounded run returns `StepLimit`: the
/// report replaces a bare "step limit exceeded" with the facts needed to
/// tell a deadlock from a livelock from a merely short limit.
pub fn stall_report<S: HasKernel>(m: &Machine<S, ()>) -> String {
    let k = m.shared().kernel();
    let halted = |c: CpuId| m.is_halted(c);
    let mut out = String::new();
    let _ = writeln!(out, "=== stall report ===");
    for c in 0..m.n_cpus() {
        let cpu = m.cpu(CpuId::new(c as u32));
        let stack = cpu.stack_labels().join(" > ");
        let park = if halted(CpuId::new(c as u32)) {
            // A halted processor's park state is whatever it froze in;
            // the fact that matters is that it will never step again.
            "HALTED (fail-stop)".to_string()
        } else {
            match cpu.park_view() {
                ParkView::Running => "running".to_string(),
                ParkView::Parked { until: None } => "parked (no deadline)".to_string(),
                ParkView::Parked { until: Some(t) } => format!("parked until {t}"),
                ParkView::Blocked {
                    anchor,
                    chans,
                    wake_at,
                } => {
                    let on: Vec<String> = chans
                        .iter()
                        .flatten()
                        .map(|&ch| describe_channel(k, &halted, ch))
                        .collect();
                    let wake = match wake_at {
                        Some(t) => format!("wake at {t}"),
                        None => "no wake scheduled".to_string(),
                    };
                    format!("blocked since {anchor} on {} ({wake})", on.join(" | "))
                }
            }
        };
        let mut flags = Vec::new();
        if k.ipi_pending[c] {
            flags.push("ipi-pending");
        }
        if k.action_needed[c] {
            flags.push("action-needed");
        }
        if k.evicted[c] {
            flags.push("evicted");
        }
        let pending = cpu.pending_vectors();
        let _ = writeln!(
            out,
            "cpu{c}: clock={} {park} stack=[{}]{}{}",
            cpu.clock(),
            if stack.is_empty() { "idle" } else { &stack },
            if pending.is_empty() {
                String::new()
            } else {
                format!(
                    " latched=[{}]",
                    pending
                        .iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join(",")
                )
            },
            if flags.is_empty() {
                String::new()
            } else {
                format!(" flags=[{}]", flags.join(","))
            },
        );
    }
    let set = |s: &machtlb_pmap::CpuSet| {
        s.iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join(",")
    };
    let _ = writeln!(
        out,
        "active={{{}}} idle={{{}}}",
        set(&k.active),
        set(&k.idle)
    );
    let mut any_lock = false;
    for i in 0..k.pmaps.len() {
        let id = PmapId::new(i as u32);
        if let Some(h) = k.pmaps.get(id).lock().holder() {
            let name = if i == 0 {
                "kernel-pmap".to_string()
            } else {
                format!("pmap{i}")
            };
            let _ = writeln!(out, "lock: {name} lock held by {}", fmt_holder(h, &halted));
            any_lock = true;
        }
    }
    for (i, l) in k.queue_locks.iter().enumerate() {
        if let Some(h) = l.holder() {
            let _ = writeln!(
                out,
                "lock: queue lock of cpu{i} held by {}",
                fmt_holder(h, &halted)
            );
            any_lock = true;
        }
    }
    if !any_lock {
        let _ = writeln!(out, "locks: none held");
    }
    let in_flight = m.pending_interrupts();
    if in_flight.is_empty() {
        let _ = writeln!(out, "in-flight interrupts: none");
    } else {
        for (at, cpu, v) in &in_flight {
            let _ = writeln!(out, "in-flight: {v} -> {cpu} at {at}");
        }
    }
    for r in &k.watchdog_reports {
        let _ = writeln!(
            out,
            "watchdog: {} gave up on {} at {} after {} retries",
            r.initiator, r.target, r.at, r.retries
        );
    }
    for r in &k.eviction_reports {
        let _ = writeln!(
            out,
            "eviction: {} evicted {} at {}",
            r.initiator, r.target, r.at
        );
    }
    // The most common wedge the health monitor exists to prevent: a
    // give-up that never became an eviction means a dead responder is
    // still a member of the sets initiators wait on.
    if k.stats.watchdog_gaveup > k.stats.evictions {
        let _ = writeln!(
            out,
            "hint: watchdog give-ups exceed evictions; a fail-stop responder \
             may still wedge initiators (health monitor disabled?)"
        );
    }
    let _ = writeln!(
        out,
        "hardening: ipi_retries={} watchdog_gaveup={} degraded_flushes={} \
         evictions={} fenced_rejoins={} locks_stolen={} robbed_restarts={} \
         late_acks_rejected={} self_fences={} ops_retried={} retries_exhausted={}",
        k.stats.ipi_retries,
        k.stats.watchdog_gaveup,
        k.stats.degraded_flushes,
        k.stats.evictions,
        k.stats.fenced_rejoins,
        k.stats.locks_stolen,
        k.stats.robbed_restarts,
        k.stats.late_acks_rejected,
        k.stats.self_fences,
        k.stats.ops_retried,
        k.stats.retries_exhausted
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::KernelConfig;
    use crate::{build_kernel_machine, SYNC_CHANNEL};
    use machtlb_sim::CostModel;

    #[test]
    fn channels_decode_to_kernel_terms() {
        let m = build_kernel_machine(2, 1, CostModel::multimax(), KernelConfig::default());
        let k = m.shared();
        let live = |_: CpuId| false;
        assert_eq!(describe_channel(k, &live, SYNC_CHANNEL), "sync channel");
        assert!(
            describe_channel(k, &live, crate::queue_lock_channel(CpuId::new(1)))
                .starts_with("queue lock of cpu1")
        );
        let pch = machtlb_pmap::Pmap::lock_channel(PmapId::KERNEL);
        assert!(describe_channel(k, &live, pch).starts_with("kernel-pmap lock"));
        assert!(describe_channel(k, &live, WaitChannel::new(0x9_0000_0001)).starts_with("channel"));
    }

    #[test]
    fn report_names_lock_holders_and_flags() {
        let mut m = build_kernel_machine(2, 1, CostModel::multimax(), KernelConfig::default());
        {
            let s = m.shared_mut();
            let pmap = s.pmaps.create();
            s.pmaps.get_mut(pmap).lock_mut().try_acquire(CpuId::new(1));
            s.action_needed[0] = true;
            s.ipi_pending[1] = true;
        }
        let report = stall_report(&m);
        assert!(report.contains("pmap1 lock held by cpu1"), "{report}");
        assert!(report.contains("action-needed"), "{report}");
        assert!(report.contains("ipi-pending"), "{report}");
        assert!(report.contains("hardening:"), "{report}");
    }

    #[test]
    fn report_marks_halted_processors_and_dead_holders() {
        use machtlb_sim::{FaultPlan, Halt, Time};

        let mut m = build_kernel_machine(2, 1, CostModel::multimax(), KernelConfig::default());
        {
            let s = m.shared_mut();
            let pmap = s.pmaps.create();
            s.pmaps.get_mut(pmap).lock_mut().try_acquire(CpuId::new(1));
        }
        m.install_fault_plan(FaultPlan {
            halts: vec![Halt {
                cpu: CpuId::new(1),
                at: Time::from_micros(1),
            }],
            ..FaultPlan::none(crate::SHOOTDOWN_VECTOR)
        });
        m.run(Time::from_micros(10));
        assert!(m.is_halted(CpuId::new(1)));
        let report = stall_report(&m);
        assert!(
            report.contains("cpu1: clock=") && report.contains("HALTED (fail-stop)"),
            "{report}"
        );
        assert!(
            report.contains("lock: pmap1 lock held by cpu1, DEAD"),
            "{report}"
        );
    }

    #[test]
    fn report_books_evictions_and_hints_at_unrecovered_giveups() {
        use machtlb_sim::Time;

        let mut m = build_kernel_machine(3, 1, CostModel::multimax(), KernelConfig::default());
        {
            let s = m.shared_mut();
            crate::health::evict(s, CpuId::new(0), CpuId::new(2), Time::from_micros(42));
            s.stats.watchdog_gaveup = 2; // one give-up was never absorbed
            s.stats.locks_stolen = 1;
        }
        let report = stall_report(&m);
        assert!(
            report.contains("eviction: cpu0 evicted cpu2 at 42.000us"),
            "{report}"
        );
        assert!(
            report.contains("cpu2: ") && report.contains("evicted"),
            "{report}"
        );
        assert!(
            report.contains("hint: watchdog give-ups exceed evictions"),
            "{report}"
        );
        assert!(
            report.contains("evictions=1 fenced_rejoins=0 locks_stolen=1 robbed_restarts=0 "),
            "{report}"
        );
    }

    #[test]
    fn golden_report_shape_for_a_quiet_machine() {
        // The full report for an untouched two-processor machine, pinned
        // line by line so format drift is a conscious choice.
        let m = build_kernel_machine(2, 1, CostModel::multimax(), KernelConfig::default());
        let report = stall_report(&m);
        let lines: Vec<&str> = report.lines().collect();
        assert_eq!(
            lines,
            vec![
                "=== stall report ===",
                "cpu0: clock=0.000us parked (no deadline) stack=[idle]",
                "cpu1: clock=0.000us parked (no deadline) stack=[idle]",
                "active={} idle={cpu0,cpu1}",
                "locks: none held",
                "in-flight interrupts: none",
                "hardening: ipi_retries=0 watchdog_gaveup=0 degraded_flushes=0 \
                 evictions=0 fenced_rejoins=0 locks_stolen=0 robbed_restarts=0 \
                 late_acks_rejected=0 self_fences=0 ops_retried=0 retries_exhausted=0",
            ],
            "{report}"
        );
    }
}
