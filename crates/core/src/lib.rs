//! # machtlb-core — the Mach TLB shootdown algorithm
//!
//! The primary contribution of *Translation Lookaside Buffer Consistency: A
//! Software Approach* (Black, Rashid, Golub, Hill, Baron — ASPLOS 1989),
//! reproduced as executable state machines over the `machtlb-sim`
//! multiprocessor:
//!
//! - [`PmapOpProcess`] — the **initiator** (Figure 1): queue consistency
//!   actions, interrupt the processors using the pmap, synchronize, update
//!   the physical map, unlock;
//! - [`ResponderProcess`] — the **responder** interrupt service routine:
//!   acknowledge by leaving the active set, stall until the update
//!   completes, then invalidate the queued ranges;
//! - [`ExitIdleProcess`] / [`enter_idle`] — the idle-processor optimisation
//!   (idle processors get queued actions but no interrupts);
//! - [`try_access`] — the translated memory-access path with the Section 3
//!   hardware hazards (autonomous reload, non-interlocked
//!   referenced/modified writeback);
//! - [`Checker`] — the oracle that makes the Section 4 guarantee testable:
//!   *no inconsistent TLB entry is used after the operation completes*;
//! - [`Strategy`] — the paper's algorithm next to the naive strawman and
//!   the Section 9 hardware-assisted variants.
//!
//! # Examples
//!
//! A two-processor shootdown, end to end:
//!
//! ```
//! use machtlb_core::{
//!     build_kernel_machine, KernelConfig, PmapOp, PmapOpProcess,
//! };
//! use machtlb_pmap::{PageRange, Pfn, Prot, Vpn};
//! use machtlb_sim::{CostModel, CpuId, Time};
//!
//! let mut m = build_kernel_machine(2, 42, CostModel::multimax(), KernelConfig::default());
//! // Seed a user pmap with one read-write page, in use on cpu1.
//! let (pmap, vpn) = {
//!     let s = m.shared_mut();
//!     let pmap = s.pmaps.create();
//!     let vpn = Vpn::new(0x100);
//!     s.seed_mapping(pmap, vpn, Pfn::new(7), Prot::READ_WRITE);
//!     s.pmaps.get_mut(pmap).mark_in_use(CpuId::new(1));
//!     s.force_active(CpuId::new(0));
//!     s.force_active(CpuId::new(1));
//!     (pmap, vpn)
//! };
//! // cpu0 reprotects the page read-only: a shootdown reaches cpu1.
//! let op = PmapOpProcess::new(pmap, PmapOp::Protect {
//!     range: PageRange::single(vpn),
//!     prot: Prot::READ,
//! });
//! m.spawn_at(CpuId::new(0), Time::ZERO, Box::new(op));
//! m.run(Time::from_micros(100_000));
//! let s = m.shared();
//! assert_eq!(s.stats.shootdowns_user, 1);
//! assert_eq!(s.stats.ipis_sent, 1);
//! assert!(s.checker.is_consistent());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod access;
mod chaos;
mod checker;
mod diagnose;
mod fuzz;
mod health;
mod kernel;
mod op;
mod queue;
mod responder;
mod soak;
mod state;
mod strategy;

pub use access::{try_access, AccessOutcome, MemOp};
pub use chaos::{
    chaos_kconfig, chaos_matrix, check_envelope, plan_catalog, run_chaos, survival_json,
    ChaosConfig, ChaosOutcome, ChaosPlan, Survival,
};
pub use checker::{Checker, Violation};
pub use diagnose::stall_report;
pub use fuzz::{
    fuzz_json, generate_schedule, is_red, offline_floor_us, parse_schedule, revive_floor_us,
    run_fuzz, run_schedule, schedule_json, shrink, Coverage, FaultSchedule, FuzzConfig, FuzzReport,
    FuzzRun, ScheduleEvent, ShrinkReport, SplitMix64, WRONGFUL_STALL_US,
};
pub use health::{
    evict, reclaim_dead_locks, EvictionReport, FencedRejoinProcess, HealthConfig, RecoveryPolicy,
};
pub use kernel::{
    build_kernel_machine, install_kernel_handlers, schedule_device_interrupts,
    schedule_timer_flushes, DeviceHandler, KernelMachine, NopHandler, SwitchUserPmapProcess,
    TimerFlushHandler, DEVICE_VECTOR, RESCHED_VECTOR, SHOOTDOWN_VECTOR, TIMER_FLUSH_VECTOR,
};
pub use op::{FailOpDriver, OpOutcome, PmapOp, PmapOpProcess};
pub use queue::{Action, ActionQueue, EnqueueOutcome};
pub use responder::{enter_idle, ExitIdleProcess, ResponderProcess};
pub use soak::{run_soak, soak_json, SoakConfig, SoakCycle, SoakOutcome};
pub use state::{
    queue_lock_channel, FrameAllocator, HasKernel, KernelConfig, KernelState, KernelStats,
    NodeCounters, PendingCommit, PhysMem, PmapRegistry, ShootdownRound, SpinMode, WatchdogConfig,
    WatchdogReport, SYNC_CHANNEL, WORDS_PER_PAGE,
};
pub use strategy::{Strategy, StrategyHardwareError};

use machtlb_sim::{Ctx, Dur, Process, Step};

/// Outcome of driving an embedded child state machine one step.
#[derive(Debug)]
pub enum Driven {
    /// The child yielded: return this step from the parent.
    Yield(Step),
    /// The child finished; its final action cost this much.
    Finished(Dur),
}

/// Drives an embedded child process one step — the composition idiom used
/// by threads that execute kernel operations (e.g. a user thread driving a
/// [`PmapOpProcess`] for a system call).
pub fn drive<S, P>(child: &mut P, ctx: &mut Ctx<'_, S, ()>) -> Driven
where
    P: Process<S, ()> + ?Sized,
{
    match child.step(ctx) {
        Step::Done(d) => Driven::Finished(d),
        other => Driven::Yield(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machtlb_pmap::{PageRange, Pfn, PmapId, Prot, Vaddr, Vpn};
    use machtlb_sim::{CostModel, CpuId, RunStatus, Time};
    use machtlb_tlb::{ReloadPolicy, TlbConfig, WritebackPolicy};

    /// A thread bound to one processor: exits idle, attaches a user pmap,
    /// then increments a counter word in a tight loop until it takes an
    /// unrecoverable fault — the Section 5.1 consistency-test child in
    /// miniature.
    #[derive(Debug)]
    struct Toucher {
        pmap: PmapId,
        va: Vaddr,
        counter: u64,
        exit_idle: Option<ExitIdleProcess>,
        switch: Option<SwitchUserPmapProcess>,
    }

    impl Toucher {
        fn new(pmap: PmapId, va: Vaddr) -> Toucher {
            Toucher {
                pmap,
                va,
                counter: 0,
                exit_idle: Some(ExitIdleProcess::new()),
                switch: None,
            }
        }
    }

    impl Process<KernelState, ()> for Toucher {
        fn step(&mut self, ctx: &mut Ctx<'_, KernelState, ()>) -> Step {
            if let Some(exit) = self.exit_idle.as_mut() {
                return match drive(exit, ctx) {
                    Driven::Yield(s) => s,
                    Driven::Finished(d) => {
                        self.exit_idle = None;
                        self.switch = Some(SwitchUserPmapProcess::new(Some(self.pmap)));
                        Step::Run(d)
                    }
                };
            }
            if let Some(sw) = self.switch.as_mut() {
                return match drive(sw, ctx) {
                    Driven::Yield(s) => s,
                    Driven::Finished(d) => {
                        self.switch = None;
                        Step::Run(d)
                    }
                };
            }
            self.counter += 1;
            match try_access(ctx, self.pmap, self.va, MemOp::Write(self.counter)) {
                AccessOutcome::Ok { cost, .. } => Step::Run(cost),
                AccessOutcome::Stall { cost } => Step::Run(cost),
                AccessOutcome::Fault { cost } => Step::Done(cost),
            }
        }

        fn label(&self) -> &'static str {
            "toucher"
        }
    }

    /// Exits idle, waits for the target counter to reach a threshold, then
    /// runs a pmap operation.
    #[derive(Debug)]
    struct Operator {
        pmap: PmapId,
        op: Option<PmapOp>,
        watch_pfn: Pfn,
        threshold: u64,
        exit_idle: Option<ExitIdleProcess>,
        running: Option<PmapOpProcess>,
    }

    impl Operator {
        fn new(pmap: PmapId, op: PmapOp, watch_pfn: Pfn, threshold: u64) -> Operator {
            Operator {
                pmap,
                op: Some(op),
                watch_pfn,
                threshold,
                exit_idle: Some(ExitIdleProcess::new()),
                running: None,
            }
        }
    }

    impl Process<KernelState, ()> for Operator {
        fn step(&mut self, ctx: &mut Ctx<'_, KernelState, ()>) -> Step {
            if let Some(exit) = self.exit_idle.as_mut() {
                return match drive(exit, ctx) {
                    Driven::Yield(s) => s,
                    Driven::Finished(d) => {
                        self.exit_idle = None;
                        Step::Run(d)
                    }
                };
            }
            if self.running.is_none() {
                if ctx.shared.mem.read_word(self.watch_pfn, 0) < self.threshold {
                    return Step::Run(ctx.costs().spin_iter);
                }
                self.running = Some(PmapOpProcess::new(
                    self.pmap,
                    self.op.take().expect("op consumed once"),
                ));
            }
            let op = self.running.as_mut().expect("set above");
            match drive(op, ctx) {
                Driven::Yield(s) => s,
                Driven::Finished(d) => Step::Done(d),
            }
        }

        fn label(&self) -> &'static str {
            "operator"
        }
    }

    struct Scenario {
        m: KernelMachine,
        pmap: PmapId,
        vpn: Vpn,
        pfn: Pfn,
    }

    /// Builds an n-cpu machine with one user pmap holding a read-write
    /// counter page, touchers on cpus 1..n, and the operator on cpu0.
    fn scenario(n_cpus: usize, kconfig: KernelConfig, op: impl Fn(Vpn) -> PmapOp) -> Scenario {
        let mut m = build_kernel_machine(n_cpus, 7, CostModel::multimax(), kconfig);
        let vpn = Vpn::new(0x40);
        let (pmap, pfn) = {
            let s = m.shared_mut();
            let pmap = s.pmaps.create();
            let pfn = s.frames.alloc();
            s.seed_mapping(pmap, vpn, pfn, Prot::READ_WRITE);
            (pmap, pfn)
        };
        let va = vpn.base();
        for c in 1..n_cpus {
            m.spawn_at(
                CpuId::new(c as u32),
                Time::ZERO,
                Box::new(Toucher::new(pmap, va)),
            );
        }
        m.spawn_at(
            CpuId::new(0),
            Time::ZERO,
            Box::new(Operator::new(pmap, op(vpn), pfn, 20)),
        );
        Scenario { m, pmap, vpn, pfn }
    }

    #[test]
    fn shootdown_reprotect_is_consistent_and_fatal_to_writers() {
        let mut sc = scenario(4, KernelConfig::default(), |vpn| PmapOp::Protect {
            range: PageRange::single(vpn),
            prot: Prot::READ,
        });
        let r = sc.m.run_bounded(Time::from_micros(1_000_000), 5_000_000);
        assert_eq!(r.status, RunStatus::Quiescent, "all threads fault and stop");
        let s = sc.m.shared();
        assert!(
            s.checker.is_consistent(),
            "violations: {:?}",
            s.checker.violations()
        );
        assert!(
            s.checker.checks() > 0,
            "the oracle must have been exercised"
        );
        assert_eq!(s.stats.shootdowns_user, 1);
        assert_eq!(s.stats.ipis_sent, 3, "three touchers were shot at");
        let inits = s.initiator_records();
        assert_eq!(inits.len(), 1);
        assert_eq!(inits[0].processors, 3);
        assert_eq!(inits[0].pages, 1);
        let resps = s.responder_records();
        assert_eq!(resps.len(), 3);
        // The page table now says read-only.
        assert_eq!(s.pmaps.get(sc.pmap).table().get(sc.vpn).prot, Prot::READ);
        // Counters stopped advancing at some positive value.
        assert!(s.mem.read_word(sc.pfn, 0) >= 20);
    }

    #[test]
    fn multicast_shootdown_reprotect_is_consistent() {
        let kconfig = KernelConfig {
            fanout: 4,
            ..KernelConfig::default()
        };
        let mut sc = scenario(8, kconfig, |vpn| PmapOp::Protect {
            range: PageRange::single(vpn),
            prot: Prot::READ,
        });
        let r = sc.m.run_bounded(Time::from_micros(1_000_000), 5_000_000);
        assert_eq!(r.status, RunStatus::Quiescent, "all threads fault and stop");
        let s = sc.m.shared();
        assert!(
            s.checker.is_consistent(),
            "violations: {:?}",
            s.checker.violations()
        );
        assert_eq!(s.stats.shootdowns_user, 1);
        assert_eq!(s.stats.multicast_rounds, 1);
        assert_eq!(s.pmaps.get(sc.pmap).table().get(sc.vpn).prot, Prot::READ);
        assert!(s.mem.read_word(sc.pfn, 0) >= 20);
    }

    /// Builds an n-cpu machine where `n_ops` operators (cpus 0..n_ops)
    /// each reprotect a distinct page of the same pmap, triggered by the
    /// same toucher counter so they collide on the pmap lock.
    fn batched_scenario(n_cpus: usize, n_ops: usize, kconfig: KernelConfig) -> Scenario {
        let mut m = build_kernel_machine(n_cpus, 7, CostModel::multimax(), kconfig);
        let vpn = Vpn::new(0x40);
        let (pmap, pfn) = {
            let s = m.shared_mut();
            let pmap = s.pmaps.create();
            let pfn = s.frames.alloc();
            s.seed_mapping(pmap, vpn, pfn, Prot::READ_WRITE);
            for i in 1..n_ops {
                let extra = s.frames.alloc();
                s.seed_mapping(pmap, Vpn::new(0x40 + i as u64), extra, Prot::READ_WRITE);
            }
            (pmap, pfn)
        };
        for c in n_ops..n_cpus {
            // Touchers write page i%n_ops so every operator's page is hot
            // in some TLB when the round fires.
            let page = Vpn::new(0x40 + ((c - n_ops) % n_ops) as u64);
            m.spawn_at(
                CpuId::new(c as u32),
                Time::ZERO,
                Box::new(Toucher::new(pmap, page.base())),
            );
        }
        for i in 0..n_ops {
            let op = PmapOp::Protect {
                range: PageRange::single(Vpn::new(0x40 + i as u64)),
                prot: Prot::READ,
            };
            m.spawn_at(
                CpuId::new(i as u32),
                Time::ZERO,
                Box::new(Operator::new(pmap, op, pfn, 20)),
            );
        }
        Scenario { m, pmap, vpn, pfn }
    }

    #[test]
    fn two_concurrent_initiators_batch_into_one_round() {
        let kconfig = KernelConfig {
            fanout: 4,
            batch_initiators: true,
            ..KernelConfig::default()
        };
        let mut sc = batched_scenario(8, 2, kconfig);
        let r = sc.m.run_bounded(Time::from_micros(1_000_000), 5_000_000);
        assert_eq!(r.status, RunStatus::Quiescent);
        let s = sc.m.shared();
        assert!(
            s.checker.is_consistent(),
            "violations: {:?}",
            s.checker.violations()
        );
        assert_eq!(s.stats.initiators_batched, 1, "second initiator joined");
        assert_eq!(s.stats.multicast_rounds, 1, "one IPI round served both");
        assert_eq!(s.stats.shootdowns_user, 1);
        // Both operations were applied under the leader's lock.
        let table = s.pmaps.get(sc.pmap).table();
        assert_eq!(table.get(Vpn::new(0x40)).prot, Prot::READ);
        assert_eq!(table.get(Vpn::new(0x41)).prot, Prot::READ);
    }

    #[test]
    fn n_concurrent_initiators_batch_into_one_round() {
        let n_ops = 4;
        let kconfig = KernelConfig {
            fanout: 4,
            batch_initiators: true,
            ..KernelConfig::default()
        };
        let mut sc = batched_scenario(12, n_ops, kconfig);
        let r = sc.m.run_bounded(Time::from_micros(1_000_000), 5_000_000);
        assert_eq!(r.status, RunStatus::Quiescent);
        let s = sc.m.shared();
        assert!(
            s.checker.is_consistent(),
            "violations: {:?}",
            s.checker.violations()
        );
        assert_eq!(
            s.stats.initiators_batched,
            (n_ops - 1) as u64,
            "every follower joined the first round"
        );
        assert_eq!(s.stats.multicast_rounds, 1);
        assert_eq!(s.stats.shootdowns_user, 1);
        let table = s.pmaps.get(sc.pmap).table();
        for i in 0..n_ops {
            assert_eq!(
                table.get(Vpn::new(0x40 + i as u64)).prot,
                Prot::READ,
                "joiner {i}'s page was reprotected before it completed"
            );
        }
    }

    /// Chaos variant of the batched-initiator protocol: halt one of the
    /// two co-initiators at several instants spread across the healthy
    /// run. Whatever role the victim held — leader mid-round, joiner
    /// parked on the lock channel, or bystander — the survivor's
    /// operation must complete and the oracle must stay clean.
    #[test]
    fn halted_co_initiator_never_strands_the_survivor() {
        use machtlb_sim::{FaultPlan, Halt};
        let kconfig = || KernelConfig {
            fanout: 4,
            batch_initiators: true,
            watchdog: WatchdogConfig {
                timeout: machtlb_sim::Dur::millis(5),
                ..WatchdogConfig::default()
            },
            ..KernelConfig::default()
        };
        // Fault-free run to learn the timeline; halts land at fractions
        // of it so the sweep stays meaningful if costs change.
        let mut healthy = batched_scenario(8, 2, kconfig());
        let r = healthy
            .m
            .run_bounded(Time::from_micros(1_000_000), 5_000_000);
        assert_eq!(r.status, RunStatus::Quiescent);
        let t_end = r.frontier;
        let mut batched_runs = 0u64;
        for num in [1u32, 2, 3] {
            let halt_at = Time::from_nanos(t_end.as_nanos() * num as u64 / 4);
            let mut sc = batched_scenario(8, 2, kconfig());
            sc.m.install_fault_plan(FaultPlan {
                halts: vec![Halt {
                    cpu: CpuId::new(0),
                    at: halt_at,
                }],
                ..FaultPlan::none(SHOOTDOWN_VECTOR)
            });
            // A halted toucher's page may never fault its writers, so the
            // machine need not quiesce: bound by time, generously past the
            // watchdog horizon, and let the assertions carry the claim.
            let _ = sc.m.run_bounded(Time::from_micros(200_000), 2_000_000);
            let s = sc.m.shared();
            assert!(
                s.checker.is_consistent(),
                "halt at {halt_at:?}: violations {:?}",
                s.checker.violations()
            );
            // Cpu1's page was reprotected despite its co-initiator dying.
            assert_eq!(
                s.pmaps.get(sc.pmap).table().get(Vpn::new(0x41)).prot,
                Prot::READ,
                "halt at {halt_at:?}: survivor's op never landed"
            );
            batched_runs += s.stats.initiators_batched;
        }
        assert!(
            batched_runs >= 1,
            "the sweep must exercise the batched path at least once"
        );
    }

    #[test]
    fn batching_disabled_serializes_initiators() {
        let kconfig = KernelConfig {
            fanout: 4,
            batch_initiators: false,
            ..KernelConfig::default()
        };
        let mut sc = batched_scenario(8, 2, kconfig);
        let r = sc.m.run_bounded(Time::from_micros(1_000_000), 5_000_000);
        assert_eq!(r.status, RunStatus::Quiescent);
        let s = sc.m.shared();
        assert!(s.checker.is_consistent());
        assert_eq!(s.stats.initiators_batched, 0);
        assert_eq!(s.stats.multicast_rounds, 2, "two serialized rounds");
    }

    #[test]
    fn sharded_multicast_shootdown_is_consistent() {
        let kconfig = KernelConfig {
            fanout: 2,
            pmap_shards: 4,
            ..KernelConfig::default()
        };
        let mut sc = scenario(6, kconfig, |vpn| PmapOp::Remove {
            range: PageRange::single(vpn),
        });
        let r = sc.m.run_bounded(Time::from_micros(1_000_000), 5_000_000);
        assert_eq!(r.status, RunStatus::Quiescent);
        let s = sc.m.shared();
        assert!(
            s.checker.is_consistent(),
            "violations: {:?}",
            s.checker.violations()
        );
        assert!(!s.pmaps.get(sc.pmap).table().get(sc.vpn).valid);
        assert_eq!(s.stats.shootdowns_user, 1);
        assert_eq!(s.stats.multicast_rounds, 1);
    }

    #[test]
    fn naive_strategy_violates_consistency() {
        let kconfig = KernelConfig {
            strategy: Strategy::NaiveFlush,
            ..KernelConfig::default()
        };
        let mut sc = scenario(4, kconfig, |vpn| PmapOp::Protect {
            range: PageRange::single(vpn),
            prot: Prot::READ,
        });
        // Touchers keep writing through their stale read-write entries and
        // never fault, so bound the run by time, not quiescence.
        let _ = sc.m.run_bounded(Time::from_micros(200_000), 5_000_000);
        let s = sc.m.shared();
        assert!(
            !s.checker.is_consistent(),
            "the naive strategy must be caught using stale entries"
        );
        assert_eq!(s.stats.ipis_sent, 0);
    }

    #[test]
    fn remove_shootdown_unmaps_for_everyone() {
        let mut sc = scenario(3, KernelConfig::default(), |vpn| PmapOp::Remove {
            range: PageRange::single(vpn),
        });
        let r = sc.m.run_bounded(Time::from_micros(1_000_000), 5_000_000);
        assert_eq!(r.status, RunStatus::Quiescent);
        let s = sc.m.shared();
        assert!(
            s.checker.is_consistent(),
            "violations: {:?}",
            s.checker.violations()
        );
        assert!(!s.pmaps.get(sc.pmap).table().get(sc.vpn).valid);
        assert_eq!(s.stats.shootdowns_user, 1);
    }

    #[test]
    fn lazy_evaluation_skips_shootdowns_for_unmapped_pages() {
        let mut m = build_kernel_machine(2, 3, CostModel::multimax(), KernelConfig::default());
        let pmap = {
            let s = m.shared_mut();
            let pmap = s.pmaps.create();
            s.pmaps.get_mut(pmap).mark_in_use(CpuId::new(1));
            s.force_active(CpuId::new(0));
            s.force_active(CpuId::new(1));
            pmap
        };
        // Reprotect a page that was never entered: the cthreads stack-guard
        // case of Section 7.2.
        let op = PmapOpProcess::new(
            pmap,
            PmapOp::Protect {
                range: PageRange::new(Vpn::new(0x200), 1),
                prot: Prot::NONE,
            },
        );
        m.spawn_at(CpuId::new(0), Time::ZERO, Box::new(op));
        m.run(Time::from_micros(100_000));
        let s = m.shared();
        assert_eq!(s.stats.lazy_skips, 1);
        assert_eq!(s.stats.ipis_sent, 0);
        assert_eq!(s.stats.shootdowns_user, 0);
        assert!(s.initiator_records().is_empty());
    }

    #[test]
    fn without_lazy_evaluation_the_same_op_shoots() {
        let kconfig = KernelConfig {
            lazy_eval: false,
            ..KernelConfig::default()
        };
        let mut m = build_kernel_machine(2, 3, CostModel::multimax(), kconfig);
        let pmap = {
            let s = m.shared_mut();
            let pmap = s.pmaps.create();
            s.pmaps.get_mut(pmap).mark_in_use(CpuId::new(1));
            s.force_active(CpuId::new(0));
            s.force_active(CpuId::new(1));
            pmap
        };
        let op = PmapOpProcess::new(
            pmap,
            PmapOp::Protect {
                range: PageRange::new(Vpn::new(0x200), 1),
                prot: Prot::NONE,
            },
        );
        m.spawn_at(CpuId::new(0), Time::ZERO, Box::new(op));
        m.run(Time::from_micros(100_000));
        let s = m.shared();
        assert_eq!(s.stats.lazy_skips, 0);
        assert_eq!(s.stats.ipis_sent, 1);
        assert_eq!(s.stats.shootdowns_user, 1);
    }

    #[test]
    fn kernel_pmap_ops_queue_for_idle_cpus_without_interrupting() {
        let mut m = build_kernel_machine(4, 5, CostModel::multimax(), KernelConfig::default());
        {
            let s = m.shared_mut();
            let pfn = s.frames.alloc();
            s.seed_mapping(PmapId::KERNEL, Vpn::new(0x10), pfn, Prot::READ_WRITE);
            s.force_active(CpuId::new(0));
            // cpus 1..3 stay idle.
        }
        let op = PmapOpProcess::new(
            PmapId::KERNEL,
            PmapOp::Remove {
                range: PageRange::new(Vpn::new(0x10), 1),
            },
        );
        m.spawn_at(CpuId::new(0), Time::ZERO, Box::new(op));
        m.run(Time::from_micros(100_000));
        {
            let s = m.shared();
            assert_eq!(s.stats.ipis_sent, 0, "idle processors are not interrupted");
            assert_eq!(
                s.stats.shootdowns_kernel, 1,
                "but the shootdown still happened"
            );
            for c in 1..4 {
                assert!(s.action_needed[c], "action queued for idle cpu{c}");
                assert_eq!(s.queues[c].len(), 1);
            }
        }
        // An idle processor drains its queue on the way out of idle.
        m.spawn_at(
            CpuId::new(2),
            Time::from_micros(50_000),
            Box::new(ExitIdleProcess::new()),
        );
        m.run(Time::from_micros(200_000));
        let s = m.shared();
        assert!(!s.action_needed[2]);
        assert!(s.queues[2].is_empty());
        assert!(s.active.contains(CpuId::new(2)));
    }

    #[test]
    fn action_queue_overflow_forces_full_flush() {
        let kconfig = KernelConfig {
            action_queue_capacity: 2,
            ..KernelConfig::default()
        };
        let mut m = build_kernel_machine(2, 9, CostModel::multimax(), kconfig);
        let pmap = {
            let s = m.shared_mut();
            let pmap = s.pmaps.create();
            for i in 0..4 {
                let pfn = s.frames.alloc();
                // Stride 2 keeps the pages non-adjacent so the queue
                // cannot coalesce them away — the overflow path is the
                // thing under test.
                s.seed_mapping(pmap, Vpn::new(0x40 + 2 * i), pfn, Prot::READ_WRITE);
            }
            s.pmaps.get_mut(pmap).mark_in_use(CpuId::new(1));
            // cpu1 stays idle; cpu0 initiates.
            s.force_active(CpuId::new(0));
            pmap
        };
        // Actions pile up only on *idle* processors (the initiator
        // synchronizes with everyone else): leave cpu1 idle with the pmap
        // still marked in use, so four back-to-back non-adjacent
        // single-page removes from cpu0 overflow its capacity-2 queue into
        // the flush-everything flag.
        #[derive(Debug)]
        struct ManyOps {
            pmap: PmapId,
            next: u64,
            running: Option<PmapOpProcess>,
        }
        impl Process<KernelState, ()> for ManyOps {
            fn step(&mut self, ctx: &mut Ctx<'_, KernelState, ()>) -> Step {
                if self.running.is_none() {
                    if self.next == 4 {
                        return Step::Done(Dur::ZERO);
                    }
                    self.running = Some(PmapOpProcess::new(
                        self.pmap,
                        PmapOp::Remove {
                            range: PageRange::new(Vpn::new(0x40 + 2 * self.next), 1),
                        },
                    ));
                    self.next += 1;
                }
                match drive(self.running.as_mut().expect("set"), ctx) {
                    Driven::Yield(s) => s,
                    Driven::Finished(d) => {
                        self.running = None;
                        Step::Run(d)
                    }
                }
            }
        }
        m.spawn_at(
            CpuId::new(0),
            Time::from_micros(10),
            Box::new(ManyOps {
                pmap,
                next: 0,
                running: None,
            }),
        );
        let r = m.run_bounded(Time::from_micros(2_000_000), 5_000_000);
        assert_eq!(r.status, RunStatus::Quiescent);
        assert!(
            m.shared().queues[1].overflows() >= 1,
            "queue must have overflowed"
        );
        assert!(
            m.shared().queues[1].flush_all(),
            "overflow pends a full flush"
        );
        // The idle processor performs the flush on its way out of idle.
        m.spawn_at(
            CpuId::new(1),
            Time::from_micros(10_000),
            Box::new(ExitIdleProcess::new()),
        );
        let r = m.run_bounded(Time::from_micros(3_000_000), 5_000_000);
        assert_eq!(r.status, RunStatus::Quiescent);
        let s = m.shared();
        assert!(
            s.tlbs[1].stats().flushes >= 1,
            "overflow forced a full flush"
        );
        assert!(!s.action_needed[1]);
        assert!(
            s.checker.is_consistent(),
            "violations: {:?}",
            s.checker.violations()
        );
    }

    #[test]
    fn concurrent_shootdowns_on_different_pmaps_do_not_deadlock() {
        // Two initiators shoot at each other simultaneously: cpu0 operates
        // on pmap A (in use on cpu1), cpu1 operates on pmap B (in use on
        // cpu0). The active-set deadlock avoidance must let both finish.
        let mut m = build_kernel_machine(2, 11, CostModel::multimax(), KernelConfig::default());
        let (pa, pb) = {
            let s = m.shared_mut();
            let pa = s.pmaps.create();
            let pb = s.pmaps.create();
            let f1 = s.frames.alloc();
            let f2 = s.frames.alloc();
            s.seed_mapping(pa, Vpn::new(1), f1, Prot::READ_WRITE);
            s.seed_mapping(pb, Vpn::new(2), f2, Prot::READ_WRITE);
            s.pmaps.get_mut(pa).mark_in_use(CpuId::new(1));
            s.pmaps.get_mut(pb).mark_in_use(CpuId::new(0));
            s.force_active(CpuId::new(0));
            s.force_active(CpuId::new(1));
            (pa, pb)
        };
        m.spawn_at(
            CpuId::new(0),
            Time::ZERO,
            Box::new(PmapOpProcess::new(
                pa,
                PmapOp::Remove {
                    range: PageRange::new(Vpn::new(1), 1),
                },
            )),
        );
        m.spawn_at(
            CpuId::new(1),
            Time::ZERO,
            Box::new(PmapOpProcess::new(
                pb,
                PmapOp::Remove {
                    range: PageRange::new(Vpn::new(2), 1),
                },
            )),
        );
        let r = m.run_bounded(Time::from_micros(1_000_000), 2_000_000);
        assert_eq!(r.status, RunStatus::Quiescent, "no deadlock");
        let s = m.shared();
        assert_eq!(s.stats.shootdowns_user, 2);
        assert!(s.checker.is_consistent());
        assert!(!s.pmaps.get(pa).table().get(Vpn::new(1)).valid);
        assert!(!s.pmaps.get(pb).table().get(Vpn::new(2)).valid);
    }

    #[test]
    fn broadcast_strategy_is_consistent() {
        let kconfig = KernelConfig {
            strategy: Strategy::BroadcastIpi,
            ..KernelConfig::default()
        };
        let mut sc = scenario(4, kconfig, |vpn| PmapOp::Protect {
            range: PageRange::single(vpn),
            prot: Prot::READ,
        });
        let r = sc.m.run_bounded(Time::from_micros(1_000_000), 5_000_000);
        assert_eq!(r.status, RunStatus::Quiescent);
        let s = sc.m.shared();
        assert!(
            s.checker.is_consistent(),
            "violations: {:?}",
            s.checker.violations()
        );
        assert_eq!(
            s.stats.ipis_sent, 3,
            "broadcast reaches every other processor"
        );
        assert_eq!(s.stats.shootdowns_user, 1);
    }

    #[test]
    fn hardware_remote_invalidate_is_consistent_without_interrupts() {
        let kconfig = KernelConfig {
            strategy: Strategy::HardwareRemoteInvalidate,
            tlb: TlbConfig {
                writeback: WritebackPolicy::Interlocked,
                ..TlbConfig::multimax()
            },
            ..KernelConfig::default()
        };
        let mut sc = scenario(4, kconfig, |vpn| PmapOp::Protect {
            range: PageRange::single(vpn),
            prot: Prot::READ,
        });
        let r = sc.m.run_bounded(Time::from_micros(1_000_000), 5_000_000);
        assert_eq!(r.status, RunStatus::Quiescent);
        let s = sc.m.shared();
        assert!(
            s.checker.is_consistent(),
            "violations: {:?}",
            s.checker.violations()
        );
        assert_eq!(s.stats.ipis_sent, 0, "no interrupts at all");
        assert_eq!(s.responder_records().len(), 0, "no responder involvement");
    }

    #[test]
    fn no_stall_software_reload_is_consistent() {
        let kconfig = KernelConfig {
            strategy: Strategy::NoStallSoftwareReload,
            tlb: TlbConfig {
                reload: ReloadPolicy::Software,
                writeback: WritebackPolicy::None,
                ..TlbConfig::multimax()
            },
            ..KernelConfig::default()
        };
        let mut sc = scenario(4, kconfig, |vpn| PmapOp::Protect {
            range: PageRange::single(vpn),
            prot: Prot::READ,
        });
        let r = sc.m.run_bounded(Time::from_micros(1_000_000), 5_000_000);
        assert_eq!(r.status, RunStatus::Quiescent);
        let s = sc.m.shared();
        assert!(
            s.checker.is_consistent(),
            "violations: {:?}",
            s.checker.violations()
        );
        assert_eq!(s.stats.shootdowns_user, 1);
    }

    #[test]
    fn protection_upgrade_needs_no_shootdown() {
        // Section 3 technique 3: temporary inconsistency is harmless when
        // protection increases.
        let mut m = build_kernel_machine(2, 13, CostModel::multimax(), KernelConfig::default());
        let pmap = {
            let s = m.shared_mut();
            let pmap = s.pmaps.create();
            let pfn = s.frames.alloc();
            s.seed_mapping(pmap, Vpn::new(5), pfn, Prot::READ);
            s.pmaps.get_mut(pmap).mark_in_use(CpuId::new(1));
            s.force_active(CpuId::new(0));
            s.force_active(CpuId::new(1));
            pmap
        };
        let op = PmapOpProcess::new(
            pmap,
            PmapOp::Protect {
                range: PageRange::new(Vpn::new(5), 1),
                prot: Prot::READ_WRITE, // upgrade
            },
        );
        m.spawn_at(CpuId::new(0), Time::ZERO, Box::new(op));
        m.run(Time::from_micros(100_000));
        let s = m.shared();
        assert_eq!(s.stats.ipis_sent, 0);
        assert_eq!(s.stats.shootdowns_user, 0);
        assert_eq!(
            s.pmaps.get(pmap).table().get(Vpn::new(5)).prot,
            Prot::READ_WRITE
        );
    }
}

#[cfg(test)]
mod proptests {
    #[allow(unused_imports)]
    use proptest::prelude::{prop_assert, prop_assert_eq, prop_oneof, proptest, ProptestConfig};
    use proptest::strategy::Strategy as _;

    use super::*;
    use machtlb_pmap::{PageRange, PmapId, Prot, Vpn};
    use machtlb_sim::{CostModel, CpuId, Ctx, Process, RunStatus, Step, Time};

    /// An initiator storm: one processor issuing a scripted sequence of
    /// pmap operations back to back (with exit-idle first).
    #[derive(Debug)]
    struct Storm {
        ops: Vec<(PmapId, PmapOp)>,
        idx: usize,
        exit_idle: Option<ExitIdleProcess>,
        attach: Option<SwitchUserPmapProcess>,
        attach_to: Option<PmapId>,
        running: Option<PmapOpProcess>,
    }

    impl Process<KernelState, ()> for Storm {
        fn step(&mut self, ctx: &mut Ctx<'_, KernelState, ()>) -> Step {
            if let Some(e) = self.exit_idle.as_mut() {
                return match drive(e, ctx) {
                    Driven::Yield(s) => s,
                    Driven::Finished(d) => {
                        self.exit_idle = None;
                        self.attach = Some(SwitchUserPmapProcess::new(self.attach_to));
                        Step::Run(d)
                    }
                };
            }
            if let Some(a) = self.attach.as_mut() {
                return match drive(a, ctx) {
                    Driven::Yield(s) => s,
                    Driven::Finished(d) => {
                        self.attach = None;
                        Step::Run(d)
                    }
                };
            }
            if self.running.is_none() {
                let Some((pmap, op)) = self.ops.get(self.idx).copied() else {
                    return Step::Done(machtlb_sim::Dur::micros(1));
                };
                self.idx += 1;
                self.running = Some(PmapOpProcess::new(pmap, op));
            }
            match drive(self.running.as_mut().expect("set above"), ctx) {
                Driven::Yield(s) => s,
                Driven::Finished(d) => {
                    self.running = None;
                    Step::Run(d)
                }
            }
        }
        fn label(&self) -> &'static str {
            "storm"
        }
    }

    #[derive(Debug, Clone, Copy)]
    enum StormOp {
        Enter(u64, u64),
        Remove(u64, u64),
        ProtectRo(u64, u64),
        ClearRef(u64, u64),
    }

    fn storm_op() -> impl proptest::strategy::Strategy<Value = (u8, StormOp)> {
        let vpn = 0u64..32;
        let len = 1u64..5;
        let pmap = 0u8..3; // kernel, user A, user B
        (
            pmap,
            prop_oneof![
                (vpn.clone(), 1u64..99).prop_map(|(v, f)| StormOp::Enter(v, f)),
                (vpn.clone(), len.clone()).prop_map(|(v, l)| StormOp::Remove(v, l)),
                (vpn.clone(), len.clone()).prop_map(|(v, l)| StormOp::ProtectRo(v, l)),
                (vpn, len).prop_map(|(v, l)| StormOp::ClearRef(v, l)),
            ],
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        /// Concurrent initiators hammering the kernel pmap and two user
        /// pmaps from every processor: no deadlock, no lost completions,
        /// no consistency violations — the algorithm's refinements
        /// (deadlock avoidance, idle skipping, pending-interrupt
        /// suppression) under adversarial load.
        #[test]
        fn concurrent_initiator_storms_terminate_consistently(
            scripts in proptest::collection::vec(
                proptest::collection::vec(storm_op(), 1..14),
                2..5,
            ),
            seed in 0u64..1000,
        ) {
            let n_cpus = scripts.len();
            let mut m = build_kernel_machine(n_cpus, seed, CostModel::multimax(), KernelConfig::default());
            let (pa, pb) = {
                let s = m.shared_mut();
                let pa = s.pmaps.create();
                let pb = s.pmaps.create();
                // Seed a few mappings so removes and protects have teeth.
                for v in 0..8u64 {
                    let f = s.frames.alloc();
                    s.seed_mapping(PmapId::KERNEL, Vpn::new(v), f, Prot::READ_WRITE);
                    let f = s.frames.alloc();
                    s.seed_mapping(pa, Vpn::new(v), f, Prot::READ_WRITE);
                    let f = s.frames.alloc();
                    s.seed_mapping(pb, Vpn::new(v), f, Prot::READ_WRITE);
                }
                (pa, pb)
            };
            let resolve = |p: u8| match p {
                0 => PmapId::KERNEL,
                1 => pa,
                _ => pb,
            };
            for (i, script) in scripts.iter().enumerate() {
                let ops: Vec<(PmapId, PmapOp)> = script
                    .iter()
                    .map(|&(p, op)| {
                        let pmap = resolve(p);
                        let op = match op {
                            StormOp::Enter(v, f) => PmapOp::Enter {
                                vpn: Vpn::new(v),
                                pfn: machtlb_pmap::Pfn::new(1000 + f),
                                prot: Prot::READ_WRITE,
                            },
                            StormOp::Remove(v, l) => PmapOp::Remove {
                                range: PageRange::new(Vpn::new(v), l),
                            },
                            StormOp::ProtectRo(v, l) => PmapOp::Protect {
                                range: PageRange::new(Vpn::new(v), l),
                                prot: Prot::READ,
                            },
                            StormOp::ClearRef(v, l) => PmapOp::ClearRefBits {
                                range: PageRange::new(Vpn::new(v), l),
                            },
                        };
                        (pmap, op)
                    })
                    .collect();
                // Odd processors attach user pmap A, even ones B, so the
                // user-pmap shootdowns have real targets.
                let attach_to = Some(if i % 2 == 0 { pa } else { pb });
                m.spawn_at(
                    CpuId::new(i as u32),
                    Time::ZERO,
                    Box::new(Storm {
                        ops,
                        idx: 0,
                        exit_idle: Some(ExitIdleProcess::new()),
                        attach: None,
                        attach_to,
                        running: None,
                    }),
                );
            }
            let r = m.run_bounded(Time::from_micros(60_000_000), 20_000_000);
            prop_assert_eq!(r.status, RunStatus::Quiescent, "storms must terminate (no deadlock)");
            let s = m.shared();
            prop_assert!(
                s.checker.is_consistent(),
                "violations: {:?}",
                s.checker.violations().iter().take(3).collect::<Vec<_>>()
            );
            // Every queued consistency action was eventually drained.
            for c in 0..n_cpus {
                prop_assert!(!s.action_needed[c] || s.idle.contains(CpuId::new(c as u32)),
                    "cpu{c} left with undrained actions while active");
            }
        }

        /// The watchdog's retry schedule is bounded and monotone: each
        /// wait is no shorter than the previous one, the total time the
        /// initiator can spend retrying is a closed form of the config,
        /// and absurd retry counts saturate instead of overflowing.
        #[test]
        fn watchdog_backoff_is_bounded_and_monotone(
            timeout_us in 1u64..100_000,
            backoff in 1u32..8,
            max_retries in 0u32..12,
        ) {
            let wd = WatchdogConfig {
                enabled: true,
                timeout: machtlb_sim::Dur::micros(timeout_us),
                backoff,
                max_retries,
            };
            let mut prev = machtlb_sim::Dur::ZERO;
            let mut total = machtlb_sim::Dur::ZERO;
            for retry in 0..=max_retries {
                let t = wd.retry_timeout(retry);
                prop_assert!(t >= wd.timeout, "never shorter than the base timeout");
                prop_assert!(t >= prev, "monotone nondecreasing");
                prop_assert_eq!(
                    t.as_nanos(),
                    wd.timeout.as_nanos().saturating_mul(u64::from(backoff).saturating_pow(retry)),
                    "exact bounded-exponential schedule"
                );
                prev = t;
                total = machtlb_sim::Dur::nanos(
                    total.as_nanos().saturating_add(t.as_nanos()),
                );
            }
            // The give-up horizon is closed-form computable from the
            // config alone: sum of timeout * backoff^i for i..=max.
            let horizon: u64 = (0..=max_retries)
                .map(|i| {
                    wd.timeout
                        .as_nanos()
                        .saturating_mul(u64::from(backoff).saturating_pow(i))
                })
                .fold(0u64, u64::saturating_add);
            prop_assert_eq!(total.as_nanos(), horizon);
            // Saturation, not overflow, for out-of-range retry counts.
            let huge = wd.retry_timeout(u32::MAX);
            prop_assert!(huge.as_nanos() >= wd.timeout.as_nanos());
        }
    }
}
