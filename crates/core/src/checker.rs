//! The consistency checker: the reproduction's oracle.
//!
//! The paper's guarantee is precise: "Invoking a shootdown guarantees that
//! any inconsistent TLB entries caused by this operation will not be used
//! after the operation completes" (Section 4). The checker tracks, for
//! every page of every pmap, the translation the most recently *completed*
//! operation committed and when it completed. Every translated memory
//! access is checked against that committed state: using a translation that
//! grants rights (or maps a frame) the committed state does not, strictly
//! after the commit instant, is a violation.
//!
//! Under the shootdown strategy no execution may record a violation; the
//! naive strategy exists to show that the checker catches real ones.

use std::collections::HashMap;
use std::fmt;

use machtlb_pmap::{Access, PmapId, Pte, Vpn};
use machtlb_sim::{CpuId, Time};

/// A recorded consistency violation.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// When the stale translation was used.
    pub at: Time,
    /// The processor that used it.
    pub cpu: CpuId,
    /// The pmap concerned.
    pub pmap: PmapId,
    /// The page concerned.
    pub vpn: Vpn,
    /// The translation actually used.
    pub used: Pte,
    /// The translation the last completed operation committed.
    pub committed: Pte,
    /// When that operation completed.
    pub committed_at: Time,
    /// The access kind performed.
    pub access: Access,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} used stale {} of {} {} at {} ({:?} access; committed {} at {})",
            self.cpu,
            self.used,
            self.pmap,
            self.vpn,
            self.at,
            self.access,
            self.committed,
            self.committed_at
        )
    }
}

/// The committed-state shadow map and violation log. See the
/// module docs.
#[derive(Clone, Debug, Default)]
pub struct Checker {
    committed: HashMap<(PmapId, u64), (Pte, Time)>,
    violations: Vec<Violation>,
    total_violations: u64,
    checks: u64,
}

/// Violations retained in detail; the total count keeps growing beyond
/// this (a broken strategy can violate millions of times).
const RETAINED_VIOLATIONS: usize = 1000;

impl Checker {
    /// Creates an empty checker.
    pub fn new() -> Checker {
        Checker::default()
    }

    /// Records that a completed operation committed `pte` as the
    /// translation for `(pmap, vpn)` at instant `at`.
    pub fn commit(&mut self, pmap: PmapId, vpn: Vpn, pte: Pte, at: Time) {
        self.committed.insert((pmap, vpn.raw()), (pte, at));
    }

    /// The committed translation for a page, if any operation has touched
    /// it ([`Pte::INVALID`] at [`Time::ZERO`] otherwise).
    pub fn committed(&self, pmap: PmapId, vpn: Vpn) -> (Pte, Time) {
        self.committed
            .get(&(pmap, vpn.raw()))
            .copied()
            .unwrap_or((Pte::INVALID, Time::ZERO))
    }

    /// Checks a translated access performed at `now` on `cpu` using
    /// translation `used`. Records (and returns) a violation if the
    /// committed state, strictly before `now`, does not sanction it.
    pub fn check_use(
        &mut self,
        cpu: CpuId,
        pmap: PmapId,
        vpn: Vpn,
        used: Pte,
        access: Access,
        now: Time,
    ) -> Option<Violation> {
        self.checks += 1;
        let (committed, committed_at) = self.committed(pmap, vpn);
        if now <= committed_at {
            // The operation completed at or after this use; during the
            // operation, use of the old translation is permitted.
            return None;
        }
        let sanctioned =
            committed.valid && committed.prot.allows(access) && committed.pfn == used.pfn;
        if sanctioned {
            return None;
        }
        let v = Violation {
            at: now,
            cpu,
            pmap,
            vpn,
            used,
            committed,
            committed_at,
            access,
        };
        self.total_violations += 1;
        if self.violations.len() < RETAINED_VIOLATIONS {
            self.violations.push(v);
        }
        Some(v)
    }

    /// The violations retained in detail (the first thousand; see
    /// [`Checker::total_violations`] for the full count).
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Total violations recorded, including those beyond the retained
    /// window.
    pub fn total_violations(&self) -> u64 {
        self.total_violations
    }

    /// Whether the run is consistent so far.
    pub fn is_consistent(&self) -> bool {
        self.total_violations == 0
    }

    /// Number of access checks performed (to confirm the oracle actually
    /// exercised the run).
    pub fn checks(&self) -> u64 {
        self.checks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machtlb_pmap::{Pfn, Prot};

    const PM: PmapId = PmapId::new(1);

    fn rw(pfn: u64) -> Pte {
        Pte::valid(Pfn::new(pfn), Prot::READ_WRITE)
    }

    #[test]
    fn sanctioned_use_passes() {
        let mut c = Checker::new();
        c.commit(PM, Vpn::new(1), rw(5), Time::from_micros(10));
        let v = c.check_use(
            CpuId::new(0),
            PM,
            Vpn::new(1),
            rw(5),
            Access::Write,
            Time::from_micros(20),
        );
        assert!(v.is_none());
        assert!(c.is_consistent());
        assert_eq!(c.checks(), 1);
    }

    #[test]
    fn stale_rights_after_commit_violate() {
        let mut c = Checker::new();
        c.commit(PM, Vpn::new(1), rw(5), Time::from_micros(10));
        // Protection reduced to read-only at t=30.
        c.commit(
            PM,
            Vpn::new(1),
            Pte::valid(Pfn::new(5), Prot::READ),
            Time::from_micros(30),
        );
        // A write via the stale read-write entry at t=40 is a violation...
        let v = c.check_use(
            CpuId::new(2),
            PM,
            Vpn::new(1),
            rw(5),
            Access::Write,
            Time::from_micros(40),
        );
        assert!(v.is_some());
        // ...but a read is fine (committed still allows reads).
        let v = c.check_use(
            CpuId::new(2),
            PM,
            Vpn::new(1),
            rw(5),
            Access::Read,
            Time::from_micros(41),
        );
        assert!(v.is_none());
        assert_eq!(c.violations().len(), 1);
    }

    #[test]
    fn use_during_operation_window_is_allowed() {
        let mut c = Checker::new();
        c.commit(PM, Vpn::new(1), Pte::INVALID, Time::from_micros(100));
        // At exactly the commit instant the responder may still be
        // invalidating; uses at or before it are sanctioned.
        let v = c.check_use(
            CpuId::new(1),
            PM,
            Vpn::new(1),
            rw(5),
            Access::Read,
            Time::from_micros(100),
        );
        assert!(v.is_none());
        let v = c.check_use(
            CpuId::new(1),
            PM,
            Vpn::new(1),
            rw(5),
            Access::Read,
            Time::from_micros(101),
        );
        assert!(v.is_some(), "strictly after commit the use is stale");
    }

    #[test]
    fn wrong_frame_is_a_violation_even_with_rights() {
        let mut c = Checker::new();
        c.commit(PM, Vpn::new(1), rw(7), Time::from_micros(10));
        let v = c.check_use(
            CpuId::new(0),
            PM,
            Vpn::new(1),
            rw(5), // stale frame
            Access::Read,
            Time::from_micros(20),
        );
        assert!(v.is_some());
        let v = v.expect("violation");
        assert_eq!(v.committed.pfn, Pfn::new(7));
        assert_eq!(v.used.pfn, Pfn::new(5));
    }

    #[test]
    fn untouched_pages_have_no_sanction() {
        // A page no operation ever committed: any translated use of it is
        // suspect (TLBs do not cache invalid mappings, so a real run can
        // only reach this with a forged entry).
        let mut c = Checker::new();
        let v = c.check_use(
            CpuId::new(0),
            PM,
            Vpn::new(9),
            rw(1),
            Access::Read,
            Time::from_micros(1),
        );
        assert!(v.is_some());
    }

    #[test]
    fn violation_display_is_informative() {
        let mut c = Checker::new();
        c.commit(PM, Vpn::new(1), Pte::INVALID, Time::from_micros(1));
        let v = c
            .check_use(
                CpuId::new(3),
                PM,
                Vpn::new(1),
                rw(5),
                Access::Write,
                Time::from_micros(2),
            )
            .expect("violation");
        let s = v.to_string();
        assert!(s.contains("cpu3"));
        assert!(s.contains("stale"));
    }
}
