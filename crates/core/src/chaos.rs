//! The chaos harness: deterministic fault campaigns against the shootdown.
//!
//! A [`ChaosPlan`] pairs a machine-layer [`FaultPlan`] with kernel-side
//! sabotage (a tiny action queue, a poisoned queue, the watchdog turned
//! off) and a declared *envelope*: whether the hardened kernel is expected
//! to ride the faults out. [`run_chaos`] drives a fixed
//! writer/initiator workload under the plan and classifies the outcome:
//!
//! - [`Survival::Tolerated`] — finished with no violations and no
//!   hardening machinery engaged;
//! - [`Survival::Degraded`] — finished consistently, but only because the
//!   hardening fired (IPI retries, a full-TLB-flush degradation, a
//!   poisoned or overflowed queue, a dead responder evicted, a lock
//!   stolen from a halted holder, a fenced rejoin);
//! - [`Survival::DetectedFatal`] — the fault escaped the envelope and was
//!   *caught*: a checker violation, a watchdog give-up the health monitor
//!   did not absorb into an eviction, or a run that visibly never
//!   completed (and carries a [`stall_report`]).
//!
//! The suite is two-sided. Plans inside the envelope must never be
//! `DetectedFatal`; plans beyond it (`tolerable == false`) must be
//! `DetectedFatal` — a beyond-envelope plan that *passes* is itself a
//! failure, because it means a real fault of that shape would corrupt
//! translations silently. [`check_envelope`] encodes both directions.
//!
//! Everything is seed-deterministic: the fault rules are
//! counter-deterministic (no random draws), so the same
//! [`ChaosConfig`] always yields a bit-identical [`ChaosOutcome`] —
//! clocks, statistics, and verdict. A `None` plan and an installed
//! [`FaultPlan::none`] are likewise bit-identical, proving the injection
//! hooks cost nothing when quiet.

use machtlb_pmap::{PageRange, Pfn, PmapId, Prot, Vaddr, Vpn};
use machtlb_sim::{
    BusStats, CostModel, CpuId, Ctx, Dur, FaultPlan, FaultRecord, FaultStats, Halt, IpiDelay,
    IpiDrop, IpiDuplicate, IpiReorder, IsrStretch, Offline, Process, ResponderStall, RunStatus,
    Step, Time,
};
use machtlb_xpr::{ShootdownEvent, TraceEdge, TracePhase};

use crate::access::{try_access, AccessOutcome, MemOp};
use crate::diagnose::stall_report;
use crate::health::{FencedRejoinProcess, RecoveryPolicy};
use crate::kernel::{
    build_kernel_machine, schedule_device_interrupts, KernelMachine, SwitchUserPmapProcess,
    SHOOTDOWN_VECTOR,
};
use crate::op::{FailOpDriver, PmapOp, PmapOpProcess};
use crate::responder::ExitIdleProcess;
use crate::state::{KernelConfig, KernelState, KernelStats, WatchdogConfig};
use crate::{drive, Driven};

/// How a chaos run ended, from best to worst.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Survival {
    /// Finished consistently with no hardening machinery engaged.
    Tolerated,
    /// Finished consistently, but only because the hardening fired
    /// (IPI retries, a degraded full flush, an overflowed or poisoned
    /// queue, an evicted responder, a stolen lock, a fenced rejoin).
    Degraded,
    /// The fault was caught rather than survived: a checker violation, an
    /// unrecovered watchdog give-up, or a run that never completed.
    DetectedFatal,
}

impl Survival {
    /// A short name for tables.
    pub fn name(self) -> &'static str {
        match self {
            Survival::Tolerated => "tolerated",
            Survival::Degraded => "degraded",
            Survival::DetectedFatal => "detected-fatal",
        }
    }
}

/// One chaos campaign: machine-layer faults plus kernel-side sabotage,
/// with its declared envelope.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Short name for tables and test output.
    pub name: &'static str,
    /// The machine-layer fault plan (IPI and dispatch perturbations).
    pub fault: FaultPlan,
    /// Override the per-processor action-queue capacity (the overflow
    /// storm). When set, the workload also leaves the last processor idle
    /// with the pmap in use, so actions pile up in its queue.
    pub queue_capacity: Option<usize>,
    /// Poison this processor's action queue before the run starts
    /// (models queue corruption found by the check gate).
    pub poison_cpu: Option<CpuId>,
    /// Whether the initiator watchdog is armed. Turned off only by
    /// beyond-envelope plans, to prove a lost IPI without the watchdog is
    /// caught rather than silently survived.
    pub watchdog_enabled: bool,
    /// Whether a revived processor runs the fenced rejoin protocol.
    /// Turned off only by the beyond-envelope revival plan, to prove the
    /// checker catches an unfenced rejoin's stale translations.
    pub fencing: bool,
    /// After its rounds, the driver reprotects both test pages read-only
    /// *before* raising the sentinel. Combined with each writer's final
    /// translated write, this is the stale-translation probe for revived
    /// processors: an entry cached before the processor went offline is
    /// writable, the final commit is read-only, and only a full fence
    /// stands between them.
    pub final_ro: bool,
    /// Replace the last processor's writer with a process that takes the
    /// test pmap's lock and never releases it — the dead-lock-holder
    /// scenario once the fault plan halts that processor.
    pub grab_lock: bool,
    /// The dead-lock-holder recovery policy this plan runs under. The
    /// catalog default is [`RecoveryPolicy::FenceAndSteal`]; the FailOp
    /// plans switch to [`RecoveryPolicy::FailOp`] and drive every
    /// operation through a [`FailOpDriver`](crate::FailOpDriver).
    pub policy: RecoveryPolicy,
    /// The [`FailOpDriver`](crate::FailOpDriver) restart budget (only
    /// meaningful under [`RecoveryPolicy::FailOp`]).
    pub failop_retries: u32,
    /// Run a second, co-initiating driver on processor 1. It shares the
    /// rounds and raises the sentinel, so the campaign completes even if
    /// the primary initiator on processor 0 is halted mid-run.
    pub co_initiator: bool,
    /// Whether the hardened kernel is expected to finish consistently
    /// under this plan (possibly degraded). Beyond-envelope plans must be
    /// [`Survival::DetectedFatal`].
    pub tolerable: bool,
}

fn base_plan(name: &'static str, fault: FaultPlan) -> ChaosPlan {
    ChaosPlan {
        name,
        fault,
        queue_capacity: None,
        poison_cpu: None,
        watchdog_enabled: true,
        fencing: true,
        final_ro: false,
        grab_lock: false,
        policy: RecoveryPolicy::FenceAndSteal,
        failop_retries: 3,
        co_initiator: false,
        tolerable: true,
    }
}

/// The standard campaign catalog for an `n_cpus`-processor machine: six
/// fault shapes inside the tolerable envelope, two queue-sabotage plans
/// that must degrade gracefully, a fail-stop family (responders halted
/// before and after acknowledging, a halted lock holder, an
/// offline-and-revive storm), and three beyond-envelope plans that must
/// be caught (total unwatched IPI loss, a halted initiator, and a
/// revival with fencing disabled).
///
/// Appended after those sixteen (the topology-equivalence goldens pin
/// the prefix) comes the compound-fault family: two halted responders,
/// a halted initiator with a live co-initiator, the wrongful eviction of
/// a slow-but-alive responder (with and without fencing), and a halted
/// lock holder recovered end to end under [`RecoveryPolicy::FailOp`]
/// (`RecoveryPolicy` is re-exported at the crate root) through a
/// [`FailOpDriver`](crate::FailOpDriver).
///
/// The fail-stop timing: the workload's sentinel lands between 5 and
/// 10 ms, so a halt at 2 ms reliably strikes mid-run; pairing it with an
/// 8 ms [`ResponderStall`] pins the victim inside a shootdown dispatch —
/// notified but not yet acknowledged — without racing the microsecond-
/// scale healthy ack.
///
/// # Panics
///
/// Panics if `n_cpus < 4` (the workload needs an initiator, a surviving
/// responder, and two distinct fault targets for the compound plans).
pub fn plan_catalog(n_cpus: usize) -> Vec<ChaosPlan> {
    assert!(n_cpus >= 4, "chaos workload needs at least 4 processors");
    let v = SHOOTDOWN_VECTOR;
    let last = CpuId::new(n_cpus as u32 - 1);
    // The revival instant of the offline plans. 120ms was tuned so the
    // revival lands after the finale's reprotect on small machines; bus
    // serialization stretches campaign time roughly linearly with the
    // processor count, so the revival must stretch with it — otherwise
    // the final round starts after the rejoin, legitimately shoots the
    // revived processor's stale entry down, and the beyond-envelope
    // `revive-no-fence` plan passes silently. The max keeps every
    // machine up to 28 processors (including the golden-pinned
    // 4-processor catalog) bit-identical to the original constant.
    let revive_at = Time::from_micros(120_000u64.max(50_000 + 2_500 * n_cpus as u64));
    // Likewise the offline instant: the victim must have won the
    // serialized bus and cached its writable test-page entry before it
    // can go offline holding a translation to go stale. At 2ms a
    // 128-processor machine's last writer is still queued behind the
    // other 126.
    let offline_at = Time::from_micros(2_000u64.max(100 * n_cpus as u64));
    vec![
        base_plan("none", FaultPlan::none(v)),
        base_plan(
            "ipi-delay",
            FaultPlan {
                delay: Some(IpiDelay {
                    every_nth: 2,
                    extra: Dur::micros(500),
                }),
                ..FaultPlan::none(v)
            },
        ),
        base_plan(
            "ipi-dup",
            FaultPlan {
                duplicate: Some(IpiDuplicate {
                    every_nth: 2,
                    extra: Dur::micros(200),
                }),
                ..FaultPlan::none(v)
            },
        ),
        base_plan(
            "ipi-reorder",
            FaultPlan {
                reorder: Some(IpiReorder {
                    every_nth: 2,
                    hold: Dur::micros(300),
                }),
                ..FaultPlan::none(v)
            },
        ),
        base_plan(
            "isr-stretch",
            FaultPlan {
                isr_stretch: Some(IsrStretch {
                    extra: Dur::micros(800),
                }),
                ..FaultPlan::none(v)
            },
        ),
        base_plan(
            "stall",
            FaultPlan {
                stalls: vec![ResponderStall {
                    cpu: last,
                    extra: Dur::millis(8),
                    times: 2,
                }],
                ..FaultPlan::none(v)
            },
        ),
        ChaosPlan {
            queue_capacity: Some(1),
            ..base_plan("storm", FaultPlan::none(v))
        },
        ChaosPlan {
            poison_cpu: Some(last),
            ..base_plan("poison", FaultPlan::none(v))
        },
        base_plan(
            "ipi-drop",
            FaultPlan {
                drop: Some(IpiDrop {
                    every_nth: 1,
                    max_drops: 2,
                }),
                ..FaultPlan::none(v)
            },
        ),
        ChaosPlan {
            watchdog_enabled: false,
            tolerable: false,
            ..base_plan(
                "ipi-drop-all",
                FaultPlan {
                    drop: Some(IpiDrop {
                        every_nth: 1,
                        max_drops: u64::MAX,
                    }),
                    ..FaultPlan::none(v)
                },
            )
        },
        // The fail-stop family. A responder frozen inside a stretched
        // shootdown dispatch — notified, never acknowledging: the
        // watchdog must exhaust its retries, evict it, and complete
        // against the reduced quorum.
        base_plan(
            "halt-resp-preack",
            FaultPlan {
                stalls: vec![ResponderStall {
                    cpu: last,
                    extra: Dur::millis(8),
                    times: 1,
                }],
                halts: vec![Halt {
                    cpu: last,
                    at: Time::from_micros(2_000),
                }],
                ..FaultPlan::none(v)
            },
        ),
        // The same responder dies *after* acknowledging its first
        // shootdown (mid-stall of the second): the kernel already
        // banked that ack, and only the second wait must degrade.
        base_plan(
            "halt-resp-postack",
            FaultPlan {
                stalls: vec![ResponderStall {
                    cpu: last,
                    extra: Dur::millis(8),
                    times: 2,
                }],
                halts: vec![Halt {
                    cpu: last,
                    at: Time::from_micros(12_000),
                }],
                ..FaultPlan::none(v)
            },
        ),
        // A processor halts while holding the test pmap's lock: the
        // initiator's liveness probe must fence-and-steal it instead of
        // spinning on a corpse.
        ChaosPlan {
            grab_lock: true,
            ..base_plan(
                "halt-holder",
                FaultPlan {
                    halts: vec![Halt {
                        cpu: last,
                        at: Time::from_micros(1_000),
                    }],
                    ..FaultPlan::none(v)
                },
            )
        },
        // Offline mid-shootdown, revive long after eviction: the revived
        // processor must pass the fenced rejoin before its final
        // translated write, which lands on a page reprotected read-only
        // while it was dead.
        ChaosPlan {
            final_ro: true,
            ..base_plan(
                "offline-revive",
                FaultPlan {
                    stalls: vec![ResponderStall {
                        cpu: last,
                        extra: Dur::millis(8),
                        times: 1,
                    }],
                    offlines: vec![Offline {
                        cpu: last,
                        at: offline_at,
                        revive_at,
                    }],
                    ..FaultPlan::none(v)
                },
            )
        },
        // Beyond the envelope: the same revival with the fence disabled.
        // The revived processor rejoins with its pre-offline TLB intact
        // and writes through a stale writable entry — the checker must
        // flag it; a silent pass here is the suite failing.
        ChaosPlan {
            final_ro: true,
            fencing: false,
            tolerable: false,
            ..base_plan(
                "revive-no-fence",
                FaultPlan {
                    stalls: vec![ResponderStall {
                        cpu: last,
                        extra: Dur::millis(8),
                        times: 1,
                    }],
                    offlines: vec![Offline {
                        cpu: last,
                        at: offline_at,
                        revive_at,
                    }],
                    ..FaultPlan::none(v)
                },
            )
        },
        // Beyond the envelope: the *initiator* halts mid-campaign. No
        // health monitor can finish its rounds for it — the run must
        // visibly fail to complete, never pass silently.
        ChaosPlan {
            tolerable: false,
            ..base_plan(
                "halt-initiator",
                FaultPlan {
                    halts: vec![Halt {
                        cpu: CpuId::new(0),
                        at: Time::from_micros(2_000),
                    }],
                    ..FaultPlan::none(v)
                },
            )
        },
        // The compound-fault family (appended after the seed sixteen: the
        // topology-equivalence goldens pin the original prefix).
        //
        // Two responders frozen inside stretched dispatches and then
        // halted: the watchdog must evict both — two independent
        // stall/halt rule pairs firing in one campaign.
        base_plan(
            "two-halt-responders",
            FaultPlan {
                stalls: vec![
                    ResponderStall {
                        cpu: last,
                        extra: Dur::millis(8),
                        times: 1,
                    },
                    ResponderStall {
                        cpu: CpuId::new(n_cpus as u32 - 2),
                        extra: Dur::millis(8),
                        times: 1,
                    },
                ],
                halts: vec![
                    Halt {
                        cpu: last,
                        at: Time::from_micros(2_000),
                    },
                    Halt {
                        cpu: CpuId::new(n_cpus as u32 - 2),
                        at: Time::from_micros(2_500),
                    },
                ],
                ..FaultPlan::none(v)
            },
        ),
        // The halted initiator again — but with a live co-initiator on
        // processor 1 that shares the rounds and raises the sentinel.
        // What was beyond the envelope alone is inside it with a
        // redundant initiator: the survivor steals the corpse's lock (or
        // simply outruns it) and the campaign completes.
        ChaosPlan {
            co_initiator: true,
            ..base_plan(
                "halt-initiator-coinit",
                FaultPlan {
                    halts: vec![Halt {
                        cpu: CpuId::new(0),
                        at: Time::from_micros(2_000),
                    }],
                    ..FaultPlan::none(v)
                },
            )
        },
        // The wrongful eviction: a responder that is slow but *alive*. A
        // 100 ms dispatch stretch overshoots the watchdog's ~75 ms
        // give-up horizon, so the monitor evicts a processor that will
        // resume. The late ack must be rejected by the generation
        // handshake, and the resumed processor must detect its own
        // eviction and self-fence before its final translated write —
        // which lands on a page reprotected read-only while it was
        // presumed dead (the `final_ro` oracle).
        ChaosPlan {
            final_ro: true,
            ..base_plan(
                "wrongful-evict",
                FaultPlan {
                    stalls: vec![ResponderStall {
                        cpu: last,
                        extra: Dur::millis(100),
                        times: 1,
                    }],
                    ..FaultPlan::none(v)
                },
            )
        },
        // Beyond the envelope: the same wrongful eviction with fencing
        // disabled. The evicted-but-alive processor resumes with its
        // pre-eviction TLB intact and writes through a stale writable
        // entry — the checker must flag it; a silent pass here means a
        // wrongly evicted processor could corrupt translations for real.
        ChaosPlan {
            final_ro: true,
            fencing: false,
            tolerable: false,
            ..base_plan(
                "wrongful-evict-no-fence",
                FaultPlan {
                    stalls: vec![ResponderStall {
                        cpu: last,
                        extra: Dur::millis(100),
                        times: 1,
                    }],
                    ..FaultPlan::none(v)
                },
            )
        },
        // The FailOp loop closed end to end: a halted lock holder under
        // RecoveryPolicy::FailOp. The bare policy aborts the operation
        // with a dead-holder outcome; the FailOpDriver above it must
        // evict the corpse, reclaim its locks, and retry to completion.
        ChaosPlan {
            grab_lock: true,
            policy: RecoveryPolicy::FailOp,
            ..base_plan(
                "failop-dead-holder",
                FaultPlan {
                    halts: vec![Halt {
                        cpu: last,
                        at: Time::from_micros(1_000),
                    }],
                    ..FaultPlan::none(v)
                },
            )
        },
    ]
}

/// The kernel configuration chaos runs use: the default kernel with the
/// watchdog timeout tightened to 5 ms so retry chains and give-ups fit in
/// a short simulated run. Healthy synchronization waits are microseconds
/// (worst ~1 ms under stretched interrupt-masked windows), so the tight
/// timeout still never fires on a fault-free run.
pub fn chaos_kconfig() -> KernelConfig {
    KernelConfig {
        watchdog: WatchdogConfig {
            timeout: Dur::millis(5),
            ..WatchdogConfig::default()
        },
        ..KernelConfig::default()
    }
}

/// One chaos run's inputs. The same config always produces a
/// bit-identical [`ChaosOutcome`].
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Processors in the machine (>= 3).
    pub n_cpus: usize,
    /// Machine seed (device-interrupt jitter).
    pub seed: u64,
    /// Kernel configuration (see [`chaos_kconfig`]).
    pub kconfig: KernelConfig,
    /// The campaign, or `None` for a fault-free run with no injector
    /// installed at all (the zero-cost baseline).
    pub plan: Option<ChaosPlan>,
    /// Reprotect/restore rounds the initiator performs.
    pub rounds: u64,
    /// Simulated-time bound.
    pub limit: Time,
    /// Scheduler-step bound.
    pub max_steps: u64,
}

impl ChaosConfig {
    /// A standard config: 3 rounds, 200 ms / 5 M-step bounds.
    pub fn new(n_cpus: usize, seed: u64, plan: Option<ChaosPlan>) -> ChaosConfig {
        ChaosConfig {
            n_cpus,
            seed,
            kconfig: chaos_kconfig(),
            plan,
            rounds: 3,
            limit: Time::from_micros(200_000),
            max_steps: 5_000_000,
        }
    }
}

/// Everything a chaos run produced, for tables and the determinism tests.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosOutcome {
    /// The plan's name (`"baseline"` when no plan was installed).
    pub plan: &'static str,
    /// Whether the plan declared itself inside the tolerable envelope.
    pub tolerable: bool,
    /// Processors in the machine.
    pub n_cpus: usize,
    /// The plan's armed fault rules and sabotage flags (see
    /// [`fault_rules`]; empty for a bare run).
    pub fault_rules: String,
    /// The machine seed.
    pub seed: u64,
    /// The verdict.
    pub survival: Survival,
    /// Whether the workload ran to completion (quiescent, sentinel set).
    pub completed: bool,
    /// Checker violations observed.
    pub violations: usize,
    /// Kernel counters at the end of the run.
    pub stats: KernelStats,
    /// Injected-fault counts (`None` when no plan was installed).
    pub faults: Option<FaultStats>,
    /// Bus statistics, including the per-transaction-kind split.
    pub bus: BusStats,
    /// Final per-processor clocks, for bit-identical comparisons.
    pub clocks: Vec<Time>,
    /// Scheduler steps executed.
    pub steps: u64,
    /// The machine frontier when the run ended.
    pub end: Time,
    /// The stall report, when the run did not complete.
    pub report: Option<String>,
}

/// Word 0 of the counter page: the shared counter the writers increment.
const COUNTER_WORD: u64 = 0;
/// Word 1 of the counter page: the driver sets it when its rounds are
/// done, telling the writers to exit.
const SENTINEL_WORD: u64 = 1;

/// A writer that survives reprotection: it increments the counter word
/// through the pmap, alternating between the two test pages, and on a
/// fault *retries* (unlike the fail-stop writers in the consistency
/// tests) until the driver raises the sentinel.
#[derive(Debug)]
struct RetryToucher {
    pmap: PmapId,
    va: Vaddr,
    vb: Vaddr,
    sentinel_pfn: Pfn,
    counter: u64,
    final_write_done: bool,
    exit_idle: Option<ExitIdleProcess>,
    switch: Option<SwitchUserPmapProcess>,
}

impl Process<KernelState, ()> for RetryToucher {
    fn step(&mut self, ctx: &mut Ctx<'_, KernelState, ()>) -> Step {
        if let Some(exit) = self.exit_idle.as_mut() {
            return match drive(exit, ctx) {
                Driven::Yield(s) => s,
                Driven::Finished(d) => {
                    self.exit_idle = None;
                    self.switch = Some(SwitchUserPmapProcess::new(Some(self.pmap)));
                    Step::Run(d)
                }
            };
        }
        if let Some(sw) = self.switch.as_mut() {
            return match drive(sw, ctx) {
                Driven::Yield(s) => s,
                Driven::Finished(d) => {
                    self.switch = None;
                    Step::Run(d)
                }
            };
        }
        if ctx.shared.mem.read_word(self.sentinel_pfn, SENTINEL_WORD) != 0 {
            if self.final_write_done {
                return Step::Done(ctx.costs().local_op);
            }
            // One last *translated* write on the way out — the stale-
            // translation probe. A fault here is fine (a `final_ro`
            // driver leaves the page read-only); succeeding through a
            // pre-revival writable entry is the checker's to flag.
            self.final_write_done = true;
            self.counter += 1;
            return match try_access(ctx, self.pmap, self.vb, MemOp::Write(self.counter)) {
                AccessOutcome::Ok { cost, .. }
                | AccessOutcome::Stall { cost }
                | AccessOutcome::Fault { cost } => Step::Run(cost),
            };
        }
        self.counter += 1;
        let va = if self.counter.is_multiple_of(2) {
            self.vb
        } else {
            self.va
        };
        match try_access(ctx, self.pmap, va, MemOp::Write(self.counter)) {
            AccessOutcome::Ok { cost, .. } | AccessOutcome::Stall { cost } => Step::Run(cost),
            // Retry: the page is (correctly) reprotected mid-round; spin
            // until the driver restores it or raises the sentinel.
            AccessOutcome::Fault { cost } => Step::Run(cost),
        }
    }

    fn label(&self) -> &'static str {
        "retry-toucher"
    }
}

/// The initiator: waits for the writers to make progress, then reprotects
/// both test pages read-only and restores them read-write — one shootdown
/// storm per round — and finally raises the sentinel.
#[derive(Debug)]
struct ChaosDriver {
    pmap: PmapId,
    vpn_a: Vpn,
    vpn_b: Vpn,
    pfn_a: Pfn,
    pfn_b: Pfn,
    rounds: u64,
    done_rounds: u64,
    threshold: u64,
    /// Reprotect both pages read-only after the rounds, before the
    /// sentinel (the stale-translation probe of [`ChaosPlan::final_ro`]).
    final_ro: bool,
    finale_done: bool,
    /// `Some(budget)`: run every operation through a [`FailOpDriver`]
    /// with this restart budget (the [`RecoveryPolicy::FailOp`] plans).
    failop: Option<u32>,
    script: Vec<PmapOp>,
    exit_idle: Option<ExitIdleProcess>,
    running: Option<PmapOpProcess>,
    running_failop: Option<FailOpDriver>,
}

impl ChaosDriver {
    fn new(
        pmap: PmapId,
        pages: [(Vpn, Pfn); 2],
        rounds: u64,
        final_ro: bool,
        failop: Option<u32>,
    ) -> Self {
        let [(vpn_a, pfn_a), (vpn_b, pfn_b)] = pages;
        ChaosDriver {
            pmap,
            vpn_a,
            vpn_b,
            pfn_a,
            pfn_b,
            rounds,
            done_rounds: 0,
            threshold: 3,
            final_ro,
            finale_done: false,
            failop,
            script: Vec::new(),
            exit_idle: Some(ExitIdleProcess::new()),
            running: None,
            running_failop: None,
        }
    }
}

impl Process<KernelState, ()> for ChaosDriver {
    fn step(&mut self, ctx: &mut Ctx<'_, KernelState, ()>) -> Step {
        if let Some(exit) = self.exit_idle.as_mut() {
            return match drive(exit, ctx) {
                Driven::Yield(s) => s,
                Driven::Finished(d) => {
                    self.exit_idle = None;
                    Step::Run(d)
                }
            };
        }
        if self.running.is_none() && self.running_failop.is_none() && self.script.is_empty() {
            if self.done_rounds == self.rounds {
                if self.final_ro && !self.finale_done {
                    // The finale: strip write rights from both pages
                    // *before* releasing the writers, so every final
                    // write must either fault or go through a stale
                    // writable entry the checker will flag.
                    self.finale_done = true;
                    self.script = vec![
                        PmapOp::Protect {
                            range: PageRange::single(self.vpn_b),
                            prot: Prot::READ,
                        },
                        PmapOp::Protect {
                            range: PageRange::single(self.vpn_a),
                            prot: Prot::READ,
                        },
                    ];
                } else {
                    ctx.shared.mem.write_word(self.pfn_a, SENTINEL_WORD, 1);
                    return Step::Done(ctx.costs().local_op);
                }
            } else {
                let counter = ctx.shared.mem.read_word(self.pfn_a, COUNTER_WORD);
                if counter < self.threshold {
                    // The redundant-initiator exit: if the other driver
                    // already raised the sentinel, the writers are gone
                    // and the counter will never advance again — a driver
                    // that kept pacing against it (because recovery from
                    // a fault plan starved it early) would spin forever.
                    if ctx.shared.mem.read_word(self.pfn_a, SENTINEL_WORD) != 0 {
                        return Step::Done(ctx.costs().local_op);
                    }
                    return Step::Run(ctx.costs().spin_iter);
                }
                self.threshold = counter + 3;
                self.done_rounds += 1;
                // Popped back to front: protect A, protect B, restore A, B.
                self.script = vec![
                    PmapOp::Enter {
                        vpn: self.vpn_b,
                        pfn: self.pfn_b,
                        prot: Prot::READ_WRITE,
                    },
                    PmapOp::Enter {
                        vpn: self.vpn_a,
                        pfn: self.pfn_a,
                        prot: Prot::READ_WRITE,
                    },
                    PmapOp::Protect {
                        range: PageRange::single(self.vpn_b),
                        prot: Prot::READ,
                    },
                    PmapOp::Protect {
                        range: PageRange::single(self.vpn_a),
                        prot: Prot::READ,
                    },
                ];
            }
        }
        if let Some(budget) = self.failop {
            // FailOp plans: the operation rides the retry driver, which
            // turns dead-holder aborts into evict + reclaim + restart.
            if self.running_failop.is_none() {
                let op = self.script.pop().expect("script refilled above");
                self.running_failop = Some(FailOpDriver::new(self.pmap, op, budget));
            }
            return match drive(self.running_failop.as_mut().expect("set above"), ctx) {
                Driven::Yield(s) => s,
                Driven::Finished(d) => {
                    self.running_failop = None;
                    Step::Run(d)
                }
            };
        }
        if self.running.is_none() {
            let op = self.script.pop().expect("script refilled above");
            self.running = Some(PmapOpProcess::new(self.pmap, op));
        }
        match drive(self.running.as_mut().expect("set above"), ctx) {
            Driven::Yield(s) => s,
            Driven::Finished(d) => {
                self.running = None;
                Step::Run(d)
            }
        }
    }

    fn label(&self) -> &'static str {
        "chaos-driver"
    }
}

/// Takes the test pmap's lock and never releases it: the critical
/// section a fail-stop plan freezes mid-flight, leaving a dead lock
/// holder for the initiator's liveness probe to recover from.
#[derive(Debug)]
struct LockGrabber {
    pmap: PmapId,
    holding: bool,
}

impl Process<KernelState, ()> for LockGrabber {
    fn step(&mut self, ctx: &mut Ctx<'_, KernelState, ()>) -> Step {
        let me = ctx.cpu_id;
        if !self.holding {
            let lock = ctx.shared.pmaps.get_mut(self.pmap).lock_mut();
            if !lock.try_acquire(me) {
                return Step::Run(ctx.costs().spin_iter + ctx.costs().cache_read);
            }
            self.holding = true;
            return Step::Run(ctx.costs().lock_acquire + ctx.bus_interlocked());
        }
        // "Work" inside the critical section until the fault plan halts
        // this processor for good.
        Step::Run(ctx.costs().local_op * 16)
    }

    fn label(&self) -> &'static str {
        "lock-grabber"
    }
}

/// Runs one chaos campaign and classifies the outcome.
///
/// The workload: writers on every processor but the first increment a
/// counter through the pmap (retrying across faults); the first processor
/// drives `rounds` reprotect/restore rounds — each a pair of shootdowns —
/// then raises a sentinel that stops the writers (each signing off with
/// one final translated write). Background device interrupts run
/// throughout. Plans with an [`Offline`] fault get a
/// [`FencedRejoinProcess`] spawned on the victim at its revival instant.
/// After the run, every injected fault is stamped into the xpr stream
/// (and, when tracing, as flight-recorder marks), so chaos appears
/// alongside the measurements it perturbed.
pub fn run_chaos(cfg: &ChaosConfig) -> ChaosOutcome {
    let mut kconfig = cfg.kconfig.clone();
    if let Some(p) = &cfg.plan {
        kconfig.watchdog.enabled = p.watchdog_enabled;
        kconfig.health.fencing = p.fencing;
        kconfig.health.policy = p.policy;
        if let Some(cap) = p.queue_capacity {
            kconfig.action_queue_capacity = cap;
        }
    }
    let mut m = build_kernel_machine(cfg.n_cpus, cfg.seed, CostModel::multimax(), kconfig);

    let vpn_a = Vpn::new(0x40);
    let vpn_b = Vpn::new(0x48); // non-adjacent: the queue cannot coalesce
    let last = CpuId::new(cfg.n_cpus as u32 - 1);
    // The overflow storm leaves the last processor idle (with the pmap in
    // use) so consistency actions pile up in its undersized queue.
    let idle_last = cfg
        .plan
        .as_ref()
        .is_some_and(|p| p.queue_capacity.is_some());
    let (pmap, pfn_a, pfn_b) = {
        let s = m.shared_mut();
        let pmap = s.pmaps.create();
        let pfn_a = s.frames.alloc();
        let pfn_b = s.frames.alloc();
        s.seed_mapping(pmap, vpn_a, pfn_a, Prot::READ_WRITE);
        s.seed_mapping(pmap, vpn_b, pfn_b, Prot::READ_WRITE);
        if idle_last {
            s.pmaps.get_mut(pmap).mark_in_use(last);
        }
        if let Some(pc) = cfg.plan.as_ref().and_then(|p| p.poison_cpu) {
            s.queues[pc.index()].poison();
            s.action_needed[pc.index()] = true;
        }
        (pmap, pfn_a, pfn_b)
    };

    let grab_lock = cfg.plan.as_ref().is_some_and(|p| p.grab_lock);
    let co_initiator = cfg.plan.as_ref().is_some_and(|p| p.co_initiator);
    let failop = cfg
        .plan
        .as_ref()
        .filter(|p| p.policy == RecoveryPolicy::FailOp)
        .map(|p| p.failop_retries);
    let writers = if idle_last || grab_lock {
        cfg.n_cpus - 1
    } else {
        cfg.n_cpus
    };
    // With a co-initiator, processor 1 drives instead of writing.
    let first_writer = if co_initiator { 2 } else { 1 };
    for c in first_writer..writers {
        m.spawn_at(
            CpuId::new(c as u32),
            Time::ZERO,
            Box::new(RetryToucher {
                pmap,
                va: vpn_a.base(),
                vb: vpn_b.base(),
                sentinel_pfn: pfn_a,
                counter: 0,
                final_write_done: false,
                exit_idle: Some(ExitIdleProcess::new()),
                switch: None,
            }),
        );
    }
    if grab_lock {
        // The grabber's single-step acquisition at t=0 wins the lock
        // before the writers finish their multi-step pmap switches and
        // long before the driver's first reprotect, so every seed sees
        // the same shape: writers and initiator alike find the lock held
        // by a processor that the 1 ms halt then freezes for good.
        m.spawn_at(
            last,
            Time::ZERO,
            Box::new(LockGrabber {
                pmap,
                holding: false,
            }),
        );
    }
    m.spawn_at(
        CpuId::new(0),
        Time::ZERO,
        Box::new(ChaosDriver::new(
            pmap,
            [(vpn_a, pfn_a), (vpn_b, pfn_b)],
            cfg.rounds,
            cfg.plan.as_ref().is_some_and(|p| p.final_ro),
            failop,
        )),
    );
    if co_initiator {
        // The redundant initiator: same rounds against the shared
        // counter, so whichever driver survives raises the sentinel.
        m.spawn_at(
            CpuId::new(1),
            Time::ZERO,
            Box::new(ChaosDriver::new(
                pmap,
                [(vpn_a, pfn_a), (vpn_b, pfn_b)],
                cfg.rounds,
                cfg.plan.as_ref().is_some_and(|p| p.final_ro),
                failop,
            )),
        );
    }
    // A revived processor runs the rejoin protocol the instant it is
    // back; the spawned frame lands atop the frozen work, so the fence
    // (or, beyond the envelope, its absence) precedes everything else.
    for off in cfg.plan.iter().flat_map(|p| p.fault.offlines.iter()) {
        m.spawn_at(off.cpu, off.revive_at, Box::new(FencedRejoinProcess::new()));
    }
    schedule_device_interrupts(&mut m, Dur::millis(2), Time::from_micros(50_000));

    if let Some(p) = &cfg.plan {
        m.install_fault_plan(p.fault.clone());
    }
    let r = m.run_bounded(cfg.limit, cfg.max_steps);

    // Stamp injected faults into the measurement streams.
    let fault_log: Vec<FaultRecord> = m.fault_events().to_vec();
    stamp_faults(&mut m, &fault_log);

    let quiescent = r.status == RunStatus::Quiescent;
    let s = m.shared();
    let completed = quiescent && s.mem.read_word(pfn_a, SENTINEL_WORD) != 0;
    let violations = s.checker.violations().len();
    let stats = s.stats;
    let queue_degraded = s
        .queues
        .iter()
        .any(|q| q.poisoned() > 0 || q.overflows() > 0);
    // A give-up the health monitor answered with an eviction is recovery,
    // not failure: the run degraded but stayed consistent. Only give-ups
    // the monitor did *not* absorb (health disabled) remain fatal.
    let unrecovered = stats.watchdog_gaveup.saturating_sub(stats.evictions);
    // An exhausted FailOp driver abandoned an operation: the workload may
    // still raise its sentinel, but the campaign did not do its work —
    // that is a caught failure, never a pass.
    let caught = violations > 0 || unrecovered > 0 || stats.retries_exhausted > 0 || !completed;
    let degraded = stats.ipi_retries > 0
        || stats.degraded_flushes > 0
        || queue_degraded
        || stats.evictions > 0
        || stats.fenced_rejoins > 0
        || stats.locks_stolen > 0
        || stats.self_fences > 0
        || stats.ops_retried > 0;
    let survival = if caught {
        Survival::DetectedFatal
    } else if degraded {
        Survival::Degraded
    } else {
        Survival::Tolerated
    };
    let report = (!completed).then(|| stall_report(&m));
    ChaosOutcome {
        plan: cfg.plan.as_ref().map_or("baseline", |p| p.name),
        tolerable: cfg.plan.as_ref().is_none_or(|p| p.tolerable),
        n_cpus: cfg.n_cpus,
        fault_rules: cfg.plan.as_ref().map_or(String::new(), fault_rules),
        seed: cfg.seed,
        survival,
        completed,
        violations,
        stats,
        faults: m.fault_stats(),
        bus: m.bus_stats(),
        clocks: (0..cfg.n_cpus)
            .map(|c| m.cpu(CpuId::new(c as u32)).clock())
            .collect(),
        steps: r.steps,
        end: r.frontier,
        report,
    }
}

/// Records every injected fault into the xpr stream and, when the flight
/// recorder is tracing, as `fault` marks (argument = the fault kind's
/// stable code) under one dedicated span. Post-run stamping is safe for
/// the trace's per-processor monotonicity: the recorder sorts events by
/// timestamp before validation.
fn stamp_faults(m: &mut KernelMachine, log: &[FaultRecord]) {
    if log.is_empty() {
        return;
    }
    let s = m.shared_mut();
    for &rec in log {
        s.xpr.record(ShootdownEvent::Fault(rec));
    }
    if s.trace.is_enabled() {
        let span = s.trace.begin_span();
        for &rec in log {
            s.trace.record_arg(
                rec.cpu,
                span,
                TracePhase::Fault,
                TraceEdge::Mark,
                rec.at,
                rec.kind.code(),
            );
        }
    }
}

/// A compact, comma-separated description of a plan's armed fault rules
/// and kernel-side sabotage — the provenance column of the survival JSON,
/// so an artifact is interpretable without the catalog source at hand.
pub fn fault_rules(plan: &ChaosPlan) -> String {
    let f = &plan.fault;
    let mut r: Vec<String> = Vec::new();
    if f.delay.is_some() {
        r.push("ipi-delay".into());
    }
    if f.drop.is_some() {
        r.push("ipi-drop".into());
    }
    if f.duplicate.is_some() {
        r.push("ipi-dup".into());
    }
    if f.reorder.is_some() {
        r.push("ipi-reorder".into());
    }
    if f.isr_stretch.is_some() {
        r.push("isr-stretch".into());
    }
    let numbered = |n: usize| {
        if n == 0 {
            String::new()
        } else {
            (n + 1).to_string()
        }
    };
    for (i, s) in f.stalls.iter().enumerate() {
        r.push(format!("stall{}(cpu{})", numbered(i), s.cpu.index()));
    }
    for (i, h) in f.halts.iter().enumerate() {
        r.push(format!("halt{}(cpu{})", numbered(i), h.cpu.index()));
    }
    for (i, o) in f.offlines.iter().enumerate() {
        r.push(format!("offline{}(cpu{})", numbered(i), o.cpu.index()));
    }
    if plan.queue_capacity.is_some() {
        r.push("tiny-queue".into());
    }
    if plan.poison_cpu.is_some() {
        r.push("poisoned-queue".into());
    }
    if !plan.watchdog_enabled {
        r.push("no-watchdog".into());
    }
    if !plan.fencing {
        r.push("no-fence".into());
    }
    if plan.grab_lock {
        r.push("grab-lock".into());
    }
    if plan.policy == RecoveryPolicy::FailOp {
        r.push("failop".into());
    }
    if plan.co_initiator {
        r.push("co-initiator".into());
    }
    r.join(",")
}

/// Runs the whole [`plan_catalog`] across the given seeds.
pub fn chaos_matrix(n_cpus: usize, seeds: &[u64]) -> Vec<ChaosOutcome> {
    let mut out = Vec::new();
    for plan in plan_catalog(n_cpus) {
        for &seed in seeds {
            out.push(run_chaos(&ChaosConfig::new(
                n_cpus,
                seed,
                Some(plan.clone()),
            )));
        }
    }
    out
}

/// The two-sided envelope check: returns one message per outcome that
/// landed on the wrong side — a tolerable plan that was caught fatal, or
/// a beyond-envelope plan that was *not* caught (the silent-pass failure
/// mode). Empty means the matrix is green.
pub fn check_envelope(outcomes: &[ChaosOutcome]) -> Vec<String> {
    let mut bad = Vec::new();
    for o in outcomes {
        if o.tolerable && o.survival == Survival::DetectedFatal {
            bad.push(format!(
                "plan {} seed {}: inside the envelope but detected fatal \
                 ({} violations, completed={})",
                o.plan, o.seed, o.violations, o.completed
            ));
        }
        if !o.tolerable && o.survival != Survival::DetectedFatal {
            bad.push(format!(
                "plan {} seed {}: beyond the envelope but PASSED silently ({})",
                o.plan,
                o.seed,
                o.survival.name()
            ));
        }
    }
    bad
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a chaos matrix as machine-readable JSON for CI gates and
/// artifact diffing (hand-rolled: the repo vendors no JSON dependency).
/// Shape: `{"outcomes": [{plan, cpus, fault_rules, seed, tolerable,
/// survival, completed, violations, …counters…, steps, end_ns}],
/// "failures": [env-check messages], "green": bool}` — `green` mirrors
/// the process exit code (`false` iff [`check_envelope`] returned
/// failures).
pub fn survival_json(outcomes: &[ChaosOutcome], failures: &[String]) -> String {
    let mut s = String::from("{\n  \"outcomes\": [\n");
    for (i, o) in outcomes.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"plan\": \"{}\", \"cpus\": {}, \"fault_rules\": \"{}\", \"seed\": {}, \
             \"tolerable\": {}, \"survival\": \"{}\", \
             \"completed\": {}, \"violations\": {}, \"ipi_retries\": {}, \
             \"watchdog_gaveup\": {}, \"evictions\": {}, \"fenced_rejoins\": {}, \
             \"locks_stolen\": {}, \"degraded_flushes\": {}, \"late_acks_rejected\": {}, \
             \"self_fences\": {}, \"ops_retried\": {}, \"retries_exhausted\": {}, \
             \"steps\": {}, \"end_ns\": {}}}{}\n",
            json_escape(o.plan),
            o.n_cpus,
            json_escape(&o.fault_rules),
            o.seed,
            o.tolerable,
            o.survival.name(),
            o.completed,
            o.violations,
            o.stats.ipi_retries,
            o.stats.watchdog_gaveup,
            o.stats.evictions,
            o.stats.fenced_rejoins,
            o.stats.locks_stolen,
            o.stats.degraded_flushes,
            o.stats.late_acks_rejected,
            o.stats.self_fences,
            o.stats.ops_retried,
            o.stats.retries_exhausted,
            o.steps,
            o.end.as_nanos(),
            if i + 1 == outcomes.len() { "" } else { "," },
        ));
    }
    s.push_str("  ],\n  \"failures\": [\n");
    for (i, f) in failures.iter().enumerate() {
        s.push_str(&format!(
            "    \"{}\"{}\n",
            json_escape(f),
            if i + 1 == failures.len() { "" } else { "," },
        ));
    }
    s.push_str(&format!("  ],\n  \"green\": {}\n}}\n", failures.is_empty()));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome_for(n_cpus: usize, seed: u64, name: &str) -> ChaosOutcome {
        let plan = plan_catalog(n_cpus)
            .into_iter()
            .find(|p| p.name == name)
            .expect("plan exists");
        run_chaos(&ChaosConfig::new(n_cpus, seed, Some(plan)))
    }

    #[test]
    fn a_halted_responder_is_evicted_not_wedged() {
        // The acceptance scenario: where the PR-4 kernel could only file a
        // stall report, the health monitor now evicts the dead responder
        // and the campaign completes against the reduced quorum.
        let o = outcome_for(4, 3, "halt-resp-preack");
        assert_eq!(o.survival, Survival::Degraded, "{o:?}");
        assert!(o.completed, "{o:?}");
        assert_eq!(o.violations, 0);
        assert_eq!(o.stats.watchdog_gaveup, 1, "{o:?}");
        assert_eq!(o.stats.evictions, 1, "{o:?}");
    }

    #[test]
    fn a_post_ack_halt_degrades_only_the_later_wait() {
        let o = outcome_for(4, 3, "halt-resp-postack");
        assert_eq!(o.survival, Survival::Degraded, "{o:?}");
        assert!(o.completed, "{o:?}");
        assert_eq!(o.violations, 0);
        assert_eq!(o.stats.evictions, 1, "{o:?}");
    }

    #[test]
    fn a_dead_lock_holder_is_fenced_and_stolen() {
        let o = outcome_for(4, 3, "halt-holder");
        assert_eq!(o.survival, Survival::Degraded, "{o:?}");
        assert!(o.completed, "{o:?}");
        assert_eq!(o.violations, 0);
        assert!(o.stats.locks_stolen >= 1, "{o:?}");
        assert_eq!(o.stats.watchdog_gaveup, 0, "the wait never armed: {o:?}");
    }

    #[test]
    fn a_revived_processor_rejoins_through_the_fence() {
        let o = outcome_for(4, 3, "offline-revive");
        assert_eq!(o.survival, Survival::Degraded, "{o:?}");
        assert!(o.completed, "{o:?}");
        assert_eq!(o.violations, 0, "the fence blocks every stale use: {o:?}");
        assert_eq!(o.stats.evictions, 1, "{o:?}");
        assert_eq!(o.stats.fenced_rejoins, 1, "{o:?}");
    }

    #[test]
    fn an_unfenced_revival_is_caught_by_the_checker() {
        // Fencing off, same fault: the revived processor's final write
        // goes through a pre-offline writable entry for a page that was
        // reprotected read-only while it was dead. The checker must flag
        // it — this plan passing silently is the suite failing.
        let o = outcome_for(4, 3, "revive-no-fence");
        assert_eq!(o.survival, Survival::DetectedFatal, "{o:?}");
        assert!(o.violations >= 1, "{o:?}");
        assert_eq!(
            o.stats.fenced_rejoins, 1,
            "the unfenced shortcut still rejoins"
        );
    }

    #[test]
    fn a_halted_initiator_is_caught_not_silent() {
        let o = outcome_for(4, 3, "halt-initiator");
        assert_eq!(o.survival, Survival::DetectedFatal, "{o:?}");
        assert!(!o.completed, "the campaign must visibly never finish");
        let report = o.report.as_deref().expect("a stall report is attached");
        assert!(report.contains("stall report"), "{report}");
    }

    #[test]
    fn fail_stop_recovery_replays_bit_identically() {
        for name in [
            "halt-resp-preack",
            "halt-holder",
            "offline-revive",
            "revive-no-fence",
        ] {
            let a = outcome_for(4, 5, name);
            let b = outcome_for(4, 5, name);
            assert_eq!(a, b, "fail-stop chaos must replay exactly ({name})");
        }
    }

    #[test]
    fn two_halted_responders_are_both_evicted() {
        // Compound fail-stop: two responders frozen mid-dispatch and
        // halted. The watchdog must evict both and the campaign must
        // still finish against the doubly reduced quorum.
        let o = outcome_for(4, 3, "two-halt-responders");
        assert_eq!(o.survival, Survival::Degraded, "{o:?}");
        assert!(o.completed, "{o:?}");
        assert_eq!(o.violations, 0);
        assert_eq!(o.stats.evictions, 2, "{o:?}");
        assert_eq!(o.stats.watchdog_gaveup, o.stats.evictions, "{o:?}");
    }

    #[test]
    fn a_live_co_initiator_finishes_for_a_halted_one() {
        // The halted-initiator fault that is fatal alone is inside the
        // envelope with a redundant initiator: the survivor raises the
        // sentinel and the campaign completes consistently.
        let o = outcome_for(4, 3, "halt-initiator-coinit");
        assert_ne!(o.survival, Survival::DetectedFatal, "{o:?}");
        assert!(o.completed, "{o:?}");
        assert_eq!(o.violations, 0);
    }

    #[test]
    fn a_wrongful_eviction_is_survived_through_the_self_fence() {
        // A slow-but-alive responder overshoots the watchdog horizon and
        // is wrongly evicted. On resuming it must detect its own eviction
        // and self-fence; the final-reprotect oracle (stale writable
        // entry vs read-only page table) proves the fence ran.
        let o = outcome_for(4, 3, "wrongful-evict");
        assert_eq!(o.survival, Survival::Degraded, "{o:?}");
        assert!(o.completed, "{o:?}");
        assert_eq!(o.violations, 0, "the self-fence blocks stale use: {o:?}");
        assert_eq!(o.stats.evictions, 1, "{o:?}");
        assert!(o.stats.self_fences >= 1, "{o:?}");
        assert!(o.stats.fenced_rejoins >= 1, "{o:?}");
        assert_eq!(
            o.stats.watchdog_gaveup, o.stats.evictions,
            "every give-up was absorbed: {o:?}"
        );
    }

    #[test]
    fn an_unfenced_wrongful_eviction_is_caught_by_the_checker() {
        // Fencing off, same wrongful eviction: the evicted-but-alive
        // processor resumes with its stale writable entry and the final
        // write must be flagged — this is the oracle that proves the
        // tolerable variant's fence is load-bearing.
        let o = outcome_for(4, 3, "wrongful-evict-no-fence");
        assert_eq!(o.survival, Survival::DetectedFatal, "{o:?}");
        assert!(o.violations >= 1, "{o:?}");
    }

    #[test]
    fn failop_driver_retries_past_a_dead_lock_holder() {
        // FailOp end to end: the policy alone aborts against the halted
        // holder; the retry driver must evict the corpse, reclaim its
        // lock, and rerun the operation to completion.
        let o = outcome_for(4, 3, "failop-dead-holder");
        assert_eq!(o.survival, Survival::Degraded, "{o:?}");
        assert!(o.completed, "{o:?}");
        assert_eq!(o.violations, 0);
        assert!(o.stats.ops_retried >= 1, "{o:?}");
        assert_eq!(o.stats.retries_exhausted, 0, "{o:?}");
        assert!(o.stats.locks_stolen >= 1, "{o:?}");
    }

    #[test]
    fn an_exhausted_failop_budget_is_caught_not_silent() {
        // With a zero restart budget the driver abandons the operation.
        // The sentinel may still rise, but the campaign must classify as
        // caught — the CI red-exit gate rides on this.
        let mut plan = plan_catalog(4)
            .into_iter()
            .find(|p| p.name == "failop-dead-holder")
            .expect("plan exists");
        plan.failop_retries = 0;
        let o = run_chaos(&ChaosConfig::new(4, 3, Some(plan)));
        assert_eq!(o.survival, Survival::DetectedFatal, "{o:?}");
        assert!(o.stats.retries_exhausted >= 1, "{o:?}");
    }

    #[test]
    fn compound_plans_replay_bit_identically() {
        for name in [
            "two-halt-responders",
            "halt-initiator-coinit",
            "wrongful-evict",
            "wrongful-evict-no-fence",
            "failop-dead-holder",
        ] {
            let a = outcome_for(4, 5, name);
            let b = outcome_for(4, 5, name);
            assert_eq!(a, b, "compound chaos must replay exactly ({name})");
        }
    }

    #[test]
    fn survival_json_carries_cpu_count_and_fault_rules() {
        let outcomes = vec![outcome_for(4, 3, "wrongful-evict")];
        let json = survival_json(&outcomes, &[]);
        assert!(json.contains("\"cpus\": 4"), "{json}");
        assert!(json.contains("\"fault_rules\": \"stall(cpu3)\""), "{json}");
        assert!(json.contains("\"late_acks_rejected\":"), "{json}");
        assert!(json.contains("\"self_fences\":"), "{json}");
        assert!(json.contains("\"ops_retried\":"), "{json}");
        assert!(json.contains("\"retries_exhausted\":"), "{json}");
    }

    #[test]
    fn survival_json_mirrors_the_envelope_verdict() {
        let outcomes = vec![
            outcome_for(4, 3, "none"),
            outcome_for(4, 3, "halt-resp-preack"),
        ];
        let failures = check_envelope(&outcomes);
        let json = survival_json(&outcomes, &failures);
        assert!(failures.is_empty(), "{failures:?}");
        assert!(json.contains("\"green\": true"), "{json}");
        assert!(json.contains("\"plan\": \"halt-resp-preack\""), "{json}");
        assert!(json.contains("\"evictions\": 1"), "{json}");
        let red = survival_json(&outcomes, &["plan x seed 1: \"bad\"".to_string()]);
        assert!(red.contains("\"green\": false"), "{red}");
        assert!(red.contains("\\\"bad\\\""), "quotes are escaped: {red}");
    }

    #[test]
    fn fault_free_run_is_tolerated() {
        let o = run_chaos(&ChaosConfig::new(4, 7, None));
        assert_eq!(o.survival, Survival::Tolerated, "{o:?}");
        assert!(o.completed);
        assert_eq!(o.violations, 0);
        assert!(o.stats.shootdowns_user >= 3, "one storm per round");
        assert!(o.faults.is_none());
    }

    #[test]
    fn uninstalled_and_none_plan_are_bit_identical() {
        // The zero-cost claim: installing a plan with every rule off must
        // not move a single clock edge or counter.
        let bare = run_chaos(&ChaosConfig::new(4, 11, None));
        let none = outcome_for(4, 11, "none");
        assert_eq!(bare.clocks, none.clocks);
        assert_eq!(bare.stats, none.stats);
        assert_eq!(bare.bus, none.bus);
        assert_eq!(bare.steps, none.steps);
        assert_eq!(bare.end, none.end);
        assert_eq!(bare.survival, none.survival);
        assert_eq!(none.faults, Some(FaultStats::default()));
    }

    #[test]
    fn same_config_replays_bit_identically() {
        for name in ["ipi-drop", "stall", "ipi-delay"] {
            let a = outcome_for(4, 5, name);
            let b = outcome_for(4, 5, name);
            assert_eq!(a, b, "chaos must replay exactly ({name})");
        }
    }

    #[test]
    fn dropped_ipis_are_recovered_by_the_watchdog() {
        let o = outcome_for(4, 3, "ipi-drop");
        assert_eq!(o.survival, Survival::Degraded, "{o:?}");
        assert!(o.stats.ipi_retries >= 1, "{o:?}");
        assert_eq!(o.violations, 0);
        assert!(o.completed);
        assert_eq!(o.faults.expect("plan installed").dropped, 2);
    }

    #[test]
    fn a_stalled_responder_triggers_retries_but_completes() {
        let o = outcome_for(4, 3, "stall");
        assert_eq!(o.survival, Survival::Degraded, "{o:?}");
        assert!(o.stats.ipi_retries >= 1, "{o:?}");
        assert!(o.completed);
    }

    #[test]
    fn queue_overflow_storm_degrades_to_full_flush() {
        let o = outcome_for(4, 3, "storm");
        assert_eq!(o.survival, Survival::Degraded, "{o:?}");
        assert!(o.completed, "{o:?}");
    }

    #[test]
    fn poisoned_queue_degrades_and_stays_consistent() {
        let o = outcome_for(4, 3, "poison");
        assert_eq!(o.survival, Survival::Degraded, "{o:?}");
        assert!(o.stats.degraded_flushes >= 1, "{o:?}");
        assert_eq!(o.violations, 0);
    }

    #[test]
    fn unwatched_total_ipi_loss_is_caught_not_silent() {
        let o = outcome_for(4, 3, "ipi-drop-all");
        assert_eq!(o.survival, Survival::DetectedFatal, "{o:?}");
        assert!(!o.completed, "the initiator must visibly hang");
        let report = o.report.as_deref().expect("a stall report is attached");
        assert!(report.contains("stall report"), "{report}");
    }

    #[test]
    fn faults_are_stamped_into_the_xpr_stream() {
        let plan = plan_catalog(4)
            .into_iter()
            .find(|p| p.name == "ipi-delay")
            .expect("plan exists");
        let mut cfg = ChaosConfig::new(4, 9, Some(plan));
        cfg.kconfig.trace_shootdowns = true;
        let o = run_chaos(&cfg);
        let injected = o.faults.expect("plan installed").total();
        assert!(injected > 0, "the delay rule must have fired");
    }

    #[test]
    fn envelope_check_flags_both_polarities() {
        let mut good = run_chaos(&ChaosConfig::new(4, 7, None));
        assert!(check_envelope(std::slice::from_ref(&good)).is_empty());
        // A tolerable outcome reported fatal must be flagged...
        good.survival = Survival::DetectedFatal;
        assert_eq!(check_envelope(std::slice::from_ref(&good)).len(), 1);
        // ...and a beyond-envelope outcome that passed must be flagged.
        good.survival = Survival::Tolerated;
        good.tolerable = false;
        let msgs = check_envelope(std::slice::from_ref(&good));
        assert_eq!(msgs.len(), 1);
        assert!(msgs[0].contains("PASSED silently"), "{}", msgs[0]);
    }
}
