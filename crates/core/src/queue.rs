//! Per-processor consistency-action queues.
//!
//! "The update queue for each processor is a small buffer. If the initiator
//! detects overflow, it sets a flag that causes the responder to flush its
//! entire TLB. The queue size is set so that this only happens in cases
//! where the responder would flush its entire TLB for efficiency reasons in
//! the absence of update queue overflow" (Section 4, omitted detail 2).

use std::fmt;

use machtlb_pmap::{PageRange, PmapId};

/// One queued consistency action: invalidate a range of a pmap's pages.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Action {
    /// The pmap whose translations are stale.
    pub pmap: PmapId,
    /// The page range to invalidate.
    pub range: PageRange,
}

/// A small, fixed-capacity action buffer with an overflow-means-flush flag.
///
/// # Examples
///
/// ```
/// use machtlb_core::{Action, ActionQueue};
/// use machtlb_pmap::{PageRange, PmapId, Vpn};
///
/// let mut q = ActionQueue::new(2);
/// let a = Action { pmap: PmapId::new(1), range: PageRange::new(Vpn::new(0), 1) };
/// q.enqueue(a);
/// q.enqueue(a);
/// assert!(!q.flush_all());
/// q.enqueue(a); // overflow
/// assert!(q.flush_all());
/// let (actions, flush) = q.drain();
/// assert!(actions.is_empty() && flush);
/// ```
#[derive(Clone, Debug)]
pub struct ActionQueue {
    slots: Vec<Action>,
    capacity: usize,
    flush_all: bool,
    overflows: u64,
    enqueued: u64,
}

impl ActionQueue {
    /// Creates an empty queue of the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> ActionQueue {
        assert!(capacity > 0, "action queue needs capacity");
        ActionQueue {
            slots: Vec::with_capacity(capacity),
            capacity,
            flush_all: false,
            overflows: 0,
            enqueued: 0,
        }
    }

    /// Queues an action. On overflow the queue is collapsed into the
    /// flush-everything flag.
    pub fn enqueue(&mut self, action: Action) {
        self.enqueued += 1;
        if self.flush_all {
            return; // already flushing everything; individual actions moot
        }
        if self.slots.len() == self.capacity {
            self.flush_all = true;
            self.overflows += 1;
            self.slots.clear();
            return;
        }
        self.slots.push(action);
    }

    /// Takes all queued work, leaving the queue empty: the actions to apply
    /// individually and whether the whole TLB must be flushed instead.
    pub fn drain(&mut self) -> (Vec<Action>, bool) {
        let flush = std::mem::take(&mut self.flush_all);
        let actions = std::mem::take(&mut self.slots);
        (actions, flush)
    }

    /// Queued actions not yet drained.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if nothing is queued and no flush is pending.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty() && !self.flush_all
    }

    /// Whether overflow forced a whole-buffer flush.
    pub fn flush_all(&self) -> bool {
        self.flush_all
    }

    /// Times the queue has overflowed.
    pub fn overflows(&self) -> u64 {
        self.overflows
    }

    /// Total actions ever enqueued.
    pub fn enqueued(&self) -> u64 {
        self.enqueued
    }
}

impl fmt::Display for ActionQueue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "queue[{}/{}{}]",
            self.slots.len(),
            self.capacity,
            if self.flush_all { ", flush-all" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machtlb_pmap::Vpn;

    fn action(v: u64) -> Action {
        Action {
            pmap: PmapId::new(1),
            range: PageRange::new(Vpn::new(v), 1),
        }
    }

    #[test]
    fn drain_returns_fifo_order() {
        let mut q = ActionQueue::new(4);
        q.enqueue(action(1));
        q.enqueue(action(2));
        let (actions, flush) = q.drain();
        assert_eq!(actions.len(), 2);
        assert_eq!(actions[0].range.start(), Vpn::new(1));
        assert!(!flush);
        assert!(q.is_empty());
    }

    #[test]
    fn overflow_collapses_to_flush() {
        let mut q = ActionQueue::new(1);
        q.enqueue(action(1));
        q.enqueue(action(2));
        assert!(q.flush_all());
        assert_eq!(q.overflows(), 1);
        // Further enqueues are absorbed.
        q.enqueue(action(3));
        assert_eq!(q.overflows(), 1);
        assert_eq!(q.enqueued(), 3);
        let (actions, flush) = q.drain();
        assert!(actions.is_empty());
        assert!(flush);
        // Drained queue is usable again.
        q.enqueue(action(4));
        assert_eq!(q.len(), 1);
        assert!(!q.flush_all());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = ActionQueue::new(0);
    }
}
