//! Per-processor consistency-action queues.
//!
//! "The update queue for each processor is a small buffer. If the initiator
//! detects overflow, it sets a flag that causes the responder to flush its
//! entire TLB. The queue size is set so that this only happens in cases
//! where the responder would flush its entire TLB for efficiency reasons in
//! the absence of update queue overflow" (Section 4, omitted detail 2).
//!
//! On top of the paper's buffer, this queue *coalesces*: an enqueued action
//! whose range overlaps or is adjacent to an already-queued action for the
//! same pmap is merged into it instead of taking a slot. The union of
//! touching ranges covers exactly the same pages, so the set of
//! translations invalidated on drain is unchanged; the queue just
//! overflows into a whole-TLB flush less often and responders issue fewer
//! `invalidate_range` calls. The equivalence proptest in
//! `crates/core/src/lib.rs` checks this against an uncoalesced model.

use std::fmt;

use machtlb_pmap::{PageRange, PmapId};

/// One queued consistency action: invalidate a range of a pmap's pages.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Action {
    /// The pmap whose translations are stale.
    pub pmap: PmapId,
    /// The page range to invalidate.
    pub range: PageRange,
}

/// Whether two ranges can be represented by one (they overlap or touch).
fn touches(a: PageRange, b: PageRange) -> bool {
    a.start().raw() <= b.end().raw() && b.start().raw() <= a.end().raw()
}

/// The exact union of two touching ranges.
fn union(a: PageRange, b: PageRange) -> PageRange {
    debug_assert!(touches(a, b));
    let start = a.start().raw().min(b.start().raw());
    let end = a.end().raw().max(b.end().raw());
    PageRange::new(machtlb_pmap::Vpn::new(start), end - start)
}

/// What [`ActionQueue::enqueue`] did with an action, so callers can account
/// for coalescing in kernel-level statistics.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum EnqueueOutcome {
    /// The action took a free slot.
    Queued,
    /// The action merged into an already-queued action for the same pmap.
    Coalesced {
        /// The queue was full at the time, so without coalescing this
        /// enqueue would have overflowed into a whole-TLB flush.
        avoided_overflow: bool,
    },
    /// The queue overflowed and collapsed into the flush-everything flag.
    Overflowed,
    /// A pending whole-TLB flush already covers the action.
    Absorbed,
}

/// A small, fixed-capacity action buffer with an overflow-means-flush flag
/// and adjacent/overlapping-range coalescing (see the module docs).
///
/// # Examples
///
/// ```
/// use machtlb_core::{Action, ActionQueue, EnqueueOutcome};
/// use machtlb_pmap::{PageRange, PmapId, Vpn};
///
/// let act = |v, n| Action { pmap: PmapId::new(1), range: PageRange::new(Vpn::new(v), n) };
///
/// let mut q = ActionQueue::new(2);
/// // Adjacent ranges merge into one slot instead of overflowing...
/// q.enqueue(act(0x40, 1));
/// assert_eq!(q.enqueue(act(0x41, 1)), EnqueueOutcome::Coalesced { avoided_overflow: false });
/// assert_eq!(q.len(), 1);
/// let (actions, flush) = q.drain();
/// assert_eq!(actions, vec![act(0x40, 2)]);
/// assert!(!flush);
///
/// // ...while disjoint ranges still fill slots and overflow.
/// q.enqueue(act(0x10, 1));
/// q.enqueue(act(0x20, 1));
/// assert_eq!(q.enqueue(act(0x30, 1)), EnqueueOutcome::Overflowed);
/// assert!(q.flush_all());
/// let (actions, flush) = q.drain();
/// assert!(actions.is_empty() && flush);
/// ```
#[derive(Clone, Debug)]
pub struct ActionQueue {
    slots: Vec<Action>,
    capacity: usize,
    flush_all: bool,
    overflows: u64,
    enqueued: u64,
    coalesced: u64,
    overflows_avoided: u64,
    poisoned: u64,
}

impl ActionQueue {
    /// Creates an empty queue of the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> ActionQueue {
        assert!(capacity > 0, "action queue needs capacity");
        ActionQueue {
            slots: Vec::with_capacity(capacity),
            capacity,
            flush_all: false,
            overflows: 0,
            enqueued: 0,
            coalesced: 0,
            overflows_avoided: 0,
            poisoned: 0,
        }
    }

    /// Corrupts the queue in place (fault injection): the queued actions are
    /// discarded as untrustworthy and the flush-everything flag is raised, so
    /// the next drain degrades to a whole-TLB flush instead of applying
    /// possibly-garbled ranges. This models the hardened recovery path — a
    /// responder that cannot trust its buffer falls back to flushing
    /// everything, which is always safe (over-invalidation never breaks
    /// consistency).
    pub fn poison(&mut self) {
        self.slots.clear();
        self.flush_all = true;
        self.poisoned += 1;
    }

    /// Times the queue was poisoned by fault injection.
    pub fn poisoned(&self) -> u64 {
        self.poisoned
    }

    /// Queues an action. An action touching an already-queued range of the
    /// same pmap merges into it (and chain-merges any other ranges the
    /// widened range now touches); otherwise it takes a slot, and on
    /// overflow the queue collapses into the flush-everything flag.
    pub fn enqueue(&mut self, action: Action) -> EnqueueOutcome {
        self.enqueued += 1;
        if self.flush_all {
            return EnqueueOutcome::Absorbed; // flushing everything; individual actions moot
        }
        let merge_target = self
            .slots
            .iter()
            .position(|a| a.pmap == action.pmap && touches(a.range, action.range));
        if let Some(i) = merge_target {
            let avoided_overflow = self.slots.len() == self.capacity;
            self.slots[i].range = union(self.slots[i].range, action.range);
            // The widened range may now touch other queued ranges of the
            // pmap; absorb them so the queue never holds two mergeable
            // actions.
            loop {
                let next = self.slots.iter().enumerate().position(|(j, a)| {
                    j != i && a.pmap == action.pmap && touches(a.range, self.slots[i].range)
                });
                let Some(j) = next else { break };
                self.slots[i].range = union(self.slots[i].range, self.slots[j].range);
                self.slots.remove(j);
            }
            self.coalesced += 1;
            if avoided_overflow {
                self.overflows_avoided += 1;
            }
            return EnqueueOutcome::Coalesced { avoided_overflow };
        }
        if self.slots.len() == self.capacity {
            self.flush_all = true;
            self.overflows += 1;
            self.slots.clear();
            return EnqueueOutcome::Overflowed;
        }
        self.slots.push(action);
        EnqueueOutcome::Queued
    }

    /// Takes all queued work, leaving the queue empty: the actions to apply
    /// individually and whether the whole TLB must be flushed instead.
    ///
    /// The returned actions are fully merged: no two of them are touching
    /// ranges of the same pmap. `enqueue` maintains that invariant, so the
    /// final merge pass here normally finds nothing to do.
    pub fn drain(&mut self) -> (Vec<Action>, bool) {
        let flush = std::mem::take(&mut self.flush_all);
        let mut actions = std::mem::take(&mut self.slots);
        // Fixed-point merge; the vector is at most `capacity` long.
        let mut merged_any = true;
        while merged_any {
            merged_any = false;
            'scan: for i in 0..actions.len() {
                for j in (i + 1)..actions.len() {
                    if actions[i].pmap == actions[j].pmap
                        && touches(actions[i].range, actions[j].range)
                    {
                        actions[i].range = union(actions[i].range, actions[j].range);
                        actions.remove(j);
                        merged_any = true;
                        break 'scan;
                    }
                }
            }
        }
        (actions, flush)
    }

    /// Queued actions not yet drained.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if nothing is queued and no flush is pending.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty() && !self.flush_all
    }

    /// Whether overflow forced a whole-buffer flush.
    pub fn flush_all(&self) -> bool {
        self.flush_all
    }

    /// Times the queue has overflowed.
    pub fn overflows(&self) -> u64 {
        self.overflows
    }

    /// Total actions ever enqueued.
    pub fn enqueued(&self) -> u64 {
        self.enqueued
    }

    /// Enqueued actions that merged into a queued one instead of taking a
    /// slot.
    pub fn coalesced(&self) -> u64 {
        self.coalesced
    }

    /// Coalesces that happened with the queue full — enqueues that would
    /// have overflowed into a whole-TLB flush without merging.
    pub fn overflows_avoided(&self) -> u64 {
        self.overflows_avoided
    }
}

impl fmt::Display for ActionQueue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "queue[{}/{}{}]",
            self.slots.len(),
            self.capacity,
            if self.flush_all { ", flush-all" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use machtlb_pmap::Vpn;

    fn action(v: u64) -> Action {
        Action {
            pmap: PmapId::new(1),
            range: PageRange::new(Vpn::new(v), 1),
        }
    }

    fn ranged(p: u32, v: u64, n: u64) -> Action {
        Action {
            pmap: PmapId::new(p),
            range: PageRange::new(Vpn::new(v), n),
        }
    }

    #[test]
    fn drain_returns_fifo_order() {
        let mut q = ActionQueue::new(4);
        q.enqueue(action(1));
        q.enqueue(action(4));
        let (actions, flush) = q.drain();
        assert_eq!(actions.len(), 2);
        assert_eq!(actions[0].range.start(), Vpn::new(1));
        assert!(!flush);
        assert!(q.is_empty());
    }

    #[test]
    fn overflow_collapses_to_flush() {
        let mut q = ActionQueue::new(1);
        q.enqueue(action(1));
        q.enqueue(action(4));
        assert!(q.flush_all());
        assert_eq!(q.overflows(), 1);
        // Further enqueues are absorbed.
        assert_eq!(q.enqueue(action(7)), EnqueueOutcome::Absorbed);
        assert_eq!(q.overflows(), 1);
        assert_eq!(q.enqueued(), 3);
        let (actions, flush) = q.drain();
        assert!(actions.is_empty());
        assert!(flush);
        // Drained queue is usable again.
        q.enqueue(action(9));
        assert_eq!(q.len(), 1);
        assert!(!q.flush_all());
    }

    #[test]
    fn adjacent_and_overlapping_ranges_coalesce() {
        let mut q = ActionQueue::new(2);
        assert_eq!(q.enqueue(ranged(1, 10, 2)), EnqueueOutcome::Queued);
        // Adjacent on the right.
        assert_eq!(
            q.enqueue(ranged(1, 12, 3)),
            EnqueueOutcome::Coalesced {
                avoided_overflow: false
            }
        );
        // Overlapping on the left.
        assert_eq!(
            q.enqueue(ranged(1, 8, 3)),
            EnqueueOutcome::Coalesced {
                avoided_overflow: false
            }
        );
        assert_eq!(q.len(), 1);
        assert_eq!(q.coalesced(), 2);
        let (actions, flush) = q.drain();
        assert!(!flush);
        assert_eq!(actions, vec![ranged(1, 8, 7)]);
    }

    #[test]
    fn same_pages_different_pmaps_do_not_coalesce() {
        let mut q = ActionQueue::new(4);
        q.enqueue(ranged(1, 10, 2));
        assert_eq!(q.enqueue(ranged(2, 10, 2)), EnqueueOutcome::Queued);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn disjoint_ranges_do_not_coalesce() {
        let mut q = ActionQueue::new(4);
        q.enqueue(ranged(1, 10, 2)); // [10,12)
        assert_eq!(q.enqueue(ranged(1, 13, 1)), EnqueueOutcome::Queued); // gap at 12
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn bridge_range_chain_merges_neighbours() {
        let mut q = ActionQueue::new(4);
        q.enqueue(ranged(1, 10, 2)); // [10,12)
        q.enqueue(ranged(1, 14, 2)); // [14,16)
        assert_eq!(q.len(), 2);
        // [12,14) bridges the two into [10,16).
        assert_eq!(
            q.enqueue(ranged(1, 12, 2)),
            EnqueueOutcome::Coalesced {
                avoided_overflow: false
            }
        );
        assert_eq!(q.len(), 1);
        let (actions, _) = q.drain();
        assert_eq!(actions, vec![ranged(1, 10, 6)]);
    }

    #[test]
    fn coalescing_on_a_full_queue_counts_an_avoided_overflow() {
        let mut q = ActionQueue::new(2);
        q.enqueue(ranged(1, 10, 2));
        q.enqueue(ranged(1, 20, 2));
        assert_eq!(q.len(), 2);
        assert_eq!(
            q.enqueue(ranged(1, 12, 1)),
            EnqueueOutcome::Coalesced {
                avoided_overflow: true
            }
        );
        assert!(!q.flush_all(), "merge absorbed what would have overflowed");
        assert_eq!(q.overflows_avoided(), 1);
        assert_eq!(q.overflows(), 0);
    }

    #[test]
    fn poisoning_degrades_to_a_full_flush() {
        let mut q = ActionQueue::new(4);
        q.enqueue(action(1));
        q.enqueue(action(4));
        q.poison();
        assert!(q.flush_all());
        assert_eq!(q.poisoned(), 1);
        let (actions, flush) = q.drain();
        assert!(actions.is_empty(), "poisoned actions must not be applied");
        assert!(flush);
        // The queue is usable again after the degraded drain.
        q.enqueue(action(9));
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let _ = ActionQueue::new(0);
    }
}
