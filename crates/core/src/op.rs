//! The initiator: pmap operations executed under the configured
//! consistency strategy.
//!
//! [`PmapOpProcess`] is the paper's Figure 1 initiator as an explicit state
//! machine, including the refinements the pseudo-code encodes:
//!
//! - the initiator disables interrupts and **removes itself from the active
//!   set** before taking the pmap lock, breaking initiator/initiator
//!   deadlocks across different pmaps;
//! - the lazy-evaluation check skips the shootdown entirely when the pages
//!   concerned were never entered in the pmap;
//! - actions are queued for *every* processor using the pmap (including
//!   idle ones), but interrupts are sent — and synchronization performed —
//!   only for non-idle processors;
//! - a processor with a shootdown interrupt already in flight is not
//!   interrupted again (but is still synchronized with, which the paper's
//!   prose requires even though Figure 1's single `shoot_list` conflates
//!   the two sets);
//! - the wait condition is "the responder became inactive **or** stopped
//!   using the pmap".
//!
//! The same state machine also implements the alternative strategies of
//! [`Strategy`](crate::Strategy), which differ in the notification and
//! synchronization phases but share locking and application.

use machtlb_pmap::{PageRange, Pfn, PmapId, Prot, Pte, Vpn};
use machtlb_sim::{BlockOn, CpuId, Ctx, Dur, IntrMask, Process, Step, Time};
use machtlb_tlb::InvalidationPlan;
use machtlb_xpr::{InitiatorRecord, PmapKind, ShootdownEvent, SpanId, TraceEdge, TracePhase};

use crate::health::RecoveryPolicy;
use crate::queue::Action;
use crate::state::{
    queue_lock_channel, round_channel, HasKernel, KernelState, ShootdownRound, SpinMode,
    WatchdogReport, SYNC_CHANNEL,
};
use crate::strategy::Strategy;
use crate::SHOOTDOWN_VECTOR;

/// Pages applied to the page table per simulation step while the pmap lock
/// is held (bounds event counts for large operations while keeping hold
/// times proportional to operation size).
const APPLY_CHUNK: usize = 16;

/// Counts a lock-word reference against the node whose memory holds the
/// word (`home`), and as remote traffic if the toucher sits elsewhere. On a
/// flat topology everything is node 0 and the remote branch never runs.
pub(crate) fn note_lock_ref<S: HasKernel>(ctx: &mut Ctx<'_, S, ()>, home: usize) {
    let node = ctx.node();
    let k = ctx.shared.kernel_mut();
    let home = home.min(k.node_stats.len() - 1);
    k.node_stats[home].lock_refs += 1;
    if node != home {
        k.stats.remote_lock_refs += 1;
        k.node_stats[node].remote_lock_refs += 1;
    }
}

/// Counts a shootdown IPI in the sender's per-node counters, and as remote
/// if the target lives on another node.
pub(crate) fn note_ipi<S: HasKernel>(ctx: &mut Ctx<'_, S, ()>, to: CpuId) {
    let from = ctx.node();
    let to = ctx.node_of(to);
    let k = ctx.shared.kernel_mut();
    k.node_stats[from].ipis_sent += 1;
    if from != to {
        k.stats.ipis_remote += 1;
        k.node_stats[from].ipis_remote += 1;
    }
}

/// A machine-dependent physical-map operation.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum PmapOp {
    /// Enter (validate) a mapping. Never requires consistency actions:
    /// adding rights can at worst cause a spurious fault elsewhere.
    Enter {
        /// The page to map.
        vpn: Vpn,
        /// The frame to map it to.
        pfn: Pfn,
        /// The rights to grant.
        prot: Prot,
    },
    /// Invalidate every mapping in a range.
    Remove {
        /// The pages to unmap.
        range: PageRange,
    },
    /// Set the protection of every valid mapping in a range.
    Protect {
        /// The pages to reprotect.
        range: PageRange,
        /// The new rights.
        prot: Prot,
    },
    /// Invalidate every mapping in the pmap (pmap destruction).
    Destroy,
    /// Clear the referenced bits of every valid mapping in a range (the
    /// pageout daemon's aging pass). Removes no rights, so no shootdown:
    /// stale referenced bits in remote TLBs merely make pages look more
    /// recently used than they are — the same laziness real kernels
    /// accept.
    ClearRefBits {
        /// The pages to age.
        range: PageRange,
    },
}

impl PmapOp {
    /// Whether this operation *could* leave dangerous stale entries in a
    /// TLB, judged by operation type alone (the non-lazy check).
    pub fn may_reduce_rights(self) -> bool {
        match self {
            PmapOp::Enter { .. } | PmapOp::ClearRefBits { .. } => false,
            // A protect could be an upgrade, but without looking at the
            // page table the kernel must assume it reduces rights.
            PmapOp::Remove { .. } | PmapOp::Protect { .. } | PmapOp::Destroy => true,
        }
    }

    /// The page range the operation names, if it names one.
    pub fn range(self) -> Option<PageRange> {
        match self {
            PmapOp::Enter { vpn, .. } => Some(PageRange::single(vpn)),
            PmapOp::Remove { range }
            | PmapOp::Protect { range, .. }
            | PmapOp::ClearRefBits { range } => Some(range),
            PmapOp::Destroy => None,
        }
    }
}

#[derive(Debug)]
enum Phase {
    Begin,
    Lock,
    Check,
    LocalInvalidate,
    QueueScan { next: u32 },
    SendIpis { idx: usize },
    Wait { idx: usize },
    // Invalidate the page-table entries first, so a hardware reload
    // cannot re-cache the old mapping. HardwareRemoteInvalidate then
    // shoots the remote buffers directly; the residency-filtered
    // shootdown path uses the same barrier before consulting the
    // per-cpu possibly-cached sets (a fill racing the filter decision
    // either precedes this write and is visible in residency, or
    // follows it and loads an invalid entry).
    PreInvalidatePt { applied: usize },
    RemoteInvalidate { next: u32 },
    // Multicast-round mode (Shootdown strategy with fanout >= 2): publish
    // the round descriptor, post one tree-fanout IPI, and wait on the
    // acknowledgement counter instead of walking per-responder queues.
    PublishRound,
    MulticastSend,
    RoundWait,
    // Leader-side application of batched co-initiators' operations, one
    // joiner a step (round mode, after the leader's own Apply).
    ApplyJoiners { idx: usize },
    // Post-sync queue actions for pmap users outside the round's
    // acknowledgement set: idle processors and concurrent initiators,
    // exactly the processors the seed queue scan covers without waiting.
    RoundEnqueue { idx: usize },
    // This operation merged into another initiator's open round; wait for
    // the leader to apply it and report back.
    Joined,
    Apply,
    Unlock,
}

/// The outcome the operation left behind, for the caller (readable after
/// the process completes if the caller retains the process).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct OpOutcome {
    /// Pages whose page-table entries changed.
    pub pages_changed: u64,
    /// Whether consistency actions were required.
    pub shootdown: bool,
    /// Processors sent a shootdown interrupt.
    pub processors_shot: u32,
    /// Set when the operation aborted because the pmap lock was held by a
    /// fail-stop halted processor under [`RecoveryPolicy::FailOp`]: the
    /// decoded dead-holder error, for the caller to act on.
    pub dead_lock_holder: Option<CpuId>,
    /// Whether this operation merged into another initiator's multicast
    /// round (batched initiators): the leader applied it and this process
    /// only waited for the result.
    pub joined: bool,
}

/// The initiator state machine. See the module docs.
#[derive(Debug)]
pub struct PmapOpProcess {
    pmap_id: PmapId,
    op: PmapOp,
    phase: Phase,
    saved_mask: Option<IntrMask>,
    t_start: Option<Time>,
    t_sync_done: Option<Time>,
    /// Processors to synchronize with (non-idle users of the pmap).
    wait_list: Vec<CpuId>,
    /// Processors to actually interrupt (wait_list minus already-pending).
    send_list: Vec<CpuId>,
    needed: bool,
    /// Planned page-table changes: (page, new entry).
    changes: Vec<(Vpn, Pte)>,
    /// Changes whose consistency commit is deferred to the flush epoch
    /// (timer-delayed strategy only).
    deferred: Vec<(Vpn, Pte)>,
    changes_planned: bool,
    applied: usize,
    outcome: OpOutcome,
    /// The queue lock this process event-blocked on, so the wakeup's
    /// backfilled spin iterations are charged to the right lock even if
    /// the pmap's user set changed while it slept.
    spun_on_queue: Option<CpuId>,
    /// When the watchdog next fires for the responder currently waited on
    /// (armed on the first pending check, pushed out by each retry).
    wait_deadline: Option<Time>,
    /// IPIs re-sent to the responder currently waited on.
    wait_retries: u32,
    /// This operation's flight-recorder span (allocated lazily, once the
    /// operation turns out to need consistency actions).
    span: Option<SpanId>,
    /// The trace phase currently open on the initiator's track.
    open: Option<TracePhase>,
    /// The pmap lock shards this operation's range maps to (ascending;
    /// `[0]` on an unsharded pmap — the seed whole-pmap lock).
    shards_needed: Vec<usize>,
    /// How many of `shards_needed` are currently held (a prefix).
    shards_held: usize,
    /// Each held shard's steal generation, sampled at acquisition
    /// (parallel to the held prefix of `shards_needed`). Steals only
    /// target fail-stop holders, so a later mismatch means this processor
    /// was halted mid-section, fence-and-steal reclaimed the shard, and
    /// it has since revived: its claim is gone and the operation must
    /// restart instead of touching state it no longer owns — or releasing
    /// a lock the thief now holds.
    shard_gens: Vec<u64>,
    /// The multicast round this operation leads — or, in
    /// [`Phase::Joined`], the round it merged into.
    round_id: Option<u64>,
    /// Round mode: the post-sync queue-action targets (pmap users outside
    /// the acknowledgement set), computed once entering
    /// [`Phase::RoundEnqueue`].
    fallback_list: Vec<CpuId>,
    fallback_built: bool,
    /// The ranges those fallback queue actions must cover: the operation's
    /// own invalidation range plus every rights-reducing joiner's.
    fallback_ranges: Vec<PageRange>,
    /// Per-joiner pages-changed counts, published to
    /// [`KernelState::join_results`] in the unlock step.
    joiner_pages: Vec<(CpuId, u64)>,
    /// The leader's own pages-changed count, snapshotted before joiner
    /// changes are appended to `changes`.
    own_pages: Option<u64>,
    /// Set once [`Phase::PreInvalidatePt`] has written the planned
    /// entries invalid on the residency-filtered shootdown path: the
    /// license to consult the possibly-cached sets and skip targets.
    pre_invalidated: bool,
}

impl PmapOpProcess {
    /// Creates an initiator for `op` on `pmap_id`.
    pub fn new(pmap_id: PmapId, op: PmapOp) -> PmapOpProcess {
        PmapOpProcess {
            pmap_id,
            op,
            phase: Phase::Begin,
            saved_mask: None,
            t_start: None,
            t_sync_done: None,
            wait_list: Vec::new(),
            send_list: Vec::new(),
            needed: false,
            changes: Vec::new(),
            deferred: Vec::new(),
            changes_planned: false,
            applied: 0,
            outcome: OpOutcome::default(),
            spun_on_queue: None,
            wait_deadline: None,
            wait_retries: 0,
            span: None,
            open: None,
            shards_needed: Vec::new(),
            shards_held: 0,
            shard_gens: Vec::new(),
            round_id: None,
            fallback_list: Vec::new(),
            fallback_built: false,
            fallback_ranges: Vec::new(),
            joiner_pages: Vec::new(),
            own_pages: None,
            pre_invalidated: false,
        }
    }

    /// The operation being executed.
    pub fn op(&self) -> PmapOp {
        self.op
    }

    /// The outcome (meaningful once the process has completed).
    pub fn outcome(&self) -> OpOutcome {
        self.outcome
    }

    /// Whether the configured strategy requires the active-set handshake.
    fn strategy(&self, shared: &KernelState) -> Strategy {
        shared.config.strategy
    }

    /// Decides whether consistency actions are required, mirroring the
    /// "check for potential inconsistencies" with and without the lazy
    /// valid-mapping check.
    fn consistency_needed(&self, shared: &KernelState) -> bool {
        if !self.op.may_reduce_rights() {
            return false;
        }
        if !shared.config.lazy_eval {
            return true;
        }
        let table = shared.pmaps.get(self.pmap_id).table();
        match self.op {
            PmapOp::Enter { .. } | PmapOp::ClearRefBits { .. } => false,
            PmapOp::Remove { range } => table.any_valid_in(range),
            PmapOp::Destroy => table.valid_count() > 0,
            PmapOp::Protect { range, prot } => table
                .valid_in(range)
                .any(|(_, pte)| prot.is_downgrade_from(pte.prot)),
        }
    }

    /// Plans the page-table changes an operation implies against the
    /// current table (also used by the round leader for batched joiners'
    /// operations).
    fn plan_for(op: PmapOp, table: &machtlb_pmap::PageTable) -> Vec<(Vpn, Pte)> {
        match op {
            PmapOp::Enter { vpn, pfn, prot } => vec![(vpn, Pte::valid(pfn, prot))],
            PmapOp::Remove { range } => table
                .valid_in(range)
                .map(|(vpn, _)| (vpn, Pte::INVALID))
                .collect(),
            PmapOp::Protect { range, prot } => table
                .valid_in(range)
                .filter(|(_, pte)| pte.prot != prot)
                .map(|(vpn, mut pte)| {
                    pte.prot = prot;
                    (vpn, pte)
                })
                .collect(),
            PmapOp::Destroy => table
                .valid_in(PageRange::new(Vpn::new(0), machtlb_pmap::VPN_SPAN))
                .map(|(vpn, _)| (vpn, Pte::INVALID))
                .collect(),
            PmapOp::ClearRefBits { range } => table
                .valid_in(range)
                .filter(|(_, pte)| pte.referenced)
                .map(|(vpn, mut pte)| {
                    pte.referenced = false;
                    (vpn, pte)
                })
                .collect(),
        }
    }

    /// Plans this operation's page-table changes (computed once, under the
    /// lock).
    fn plan_changes(&mut self, shared: &KernelState) {
        if self.changes_planned {
            return;
        }
        self.changes_planned = true;
        self.changes = Self::plan_for(self.op, shared.pmaps.get(self.pmap_id).table());
    }

    /// The range to invalidate from TLBs (the operation's range, or for
    /// destroys the whole space).
    fn invalidate_range(&self) -> PageRange {
        self.op
            .range()
            .unwrap_or_else(|| PageRange::new(Vpn::new(0), machtlb_pmap::VPN_SPAN))
    }

    /// Invalidates this processor's own TLB for the operation's range,
    /// returning the cost.
    fn invalidate_local<S: HasKernel>(&self, ctx: &mut Ctx<'_, S, ()>) -> Dur {
        let me = ctx.cpu_id;
        let range = self.invalidate_range();
        let costs = (ctx.costs().tlb_invalidate_single, ctx.costs().tlb_flush_all);
        let tlb = &mut ctx.shared.kernel_mut().tlbs[me.index()];
        match tlb.plan_invalidation(range) {
            InvalidationPlan::Individual(n) => {
                tlb.invalidate_range(self.pmap_id, range);
                costs.0 * n
            }
            InvalidationPlan::FullFlush => {
                tlb.flush_all();
                costs.1
            }
        }
    }

    /// Records the initiator xpr event.
    fn record_event<S: HasKernel>(&self, ctx: &mut Ctx<'_, S, ()>) -> Dur {
        if !ctx.shared.kernel_mut().config.instrumentation {
            return Dur::ZERO;
        }
        let (Some(t0), Some(t1)) = (self.t_start, self.t_sync_done) else {
            return Dur::ZERO;
        };
        let record = InitiatorRecord {
            at: t0,
            cpu: ctx.cpu_id,
            kind: if self.pmap_id.is_kernel() {
                PmapKind::Kernel
            } else {
                PmapKind::User
            },
            // "Number of Mach VM pages involved in the shootdown": the
            // operation's range (destroys report the mappings dropped).
            pages: self
                .op
                .range()
                .map(machtlb_pmap::PageRange::count)
                .unwrap_or(self.changes.len() as u64)
                .max(1),
            processors: self.send_list.len() as u32,
            elapsed: t1.duration_since(t0),
        };
        ctx.shared
            .kernel_mut()
            .xpr
            .record(ShootdownEvent::Initiator(record));
        // Gathering the arguments and calling the xpr package costs a few
        // instructions (the Section 6.1 perturbation).
        ctx.costs().local_op * 4
    }

    /// Allocates this operation's flight-recorder span on first use and
    /// opens `first` as the current phase. The Initiate slice is recorded
    /// retroactively over `[t_start, now]`: safe, because the initiator
    /// has had interrupts blocked since [`Phase::Begin`], so nothing else
    /// recorded on this processor's track in between.
    fn trace_begin_span<S: HasKernel>(&mut self, ctx: &mut Ctx<'_, S, ()>, first: TracePhase) {
        if self.span.is_some() || !ctx.shared.kernel().trace.is_enabled() {
            return;
        }
        let me = ctx.cpu_id;
        let now = ctx.now;
        let t0 = self.t_start.unwrap_or(now);
        let k = ctx.shared.kernel_mut();
        let span = k.trace.begin_span();
        k.trace
            .record(me, span, TracePhase::Initiate, TraceEdge::Begin, t0);
        k.trace
            .record(me, span, TracePhase::Initiate, TraceEdge::End, now);
        k.trace.record(me, span, first, TraceEdge::Begin, now);
        self.span = Some(span);
        self.open = Some(first);
    }

    /// Moves the initiator's track to `phase`: closes the open slice and
    /// begins the new one at the current instant. A no-op without a span
    /// (tracing off, or no consistency actions needed) or when `phase`
    /// is already open.
    fn trace_enter<S: HasKernel>(&mut self, ctx: &mut Ctx<'_, S, ()>, phase: TracePhase) {
        let Some(span) = self.span else { return };
        if self.open == Some(phase) {
            return;
        }
        let me = ctx.cpu_id;
        let now = ctx.now;
        let k = ctx.shared.kernel_mut();
        if let Some(open) = self.open.take() {
            k.trace.record(me, span, open, TraceEdge::End, now);
        }
        k.trace.record(me, span, phase, TraceEdge::Begin, now);
        self.open = Some(phase);
    }

    /// The synchronization wait on `cpu` outlived the armed deadline.
    /// While retries remain, re-send the shootdown IPI (the original may
    /// have been lost) and push the deadline out by the backed-off
    /// timeout; once exhausted, file a [`WatchdogReport`], skip the
    /// responder, and move on — degrading beats hanging, and the skipped
    /// responder's stale TLB is the checker's to catch.
    fn watchdog_expired<S: HasKernel>(
        &mut self,
        ctx: &mut Ctx<'_, S, ()>,
        cpu: CpuId,
        wd: crate::state::WatchdogConfig,
    ) -> Step {
        let me = ctx.cpu_id;
        let now = ctx.now;
        if self.wait_retries < wd.max_retries {
            self.wait_retries += 1;
            // timeout, then timeout*backoff, then timeout*backoff^2, ...
            self.wait_deadline = Some(now + wd.retry_timeout(self.wait_retries));
            // Re-send regardless of ipi_pending: the flag still set is
            // exactly the symptom of a lost delivery. Keep it set so
            // healthy initiators continue to suppress their own sends.
            ctx.shared.kernel_mut().ipi_pending[cpu.index()] = true;
            ctx.send_ipi(cpu, SHOOTDOWN_VECTOR);
            let stats = &mut ctx.shared.kernel_mut().stats;
            stats.ipis_sent += 1;
            stats.ipi_retries += 1;
            note_ipi(ctx, cpu);
            if let Some(span) = self.span {
                ctx.shared.kernel_mut().trace.record_arg(
                    me,
                    span,
                    TracePhase::Retry,
                    TraceEdge::Mark,
                    now,
                    cpu.index() as u32,
                );
            }
            Step::Run(ctx.costs().ipi_send)
        } else {
            let retries = self.wait_retries;
            let health = ctx.shared.kernel().config.health;
            let k = ctx.shared.kernel_mut();
            k.stats.watchdog_gaveup += 1;
            k.watchdog_reports.push(WatchdogReport {
                at: now,
                initiator: me,
                target: cpu,
                retries,
            });
            let mut cost = ctx.costs().local_op;
            if health.enabled {
                // The responder is declared fail-stop dead: evict it from
                // the active/idle sets and every pmap's in-use set, so
                // this and every other initiator completes against the
                // reduced quorum. Leaving those sets can satisfy other
                // waiters, hence the sync notification.
                let completed = crate::health::evict(ctx.shared.kernel_mut(), me, cpu, now);
                ctx.notify(SYNC_CHANNEL);
                for pmap in completed {
                    // The eviction excused the dead processor from rounds;
                    // any round it completed owes its leader the wake the
                    // responder would have sent.
                    ctx.notify(round_channel(pmap));
                }
                cost += ctx.bus_write();
                if let Some(span) = self.span {
                    ctx.shared.kernel_mut().trace.record_arg(
                        me,
                        span,
                        TracePhase::Evict,
                        TraceEdge::Mark,
                        now,
                        cpu.index() as u32,
                    );
                }
            }
            self.wait_deadline = None;
            self.wait_retries = 0;
            let Phase::Wait { idx } = self.phase else {
                unreachable!("watchdog fires only in Phase::Wait");
            };
            self.phase = Phase::Wait { idx: idx + 1 };
            Step::Run(cost)
        }
    }

    /// The round's acknowledgement wait outlived the armed deadline with
    /// live (active, in-use, non-idle) targets still pending. While retries
    /// remain, re-send a unicast shootdown IPI to each — the multicast
    /// delivery may have been lost in the relay tree — and push the
    /// deadline out by the backed-off timeout; once exhausted, file a
    /// report per straggler and (with health tracking) evict it, so the
    /// round completes against the reduced quorum.
    fn round_watchdog_expired<S: HasKernel>(
        &mut self,
        ctx: &mut Ctx<'_, S, ()>,
        live: &machtlb_pmap::CpuSet,
        wd: crate::state::WatchdogConfig,
    ) -> Step {
        let me = ctx.cpu_id;
        let now = ctx.now;
        if self.wait_retries < wd.max_retries {
            self.wait_retries += 1;
            self.wait_deadline = Some(now + wd.retry_timeout(self.wait_retries));
            let mut cost = Dur::ZERO;
            for cpu in live.iter() {
                // Re-send regardless of ipi_pending, as the seed watchdog
                // does: the flag still set is the symptom of the loss.
                ctx.shared.kernel_mut().ipi_pending[cpu.index()] = true;
                ctx.send_ipi(cpu, SHOOTDOWN_VECTOR);
                let stats = &mut ctx.shared.kernel_mut().stats;
                stats.ipis_sent += 1;
                stats.ipi_retries += 1;
                note_ipi(ctx, cpu);
                if let Some(span) = self.span {
                    ctx.shared.kernel_mut().trace.record_arg(
                        me,
                        span,
                        TracePhase::Retry,
                        TraceEdge::Mark,
                        now,
                        cpu.index() as u32,
                    );
                }
                cost += ctx.costs().ipi_send;
            }
            return Step::Run(cost);
        }
        let health = ctx.shared.kernel().config.health;
        let retries = self.wait_retries;
        let mut cost = ctx.costs().local_op;
        for cpu in live.iter() {
            {
                let k = ctx.shared.kernel_mut();
                k.stats.watchdog_gaveup += 1;
                k.watchdog_reports.push(WatchdogReport {
                    at: now,
                    initiator: me,
                    target: cpu,
                    retries,
                });
            }
            if health.enabled {
                let completed = crate::health::evict(ctx.shared.kernel_mut(), me, cpu, now);
                ctx.notify(SYNC_CHANNEL);
                for pmap in completed {
                    ctx.notify(round_channel(pmap));
                }
                cost += ctx.bus_write();
                if let Some(span) = self.span {
                    ctx.shared.kernel_mut().trace.record_arg(
                        me,
                        span,
                        TracePhase::Evict,
                        TraceEdge::Mark,
                        now,
                        cpu.index() as u32,
                    );
                }
            } else {
                // Without health tracking, skip the straggler exactly as
                // the seed wait would: excuse it and let Phase::RoundEnqueue
                // hand it a fallback queue action.
                let k = ctx.shared.kernel_mut();
                if let Some(r) = k.rounds.iter_mut().find(|r| Some(r.id) == self.round_id) {
                    r.excuse(cpu);
                    k.stats.round_excused += 1;
                }
            }
        }
        self.wait_deadline = None;
        self.wait_retries = 0;
        Step::Run(cost)
    }
}

impl<S: HasKernel> Process<S, ()> for PmapOpProcess {
    fn step(&mut self, ctx: &mut Ctx<'_, S, ()>) -> Step {
        let me = ctx.cpu_id;
        // Steal-generation check, before anything else: if a shard this
        // processor believes it holds was fenced away while it was
        // fail-stopped (offline, then revived), every staged decision is
        // stale and the locks belong to someone else — restart the
        // operation instead of continuing the critical section.
        if self.shards_held > 0 && self.robbed(ctx.shared.kernel()) {
            return self.restart_robbed(ctx);
        }
        match self.phase {
            Phase::Begin => {
                // s = disable_interrupts(); active[mycpu] = FALSE;
                self.saved_mask = Some(ctx.set_mask(IntrMask::ALL_BLOCKED));
                self.t_start = Some(ctx.now);
                self.shards_needed = ctx
                    .shared
                    .kernel()
                    .pmaps
                    .get(self.pmap_id)
                    .shards_for(self.op.range());
                let strategy = self.strategy(ctx.shared.kernel());
                let mut cost = ctx.costs().local_op;
                if strategy.uses_interrupts() {
                    ctx.shared.kernel_mut().active.remove(me);
                    ctx.notify(SYNC_CHANNEL);
                    cost += ctx.bus_write();
                }
                self.phase = Phase::Lock;
                Step::Run(cost)
            }
            Phase::Lock => {
                let spin = ctx.costs().spin_iter + ctx.costs().cache_read;
                let woken = ctx.woken_spins();
                let event = ctx.shared.kernel().config.spin_mode == SpinMode::Event;
                let health = ctx.shared.kernel().config.health;
                let wd_timeout = ctx.shared.kernel().config.watchdog.timeout;
                // Shards are taken in ascending order (a prefix of
                // `shards_needed`), so concurrent multi-shard operations
                // cannot deadlock against each other.
                let shard = self.shards_needed[self.shards_held];
                let (acquired, holder, chan, gen) = {
                    let lock = ctx
                        .shared
                        .kernel_mut()
                        .pmaps
                        .get_mut(self.pmap_id)
                        .shard_mut(shard);
                    lock.charge_spins(woken);
                    (
                        lock.try_acquire(me),
                        lock.holder(),
                        lock.channel(),
                        lock.steal_gen(),
                    )
                };
                if acquired {
                    self.shard_gens.push(gen);
                    self.shards_held += 1;
                    if self.shards_held == self.shards_needed.len() {
                        self.phase = Phase::Check;
                    }
                    // The lock word lives in the pmap's home-node memory:
                    // the interlocked access pays the interconnect when the
                    // toucher sits on another node.
                    let home = ctx.shared.kernel().pmaps.get(self.pmap_id).home();
                    let cost = ctx.costs().lock_acquire + ctx.bus_interlocked_at(home);
                    note_lock_ref(ctx, home);
                    return Step::Run(cost);
                }
                // Contended: probe the holder's liveness before waiting. A
                // fail-stop holder will never release; recover per policy
                // instead of spinning on a dead processor forever.
                if let Some(h) = holder.filter(|&h| health.enabled && ctx.is_cpu_halted(h)) {
                    let probe = ctx.bus_read();
                    match health.policy {
                        RecoveryPolicy::FenceAndSteal => {
                            // Sound for the pmap lock: the dead holder's
                            // critical section only staged page-table and
                            // TLB updates this operation recomputes from
                            // scratch under the stolen lock.
                            let k = ctx.shared.kernel_mut();
                            let lock = k.pmaps.get_mut(self.pmap_id).shard_mut(shard);
                            lock.steal(h, me);
                            // Sample *after* our own steal so our own bump
                            // does not read back as a robbery.
                            let gen = lock.steal_gen();
                            k.stats.locks_stolen += 1;
                            // A dead leader's published round will never be
                            // completed or reclaimed: scrub it, so stalled
                            // responders find nothing and its joiners (woken
                            // by their watchdog deadline) retry the lock.
                            k.rounds
                                .retain(|r| !(r.pmap == self.pmap_id && r.initiator == h));
                            self.shard_gens.push(gen);
                            self.shards_held += 1;
                            if self.shards_held == self.shards_needed.len() {
                                self.phase = Phase::Check;
                            }
                            let home = ctx.shared.kernel().pmaps.get(self.pmap_id).home();
                            let cost =
                                ctx.costs().lock_acquire + probe + ctx.bus_interlocked_at(home);
                            note_lock_ref(ctx, home);
                            return Step::Run(cost);
                        }
                        RecoveryPolicy::FailOp => {
                            self.outcome.dead_lock_holder = Some(h);
                            let strategy = self.strategy(ctx.shared.kernel());
                            let mut cost = ctx.costs().local_op + probe;
                            // Release any shards already taken before
                            // aborting (none on an unsharded pmap: the seed
                            // path).
                            if self.shards_held > 0 {
                                let pmap = ctx.shared.kernel_mut().pmaps.get_mut(self.pmap_id);
                                for i in 0..self.shards_held {
                                    let s = self.shards_needed[i];
                                    pmap.shard_mut(s).release(me);
                                }
                                let chan = pmap.lock().channel();
                                let home = pmap.home();
                                self.shards_held = 0;
                                self.shard_gens.clear();
                                if let Some(chan) = chan {
                                    ctx.notify(chan);
                                }
                                cost += ctx.costs().lock_release + ctx.bus_write_at(home);
                            }
                            if strategy.uses_interrupts() {
                                // Undo Phase::Begin: rejoin the active set
                                // before aborting.
                                ctx.shared.kernel_mut().active.insert(me);
                                ctx.notify(SYNC_CHANNEL);
                                cost += ctx.bus_write();
                            }
                            if let Some(mask) = self.saved_mask.take() {
                                ctx.set_mask(mask);
                            }
                            return Step::Done(cost);
                        }
                    }
                }
                // Batched initiators: a second same-pmap operation arriving
                // while a multicast round is open merges into it instead of
                // serializing behind the lock — one IPI round serves both.
                let joinable = {
                    let k = ctx.shared.kernel();
                    if k.config.batch_initiators
                        && k.config.fanout >= 2
                        && k.config.strategy == Strategy::Shootdown
                    {
                        k.rounds.iter().position(|r| {
                            r.pmap == self.pmap_id
                                && !r.frozen
                                && self.shards_needed.iter().all(|s| r.shards.contains(s))
                        })
                    } else {
                        None
                    }
                };
                let joinable = joinable.filter(|&i| {
                    let leader = ctx.shared.kernel().rounds[i].initiator;
                    !(health.enabled && ctx.is_cpu_halted(leader))
                });
                if let Some(i) = joinable {
                    debug_assert_eq!(
                        self.shards_held, 0,
                        "a joiner holding shards would deadlock its leader"
                    );
                    let op = self.op;
                    let k = ctx.shared.kernel_mut();
                    k.join_results[me.index()] = None;
                    let r = &mut k.rounds[i];
                    r.joiners.push((me, op));
                    self.round_id = Some(r.id);
                    k.stats.initiators_batched += 1;
                    self.phase = Phase::Joined;
                    // Wait for the leader's unlock, which publishes the
                    // result and notifies the pmap lock channel.
                    let jchan = ctx.shared.kernel().pmaps.get(self.pmap_id).lock().channel();
                    if let (true, Some(jchan)) = (event, jchan) {
                        let block = BlockOn::one(jchan, spin);
                        if health.enabled {
                            return Step::Block(block.with_deadline(ctx.now + wd_timeout));
                        }
                        return Step::Block(block);
                    }
                    return Step::Run(spin);
                }
                if let (true, Some(chan)) = (event, chan) {
                    let block = BlockOn::one(chan, spin);
                    if health.enabled {
                        // A dead holder never notifies the lock channel:
                        // wake at the watchdog timeout so the liveness
                        // probe above runs even if no release ever comes.
                        return Step::Block(block.with_deadline(ctx.now + wd_timeout));
                    }
                    Step::Block(block)
                } else {
                    Step::Run(spin)
                }
            }
            Phase::Check => {
                self.needed = self.consistency_needed(ctx.shared.kernel());
                ctx.shared.kernel_mut().stats.pmap_ops += 1;
                if !self.needed {
                    if self.op.may_reduce_rights() && ctx.shared.kernel_mut().config.lazy_eval {
                        ctx.shared.kernel_mut().stats.lazy_skips += 1;
                    }
                    self.phase = Phase::Apply;
                } else if ctx
                    .shared
                    .kernel_mut()
                    .pmaps
                    .get(self.pmap_id)
                    .in_use()
                    .contains(me)
                {
                    self.phase = Phase::LocalInvalidate;
                } else {
                    self.phase = self.after_local_phase(ctx.shared.kernel(), me);
                }
                // "approximately 2 instructions per check"
                Step::Run(ctx.costs().local_op * 2)
            }
            Phase::LocalInvalidate => {
                let cost = self.invalidate_local(ctx);
                self.phase = self.after_local_phase(ctx.shared.kernel(), me);
                Step::Run(cost)
            }
            Phase::QueueScan { next } => {
                self.trace_begin_span(ctx, TracePhase::QueueActions);
                // A wakeup's backfilled iterations all spun on the lock the
                // process blocked on (the wake instant is the first check at
                // which anything it read could have changed), which is not
                // necessarily the lock the rescan below finds.
                if let Some(spun) = self.spun_on_queue.take() {
                    let woken = ctx.woken_spins();
                    ctx.shared.kernel_mut().queue_locks[spun.index()].charge_spins(woken);
                }
                // Find the next other processor using this pmap.
                let target = (next..ctx.shared.kernel_mut().n_cpus as u32)
                    .map(CpuId::new)
                    .find(|&c| {
                        c != me
                            && ctx
                                .shared
                                .kernel_mut()
                                .pmaps
                                .get(self.pmap_id)
                                .in_use()
                                .contains(c)
                    });
                let Some(cpu) = target else {
                    self.phase = if self.wait_list.is_empty() {
                        // Nothing to interrupt or wait for (all users
                        // idle): proceed straight to the update.
                        Phase::Apply
                    } else {
                        Phase::SendIpis { idx: 0 }
                    };
                    return Step::Run(ctx.costs().local_op);
                };
                // Residency filter: the page-table entries are already
                // invalid (Phase::PreInvalidatePt), so a target whose
                // possibly-cached set excludes the whole range holds no
                // stale translation and cannot acquire one — skip its
                // queue action, IPI, and synchronization entirely.
                if self.pre_invalidated
                    && !ctx.shared.kernel().tlbs[cpu.index()]
                        .possibly_caches(self.pmap_id, &[self.invalidate_range()])
                {
                    let k = ctx.shared.kernel_mut();
                    if !k.idle.contains(cpu) && !k.ipi_pending[cpu.index()] {
                        k.stats.ipis_filtered += 1;
                    }
                    if let Some(span) = self.span {
                        let now = ctx.now;
                        ctx.shared.kernel_mut().trace.record_arg(
                            me,
                            span,
                            TracePhase::Filter,
                            TraceEdge::Mark,
                            now,
                            cpu.index() as u32,
                        );
                    }
                    self.phase = Phase::QueueScan {
                        next: cpu.index() as u32 + 1,
                    };
                    return Step::Run(ctx.costs().cache_read);
                }
                // lock_action_structure(cpu)
                if !ctx.shared.kernel_mut().queue_locks[cpu.index()].try_acquire(me) {
                    let spin = ctx.costs().spin_iter + ctx.costs().cache_read;
                    if ctx.shared.kernel().config.spin_mode == SpinMode::Event {
                        // The retried check re-reads the pmap's user set as
                        // well as the lock, so listen for membership changes
                        // (the sync channel) alongside the lock's releases.
                        self.spun_on_queue = Some(cpu);
                        return Step::Block(BlockOn::two(
                            queue_lock_channel(cpu),
                            SYNC_CHANNEL,
                            spin,
                        ));
                    }
                    return Step::Run(spin);
                }
                // queue_action; action_needed[cpu] = TRUE; unlock.
                let outcome = ctx.shared.kernel_mut().queues[cpu.index()].enqueue(Action {
                    pmap: self.pmap_id,
                    range: self.invalidate_range(),
                });
                if let crate::queue::EnqueueOutcome::Coalesced { avoided_overflow } = outcome {
                    let stats = &mut ctx.shared.kernel_mut().stats;
                    stats.actions_coalesced += 1;
                    if avoided_overflow {
                        stats.queue_overflows_avoided += 1;
                    }
                }
                ctx.shared.kernel_mut().action_needed[cpu.index()] = true;
                ctx.shared.kernel_mut().queue_locks[cpu.index()].release(me);
                ctx.notify(queue_lock_channel(cpu));
                if let Some(span) = self.span {
                    // Link the responder's eventual drain back to this
                    // shootdown.
                    ctx.shared.kernel_mut().trace.set_pending(cpu, span);
                }
                self.outcome.shootdown = true;
                // Idle processors get queued actions but no interrupt and
                // no synchronization.
                if !ctx.shared.kernel_mut().idle.contains(cpu) {
                    self.wait_list.push(cpu);
                    if !ctx.shared.kernel_mut().ipi_pending[cpu.index()] {
                        ctx.shared.kernel_mut().ipi_pending[cpu.index()] = true;
                        self.send_list.push(cpu);
                    }
                }
                self.phase = Phase::QueueScan {
                    next: cpu.index() as u32 + 1,
                };
                // The queue and its lock live in the target's node memory.
                let qhome = ctx.node_of(cpu);
                let cost = ctx.costs().lock_acquire
                    + ctx.costs().queue_action
                    + ctx.costs().lock_release
                    + ctx.bus_interlocked_at(qhome)
                    + ctx.bus_write_at(qhome)
                    + ctx.bus_write_at(qhome);
                note_lock_ref(ctx, qhome);
                Step::Run(cost)
            }
            Phase::SendIpis { idx } => {
                self.trace_enter(ctx, TracePhase::IpiSend);
                let strategy = self.strategy(ctx.shared.kernel());
                if strategy == Strategy::BroadcastIpi {
                    // One poke interrupts every other processor.
                    ctx.broadcast_ipi(SHOOTDOWN_VECTOR);
                    ctx.shared.kernel_mut().stats.ipis_sent += ctx.n_cpus() as u64 - 1;
                    let now = ctx.now;
                    for c in 0..ctx.shared.kernel_mut().n_cpus {
                        if c != me.index() {
                            ctx.shared.kernel_mut().ipi_pending[c] = true;
                            note_ipi(ctx, CpuId::new(c as u32));
                            if let Some(span) = self.span {
                                ctx.shared.kernel_mut().trace.record_arg(
                                    me,
                                    span,
                                    TracePhase::IpiSend,
                                    TraceEdge::Mark,
                                    now,
                                    c as u32,
                                );
                            }
                        }
                    }
                    self.phase = Phase::Wait { idx: 0 };
                    return Step::Run(ctx.costs().ipi_broadcast);
                }
                let Some(&target) = self.send_list.get(idx) else {
                    self.phase = Phase::Wait { idx: 0 };
                    return Step::Run(ctx.costs().local_op);
                };
                ctx.send_ipi(target, SHOOTDOWN_VECTOR);
                ctx.shared.kernel_mut().stats.ipis_sent += 1;
                note_ipi(ctx, target);
                if let Some(span) = self.span {
                    let now = ctx.now;
                    ctx.shared.kernel_mut().trace.record_arg(
                        me,
                        span,
                        TracePhase::IpiSend,
                        TraceEdge::Mark,
                        now,
                        target.index() as u32,
                    );
                }
                self.phase = Phase::SendIpis { idx: idx + 1 };
                Step::Run(ctx.costs().ipi_send)
            }
            Phase::Wait { idx } => {
                self.trace_enter(ctx, TracePhase::SyncWait);
                let Some(&cpu) = self.wait_list.get(idx) else {
                    self.t_sync_done = Some(ctx.now);
                    self.phase = Phase::Apply;
                    return Step::Run(ctx.costs().local_op);
                };
                let strategy = self.strategy(ctx.shared.kernel());
                let still_using = ctx
                    .shared
                    .kernel_mut()
                    .pmaps
                    .get(self.pmap_id)
                    .in_use()
                    .contains(cpu);
                let pending = if strategy.responders_stall() {
                    // Spin while the responder is active and still using
                    // the pmap.
                    ctx.shared.kernel_mut().active.contains(cpu) && still_using
                } else {
                    // No-stall responders: wait only until the queued
                    // actions have been consumed. A processor that left
                    // the active set (a concurrent initiator) is skipped
                    // exactly as in the stalling variant: it acts on its
                    // queue before touching user memory again.
                    ctx.shared.kernel_mut().action_needed[cpu.index()]
                        && still_using
                        && ctx.shared.kernel_mut().active.contains(cpu)
                };
                if pending {
                    let wd = ctx.shared.kernel().config.watchdog;
                    if wd.enabled {
                        let now = ctx.now;
                        let deadline = *self.wait_deadline.get_or_insert(now + wd.timeout);
                        if now >= deadline {
                            return self.watchdog_expired(ctx, cpu, wd);
                        }
                        let spin = ctx.costs().spin_iter + ctx.costs().cache_read;
                        return if ctx.shared.kernel().config.spin_mode == SpinMode::Event {
                            // Wake for the sync channel as in the plain
                            // wait, or spuriously at the deadline so the
                            // expiry check above runs on time.
                            Step::Block(BlockOn::one(SYNC_CHANNEL, spin).with_deadline(deadline))
                        } else {
                            Step::Run(spin)
                        };
                    }
                    let spin = ctx.costs().spin_iter + ctx.costs().cache_read;
                    if ctx.shared.kernel().config.spin_mode == SpinMode::Event {
                        // Every write that can clear the condition (leaving
                        // the active set, clearing an action-needed flag,
                        // dropping a pmap from a user set) notifies the sync
                        // channel.
                        Step::Block(BlockOn::one(SYNC_CHANNEL, spin))
                    } else {
                        Step::Run(spin)
                    }
                } else {
                    self.wait_deadline = None;
                    self.wait_retries = 0;
                    self.phase = Phase::Wait { idx: idx + 1 };
                    Step::Run(ctx.costs().local_op)
                }
            }
            Phase::PreInvalidatePt { applied } => {
                self.trace_begin_span(ctx, TracePhase::PmapUpdate);
                // Write the page-table entries invalid before touching the
                // remote buffers: a concurrent hardware reload then loads
                // an invalid entry (a spurious fault the paper calls
                // "minor overhead") instead of re-caching the old mapping.
                self.plan_changes(ctx.shared.kernel());
                let remaining = self.changes.len() - applied;
                if remaining == 0 {
                    self.phase = match self.strategy(ctx.shared.kernel()) {
                        Strategy::HardwareRemoteInvalidate => Phase::RemoteInvalidate { next: 0 },
                        _ => {
                            // Residency-filtered shootdown: the barrier is
                            // in place, so the scan (or round) below may
                            // skip any target whose possibly-cached set
                            // excludes the whole invalidation range. The
                            // protocol ran even if every target filters
                            // out, so this counts as a shootdown.
                            self.pre_invalidated = true;
                            self.outcome.shootdown = true;
                            if ctx.shared.kernel().config.fanout >= 2 {
                                Phase::PublishRound
                            } else {
                                Phase::QueueScan { next: 0 }
                            }
                        }
                    };
                    return Step::Run(ctx.costs().local_op);
                }
                let chunk = remaining.min(APPLY_CHUNK);
                let mut cost = Dur::ZERO;
                for i in 0..chunk {
                    let (vpn, _) = self.changes[applied + i];
                    cost += ctx.costs().pmap_update_per_page + ctx.bus_write();
                    ctx.shared
                        .kernel_mut()
                        .pmaps
                        .get_mut(self.pmap_id)
                        .table_mut()
                        .set(vpn, Pte::INVALID);
                }
                self.phase = Phase::PreInvalidatePt {
                    applied: applied + chunk,
                };
                Step::Run(cost)
            }
            Phase::RemoteInvalidate { next } => {
                self.trace_enter(ctx, TracePhase::RemoteInvalidate);
                // Section 9: "the initiator can shoot the entries directly
                // out of the responders' TLBs without involving the
                // responders." Each remote entry invalidation is a bus
                // transaction.
                let target = (next..ctx.shared.kernel_mut().n_cpus as u32)
                    .map(CpuId::new)
                    .find(|&c| {
                        c != me
                            && ctx
                                .shared
                                .kernel_mut()
                                .pmaps
                                .get(self.pmap_id)
                                .in_use()
                                .contains(c)
                    });
                let Some(cpu) = target else {
                    self.t_sync_done = Some(ctx.now);
                    self.outcome.shootdown = true;
                    self.phase = Phase::Apply;
                    return Step::Run(ctx.costs().local_op);
                };
                let range = self.invalidate_range();
                let single = ctx.costs().tlb_invalidate_single;
                let bus = ctx.bus_write();
                let n =
                    ctx.shared.kernel_mut().tlbs[cpu.index()].invalidate_range(self.pmap_id, range);
                self.send_list.push(cpu); // counted as "processors shot"
                self.phase = Phase::RemoteInvalidate {
                    next: cpu.index() as u32 + 1,
                };
                Step::Run(single * n.max(1) + bus)
            }
            Phase::PublishRound => {
                self.trace_begin_span(ctx, TracePhase::QueueActions);
                // The acknowledgement set: every other active, non-idle
                // user of the pmap — exactly the processors the seed scan
                // would wait on. Idle users and concurrent initiators get
                // queue actions after the sync (Phase::RoundEnqueue).
                let (mut targets, words) = {
                    let k = ctx.shared.kernel();
                    let mut users = k.pmaps.get(self.pmap_id).in_use().clone();
                    users.remove(me);
                    let words = users.word_count() as u32;
                    (users.intersection(&k.active).difference(&k.idle), words)
                };
                let range = self.invalidate_range();
                // Residency filter (see Phase::QueueScan): drop targets
                // that cannot hold the translation from the round's
                // acknowledgement set before it is published. A dropped
                // target also leaves the cleanup set, so Phase::RoundEnqueue
                // re-checks it against the final fallback ranges.
                let mut filter_cost = Dur::ZERO;
                if self.pre_invalidated {
                    let dropped: Vec<CpuId> = {
                        let k = ctx.shared.kernel();
                        targets
                            .iter()
                            .filter(|c| !k.tlbs[c.index()].possibly_caches(self.pmap_id, &[range]))
                            .collect()
                    };
                    filter_cost = ctx.costs().cache_read * targets.len() as u64;
                    let now = ctx.now;
                    for c in dropped {
                        targets.remove(c);
                        let k = ctx.shared.kernel_mut();
                        if !k.ipi_pending[c.index()] {
                            k.stats.ipis_filtered += 1;
                        }
                        if let Some(span) = self.span {
                            ctx.shared.kernel_mut().trace.record_arg(
                                me,
                                span,
                                TracePhase::Filter,
                                TraceEdge::Mark,
                                now,
                                c.index() as u32,
                            );
                        }
                    }
                }
                let shards = self.shards_needed.clone();
                let n = targets.len() as u64;
                let k = ctx.shared.kernel_mut();
                k.next_round_id += 1;
                let id = k.next_round_id;
                k.rounds.push(ShootdownRound {
                    id,
                    pmap: self.pmap_id,
                    initiator: me,
                    ranges: vec![range],
                    extras: Vec::new(),
                    pending: targets.clone(),
                    remaining: n,
                    cleanup: targets.clone(),
                    cleanup_remaining: n,
                    frozen: false,
                    unlocked: false,
                    shards,
                    joiners: Vec::new(),
                });
                k.stats.multicast_rounds += 1;
                self.round_id = Some(id);
                self.outcome.shootdown = true;
                let join_chan = if k.config.batch_initiators {
                    // Wake initiators parked on the pmap lock: the round
                    // just opened is joinable, and nothing else notifies
                    // the lock channel before the unlock.
                    k.pmaps.get(self.pmap_id).lock().channel()
                } else {
                    None
                };
                if let Some(span) = self.span {
                    // Link every target's eventual responder work back to
                    // this shootdown, as the queue scan does per enqueue.
                    for c in targets.iter() {
                        k.trace.set_pending(c, span);
                    }
                }
                self.phase = Phase::MulticastSend;
                if let Some(chan) = join_chan {
                    ctx.notify(chan);
                }
                // Three whole-set reads form the target set; the descriptor
                // itself is one composite write of queue-action size; the
                // residency consults cost one read per candidate target.
                let cost = ctx.costs().cache_read * (3 * words as u64)
                    + ctx.costs().queue_action
                    + ctx.bus_write()
                    + filter_cost;
                Step::Run(cost)
            }
            Phase::MulticastSend => {
                self.trace_enter(ctx, TracePhase::IpiSend);
                // Skip targets with a shootdown IPI already in flight: the
                // pending interrupt's service routine sees the round and
                // acknowledges it, so a second delivery is redundant.
                let mut send: Vec<CpuId> = {
                    let k = ctx.shared.kernel();
                    let r = k
                        .rounds
                        .iter()
                        .find(|r| Some(r.id) == self.round_id)
                        .expect("the leader's round lives until it unlocks");
                    r.pending
                        .iter()
                        .filter(|c| !k.ipi_pending[c.index()])
                        .collect()
                };
                self.phase = Phase::RoundWait;
                if send.is_empty() {
                    return Step::Run(ctx.costs().local_op);
                }
                // Same-node targets go first in the fanout tree, so relays
                // prefer same-node children and cross-node hops cluster at
                // the tree's fringe. On a flat topology this is the plain
                // ascending order the pre-topology kernel used.
                ctx.topology().order_node_first(me, &mut send);
                for &c in &send {
                    ctx.shared.kernel_mut().ipi_pending[c.index()] = true;
                    note_ipi(ctx, c);
                }
                let degree = ctx.shared.kernel().config.fanout;
                let n = send.len();
                ctx.multicast_ipi(send.clone(), SHOOTDOWN_VECTOR, degree);
                ctx.shared.kernel_mut().stats.ipis_sent += n as u64;
                self.send_list.extend(send);
                if let Some(span) = self.span {
                    let now = ctx.now;
                    ctx.shared.kernel_mut().trace.record_arg(
                        me,
                        span,
                        TracePhase::IpiSend,
                        TraceEdge::Mark,
                        now,
                        n as u32,
                    );
                }
                // One descriptor post, regardless of the target count: the
                // relay tree does the rest off this processor.
                Step::Run(ctx.costs().ipi_send)
            }
            Phase::RoundWait => {
                self.trace_enter(ctx, TracePhase::SyncWait);
                let now = ctx.now;
                let (ridx, remaining) = {
                    let k = ctx.shared.kernel();
                    let i = k
                        .rounds
                        .iter()
                        .position(|r| Some(r.id) == self.round_id)
                        .expect("the leader's round lives until it unlocks");
                    (i, k.rounds[i].remaining)
                };
                if remaining == 0 {
                    ctx.shared.kernel_mut().rounds[ridx].frozen = true;
                    self.t_sync_done = Some(now);
                    self.wait_deadline = None;
                    self.wait_retries = 0;
                    self.phase = Phase::Apply;
                    return Step::Run(ctx.costs().local_op);
                }
                // Re-read the sets the wait condition depends on: a pending
                // target that left the active set (a concurrent initiator),
                // went idle, or stopped using the pmap no longer owes an
                // acknowledgement — the seed wait skips such processors
                // dynamically, and so must the round.
                let (live, words) = {
                    let k = ctx.shared.kernel();
                    let r = &k.rounds[ridx];
                    let words = k.active.word_count() as u32;
                    let live = r
                        .pending
                        .intersection(&k.active)
                        .difference(&k.idle)
                        .intersection(k.pmaps.get(self.pmap_id).in_use());
                    (live, words)
                };
                let scan = ctx.costs().cache_read * (4 * words as u64);
                if live.is_empty() {
                    let k = ctx.shared.kernel_mut();
                    let stragglers: Vec<CpuId> = k.rounds[ridx].pending.iter().collect();
                    for c in stragglers {
                        k.rounds[ridx].excuse(c);
                        k.stats.round_excused += 1;
                    }
                    // `remaining` is now zero: the next step freezes the
                    // round and proceeds to Apply. The excused processors
                    // are handed queue actions in Phase::RoundEnqueue.
                    return Step::Run(scan + ctx.costs().local_op);
                }
                let wd = ctx.shared.kernel().config.watchdog;
                if wd.enabled {
                    let deadline = *self.wait_deadline.get_or_insert(now + wd.timeout);
                    if now >= deadline {
                        return self.round_watchdog_expired(ctx, &live, wd);
                    }
                }
                let spin = ctx.costs().spin_iter + ctx.costs().cache_read;
                if ctx.shared.kernel().config.spin_mode == SpinMode::Event {
                    // The round channel fires exactly once, when the last
                    // acknowledgement lands. The deadline is a poll: it
                    // bounds how long an excusable straggler (a processor
                    // that deactivated after the publish, e.g. a concurrent
                    // initiator whose latched IPI cannot be serviced while
                    // it masks interrupts) can hold the round open.
                    let mut deadline = now + ctx.costs().intr_entry + ctx.costs().ipi_latency * 8;
                    if let Some(wd_dl) = self.wait_deadline {
                        if wd_dl < deadline {
                            deadline = wd_dl;
                        }
                    }
                    Step::Block(
                        BlockOn::one(round_channel(self.pmap_id), spin).with_deadline(deadline),
                    )
                } else {
                    Step::Run(scan + ctx.costs().spin_iter)
                }
            }
            Phase::ApplyJoiners { idx } => {
                if self.own_pages.is_none() {
                    self.own_pages = Some(self.changes.len() as u64);
                }
                let joiner = {
                    let k = ctx.shared.kernel();
                    k.rounds
                        .iter()
                        .find(|r| Some(r.id) == self.round_id)
                        .expect("the leader's round lives until it unlocks")
                        .joiners
                        .get(idx)
                        .copied()
                };
                let Some((cpu, jop)) = joiner else {
                    self.phase = Phase::RoundEnqueue { idx: 0 };
                    return Step::Run(ctx.costs().local_op);
                };
                // Plan against the *current* table: the leader's own
                // changes are already in, so the joiner observes them.
                let jchanges =
                    Self::plan_for(jop, ctx.shared.kernel().pmaps.get(self.pmap_id).table());
                let n = jchanges.len();
                let now = ctx.now;
                let mut cost = ctx.costs().local_op;
                for &(vpn, pte) in &jchanges {
                    cost += ctx.costs().pmap_update_per_page + ctx.bus_write();
                    let kernel = ctx.shared.kernel_mut();
                    let old = kernel.pmaps.get(self.pmap_id).table().get(vpn);
                    kernel.pmaps.get_mut(self.pmap_id).table_mut().set(vpn, pte);
                    let upgrade = pte.valid
                        && (!old.valid || (old.pfn == pte.pfn && old.prot.is_subset_of(pte.prot)));
                    if upgrade {
                        kernel.checker.commit(self.pmap_id, vpn, pte, now);
                    }
                }
                if jop.may_reduce_rights() && n > 0 {
                    // The joiner's rights reductions ride the round's
                    // post-unlock cleanup pass (for acknowledged
                    // responders) and the fallback queue actions (for
                    // everyone else).
                    let jrange = jop
                        .range()
                        .unwrap_or_else(|| PageRange::new(Vpn::new(0), machtlb_pmap::VPN_SPAN));
                    let k = ctx.shared.kernel_mut();
                    k.rounds
                        .iter_mut()
                        .find(|r| Some(r.id) == self.round_id)
                        .expect("the leader's round lives until it unlocks")
                        .extras
                        .push(jrange);
                    self.fallback_ranges.push(jrange);
                    cost += ctx.bus_write();
                }
                {
                    let k = ctx.shared.kernel_mut();
                    k.stats.pmap_ops += 1;
                    let pmap = k.pmaps.get_mut(self.pmap_id);
                    match jop {
                        PmapOp::Enter { .. } => pmap.stats_mut().enters += 1,
                        PmapOp::Remove { .. } => pmap.stats_mut().removes += 1,
                        PmapOp::Protect { .. } => pmap.stats_mut().protects += 1,
                        PmapOp::Destroy => pmap.stats_mut().destroys += 1,
                        PmapOp::ClearRefBits { .. } => pmap.stats_mut().ref_clears += 1,
                    }
                }
                // The joiner's changes commit with the leader's at Unlock.
                self.changes.extend(jchanges);
                self.joiner_pages.push((cpu, n as u64));
                self.phase = Phase::ApplyJoiners { idx: idx + 1 };
                Step::Run(cost)
            }
            Phase::RoundEnqueue { idx } => {
                self.trace_enter(ctx, TracePhase::QueueActions);
                if !self.fallback_built {
                    self.fallback_built = true;
                    let k = ctx.shared.kernel();
                    let r = k
                        .rounds
                        .iter()
                        .find(|r| Some(r.id) == self.round_id)
                        .expect("the leader's round lives until it unlocks");
                    self.fallback_list = k
                        .pmaps
                        .get(self.pmap_id)
                        .in_use()
                        .iter()
                        .filter(|&c| c != me && !r.cleanup.contains(c))
                        .collect();
                    self.fallback_ranges.insert(0, self.invalidate_range());
                }
                if let Some(spun) = self.spun_on_queue.take() {
                    let woken = ctx.woken_spins();
                    ctx.shared.kernel_mut().queue_locks[spun.index()].charge_spins(woken);
                }
                let Some(&cpu) = self.fallback_list.get(idx) else {
                    self.phase = Phase::Unlock;
                    return Step::Run(ctx.costs().local_op);
                };
                // Residency filter: by this point the leader's own changes
                // and every joiner's final entries are in the page table
                // (Apply and ApplyJoiners both precede this phase), so a
                // fallback target whose possibly-cached set excludes every
                // fallback range holds no stale translation and any later
                // reload reads the final values — skip its queue action
                // and poke.
                if self.pre_invalidated
                    && !ctx.shared.kernel().tlbs[cpu.index()]
                        .possibly_caches(self.pmap_id, &self.fallback_ranges)
                {
                    let k = ctx.shared.kernel_mut();
                    if !k.idle.contains(cpu) && !k.ipi_pending[cpu.index()] {
                        k.stats.ipis_filtered += 1;
                    }
                    if let Some(span) = self.span {
                        let now = ctx.now;
                        ctx.shared.kernel_mut().trace.record_arg(
                            me,
                            span,
                            TracePhase::Filter,
                            TraceEdge::Mark,
                            now,
                            cpu.index() as u32,
                        );
                    }
                    self.phase = Phase::RoundEnqueue { idx: idx + 1 };
                    return Step::Run(ctx.costs().cache_read);
                }
                // lock_action_structure(cpu), exactly as the seed scan.
                if !ctx.shared.kernel_mut().queue_locks[cpu.index()].try_acquire(me) {
                    let spin = ctx.costs().spin_iter + ctx.costs().cache_read;
                    if ctx.shared.kernel().config.spin_mode == SpinMode::Event {
                        self.spun_on_queue = Some(cpu);
                        return Step::Block(BlockOn::two(
                            queue_lock_channel(cpu),
                            SYNC_CHANNEL,
                            spin,
                        ));
                    }
                    return Step::Run(spin);
                }
                let qhome = ctx.node_of(cpu);
                let mut cost = ctx.costs().lock_acquire
                    + ctx.costs().lock_release
                    + ctx.bus_interlocked_at(qhome)
                    + ctx.bus_write_at(qhome)
                    + ctx.bus_write_at(qhome);
                note_lock_ref(ctx, qhome);
                for i in 0..self.fallback_ranges.len() {
                    let range = self.fallback_ranges[i];
                    let outcome = ctx.shared.kernel_mut().queues[cpu.index()].enqueue(Action {
                        pmap: self.pmap_id,
                        range,
                    });
                    if let crate::queue::EnqueueOutcome::Coalesced { avoided_overflow } = outcome {
                        let stats = &mut ctx.shared.kernel_mut().stats;
                        stats.actions_coalesced += 1;
                        if avoided_overflow {
                            stats.queue_overflows_avoided += 1;
                        }
                    }
                    cost += ctx.costs().queue_action;
                }
                ctx.shared.kernel_mut().action_needed[cpu.index()] = true;
                ctx.shared.kernel_mut().queue_locks[cpu.index()].release(me);
                ctx.notify(queue_lock_channel(cpu));
                if let Some(span) = self.span {
                    ctx.shared.kernel_mut().trace.set_pending(cpu, span);
                }
                // Idle processors drain at exit-idle; everyone else (a
                // concurrent initiator with no interrupt latched) must be
                // poked or the queued action would never be consumed.
                if !ctx.shared.kernel_mut().idle.contains(cpu)
                    && !ctx.shared.kernel_mut().ipi_pending[cpu.index()]
                {
                    ctx.shared.kernel_mut().ipi_pending[cpu.index()] = true;
                    ctx.send_ipi(cpu, SHOOTDOWN_VECTOR);
                    ctx.shared.kernel_mut().stats.ipis_sent += 1;
                    note_ipi(ctx, cpu);
                    self.send_list.push(cpu);
                    cost += ctx.costs().ipi_send;
                }
                self.phase = Phase::RoundEnqueue { idx: idx + 1 };
                Step::Run(cost)
            }
            Phase::Joined => {
                if let Some(pages) = ctx.shared.kernel_mut().join_results[me.index()].take() {
                    // The leader applied our operation under its locks. Our
                    // own TLB is covered by the fallback queue action and
                    // the latched IPI the leader left us: the service
                    // routine drains it the moment interrupts re-enable.
                    self.outcome.pages_changed = pages;
                    self.outcome.shootdown = true;
                    self.outcome.joined = true;
                    ctx.shared.kernel_mut().active.insert(me);
                    ctx.notify(SYNC_CHANNEL);
                    if let Some(mask) = self.saved_mask.take() {
                        ctx.set_mask(mask);
                    }
                    return Step::Done(ctx.costs().local_op + ctx.bus_write());
                }
                let spin = ctx.costs().spin_iter + ctx.costs().cache_read;
                let health = ctx.shared.kernel().config.health;
                let leader = {
                    let k = ctx.shared.kernel();
                    k.rounds
                        .iter()
                        .find(|r| Some(r.id) == self.round_id)
                        .map(|r| r.initiator)
                };
                let Some(leader) = leader else {
                    // The round vanished (its leader died and the lock was
                    // stolen): fall back to ordinary lock contention.
                    self.round_id = None;
                    self.phase = Phase::Lock;
                    return Step::Run(spin);
                };
                if health.enabled && ctx.is_cpu_halted(leader) {
                    // Withdraw the staged join and take the normal
                    // dead-holder recovery in Phase::Lock.
                    let k = ctx.shared.kernel_mut();
                    if let Some(r) = k.rounds.iter_mut().find(|r| Some(r.id) == self.round_id) {
                        r.joiners.retain(|&(c, _)| c != me);
                    }
                    self.round_id = None;
                    self.phase = Phase::Lock;
                    return Step::Run(spin + ctx.bus_read());
                }
                let event = ctx.shared.kernel().config.spin_mode == SpinMode::Event;
                let chan = ctx.shared.kernel().pmaps.get(self.pmap_id).lock().channel();
                if let (true, Some(chan)) = (event, chan) {
                    let block = BlockOn::one(chan, spin);
                    if health.enabled {
                        let wd_timeout = ctx.shared.kernel().config.watchdog.timeout;
                        return Step::Block(block.with_deadline(ctx.now + wd_timeout));
                    }
                    return Step::Block(block);
                }
                Step::Run(spin)
            }
            Phase::Apply => {
                self.trace_enter(ctx, TracePhase::PmapUpdate);
                self.plan_changes(ctx.shared.kernel());
                if self.t_sync_done.is_none() {
                    self.t_sync_done = Some(ctx.now);
                }
                let remaining = self.changes.len() - self.applied;
                if remaining == 0 {
                    // A round leader applies its batched joiners' operations
                    // before unlocking; joiners themselves never get here.
                    self.phase = if self.round_id.is_some() {
                        Phase::ApplyJoiners { idx: 0 }
                    } else {
                        Phase::Unlock
                    };
                    return Step::Run(ctx.costs().local_op);
                }
                let chunk = remaining.min(APPLY_CHUNK);
                let mut cost = Dur::ZERO;
                let now = ctx.now;
                for i in 0..chunk {
                    let (vpn, pte) = self.changes[self.applied + i];
                    cost += ctx.costs().pmap_update_per_page + ctx.bus_write();
                    let kernel = ctx.shared.kernel_mut();
                    let old = kernel.pmaps.get(self.pmap_id).table().get(vpn);
                    kernel.pmaps.get_mut(self.pmap_id).table_mut().set(vpn, pte);
                    // Rights-adding changes are legal to use the instant
                    // they land in the page table: a concurrent hardware
                    // walk (which honours no locks) may cache them before
                    // this operation completes, and that is fine — only
                    // rights *removal* needs the completion barrier.
                    let upgrade = pte.valid
                        && (!old.valid || (old.pfn == pte.pfn && old.prot.is_subset_of(pte.prot)));
                    if upgrade {
                        kernel.checker.commit(self.pmap_id, vpn, pte, now);
                    } else if kernel.config.strategy == Strategy::TimerDelayed {
                        self.deferred.push((vpn, pte));
                    }
                }
                self.applied += chunk;
                Step::Run(cost)
            }
            Phase::Unlock => {
                let now = ctx.now;
                if self.strategy(ctx.shared.kernel()) == Strategy::TimerDelayed {
                    // Section 3 technique 2: the change takes effect only
                    // once every processor's TLB has been flushed after
                    // it. Park the rights-removing commits on the epoch.
                    if !self.deferred.is_empty() {
                        let pc = crate::state::PendingCommit {
                            pmap: self.pmap_id,
                            changes: std::mem::take(&mut self.deferred),
                            applied_at: now,
                        };
                        ctx.shared.kernel_mut().pending_commits.push(pc);
                    }
                } else {
                    // Commit the new translations: from this instant on,
                    // no stale entry may be used (the Section 4
                    // guarantee).
                    for &(vpn, pte) in &self.changes {
                        ctx.shared
                            .kernel_mut()
                            .checker
                            .commit(self.pmap_id, vpn, pte, now);
                    }
                }
                self.outcome.pages_changed = self.own_pages.unwrap_or(self.changes.len() as u64);
                self.outcome.processors_shot = self.send_list.len() as u32;
                if let Some(id) = self.round_id {
                    // Publish the round's completion *before* the lock
                    // release below: the notification wakes the stalled
                    // responders, who must find the extras list final and
                    // the unlocked flag set — and the joiners, who must
                    // find their results.
                    let k = ctx.shared.kernel_mut();
                    if let Some(i) = k.rounds.iter().position(|r| r.id == id) {
                        k.rounds[i].unlocked = true;
                        if k.rounds[i].cleanup_remaining == 0 {
                            // Every acknowledged responder was excused or
                            // evicted: nobody is left to reclaim the round.
                            k.rounds.swap_remove(i);
                        }
                    }
                    for &(cpu, pages) in &self.joiner_pages {
                        k.join_results[cpu.index()] = Some(pages);
                    }
                }
                let (lock_chan, home) = {
                    let pmap = ctx.shared.kernel_mut().pmaps.get_mut(self.pmap_id);
                    for i in 0..self.shards_held {
                        let s = self.shards_needed[i];
                        pmap.shard_mut(s).release(me);
                    }
                    match self.op {
                        PmapOp::Enter { .. } => pmap.stats_mut().enters += 1,
                        PmapOp::Remove { .. } => pmap.stats_mut().removes += 1,
                        PmapOp::Protect { .. } => pmap.stats_mut().protects += 1,
                        PmapOp::Destroy => pmap.stats_mut().destroys += 1,
                        PmapOp::ClearRefBits { .. } => pmap.stats_mut().ref_clears += 1,
                    }
                    (pmap.lock().channel(), pmap.home())
                };
                if let Some(chan) = lock_chan {
                    ctx.notify(chan);
                }
                let strategy = self.strategy(ctx.shared.kernel());
                let mut cost = Dur::ZERO;
                for _ in 0..self.shards_held {
                    cost += ctx.costs().lock_release + ctx.bus_write_at(home);
                }
                self.shards_held = 0;
                self.shard_gens.clear();
                if strategy.uses_interrupts() {
                    ctx.shared.kernel_mut().active.insert(me);
                    cost += ctx.bus_write();
                }
                if self.outcome.shootdown {
                    if self.pmap_id.is_kernel() {
                        ctx.shared.kernel_mut().stats.shootdowns_kernel += 1;
                    } else {
                        ctx.shared.kernel_mut().stats.shootdowns_user += 1;
                    }
                    cost += self.record_event(ctx);
                }
                if let Some(mask) = self.saved_mask.take() {
                    ctx.set_mask(mask);
                }
                let total = cost + ctx.costs().local_op;
                if let Some(span) = self.span {
                    // The lock was released above, at this step's instant;
                    // the unlock slice covers the remaining cleanup, whose
                    // cost is now known. Nothing later lands on this track
                    // before `now + total` — the step charge advances this
                    // processor's clock past it.
                    let k = ctx.shared.kernel_mut();
                    if let Some(open) = self.open.take() {
                        k.trace.record(me, span, open, TraceEdge::End, now);
                    }
                    k.trace
                        .record(me, span, TracePhase::Unlock, TraceEdge::Begin, now);
                    k.trace
                        .record(me, span, TracePhase::Unlock, TraceEdge::End, now + total);
                }
                Step::Done(total)
            }
        }
    }

    fn label(&self) -> &'static str {
        "pmap-op"
    }
}

impl PmapOpProcess {
    /// Whether any shard this processor believes it holds was forcibly
    /// transferred away since it was acquired. Steals only target
    /// fail-stop holders, so — because the holder of a lock is the only
    /// processor a steal can rob — a generation mismatch on a held shard
    /// means exactly one thing: this processor was halted mid-section,
    /// fence-and-steal (or the FailOp reclaimer) took the shard, and it
    /// has since revived.
    fn robbed(&self, shared: &KernelState) -> bool {
        let pmap = shared.pmaps.get(self.pmap_id);
        (0..self.shards_held)
            .any(|i| pmap.shard(self.shards_needed[i]).steal_gen() != self.shard_gens[i])
    }

    /// Abandons a critical section whose locks were fenced away while
    /// this processor was fail-stopped. The thief recomputed the staged
    /// page-table and TLB work under a fresh acquisition and scrubbed
    /// this initiator's round, so every in-flight decision here is stale:
    /// drop the claim *without releasing* (the locks belong to the thief
    /// now), discard the staged state, restore the interrupt mask, and
    /// redo the operation from [`Phase::Begin`].
    fn restart_robbed<S: HasKernel>(&mut self, ctx: &mut Ctx<'_, S, ()>) -> Step {
        let me = ctx.cpu_id;
        let now = ctx.now;
        {
            let k = ctx.shared.kernel_mut();
            k.stats.robbed_restarts += 1;
            // Both steal paths scrub the robbed initiator's round; scrub
            // again here so the restart never races a future steal site
            // that forgets to.
            if let Some(id) = self.round_id.take() {
                k.rounds.retain(|r| r.id != id);
            }
        }
        if let Some(span) = self.span {
            let k = ctx.shared.kernel_mut();
            if let Some(open) = self.open.take() {
                k.trace.record(me, span, open, TraceEdge::End, now);
            }
        }
        self.shards_held = 0;
        self.shard_gens.clear();
        self.wait_list.clear();
        self.send_list.clear();
        self.needed = false;
        self.changes.clear();
        self.deferred.clear();
        self.changes_planned = false;
        self.applied = 0;
        self.outcome = OpOutcome::default();
        self.spun_on_queue = None;
        self.wait_deadline = None;
        self.wait_retries = 0;
        self.fallback_list.clear();
        self.fallback_built = false;
        self.fallback_ranges.clear();
        self.joiner_pages.clear();
        self.own_pages = None;
        self.pre_invalidated = false;
        // Begin re-saves the mask; restore the pre-op one first so the
        // original is not lost to the re-save.
        if let Some(mask) = self.saved_mask.take() {
            ctx.set_mask(mask);
        }
        self.phase = Phase::Begin;
        Step::Run(ctx.costs().local_op + ctx.bus_read())
    }

    /// The phase that follows the consistency check / local invalidate,
    /// by strategy.
    fn after_local_phase(&self, shared: &KernelState, me: CpuId) -> Phase {
        let others_using = shared.pmaps.get(self.pmap_id).in_use().any_other_than(me);
        match shared.config.strategy {
            Strategy::NaiveFlush | Strategy::TimerDelayed => Phase::Apply,
            Strategy::HardwareRemoteInvalidate => {
                if others_using {
                    Phase::PreInvalidatePt { applied: 0 }
                } else {
                    Phase::Apply
                }
            }
            // Fanout mode: one published round descriptor and a single
            // multicast post replace the per-responder queue walk.
            Strategy::Shootdown if shared.config.fanout >= 2 => {
                if !others_using {
                    Phase::Apply
                } else if shared.config.residency {
                    // Residency filtering needs the invalid-first barrier
                    // before the possibly-cached sets may be trusted.
                    Phase::PreInvalidatePt { applied: 0 }
                } else {
                    Phase::PublishRound
                }
            }
            Strategy::Shootdown | Strategy::BroadcastIpi | Strategy::NoStallSoftwareReload => {
                if !others_using {
                    Phase::Apply
                } else if shared.config.residency && shared.config.strategy == Strategy::Shootdown {
                    Phase::PreInvalidatePt { applied: 0 }
                } else {
                    Phase::QueueScan { next: 0 }
                }
            }
        }
    }
}

/// The `FailOp` policy closed end to end: a retry driver above
/// [`PmapOpProcess`].
///
/// Under [`RecoveryPolicy::FailOp`] an operation that finds its lock held
/// by a fail-stop processor *aborts* with
/// [`OpOutcome::dead_lock_holder`] set — the policy's contract is that
/// the layer above decides what to do with the corpse. This driver is
/// that layer: it evicts the dead holder (if the health monitor has not
/// already), forcibly reclaims every lock the corpse still holds, and
/// re-dispatches the operation after an exponential backoff on the
/// watchdog's retry schedule. Each re-dispatch counts into
/// [`KernelStats::ops_retried`](crate::KernelStats::ops_retried); a
/// driver that exhausts its budget gives up with the dead-holder outcome
/// intact and counts into
/// [`KernelStats::retries_exhausted`](crate::KernelStats::retries_exhausted) —
/// an abandoned operation is a caught failure, never a silent pass.
#[derive(Debug)]
pub struct FailOpDriver {
    pmap_id: PmapId,
    op: PmapOp,
    inner: PmapOpProcess,
    retries: u32,
    max_retries: u32,
    backing_off: bool,
    outcome: OpOutcome,
}

impl FailOpDriver {
    /// Creates a driver that will re-dispatch `op` against `pmap_id` at
    /// most `max_retries` times past dead lock holders.
    pub fn new(pmap_id: PmapId, op: PmapOp, max_retries: u32) -> FailOpDriver {
        FailOpDriver {
            pmap_id,
            op,
            inner: PmapOpProcess::new(pmap_id, op),
            retries: 0,
            max_retries,
            backing_off: false,
            outcome: OpOutcome::default(),
        }
    }

    /// The operation being driven.
    pub fn op(&self) -> PmapOp {
        self.op
    }

    /// The final outcome (meaningful once the driver has finished). A
    /// set [`OpOutcome::dead_lock_holder`] here means the retry budget
    /// ran out.
    pub fn outcome(&self) -> OpOutcome {
        self.outcome
    }

    /// Re-dispatches performed so far.
    pub fn retries(&self) -> u32 {
        self.retries
    }
}

impl<S: HasKernel> Process<S, ()> for FailOpDriver {
    fn step(&mut self, ctx: &mut Ctx<'_, S, ()>) -> Step {
        let me = ctx.cpu_id;
        if self.backing_off {
            // The backoff elapsed: re-dispatch against a fresh process so
            // the retried operation re-acquires from scratch.
            self.backing_off = false;
            self.inner = PmapOpProcess::new(self.pmap_id, self.op);
            return Step::Run(ctx.costs().local_op);
        }
        match crate::drive(&mut self.inner, ctx) {
            crate::Driven::Yield(s) => s,
            crate::Driven::Finished(d) => {
                let outcome = self.inner.outcome();
                let Some(dead) = outcome.dead_lock_holder else {
                    self.outcome = outcome;
                    return Step::Done(d);
                };
                if self.retries >= self.max_retries {
                    ctx.shared.kernel_mut().stats.retries_exhausted += 1;
                    self.outcome = outcome;
                    return Step::Done(d);
                }
                self.retries += 1;
                let now = ctx.now;
                let mut cost = d + ctx.costs().local_op;
                // Declare the corpse dead if the watchdog has not already:
                // retrying against a holder that never releases would only
                // reproduce the abort.
                let k = ctx.shared.kernel();
                if k.config.health.enabled && !k.evicted[dead.index()] {
                    let completed = crate::health::evict(ctx.shared.kernel_mut(), me, dead, now);
                    ctx.notify(SYNC_CHANNEL);
                    for pmap in completed {
                        ctx.notify(round_channel(pmap));
                    }
                    cost += ctx.bus_write();
                }
                // Reclaim every lock the corpse still holds, so the
                // re-dispatched operation finds them free.
                let chans = crate::health::reclaim_dead_locks(ctx.shared.kernel_mut(), me, dead);
                for c in chans {
                    ctx.notify(c);
                }
                ctx.shared.kernel_mut().stats.ops_retried += 1;
                // Exponential backoff on the watchdog's retry schedule —
                // deterministic, and scaled to the machine's notion of
                // "how long a slow responder may take".
                let wd = ctx.shared.kernel().config.watchdog;
                self.backing_off = true;
                Step::Run(cost + wd.retry_timeout(self.retries))
            }
        }
    }

    fn label(&self) -> &'static str {
        "failop-driver"
    }
}
