//! The translated memory-access path: TLB lookup, hardware or software
//! reload, referenced/modified writeback, and the consistency oracle.
//!
//! This is where the hardware features of Section 3 actually bite:
//!
//! - on a miss, a **hardware reload** walks the page tables regardless of
//!   any lock the kernel holds, so an unsychronized pmap update races with
//!   concurrent walks;
//! - on an access that newly sets a referenced/modified bit, the TLB
//!   **writes its cached copy of the whole entry back** to the page table
//!   (non-interlocked hardware), which can clobber a concurrent update.
//!
//! Every translated use is validated against the committed-state oracle
//! ([`Checker`](crate::Checker)); the shootdown strategy keeps the oracle
//! silent, the naive strategy does not.

use machtlb_pmap::{Access, PmapId, Vaddr};
use machtlb_sim::{Ctx, Dur};
use machtlb_tlb::{Lookup, ReloadPolicy, WritebackPolicy};

use crate::state::HasKernel;

/// What a memory access should do.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum MemOp {
    /// Read the 64-bit word at the address.
    Read,
    /// Write the 64-bit word at the address.
    Write(u64),
}

impl MemOp {
    /// The access kind this operation performs.
    pub fn access(self) -> Access {
        match self {
            MemOp::Read => Access::Read,
            MemOp::Write(_) => Access::Write,
        }
    }
}

/// The result of attempting a translated access.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The access completed. `value` is the word read (or the word just
    /// written).
    Ok {
        /// The word transferred.
        value: u64,
        /// Time the access took.
        cost: Dur,
    },
    /// No translation permits the access: a page or protection fault. The
    /// caller should trap to the VM fault path and retry.
    Fault {
        /// Time spent discovering the fault.
        cost: Dur,
    },
    /// Software-reload stall: the pmap is locked by another processor, so
    /// the miss handler waits. The caller should retry.
    Stall {
        /// Time spent in the stalled handler.
        cost: Dur,
    },
}

/// Performs one translated access to `va` in `pmap_id` from the current
/// processor. See the module docs for the hazards modelled.
pub fn try_access<S: HasKernel>(
    ctx: &mut Ctx<'_, S, ()>,
    pmap_id: PmapId,
    va: Vaddr,
    op: MemOp,
) -> AccessOutcome {
    let me = ctx.cpu_id;
    let now = ctx.now;
    let access = op.access();
    let vpn = va.vpn();
    let word = va.page_offset() / 8;
    let c_cache = ctx.costs().cache_read;
    let c_local = ctx.costs().local_op;
    let writeback_policy = ctx.shared.kernel_mut().config.tlb.writeback;

    let lookup = ctx.shared.kernel_mut().tlbs[me.index()].lookup(pmap_id, vpn, access, now);
    match lookup {
        Lookup::Hit { pte, writeback } if pte.permits(access) => {
            let mut cost = c_cache;
            if let Some(wb) = writeback {
                match writeback_policy {
                    WritebackPolicy::NonInterlocked => {
                        // The hazardous behaviour: the cached copy (stale
                        // or not) overwrites the in-memory entry.
                        cost += ctx.bus_write();
                        ctx.shared
                            .kernel_mut()
                            .pmaps
                            .get_mut(pmap_id)
                            .table_mut()
                            .set(wb.vpn, wb.pte);
                    }
                    WritebackPolicy::Interlocked => {
                        // Interlocked read-modify-write that re-checks
                        // validity (Section 9, MC88200): an invalid
                        // in-memory entry forces a fault instead of being
                        // clobbered.
                        cost += ctx.bus_interlocked();
                        let table = ctx.shared.kernel_mut().pmaps.get_mut(pmap_id).table_mut();
                        let current = table.get(wb.vpn);
                        if current.valid {
                            table.set(wb.vpn, current.touched(access));
                        } else {
                            ctx.shared.kernel_mut().tlbs[me.index()].invalidate(pmap_id, vpn);
                            return AccessOutcome::Fault { cost };
                        }
                    }
                    WritebackPolicy::None => {
                        unreachable!("no-refmod hardware never emits writebacks")
                    }
                }
            }
            ctx.shared
                .kernel_mut()
                .checker
                .check_use(me, pmap_id, vpn, pte, access, now);
            let value = match op {
                MemOp::Read => {
                    cost += c_cache;
                    ctx.shared.kernel_mut().mem.read_word(pte.pfn, word)
                }
                MemOp::Write(v) => {
                    cost += ctx.bus_write();
                    ctx.shared.kernel_mut().mem.write_word(pte.pfn, word, v);
                    v
                }
            };
            AccessOutcome::Ok { value, cost }
        }
        Lookup::Hit { .. } => {
            // Cached entry without the needed rights: protection fault.
            AccessOutcome::Fault {
                cost: c_cache + c_local,
            }
        }
        Lookup::Miss => {
            let reload = ctx.shared.kernel_mut().config.tlb.reload;
            let mut cost = Dur::ZERO;
            if reload == ReloadPolicy::Software {
                // The software miss handler checks whether the pmap is
                // being modified and stalls only in that case (Section 9).
                cost += c_local * 8;
                let lock = ctx.shared.kernel_mut().pmaps.get(pmap_id).lock();
                if lock.is_locked() && !lock.is_held_by(me) {
                    return AccessOutcome::Stall {
                        cost: cost + ctx.costs().spin_iter,
                    };
                }
            }
            // Walk the page tables (hardware walks ignore all locks).
            let levels = ctx
                .shared
                .kernel_mut()
                .pmaps
                .get(pmap_id)
                .table()
                .walk_levels(vpn);
            for _ in 0..levels {
                cost += ctx.costs().ptw_level + ctx.bus_read();
            }
            let pte = ctx.shared.kernel_mut().pmaps.get(pmap_id).table().get(vpn);
            if !pte.permits(access) {
                return AccessOutcome::Fault {
                    cost: cost + c_local,
                };
            }
            // Record referenced/modified bits as the walk dictates.
            let cached = match writeback_policy {
                WritebackPolicy::None => pte,
                WritebackPolicy::NonInterlocked => {
                    let touched = pte.touched(access);
                    cost += ctx.bus_write();
                    ctx.shared
                        .kernel_mut()
                        .pmaps
                        .get_mut(pmap_id)
                        .table_mut()
                        .set(vpn, touched);
                    touched
                }
                WritebackPolicy::Interlocked => {
                    let touched = pte.touched(access);
                    cost += ctx.bus_interlocked();
                    ctx.shared
                        .kernel_mut()
                        .pmaps
                        .get_mut(pmap_id)
                        .table_mut()
                        .set(vpn, touched);
                    touched
                }
            };
            ctx.shared.kernel_mut().tlbs[me.index()].insert(pmap_id, vpn, cached, now);
            ctx.shared
                .kernel_mut()
                .checker
                .check_use(me, pmap_id, vpn, cached, access, now);
            let value = match op {
                MemOp::Read => {
                    cost += ctx.bus_read();
                    ctx.shared.kernel_mut().mem.read_word(cached.pfn, word)
                }
                MemOp::Write(v) => {
                    cost += ctx.bus_write();
                    ctx.shared.kernel_mut().mem.write_word(cached.pfn, word, v);
                    v
                }
            };
            AccessOutcome::Ok { value, cost }
        }
    }
}
